//! The COW radix tree indexing an object's pages.
//!
//! The paper chooses COW radix trees over COW B-trees because the workload
//! is block-based random writes and radix trees "do not suffer from the
//! extent fragmentation problems that B-Trees have if snapshotted
//! frequently" (§3). One tree node fills one 4 KiB block: 512 little-endian
//! `u64` child pointers; `0` means empty. Three fixed levels cover
//! 512³ ≈ 134 M pages (512 GiB) per object.
//!
//! Nodes are reference-counted (`Arc<Node>`) and mutated through
//! [`Arc::make_mut`] path copying, so `RadixTree::clone` is O(1) structural
//! sharing: a clone shares every node with the original until one side
//! dirties a path, at which point only that root-to-leaf path is copied.
//! This is what makes abort snapshots and retained-snapshot views
//! proportional to the *subsequently dirtied* set instead of the object.
//!
//! A committed subtree need not be resident: [`Child::Unloaded`] records
//! the node's disk block without reading it, and the tree hydrates nodes on
//! first touch ([`RadixTree::hydrate_path`]). Opening an object is
//! therefore O(1) IO — just the root record — and
//! [`RadixTree::diff_pages_with`] skips shared subtrees by comparing block
//! numbers *without* hydrating either side.

use std::sync::Arc;

use crate::layout::{digest32, pack_entry, unpack_entry, DIGEST_NONE};
use msnap_disk::{IoError, BLOCK_SIZE};

/// Children per node: one 4 KiB block of u64 entry words.
pub const FANOUT: usize = BLOCK_SIZE / 8;
/// Fixed tree height.
pub const LEVELS: usize = 3;
/// Highest addressable page index + 1.
pub const MAX_PAGES: u64 = (FANOUT as u64).pow(LEVELS as u32);

const SHIFT: [u32; LEVELS] = [18, 9, 0];

/// Fallible single-block read used for demand hydration. The store wires
/// this to the device (charging simulated IO) and its block cache.
pub type BlockRead<'a> = &'a mut dyn FnMut(u64, &mut [u8; BLOCK_SIZE]) -> Result<(), IoError>;

/// Error from a tree operation that hydrates nodes on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The device read failed.
    Io(IoError),
    /// A node image read back with contents whose digest does not match
    /// the digest its parent recorded at commit time: the metadata block
    /// rotted at rest. The slot is left unloaded (retryable if the fault
    /// was transient in the device, permanent rot needs repair).
    CorruptNode {
        /// The node's disk block.
        block: u64,
    },
}

impl From<IoError> for TreeError {
    fn from(e: IoError) -> Self {
        TreeError::Io(e)
    }
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Io(e) => write!(f, "tree hydration IO error: {e}"),
            TreeError::CorruptNode { block } => {
                write!(f, "radix node at block {block} failed digest verification")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone)]
enum Child {
    Empty,
    /// At the last level: a data block number plus the digest32 of the
    /// page contents ([`DIGEST_NONE`] when not yet known — entries decoded
    /// from pre-digest stores).
    Data {
        block: u64,
        digest: u32,
    },
    /// At interior levels: a resident child node, possibly shared with
    /// other trees (clones, snapshots, abort snapshots).
    Node(Arc<Node>),
    /// A committed child node that has not been read from disk yet. The
    /// block number is enough to commit, diff, and serialize around it;
    /// only descending *into* the subtree forces a read, which is when
    /// `digest` (the parent's recorded digest of the child's image) is
    /// verified.
    Unloaded {
        block: u64,
        digest: u32,
    },
}

impl Child {
    /// The committed block this child refers to, or `None` if the child is
    /// empty or dirty. Two children with equal `Some` refs index identical
    /// subtrees (the COW invariant: committed blocks are never rewritten).
    fn committed_ref(&self) -> Option<u64> {
        match self {
            Child::Empty => None,
            Child::Data { block, .. } => Some(*block),
            Child::Node(n) => n.disk_block,
            Child::Unloaded { block, .. } => Some(*block),
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    children: Vec<Child>,
    /// The block holding this node's committed image, or `None` if the
    /// node has been modified since the last commit (dirty).
    disk_block: Option<u64>,
    /// digest32 of the committed image (valid while `disk_block` is
    /// `Some`). [`DIGEST_NONE`] means unknown — the node was referenced by
    /// a pre-digest parent; verification backfills it on first hydration.
    disk_digest: u32,
}

impl Node {
    fn new() -> Node {
        Node {
            children: vec![Child::Empty; FANOUT],
            disk_block: None,
            disk_digest: DIGEST_NONE,
        }
    }

    /// Parses a node image read from `block`. Children at interior levels
    /// come back [`Child::Unloaded`]; nothing below is read. `disk_digest`
    /// is the digest of `buf` itself (the caller has already verified it
    /// against the parent's expectation where one exists).
    fn parse(block: u64, buf: &[u8; BLOCK_SIZE], level: usize) -> Node {
        let mut node = Node::new();
        node.disk_block = Some(block);
        node.disk_digest = digest32(buf);
        for i in 0..FANOUT {
            let v = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
            if v == 0 {
                continue;
            }
            let (b, digest) = unpack_entry(v);
            node.children[i] = if level == LEVELS - 1 {
                Child::Data { block: b, digest }
            } else {
                Child::Unloaded { block: b, digest }
            };
        }
        node
    }

    fn serialize(&self) -> [u8; BLOCK_SIZE] {
        let mut block = [0u8; BLOCK_SIZE];
        for (i, child) in self.children.iter().enumerate() {
            let v = match child {
                Child::Empty => 0,
                Child::Data { block, digest } => pack_entry(*block, *digest),
                Child::Unloaded { block, digest } => pack_entry(*block, *digest),
                Child::Node(n) => pack_entry(
                    n.disk_block
                        .expect("serialize called before children were assigned blocks"),
                    n.disk_digest,
                ),
            };
            block[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        block
    }
}

/// Replaces an [`Child::Unloaded`] slot with its resident node (reading it
/// via `read`) and returns a mutable reference to the node. The image read
/// back is verified against the digest the parent recorded (skipped when
/// the parent predates digests); a mismatch is [`TreeError::CorruptNode`].
/// On any error the slot is left `Unloaded` — nothing is poisoned and a
/// retry starts from the same state.
fn hydrate_slot<'a>(
    slot: &'a mut Child,
    level: usize,
    read: BlockRead,
) -> Result<&'a mut Node, TreeError> {
    if let Child::Unloaded { block, digest } = *slot {
        let mut buf = [0u8; BLOCK_SIZE];
        read(block, &mut buf)?;
        if digest != DIGEST_NONE && digest32(&buf) != digest {
            return Err(TreeError::CorruptNode { block });
        }
        *slot = Child::Node(Arc::new(Node::parse(block, &buf, level)));
    }
    match slot {
        Child::Node(n) => Ok(Arc::make_mut(n)),
        _ => unreachable!("hydrate_slot called on a non-node child"),
    }
}

/// An object's page index: in-memory COW radix tree with dirty tracking.
///
/// `set` marks the touched root-to-leaf path dirty; [`RadixTree::commit`]
/// assigns fresh blocks to every dirty node (children before parents) and
/// emits their serialized images, returning the new root block. Blocks
/// superseded by the commit are reported for recycling — committed nodes
/// are never mutated in place, which is the COW invariant the crash-
/// consistency argument rests on.
///
/// Cloning is O(1): nodes are `Arc`-shared and copied lazily, path by
/// path, as either side mutates. A clone taken of a dirty tree keeps its
/// own view of the dirty nodes — `commit` copies shared dirty nodes before
/// assigning them blocks — which is what the store's abort snapshots rely
/// on.
#[derive(Debug, Clone)]
pub struct RadixTree {
    root: Child,
    /// Disk blocks of committed nodes/pages superseded since last commit.
    freed: Vec<u64>,
    len_pages: u64,
}

impl Default for RadixTree {
    fn default() -> Self {
        RadixTree {
            root: Child::Empty,
            freed: Vec::new(),
            len_pages: 0,
        }
    }
}

impl RadixTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a committed root block without reading anything: O(1). Nodes
    /// hydrate on first touch. `root_block == 0` yields an empty tree.
    /// The root hydrates unverified (no known digest) — prefer
    /// [`RadixTree::from_committed_digest`] when the root record carries
    /// one.
    pub fn from_committed(root_block: u64, len_pages: u64) -> Self {
        Self::from_committed_digest(root_block, DIGEST_NONE, len_pages)
    }

    /// [`RadixTree::from_committed`] with the root record's digest of the
    /// root node image, so the very first hydration is verified too —
    /// closing the Merkle chain at the top.
    pub fn from_committed_digest(root_block: u64, root_digest: u32, len_pages: u64) -> Self {
        RadixTree {
            root: if root_block == 0 {
                Child::Empty
            } else {
                Child::Unloaded {
                    block: root_block,
                    digest: root_digest,
                }
            },
            freed: Vec::new(),
            len_pages,
        }
    }

    /// Loads a committed tree eagerly from disk.
    ///
    /// `read` reads one block into the provided buffer (the store charges
    /// the IO cost). `root_block == 0` yields an empty tree. This is the
    /// pre-lazy-hydration path, kept for ablation and for callers that
    /// know they will touch everything.
    pub fn load(
        root_block: u64,
        len_pages: u64,
        read: &mut dyn FnMut(u64, &mut [u8; BLOCK_SIZE]),
    ) -> Self {
        let mut tree = Self::from_committed(root_block, len_pages);
        tree.hydrate_all(&mut |b, out| {
            read(b, out);
            Ok(())
        })
        .expect("infallible read callback");
        tree
    }

    /// Reads every unloaded node so the whole tree is resident.
    pub fn hydrate_all(&mut self, read: BlockRead) -> Result<(), TreeError> {
        fn rec(slot: &mut Child, level: usize, read: BlockRead) -> Result<(), TreeError> {
            match slot {
                Child::Empty | Child::Data { .. } => Ok(()),
                _ => {
                    let node = hydrate_slot(slot, level, read)?;
                    if level == LEVELS - 1 {
                        return Ok(());
                    }
                    for child in &mut node.children {
                        rec(child, level + 1, read)?;
                    }
                    Ok(())
                }
            }
        }
        rec(&mut self.root, 0, read)
    }

    /// Hydrates the root-to-leaf path for `page` without dirtying it.
    /// After this returns `Ok`, [`RadixTree::get`] and [`RadixTree::set`]
    /// on `page` cannot cross an unloaded node. On error nothing has been
    /// mutated except already-completed hydrations (which are semantically
    /// neutral), so retrying is safe.
    pub fn hydrate_path(&mut self, page: u64, read: BlockRead) -> Result<(), TreeError> {
        assert!(page < MAX_PAGES, "page index out of range");
        let mut slot = &mut self.root;
        for (level, &shift) in SHIFT.iter().enumerate() {
            match slot {
                Child::Empty | Child::Data { .. } => return Ok(()),
                _ => {}
            }
            let node = hydrate_slot(slot, level, read)?;
            if level == LEVELS - 1 {
                return Ok(());
            }
            let idx = ((page >> shift) as usize) & (FANOUT - 1);
            slot = &mut node.children[idx];
        }
        Ok(())
    }

    /// The data block holding `page`, hydrating the path on demand.
    pub fn get_or_load(&mut self, page: u64, read: BlockRead) -> Result<Option<u64>, TreeError> {
        self.hydrate_path(page, read)?;
        Ok(self.get(page))
    }

    /// The `(data block, content digest)` entry for `page`, hydrating the
    /// path on demand. The digest is [`DIGEST_NONE`] for pages written by
    /// pre-digest stores that have not been rewritten or scrubbed yet.
    pub fn get_entry_or_load(
        &mut self,
        page: u64,
        read: BlockRead,
    ) -> Result<Option<(u64, u32)>, TreeError> {
        self.hydrate_path(page, read)?;
        Ok(self.get_entry(page))
    }

    /// [`RadixTree::set`] with demand hydration. The path is hydrated
    /// *before* any mutation, so an IO error leaves the mapping unchanged.
    pub fn set_with(
        &mut self,
        page: u64,
        data_block: u64,
        read: BlockRead,
    ) -> Result<Option<u64>, TreeError> {
        self.set_entry_with(page, data_block, DIGEST_NONE, read)
    }

    /// [`RadixTree::set_entry`] with demand hydration.
    pub fn set_entry_with(
        &mut self,
        page: u64,
        data_block: u64,
        digest: u32,
        read: BlockRead,
    ) -> Result<Option<u64>, TreeError> {
        self.hydrate_path(page, read)?;
        Ok(self.set_entry(page, data_block, digest))
    }

    /// The data block holding `page`, if the page has been written.
    ///
    /// # Panics
    ///
    /// Panics if the lookup crosses an unloaded subtree — use
    /// [`RadixTree::get_or_load`] on lazily opened trees.
    pub fn get(&self, page: u64) -> Option<u64> {
        self.get_entry(page).map(|(b, _)| b)
    }

    /// The `(data block, content digest)` entry for `page`, if written.
    ///
    /// # Panics
    ///
    /// Panics if the lookup crosses an unloaded subtree — use
    /// [`RadixTree::get_entry_or_load`] on lazily opened trees.
    #[allow(clippy::needless_range_loop)] // SHIFT is indexed by level on purpose
    pub fn get_entry(&self, page: u64) -> Option<(u64, u32)> {
        assert!(page < MAX_PAGES, "page index out of range");
        let mut child = &self.root;
        for level in 0..LEVELS {
            let node = match child {
                Child::Empty => return None,
                Child::Unloaded { .. } => {
                    panic!("get crossed an unloaded subtree; use get_or_load")
                }
                Child::Node(n) => n,
                Child::Data { .. } => unreachable!("Data children only exist at the last level"),
            };
            let idx = ((page >> SHIFT[level]) as usize) & (FANOUT - 1);
            child = &node.children[idx];
            if level == LEVELS - 1 {
                return match child {
                    Child::Data { block, digest } => Some((*block, *digest)),
                    Child::Empty => None,
                    _ => panic!("interior child at leaf level"),
                };
            }
        }
        unreachable!()
    }

    /// Points `page` at `data_block` with no recorded content digest —
    /// [`RadixTree::set_entry`] with [`DIGEST_NONE`]. Kept for callers
    /// (and tests) that manage blocks without page contents in hand.
    pub fn set(&mut self, page: u64, data_block: u64) -> Option<u64> {
        self.set_entry(page, data_block, DIGEST_NONE)
    }

    /// Points `page` at `data_block` (recording `digest` as the digest32
    /// of its contents), COW-dirtying the path. Returns the replaced data
    /// block, if any (the caller recycles it after commit). Shared nodes
    /// along the path are copied (`Arc::make_mut`), so clones of this tree
    /// are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `page >= MAX_PAGES`, `data_block == 0`, or the path
    /// crosses an unloaded subtree (use [`RadixTree::set_entry_with`]).
    #[allow(clippy::needless_range_loop)] // SHIFT is indexed by level on purpose
    pub fn set_entry(&mut self, page: u64, data_block: u64, digest: u32) -> Option<u64> {
        assert!(page < MAX_PAGES, "page index out of range");
        assert!(data_block != 0, "block 0 is reserved");
        self.len_pages = self.len_pages.max(page + 1);
        if matches!(self.root, Child::Empty) {
            self.root = Child::Node(Arc::new(Node::new()));
        }
        let mut slot = &mut self.root;
        for level in 0..LEVELS {
            let node = match slot {
                Child::Node(n) => Arc::make_mut(n),
                Child::Unloaded { .. } => {
                    panic!("set crossed an unloaded subtree; use set_with")
                }
                _ => unreachable!("interior slots always hold nodes here"),
            };
            // Dirty the node; recycle its committed image.
            if let Some(b) = node.disk_block.take() {
                self.freed.push(b);
            }
            let idx = ((page >> SHIFT[level]) as usize) & (FANOUT - 1);
            if level == LEVELS - 1 {
                let old = match node.children[idx] {
                    Child::Data { block, .. } => Some(block),
                    Child::Empty => None,
                    _ => unreachable!("interior child at leaf level"),
                };
                node.children[idx] = Child::Data {
                    block: data_block,
                    digest,
                };
                return old;
            }
            if matches!(node.children[idx], Child::Empty) {
                node.children[idx] = Child::Node(Arc::new(Node::new()));
            }
            slot = &mut node.children[idx];
        }
        unreachable!()
    }

    /// Records `digest` for `page` without remapping it: the digest
    /// backfill path for pages committed by pre-digest stores. The node
    /// path is COW-dirtied (so the next full commit persists the digest)
    /// but the data block itself is *not* superseded. Returns `false` — at
    /// no cost — when the page is absent or already carries this digest.
    ///
    /// # Panics
    ///
    /// Panics if the path crosses an unloaded subtree — hydrate first
    /// (scrub walks hydrate as they enumerate).
    #[allow(clippy::needless_range_loop)] // SHIFT is indexed by level on purpose
    pub fn backfill_digest(&mut self, page: u64, digest: u32) -> bool {
        assert!(page < MAX_PAGES, "page index out of range");
        match self.get_entry(page) {
            Some((_, d)) if d != digest => {}
            _ => return false,
        }
        let mut slot = &mut self.root;
        for level in 0..LEVELS {
            let node = match slot {
                Child::Node(n) => Arc::make_mut(n),
                _ => unreachable!("get_entry above proved the path is resident"),
            };
            if let Some(b) = node.disk_block.take() {
                self.freed.push(b);
            }
            let idx = ((page >> SHIFT[level]) as usize) & (FANOUT - 1);
            if level == LEVELS - 1 {
                match &mut node.children[idx] {
                    Child::Data { digest: d, .. } => *d = digest,
                    _ => unreachable!("get_entry above proved the page exists"),
                }
                return true;
            }
            slot = &mut node.children[idx];
        }
        unreachable!()
    }

    /// Assigns blocks (via `alloc`) to all dirty nodes and emits their
    /// images, children before parents. Returns the new root block
    /// (`0` for an empty tree).
    ///
    /// After `commit` returns, the in-memory tree matches the emitted
    /// on-disk image and nothing is dirty. Dirty nodes still shared with a
    /// clone (an abort snapshot taken of the dirty tree) are copied before
    /// being assigned blocks, so the clone stays dirty and restorable.
    pub fn commit(
        &mut self,
        alloc: &mut dyn FnMut() -> u64,
        writes: &mut Vec<(u64, Box<[u8]>)>,
    ) -> u64 {
        fn commit_slot(
            slot: &mut Child,
            alloc: &mut dyn FnMut() -> u64,
            writes: &mut Vec<(u64, Box<[u8]>)>,
        ) -> u64 {
            match slot {
                Child::Empty => 0,
                Child::Data { block, .. } => *block,
                Child::Unloaded { block, .. } => *block, // clean on disk, never read
                Child::Node(arc) => {
                    if let Some(b) = arc.disk_block {
                        return b; // clean subtree
                    }
                    let node = Arc::make_mut(arc);
                    for child in &mut node.children {
                        if let Child::Node(_) = child {
                            commit_slot(child, alloc, writes);
                        }
                    }
                    // Children first: their fresh (block, digest) pairs
                    // must be final before this node's image — the Merkle
                    // chain is built bottom-up.
                    let block = alloc();
                    node.disk_block = Some(block);
                    let image = node.serialize();
                    node.disk_digest = digest32(&image);
                    writes.push((block, Box::new(image)));
                    block
                }
            }
        }

        commit_slot(&mut self.root, alloc, writes)
    }

    /// Drains the list of blocks superseded since the last drain.
    pub fn take_freed(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.freed)
    }

    /// Number of dirty (uncommitted) nodes. Unloaded subtrees are clean
    /// by construction.
    pub fn dirty_nodes(&self) -> usize {
        fn count(child: &Child) -> usize {
            match child {
                Child::Node(n) => {
                    let own = usize::from(n.disk_block.is_none());
                    own + n.children.iter().map(count).sum::<usize>()
                }
                _ => 0,
            }
        }
        count(&self.root)
    }

    /// Number of unloaded (non-resident) subtree roots — a hydration-state
    /// probe for tests and benches.
    pub fn unloaded_nodes(&self) -> usize {
        fn count(child: &Child) -> usize {
            match child {
                Child::Unloaded { .. } => 1,
                Child::Node(n) => n.children.iter().map(count).sum(),
                _ => 0,
            }
        }
        count(&self.root)
    }

    /// Object length in pages (highest written page + 1).
    pub fn len_pages(&self) -> u64 {
        self.len_pages
    }

    /// Disk block of the committed root node (`0` for an empty tree).
    /// Works on unloaded trees — the root block is known without a read.
    ///
    /// # Panics
    ///
    /// Panics if the root is dirty — callers commit first.
    pub fn committed_root(&self) -> u64 {
        match &self.root {
            Child::Empty => 0,
            Child::Unloaded { block, .. } => *block,
            Child::Node(n) => n.disk_block.expect("committed_root called on a dirty tree"),
            Child::Data { .. } => unreachable!("the root is never a data block"),
        }
    }

    /// digest32 of the committed root node's image ([`DIGEST_NONE`] for an
    /// empty tree or a root adopted from a pre-digest record that has not
    /// been hydrated yet). Pairs with [`RadixTree::committed_root`] to
    /// fill a root record.
    ///
    /// # Panics
    ///
    /// Panics if the root is dirty — callers commit first.
    pub fn committed_root_digest(&self) -> u32 {
        match &self.root {
            Child::Empty => DIGEST_NONE,
            Child::Unloaded { digest, .. } => *digest,
            Child::Node(n) => {
                n.disk_block.expect("committed_root_digest on a dirty tree");
                n.disk_digest
            }
            Child::Data { .. } => unreachable!("the root is never a data block"),
        }
    }

    /// Every disk block reachable from the committed tree: all node
    /// blocks plus all data blocks. This is the block set a retained
    /// snapshot pins.
    ///
    /// # Panics
    ///
    /// Panics if any node is dirty (callers commit first) or not resident
    /// (use [`RadixTree::reachable_blocks_with`]).
    pub fn reachable_blocks(&self) -> Vec<u64> {
        fn walk(child: &Child, out: &mut Vec<u64>) {
            match child {
                Child::Empty => {}
                Child::Data { block, .. } => out.push(*block),
                Child::Unloaded { .. } => {
                    panic!("reachable_blocks on a partially loaded tree; use reachable_blocks_with")
                }
                Child::Node(n) => {
                    out.push(n.disk_block.expect("reachable_blocks on a dirty tree"));
                    for c in &n.children {
                        walk(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// [`RadixTree::reachable_blocks`] with demand hydration: reads any
    /// unloaded nodes (enumerating a subtree requires its contents).
    pub fn reachable_blocks_with(&mut self, read: BlockRead) -> Result<Vec<u64>, TreeError> {
        self.hydrate_all(read)?;
        Ok(self.reachable_blocks())
    }

    /// Every disk block the tree references, tolerating dirty nodes: a
    /// dirty node has no committed block of its own yet, but the data
    /// blocks and committed nodes below it are real. This is the on-disk
    /// footprint an abandoned (possibly mid-delta-window) history leaves
    /// behind, which the rebase path quarantines for recycling.
    pub fn disk_blocks(&self) -> Vec<u64> {
        fn walk(child: &Child, out: &mut Vec<u64>) {
            match child {
                Child::Empty => {}
                Child::Data { block, .. } => out.push(*block),
                Child::Unloaded { .. } => {
                    panic!("disk_blocks on a partially loaded tree; use disk_blocks_with")
                }
                Child::Node(n) => {
                    if let Some(b) = n.disk_block {
                        out.push(b);
                    }
                    for c in &n.children {
                        walk(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// [`RadixTree::disk_blocks`] with demand hydration.
    pub fn disk_blocks_with(&mut self, read: BlockRead) -> Result<Vec<u64>, TreeError> {
        self.hydrate_all(read)?;
        Ok(self.disk_blocks())
    }

    /// Pages whose mapping differs between `base` and `target`, as
    /// `(page, target data block)` pairs in page order. Subtrees whose
    /// committed block numbers match on both sides are skipped without
    /// descent — the COW invariant makes equal block numbers imply equal
    /// content, *provided* neither tree's blocks can have been recycled
    /// in between (true for retained snapshots, whose blocks are pinned).
    /// A dirty node compares unequal to everything, which is conservative
    /// but never wrong. Pages present only in `base` are not reported
    /// (the store never deletes pages).
    ///
    /// # Panics
    ///
    /// Panics if the walk must descend into an unloaded subtree — use
    /// [`RadixTree::diff_pages_with`] on lazily opened trees. (Shared
    /// unloaded subtrees are still skipped by block number.)
    pub fn diff_pages(base: &RadixTree, target: &RadixTree) -> Vec<(u64, u64)> {
        fn walk(
            a: Option<&Child>,
            b: &Child,
            prefix: u64,
            level: usize,
            out: &mut Vec<(u64, u64)>,
        ) {
            if let Some(ac) = a {
                if ac.committed_ref().is_some() && ac.committed_ref() == b.committed_ref() {
                    return; // shared committed subtree
                }
            }
            let bn = match b {
                Child::Empty => return,
                Child::Node(n) => n,
                Child::Unloaded { .. } => {
                    panic!("diff_pages descended into an unloaded subtree; use diff_pages_with")
                }
                Child::Data { .. } => unreachable!("handled at the level above"),
            };
            let an = match a {
                Some(Child::Node(n)) => Some(&**n),
                Some(Child::Unloaded { .. }) => {
                    panic!("diff_pages descended into an unloaded subtree; use diff_pages_with")
                }
                _ => None,
            };
            for (i, child) in bn.children.iter().enumerate() {
                let idx = prefix | ((i as u64) << SHIFT[level]);
                let ac = an.map(|n| &n.children[i]);
                if level == LEVELS - 1 {
                    if let Child::Data { block: db, .. } = child {
                        if !matches!(ac, Some(Child::Data { block: ab, .. }) if ab == db) {
                            out.push((idx, *db));
                        }
                    }
                } else if !matches!(child, Child::Empty) {
                    walk(ac, child, idx, level + 1, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(Some(&base.root), &target.root, 0, 0, &mut out);
        out
    }

    /// [`RadixTree::diff_pages`] over possibly-lazy trees. Shared
    /// committed subtrees are skipped by comparing block numbers — zero
    /// hydration reads for shared state; only *divergent* subtrees are
    /// hydrated (on both sides) to walk their pages.
    pub fn diff_pages_with(
        base: Option<&mut RadixTree>,
        target: &mut RadixTree,
        read: BlockRead,
    ) -> Result<Vec<(u64, u64)>, TreeError> {
        fn walk(
            a: Option<&mut Child>,
            b: &mut Child,
            prefix: u64,
            level: usize,
            read: BlockRead,
            out: &mut Vec<(u64, u64)>,
        ) -> Result<(), TreeError> {
            if let Some(ac) = &a {
                if ac.committed_ref().is_some() && ac.committed_ref() == b.committed_ref() {
                    return Ok(()); // shared committed subtree: no hydration
                }
            }
            if matches!(b, Child::Empty) {
                return Ok(());
            }
            let bn = hydrate_slot(b, level, read)?;
            let mut an = None;
            if let Some(slot) = a {
                if matches!(slot, Child::Node(_) | Child::Unloaded { .. }) {
                    an = Some(hydrate_slot(slot, level, read)?);
                }
            }
            for i in 0..FANOUT {
                let idx = prefix | ((i as u64) << SHIFT[level]);
                let child = &mut bn.children[i];
                let ac = an.as_deref_mut().map(|n| &mut n.children[i]);
                if level == LEVELS - 1 {
                    if let Child::Data { block: db, .. } = child {
                        if !matches!(&ac, Some(Child::Data { block: ab, .. }) if ab == db) {
                            out.push((idx, *db));
                        }
                    }
                } else if !matches!(child, Child::Empty) {
                    walk(ac, child, idx, level + 1, read, out)?;
                }
            }
            Ok(())
        }
        let mut out = Vec::new();
        walk(
            base.map(|t| &mut t.root),
            &mut target.root,
            0,
            0,
            read,
            &mut out,
        )?;
        Ok(out)
    }

    /// All `(page, data_block)` pairs, in page order (test/recovery aid).
    ///
    /// # Panics
    ///
    /// Panics on a partially loaded tree — hydrate first.
    pub fn pages(&self) -> Vec<(u64, u64)> {
        fn walk(child: &Child, prefix: u64, level: usize, out: &mut Vec<(u64, u64)>) {
            match child {
                Child::Empty => {}
                Child::Data { block, .. } => out.push((prefix, *block)),
                Child::Unloaded { .. } => {
                    panic!("pages() on a partially loaded tree; hydrate first")
                }
                Child::Node(n) => {
                    for (i, c) in n.children.iter().enumerate() {
                        let idx = prefix | ((i as u64) << SHIFT[level]);
                        walk(c, idx, level + 1, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        if let Child::Node(n) = &self.root {
            for (i, c) in n.children.iter().enumerate() {
                walk(c, (i as u64) << SHIFT[0], 1, &mut out);
            }
        } else if let Child::Unloaded { .. } = &self.root {
            panic!("pages() on a partially loaded tree; hydrate first");
        }
        out
    }

    /// Up to `limit` committed leaf entries with page index `>= start`,
    /// as `(page, data block, digest)` triples in page order, hydrating
    /// only the subtrees the range forces it to descend into. This is the
    /// scrub cursor's enumeration primitive: a scrub pass resumes at
    /// `start` and subtrees entirely below the cursor are skipped without
    /// IO.
    pub fn entries_from(
        &mut self,
        start: u64,
        limit: usize,
        read: BlockRead,
    ) -> Result<Vec<(u64, u64, u32)>, TreeError> {
        fn walk(
            slot: &mut Child,
            prefix: u64,
            level: usize,
            start: u64,
            limit: usize,
            read: BlockRead,
            out: &mut Vec<(u64, u64, u32)>,
        ) -> Result<(), TreeError> {
            if out.len() >= limit {
                return Ok(());
            }
            match slot {
                Child::Empty => Ok(()),
                Child::Data { block, digest } => {
                    if prefix >= start {
                        out.push((prefix, *block, *digest));
                    }
                    Ok(())
                }
                _ => {
                    // Pages under a node at `level` span FANOUT^(LEVELS-level).
                    let span = (FANOUT as u64).pow((LEVELS - level) as u32);
                    if prefix + span <= start {
                        return Ok(()); // entirely behind the cursor
                    }
                    let node = hydrate_slot(slot, level, read)?;
                    let shift = SHIFT[level];
                    for i in 0..FANOUT {
                        if out.len() >= limit {
                            break;
                        }
                        let idx = prefix | ((i as u64) << shift);
                        walk(
                            &mut node.children[i],
                            idx,
                            level + 1,
                            start,
                            limit,
                            read,
                            out,
                        )?;
                    }
                    Ok(())
                }
            }
        }
        let mut out = Vec::new();
        walk(&mut self.root, 0, 0, start, limit, read, &mut out)?;
        Ok(out)
    }

    /// Every *resident* committed node's `(disk block, image digest)`,
    /// parents before children. Dirty nodes (no committed image) and
    /// unloaded subtrees (verified at hydration time instead) are skipped.
    /// This is the scrub's node-media worklist.
    pub fn committed_nodes(&self) -> Vec<(u64, u32)> {
        fn walk(child: &Child, out: &mut Vec<(u64, u32)>) {
            if let Child::Node(n) = child {
                if let Some(b) = n.disk_block {
                    out.push((b, n.disk_digest));
                }
                for c in &n.children {
                    walk(c, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Heals a resident committed node whose *media* copy rotted: marks
    /// the node and every ancestor dirty so the next full commit rewrites
    /// the path to fresh blocks from the good in-memory copies. Ancestor
    /// blocks are reported as superseded (recyclable); the rotted block
    /// itself is **not** — the caller quarantines it. Returns `false` if
    /// no resident node holds `block`.
    pub fn dirty_committed_node(&mut self, block: u64) -> bool {
        fn contains(node: &Node, target: u64) -> bool {
            if node.disk_block == Some(target) {
                return true;
            }
            node.children
                .iter()
                .any(|c| matches!(c, Child::Node(n) if contains(n, target)))
        }
        fn dirty_path(slot: &mut Child, target: u64, freed: &mut Vec<u64>) -> bool {
            let Child::Node(arc) = slot else {
                return false;
            };
            if !contains(arc, target) {
                return false;
            }
            let node = Arc::make_mut(arc);
            if node.disk_block == Some(target) {
                node.disk_block = None; // rotted: quarantined by the caller
                node.disk_digest = DIGEST_NONE;
                return true;
            }
            for child in &mut node.children {
                if dirty_path(child, target, freed) {
                    break;
                }
            }
            if let Some(b) = node.disk_block.take() {
                freed.push(b); // healthy ancestor image, superseded
            }
            node.disk_digest = DIGEST_NONE;
            true
        }
        let mut freed = Vec::new();
        let found = dirty_path(&mut self.root, block, &mut freed);
        self.freed.extend(freed);
        found
    }

    /// A structurally independent copy sharing no nodes with `self` — the
    /// pre-Arc `clone` semantics, kept as a bench ablation so the cost of
    /// deep copying can be measured against O(1) structural sharing.
    pub fn deep_clone(&self) -> Self {
        fn deep(child: &Child) -> Child {
            match child {
                Child::Node(n) => Child::Node(Arc::new(Node {
                    children: n.children.iter().map(deep).collect(),
                    disk_block: n.disk_block,
                    disk_digest: n.disk_digest,
                })),
                other => other.clone(),
            }
        }
        RadixTree {
            root: deep(&self.root),
            freed: self.freed.clone(),
            len_pages: self.len_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn get_on_empty_tree() {
        let t = RadixTree::new();
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(MAX_PAGES - 1), None);
    }

    #[test]
    fn set_and_get() {
        let mut t = RadixTree::new();
        assert_eq!(t.set(5, 100), None);
        assert_eq!(t.set(5, 200), Some(100));
        assert_eq!(t.get(5), Some(200));
        assert_eq!(t.get(6), None);
        assert_eq!(t.len_pages(), 6);
    }

    #[test]
    fn sparse_indices_do_not_collide() {
        let mut t = RadixTree::new();
        // Same low bits, different levels.
        t.set(1, 10);
        t.set(1 + FANOUT as u64, 11);
        t.set(1 + (FANOUT * FANOUT) as u64, 12);
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(1 + FANOUT as u64), Some(11));
        assert_eq!(t.get(1 + (FANOUT * FANOUT) as u64), Some(12));
    }

    #[test]
    fn commit_then_reload_round_trips() {
        let mut t = RadixTree::new();
        for p in [0u64, 7, 511, 512, 513, 300_000] {
            t.set(p, 1000 + p);
        }
        let mut next = 10u64;
        let mut writes = Vec::new();
        let root = t.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        assert_ne!(root, 0);
        assert_eq!(t.dirty_nodes(), 0);

        let blocks: HashMap<u64, Box<[u8]>> = writes.into_iter().collect();
        let loaded = RadixTree::load(root, t.len_pages(), &mut |b, out| {
            out.copy_from_slice(&blocks[&b]);
        });
        assert_eq!(loaded.pages(), t.pages());
        assert_eq!(loaded.len_pages(), t.len_pages());
    }

    #[test]
    fn commit_is_incremental() {
        let mut t = RadixTree::new();
        t.set(0, 100);
        t.set(513, 101); // different L1 subtree than page 0
        let mut next = 10u64;
        let mut alloc = move || {
            next += 1;
            next
        };
        let mut writes = Vec::new();
        t.commit(&mut alloc, &mut writes);
        let first_commit_nodes = writes.len();
        assert!(first_commit_nodes >= 3); // root + 2 subtree paths

        // Touch one page: only its path (3 nodes) should be rewritten.
        t.set(0, 200);
        let mut writes = Vec::new();
        t.commit(&mut alloc, &mut writes);
        assert_eq!(writes.len(), LEVELS);
    }

    #[test]
    fn cow_never_reuses_committed_blocks() {
        let mut t = RadixTree::new();
        t.set(0, 100);
        let mut next = 10u64;
        let mut alloc = move || {
            next += 1;
            next
        };
        let mut w1 = Vec::new();
        let root1 = t.commit(&mut alloc, &mut w1);
        t.set(0, 200);
        let mut w2 = Vec::new();
        let root2 = t.commit(&mut alloc, &mut w2);
        assert_ne!(root1, root2);
        let b1: Vec<u64> = w1.iter().map(|(b, _)| *b).collect();
        let b2: Vec<u64> = w2.iter().map(|(b, _)| *b).collect();
        assert!(b1.iter().all(|b| !b2.contains(b)), "COW must not overwrite");
        // The superseded path is reported for recycling.
        let freed = t.take_freed();
        assert_eq!(freed.len(), LEVELS);
        assert!(freed.iter().all(|b| b1.contains(b)));
    }

    #[test]
    fn dirty_nodes_counts_paths() {
        let mut t = RadixTree::new();
        t.set(0, 100);
        assert_eq!(t.dirty_nodes(), LEVELS);
    }

    fn committed(pages: &[(u64, u64)], next: &mut u64) -> RadixTree {
        let mut t = RadixTree::new();
        for (p, b) in pages {
            t.set(*p, *b);
        }
        let mut writes = Vec::new();
        t.commit(
            &mut || {
                *next += 1;
                *next
            },
            &mut writes,
        );
        t
    }

    /// Commits `pages` into a block map and returns a *lazy* tree over it
    /// plus the map, for hydration tests.
    fn committed_on_disk(
        pages: &[(u64, u64)],
        next: &mut u64,
    ) -> (RadixTree, HashMap<u64, Box<[u8]>>) {
        let mut t = RadixTree::new();
        for (p, b) in pages {
            t.set(*p, *b);
        }
        let mut writes = Vec::new();
        let root = t.commit(
            &mut || {
                *next += 1;
                *next
            },
            &mut writes,
        );
        let blocks: HashMap<u64, Box<[u8]>> = writes.into_iter().collect();
        (RadixTree::from_committed(root, t.len_pages()), blocks)
    }

    #[test]
    fn reachable_blocks_covers_nodes_and_data() {
        let mut next = 1_000u64;
        let t = committed(&[(0, 100), (513, 101)], &mut next);
        let blocks = t.reachable_blocks();
        assert!(blocks.contains(&t.committed_root()));
        assert!(blocks.contains(&100) && blocks.contains(&101));
        // root + shared L1 node + two leaf nodes + 2 data blocks
        assert_eq!(blocks.len(), 4 + 2);
        assert!(RadixTree::new().reachable_blocks().is_empty());
        assert_eq!(RadixTree::new().committed_root(), 0);
    }

    #[test]
    fn diff_skips_shared_subtrees_and_finds_changes() {
        let mut next = 1_000u64;
        let base = committed(&[(0, 100), (513, 101), (300_000, 102)], &mut next);
        // Target: shares base's committed subtrees for untouched pages.
        let mut target = base.clone();
        target.set(513, 200); // overwrite
        target.set(7, 201); // new page in page 0's subtree
        let mut writes = Vec::new();
        target.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        assert_eq!(
            RadixTree::diff_pages(&base, &target),
            vec![(7, 201), (513, 200)]
        );
        assert_eq!(RadixTree::diff_pages(&target, &target), vec![]);
        // Diff against an empty base is the full image.
        assert_eq!(
            RadixTree::diff_pages(&RadixTree::new(), &base),
            base.pages()
        );
    }

    #[test]
    fn diff_treats_dirty_nodes_conservatively() {
        let mut next = 1_000u64;
        let base = committed(&[(0, 100)], &mut next);
        let mut target = base.clone();
        target.set(0, 100); // same mapping, but the path is now dirty
        assert_eq!(RadixTree::diff_pages(&base, &target), vec![]);
        target.set(1, 300);
        assert_eq!(RadixTree::diff_pages(&base, &target), vec![(1, 300)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_out_of_range_panics() {
        let mut t = RadixTree::new();
        t.set(MAX_PAGES, 1);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn block_zero_rejected() {
        let mut t = RadixTree::new();
        t.set(0, 0);
    }

    // ---- Arc sharing & lazy hydration ------------------------------------

    #[test]
    fn clone_shares_structure_until_mutated() {
        let mut next = 1_000u64;
        let mut a = committed(&[(0, 100), (513, 101)], &mut next);
        let b = a.clone();
        // Mutating `a` must not leak into `b`.
        a.set(0, 200);
        assert_eq!(a.get(0), Some(200));
        assert_eq!(b.get(0), Some(100));
        assert_eq!(b.dirty_nodes(), 0, "clone must stay clean");
        // Untouched subtree still shared: diff sees only the change.
        assert_eq!(b.get(513), Some(101));
    }

    #[test]
    fn abort_snapshot_of_dirty_tree_survives_commit() {
        // The store clones a *dirty* tree as its abort snapshot, commits
        // the original, and restores the clone on failure. The clone must
        // keep its dirty nodes (and freed list) across the commit.
        let mut next = 1_000u64;
        let mut t = committed(&[(0, 100)], &mut next);
        t.set(0, 200);
        let snapshot = t.clone();
        let mut writes = Vec::new();
        t.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        assert_eq!(t.dirty_nodes(), 0);
        assert_eq!(snapshot.dirty_nodes(), LEVELS, "snapshot must stay dirty");
        assert_eq!(snapshot.get(0), Some(200));
    }

    #[test]
    fn lazy_tree_hydrates_only_the_touched_path() {
        let mut next = 1_000u64;
        let (mut lazy, blocks) =
            committed_on_disk(&[(0, 100), (513, 101), (300_000, 102)], &mut next);
        assert_eq!(lazy.unloaded_nodes(), 1, "only the root slot pre-hydration");
        let mut reads = Vec::new();
        let got = lazy
            .get_or_load(0, &mut |b, out| {
                reads.push(b);
                out.copy_from_slice(&blocks[&b]);
                Ok(())
            })
            .unwrap();
        assert_eq!(got, Some(100));
        assert_eq!(reads.len(), LEVELS, "one read per level on the path");
        assert!(lazy.unloaded_nodes() > 0, "other subtrees stay unloaded");
        // A second read of the same page costs nothing.
        let got = lazy
            .get_or_load(0, &mut |_b, _out| panic!("path already resident"))
            .unwrap();
        assert_eq!(got, Some(100));
    }

    #[test]
    fn lazy_set_with_hydrates_then_dirties() {
        let mut next = 1_000u64;
        let (mut lazy, blocks) = committed_on_disk(&[(0, 100), (513, 101)], &mut next);
        let old = lazy
            .set_with(0, 999, &mut |b, out| {
                out.copy_from_slice(&blocks[&b]);
                Ok(())
            })
            .unwrap();
        assert_eq!(old, Some(100));
        assert_eq!(lazy.dirty_nodes(), LEVELS);
        assert_eq!(lazy.take_freed().len(), LEVELS, "superseded path recycled");
    }

    #[test]
    fn failed_hydration_leaves_tree_retryable() {
        let mut next = 1_000u64;
        let (mut lazy, blocks) = committed_on_disk(&[(0, 100)], &mut next);
        let err = lazy.get_or_load(0, &mut |b, _out| {
            Err(IoError::Failed {
                block: b,
                transient: true,
            })
        });
        assert!(err.is_err());
        assert_eq!(lazy.dirty_nodes(), 0, "failure must not dirty anything");
        // Retry with a working device succeeds from the same state.
        let got = lazy
            .get_or_load(0, &mut |b, out| {
                out.copy_from_slice(&blocks[&b]);
                Ok(())
            })
            .unwrap();
        assert_eq!(got, Some(100));
    }

    #[test]
    fn commit_preserves_unloaded_subtrees_without_reading() {
        let mut next = 1_000u64;
        let (mut lazy, blocks) = committed_on_disk(&[(0, 100), (513, 101)], &mut next);
        let old_root = lazy.committed_root();
        // Dirty one path; the sibling subtree stays unloaded.
        lazy.set_with(0, 999, &mut |b, out| {
            out.copy_from_slice(&blocks[&b]);
            Ok(())
        })
        .unwrap();
        let mut writes = Vec::new();
        let new_root = lazy.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        assert_ne!(new_root, old_root);
        assert_eq!(writes.len(), LEVELS, "only the dirtied path is rewritten");
        assert!(lazy.unloaded_nodes() > 0, "sibling subtree never hydrated");
        // The recommitted tree still resolves the untouched page.
        let got = lazy
            .get_or_load(513, &mut |b, out| {
                out.copy_from_slice(&blocks[&b]);
                Ok(())
            })
            .unwrap();
        assert_eq!(got, Some(101));
    }

    #[test]
    fn diff_pages_with_skips_shared_subtrees_without_hydration() {
        let mut next = 1_000u64;
        let mut t = RadixTree::new();
        for (p, b) in [(0u64, 100u64), (513, 101), (300_000, 102)] {
            t.set(p, b);
        }
        let mut blocks: HashMap<u64, Box<[u8]>> = HashMap::new();
        let mut writes = Vec::new();
        let root1 = t.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        blocks.extend(writes);
        // Advance the tree by one page and commit again.
        t.set(513, 200);
        let mut writes = Vec::new();
        let root2 = t.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        blocks.extend(writes);

        let mut base = RadixTree::from_committed(root1, t.len_pages());
        let mut target = RadixTree::from_committed(root2, t.len_pages());
        let mut reads = Vec::new();
        let diff = RadixTree::diff_pages_with(Some(&mut base), &mut target, &mut |b, out| {
            reads.push(b);
            out.copy_from_slice(&blocks[&b]);
            Ok(())
        })
        .unwrap();
        assert_eq!(diff, vec![(513, 200)]);
        // Both roots differ (hydrated on both sides) and the divergent L1
        // path differs; the page-0 and page-300000 subtrees are shared and
        // must not be read. 2 roots + 2 L1 + 2 leaf nodes = 6 reads max.
        assert!(
            reads.len() <= 2 * LEVELS,
            "shared subtrees must not hydrate (read {} blocks)",
            reads.len()
        );
        // Equal lazy trees diff with zero reads: the root refs match.
        let mut x = RadixTree::from_committed(root2, t.len_pages());
        let mut y = RadixTree::from_committed(root2, t.len_pages());
        let diff = RadixTree::diff_pages_with(Some(&mut x), &mut y, &mut |_b, _out| {
            panic!("identical trees must not hydrate")
        })
        .unwrap();
        assert!(diff.is_empty());
    }

    #[test]
    fn commit_round_trips_entry_digests() {
        let mut t = RadixTree::new();
        t.set_entry(0, 100, 0xAAAA);
        t.set_entry(513, 101, 0xBBBB);
        let mut next = 1_000u64;
        let mut writes = Vec::new();
        let root = t.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        let root_digest = t.committed_root_digest();
        assert_ne!(root_digest, DIGEST_NONE);
        let blocks: HashMap<u64, Box<[u8]>> = writes.into_iter().collect();
        let mut lazy = RadixTree::from_committed_digest(root, root_digest, t.len_pages());
        let mut read = |b: u64, out: &mut [u8; BLOCK_SIZE]| {
            out.copy_from_slice(&blocks[&b]);
            Ok(())
        };
        assert_eq!(
            lazy.get_entry_or_load(0, &mut read).unwrap(),
            Some((100, 0xAAAA))
        );
        assert_eq!(
            lazy.get_entry_or_load(513, &mut read).unwrap(),
            Some((101, 0xBBBB))
        );
        assert_eq!(lazy.committed_root_digest(), root_digest);
    }

    #[test]
    fn hydration_detects_a_rotted_node_image() {
        let mut t = RadixTree::new();
        t.set_entry(0, 100, 0x1234);
        let mut next = 1_000u64;
        let mut writes = Vec::new();
        let root = t.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        let mut blocks: HashMap<u64, Box<[u8]>> = writes.into_iter().collect();
        // Rot one bit in a non-root node (the root's child at level 1).
        let l1 = match &t.root {
            Child::Node(n) => match &n.children[0] {
                Child::Node(c) => c.disk_block.unwrap(),
                _ => unreachable!(),
            },
            _ => unreachable!(),
        };
        blocks.get_mut(&l1).unwrap()[3] ^= 0x40;

        let mut lazy =
            RadixTree::from_committed_digest(root, t.committed_root_digest(), t.len_pages());
        let err = lazy
            .get_or_load(0, &mut |b, out| {
                out.copy_from_slice(&blocks[&b]);
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err, TreeError::CorruptNode { block: l1 });
        // The slot stays unloaded: fixing the media makes the read succeed.
        blocks.get_mut(&l1).unwrap()[3] ^= 0x40;
        let got = lazy
            .get_or_load(0, &mut |b, out| {
                out.copy_from_slice(&blocks[&b]);
                Ok(())
            })
            .unwrap();
        assert_eq!(got, Some(100));
    }

    #[test]
    fn unverified_roots_hydrate_and_backfill_digests() {
        // A pre-digest store: entry words carry no high bits. Hydration
        // must accept them (digest DIGEST_NONE) and parse() must record
        // the actual image digest so later commits re-chain the tree.
        let mut t = RadixTree::new();
        t.set(0, 100); // DIGEST_NONE entry, as a v1 store would hold
        let mut next = 1_000u64;
        let mut writes = Vec::new();
        let root = t.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        let blocks: HashMap<u64, Box<[u8]>> = writes.into_iter().collect();
        let mut lazy = RadixTree::from_committed(root, t.len_pages()); // no root digest
        assert_eq!(
            lazy.get_entry_or_load(0, &mut |b, out| {
                out.copy_from_slice(&blocks[&b]);
                Ok(())
            })
            .unwrap(),
            Some((100, DIGEST_NONE))
        );
        // Hydration recorded the actual root-image digest.
        assert_ne!(lazy.committed_root_digest(), DIGEST_NONE);
    }

    #[test]
    fn backfill_digest_dirties_the_path_but_keeps_the_block() {
        let mut next = 1_000u64;
        let mut t = committed(&[(0, 100)], &mut next);
        assert_eq!(t.get_entry(0), Some((100, DIGEST_NONE)));
        assert!(t.backfill_digest(0, 0x77));
        assert_eq!(t.get_entry(0), Some((100, 0x77)));
        assert_eq!(t.dirty_nodes(), LEVELS, "path dirtied for persistence");
        let freed = t.take_freed();
        assert_eq!(freed.len(), LEVELS, "node images superseded");
        assert!(!freed.contains(&100), "the data block itself is kept");
        // Idempotent: same digest again is free.
        assert!(!t.backfill_digest(0, 0x77));
        assert!(!t.backfill_digest(5, 0x77), "absent page is a no-op");
    }

    #[test]
    fn entries_from_resumes_at_the_cursor_without_extra_hydration() {
        let mut next = 1_000u64;
        let (mut lazy, blocks) =
            committed_on_disk(&[(0, 100), (513, 101), (300_000, 102)], &mut next);
        let mut reads = Vec::new();
        let got = lazy
            .entries_from(1, 10, &mut |b, out| {
                reads.push(b);
                out.copy_from_slice(&blocks[&b]);
                Ok(())
            })
            .unwrap();
        assert_eq!(
            got.iter().map(|(p, b, _)| (*p, *b)).collect::<Vec<_>>(),
            vec![(513, 101), (300_000, 102)],
            "page 0 is behind the cursor"
        );
        // Limit cuts the enumeration short.
        let got = lazy
            .entries_from(0, 1, &mut |_b, _out| panic!("tree is resident now"))
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
    }

    #[test]
    fn dirty_committed_node_heals_a_path() {
        let mut next = 1_000u64;
        let mut t = committed(&[(0, 100), (513, 101)], &mut next);
        let nodes = t.committed_nodes();
        assert_eq!(nodes.len(), 4, "root + shared L1 node + two leaf nodes");
        // Pick a leaf-level node (last in parents-before-children order).
        let (victim, _) = *nodes.last().unwrap();
        assert!(t.dirty_committed_node(victim));
        assert!(t.dirty_nodes() >= 2, "victim and its ancestors are dirty");
        let freed = t.take_freed();
        assert!(
            !freed.contains(&victim),
            "the rotted block is not recycled (quarantine, not reuse)"
        );
        // Recommit rewrites the path; the tree still resolves both pages.
        let mut writes = Vec::new();
        t.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        assert!(!writes.is_empty());
        assert!(writes.iter().all(|(b, _)| *b != victim));
        assert_eq!(t.get(0), Some(100));
        assert_eq!(t.get(513), Some(101));
        assert!(!t.dirty_committed_node(9999), "unknown block is a no-op");
    }

    #[test]
    fn deep_clone_matches_clone_semantics() {
        let mut next = 1_000u64;
        let mut a = committed(&[(0, 100), (513, 101)], &mut next);
        let mut b = a.clone();
        let mut c = a.deep_clone();
        a.set(0, 1);
        b.set(0, 2);
        c.set(0, 3);
        assert_eq!(a.get(0), Some(1));
        assert_eq!(b.get(0), Some(2));
        assert_eq!(c.get(0), Some(3));
        assert_eq!(b.get(513), Some(101));
        assert_eq!(c.get(513), Some(101));
    }
}
