//! msnap-serve: a multi-tenant network service over the replicated
//! MemSnap store.
//!
//! This crate closes the loop between the storage stack and its
//! clients: a deterministic actor-style front-end ([`ServeNode`])
//! multiplexes thousands of simulated connections ([`SimSwitch`]
//! datagram ports) onto one sharded, replicated MemSnap instance, and
//! feeds **watch streams** straight from μCheckpoint snapshot diffs —
//! the paper's single-level-store thesis applied to cache
//! invalidation: because every commit *is* a named, diffable snapshot,
//! "what changed since the last epoch" is a structural O(changed)
//! query, so subscribers are pushed exact key-range invalidations
//! with no polling and no store scans.
//!
//! - [`wire`]: the length-prefixed, checksummed datagram protocol
//!   (`Hello`/`Put`/`Get`/`Scan`/`Subscribe`/`Unsubscribe`/
//!   `StatsReq` requests; cut-aligned `Notify` bundles back).
//! - [`server`]: the [`ServeNode`] actor round — control, write
//!   (group-committed μCheckpoints per tenant stripe), notify
//!   (snapshot-diff fan-out, released at epoch-vector cut
//!   boundaries), read (bounded-staleness replica routing) — plus
//!   crash/promotion re-homing.
//! - [`harness`]: a seeded fleet of oracle clients driving Zipfian
//!   tenant×key skew, with mid-run failover injection and
//!   exactly-once watch verification.
//!
//! [`SimSwitch`]: msnap_sim::SimSwitch

#![warn(missing_docs)]

pub mod harness;
pub mod server;
pub mod wire;

pub use harness::{FailoverReport, FleetConfig, RunConfig, RunReport};
pub use server::{ServeConfig, ServeError, ServeNode};
pub use wire::{ErrCode, NotifyEvent, Request, Response, WireError, WireStats};
