//! Public API types.

use std::error::Error;
use std::fmt;

use msnap_sim::Nanos;
use msnap_store::StoreError;
use msnap_vm::VmError;

/// A MemSnap region descriptor — the paper's opaque `md`. "Similar to
/// POSIX shared memory descriptors, these are opaque descriptors, not
/// files" (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Md(pub u32);

impl fmt::Display for Md {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "md{}", self.0)
    }
}

/// Selects which regions a persist/wait call applies to: one region, or
/// all of them (the paper's `md == -1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionSel {
    /// A single region.
    Region(Md),
    /// All regions ("persists all modifications across all regions").
    All,
}

/// Flags to [`MemSnap::msnap_persist`](crate::MemSnap::msnap_persist),
/// mirroring `MS_SYNC` / `MS_ASYNC` / `MS_GLOBAL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistFlags {
    /// Wait for the μCheckpoint to be durable before returning (`MS_SYNC`;
    /// the default). When `false` (`MS_ASYNC`), the call returns after
    /// initiating the IO and the caller uses `msnap_wait`.
    pub sync: bool,
    /// Persist modifications made by *all* threads, not just the caller
    /// (`MS_GLOBAL`) — the existing SLS whole-application semantics.
    pub global: bool,
}

impl PersistFlags {
    /// Synchronous persist of the calling thread's modifications.
    pub fn sync() -> Self {
        PersistFlags {
            sync: true,
            global: false,
        }
    }

    /// Asynchronous persist (`MS_ASYNC`): return after initiating the IO.
    pub fn async_() -> Self {
        PersistFlags {
            sync: false,
            global: false,
        }
    }

    /// Adds `MS_GLOBAL`: include every thread's dirty set.
    pub fn with_global(mut self) -> Self {
        self.global = true;
        self
    }
}

impl Default for PersistFlags {
    /// `msnap_persist` "is synchronous by default".
    fn default() -> Self {
        Self::sync()
    }
}

/// Handle to one participant's share of a pending group commit, returned
/// by [`MemSnap::msnap_persist_grouped`](crate::MemSnap::msnap_persist_grouped)
/// and redeemed — exactly once — with
/// [`MemSnap::msnap_group_poll`](crate::MemSnap::msnap_group_poll).
///
/// The ticket is opaque: it identifies the batch the caller joined and the
/// caller's slot within it. Polling a ticket twice reports
/// [`MsnapError::BadDescriptor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitTicket {
    pub(crate) batch: u64,
    pub(crate) participant: u32,
}

/// Result of `msnap_open`: the region descriptor plus its fixed address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionHandle {
    /// The region descriptor.
    pub md: Md,
    /// The region's fixed virtual address — identical on every open, so
    /// pointers into the region survive crashes (§3).
    pub addr: u64,
    /// Region length in pages.
    pub pages: u64,
}

/// Result of
/// [`MemSnap::msnap_open_index`](crate::MemSnap::msnap_open_index): one
/// region carved into the fixed layout concurrent persistent indexes use.
///
/// ```text
/// page 0                  carve header (validated magic/geometry) +
///                         structure meta area (bytes 64..)
/// pages 1 ..= writers     per-writer detectable-descriptor log pages
/// pages 1+writers ..      slot arena (nodes, buckets)
/// ```
///
/// The carve is an ordinary region: μCheckpoints of descriptor logs and
/// arena pages ride the normal per-thread commit and group-commit lanes,
/// and the geometry is re-derived from the durable header on reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexCarve {
    /// The backing region.
    pub region: RegionHandle,
    /// Writer slots carved out (one descriptor-log page each).
    pub writers: u32,
    /// Arena length in pages.
    pub arena_pages: u64,
    /// Caller-defined structure tag (skiplist, hash, …), checked on
    /// reopen.
    pub kind: u32,
}

impl IndexCarve {
    /// Byte offset of the structure-owned meta area within the header
    /// page (the carve header occupies bytes `0..META_OFF`).
    pub const META_OFF: u64 = 64;

    /// Address of the structure meta area (header page, bytes 64..).
    pub fn meta_addr(&self) -> u64 {
        self.region.addr + Self::META_OFF
    }

    /// Address of one writer's private descriptor-log page.
    ///
    /// # Panics
    ///
    /// Panics if `writer >= self.writers`.
    pub fn log_addr(&self, writer: u32) -> u64 {
        assert!(writer < self.writers, "writer {writer} of {}", self.writers);
        self.region.addr + (1 + writer as u64) * msnap_vm::PAGE_SIZE as u64
    }

    /// Base address of the slot arena.
    pub fn arena_addr(&self) -> u64 {
        self.region.addr + (1 + self.writers as u64) * msnap_vm::PAGE_SIZE as u64
    }
}

/// Result of [`MemSnap::msnap_open_at`](crate::MemSnap::msnap_open_at): a
/// read-only mapping of one retained snapshot's image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotView {
    /// Fresh fixed virtual address of the mapping (distinct from the live
    /// region's address, so both images can be compared side by side).
    pub addr: u64,
    /// Mapping length in pages (the live region's length).
    pub pages: u64,
    /// The retained epoch the view shows.
    pub epoch: crate::Epoch,
}

/// Cost breakdown of one `msnap_persist` call — the rows of the paper's
/// Table 5.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PersistBreakdown {
    /// "Resetting Tracking": trace-buffer PTE resets + TLB shootdown.
    pub resetting_tracking: Nanos,
    /// "Initiating Writes": building and submitting the scatter/gather IO.
    pub initiating_writes: Nanos,
    /// "Waiting on IO": for synchronous calls, the time blocked on the
    /// device; zero for `MS_ASYNC`.
    pub waiting_on_io: Nanos,
    /// Pages included in the μCheckpoint.
    pub pages: u64,
}

impl PersistBreakdown {
    /// Total call latency.
    pub fn total(&self) -> Nanos {
        self.resetting_tracking + self.initiating_writes + self.waiting_on_io
    }
}

/// Errors returned by the MemSnap API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MsnapError {
    /// Unknown region descriptor or name.
    BadDescriptor,
    /// `msnap_open` of an existing region with a different length.
    LengthMismatch,
    /// Error from the object store.
    Store(StoreError),
    /// Error from the VM subsystem.
    Vm(VmError),
}

impl fmt::Display for MsnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsnapError::BadDescriptor => f.write_str("unknown region descriptor"),
            MsnapError::LengthMismatch => f.write_str("region exists with a different length"),
            MsnapError::Store(e) => write!(f, "object store: {e}"),
            MsnapError::Vm(e) => write!(f, "vm: {e}"),
        }
    }
}

impl Error for MsnapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MsnapError::Store(e) => Some(e),
            MsnapError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for MsnapError {
    fn from(e: StoreError) -> Self {
        MsnapError::Store(e)
    }
}

impl From<VmError> for MsnapError {
    fn from(e: VmError) -> Self {
        MsnapError::Vm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_flags_are_sync_non_global() {
        let f = PersistFlags::default();
        assert!(f.sync);
        assert!(!f.global);
    }

    #[test]
    fn flag_builders() {
        let f = PersistFlags::async_().with_global();
        assert!(!f.sync);
        assert!(f.global);
    }

    #[test]
    fn breakdown_total_sums_rows() {
        let b = PersistBreakdown {
            resetting_tracking: Nanos::from_us(5),
            initiating_writes: Nanos::from_us(6),
            waiting_on_io: Nanos::from_us(40),
            pages: 16,
        };
        assert_eq!(b.total(), Nanos::from_us(51));
    }

    #[test]
    fn errors_display_and_convert() {
        let e: MsnapError = StoreError::NotFound.into();
        assert!(e.to_string().contains("object store"));
        let e: MsnapError = VmError::Overlap.into();
        assert!(e.to_string().contains("vm"));
    }
}
