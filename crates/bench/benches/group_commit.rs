//! Group-commit ablation: cross-thread commit coalescing and the
//! MS_ASYNC writeback pipeline.
//!
//! Sweeps thread count × coalescing window for the LiteDB and SkipDB
//! multi-thread drivers, printing per-μCheckpoint latency and device
//! submissions next to the uncoalesced baseline, and emits the machine
//! readable `BENCH_persist.json` trajectory point at the workspace root
//! (p50/p99 latency, IOs per commit, queue depth per configuration).

use msnap_bench::{header, table, us};
use msnap_litedb::drivers::{run_group_commit, GroupCommitConfig};
use msnap_sim::Nanos;
use msnap_skipdb::drivers::{run_kv_group_commit, KvGroupConfig};

const THREADS: [u32; 4] = [1, 2, 4, 8];
const WINDOWS_US: [u64; 3] = [2, 8, 32];
const TXNS_PER_THREAD: u64 = 32;
const KEYS_PER_TXN: u64 = 4;

/// One measured configuration, normalized across the two drivers.
struct Point {
    db: &'static str,
    threads: u32,
    window_us: u64,
    coalesced: bool,
    txns: u64,
    p50: Nanos,
    p99: Nanos,
    mean: Nanos,
    disk_writes: u64,
    merged_submissions: u64,
    merged_parts: u64,
    avg_queue_depth: f64,
    wall: Nanos,
}

impl Point {
    fn ios_per_commit(&self) -> f64 {
        self.disk_writes as f64 / self.txns as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"db\":\"{}\",\"threads\":{},\"window_us\":{},\"coalesced\":{},\
             \"txns\":{},\"p50_us\":{:.3},\"p99_us\":{:.3},\"mean_us\":{:.3},\
             \"disk_writes\":{},\"ios_per_commit\":{:.3},\
             \"merged_submissions\":{},\"merged_parts\":{},\
             \"avg_queue_depth\":{:.3},\"wall_us\":{:.1}}}",
            self.db,
            self.threads,
            self.window_us,
            self.coalesced,
            self.txns,
            self.p50.as_us_f64(),
            self.p99.as_us_f64(),
            self.mean.as_us_f64(),
            self.disk_writes,
            self.ios_per_commit(),
            self.merged_submissions,
            self.merged_parts,
            self.avg_queue_depth,
            self.wall.as_us_f64(),
        )
    }

    fn row(&self) -> Vec<String> {
        vec![
            if self.coalesced {
                format!("{} us window", self.window_us)
            } else {
                "uncoalesced".into()
            },
            format!("{}", self.threads),
            us(self.p50.as_us_f64()),
            us(self.p99.as_us_f64()),
            format!("{:.2}", self.ios_per_commit()),
            format!("{}/{}", self.merged_parts, self.merged_submissions),
            format!("{:.2}", self.avg_queue_depth),
        ]
    }
}

fn litedb_point(threads: u32, window_us: u64, coalesced: bool) -> Point {
    let report = run_group_commit(&GroupCommitConfig {
        threads,
        txns_per_thread: TXNS_PER_THREAD,
        keys_per_txn: KEYS_PER_TXN,
        window: Nanos::from_us(window_us),
        coalesced,
    });
    Point {
        db: "litedb",
        threads,
        window_us,
        coalesced,
        txns: report.txns,
        p50: report.commit_latency.percentile(50.0),
        p99: report.commit_latency.percentile(99.0),
        mean: report.commit_latency.mean(),
        disk_writes: report.disk_writes,
        merged_submissions: report.merged_submissions,
        merged_parts: report.merged_parts,
        avg_queue_depth: report.avg_queue_depth,
        wall: report.wall,
    }
}

fn skipdb_point(threads: u32, window_us: u64, coalesced: bool) -> Point {
    let report = run_kv_group_commit(&KvGroupConfig {
        threads,
        txns_per_thread: TXNS_PER_THREAD,
        keys_per_txn: KEYS_PER_TXN,
        window: Nanos::from_us(window_us),
        coalesced,
    });
    Point {
        db: "skipdb",
        threads,
        window_us,
        coalesced,
        txns: report.txns,
        p50: report.commit_latency.percentile(50.0),
        p99: report.commit_latency.percentile(99.0),
        mean: report.commit_latency.mean(),
        disk_writes: report.disk_writes,
        merged_submissions: report.merged_submissions,
        merged_parts: report.merged_parts,
        avg_queue_depth: report.avg_queue_depth,
        wall: report.wall,
    }
}

const COLUMNS: [&str; 7] = [
    "commit path",
    "threads",
    "p50 us",
    "p99 us",
    "IOs/commit",
    "merged txns/subs",
    "queue depth",
];

fn sweep(db: &'static str, run: fn(u32, u64, bool) -> Point) -> Vec<Point> {
    header(
        &format!("Group commit ablation: {db}"),
        &format!(
            "{TXNS_PER_THREAD} txns/thread x {KEYS_PER_TXN} keys/txn; \
             coalescing windows {WINDOWS_US:?} us vs the per-thread sync path."
        ),
    );
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for threads in THREADS {
        let solo = run(threads, 0, false);
        rows.push(solo.row());
        points.push(solo);
        for window_us in WINDOWS_US {
            let grouped = run(threads, window_us, true);
            rows.push(grouped.row());
            points.push(grouped);
        }
    }
    table(&COLUMNS, &rows);

    // The headline claim at 8 threads, widest window.
    let solo = points
        .iter()
        .find(|p| p.threads == 8 && !p.coalesced)
        .unwrap();
    let best = points
        .iter()
        .filter(|p| p.threads == 8 && p.coalesced)
        .min_by(|a, b| a.disk_writes.cmp(&b.disk_writes))
        .unwrap();
    println!();
    println!(
        "8 threads: {:.2}x fewer device submissions ({} -> {}), \
         mean commit latency {} -> {} us",
        solo.disk_writes as f64 / best.disk_writes as f64,
        solo.disk_writes,
        best.disk_writes,
        us(solo.mean.as_us_f64()),
        us(best.mean.as_us_f64()),
    );
    points
}

fn main() {
    let mut points = sweep("litedb", litedb_point);
    points.extend(sweep("skipdb", skipdb_point));

    // Machine-readable trajectory point at the workspace root; each entry
    // is one (db, threads, window, coalesced) configuration.
    let json = format!(
        "{{\n  \"bench\": \"group_commit\",\n  \"txns_per_thread\": {TXNS_PER_THREAD},\n  \
         \"keys_per_txn\": {KEYS_PER_TXN},\n  \"points\": [\n    {}\n  ]\n}}\n",
        points
            .iter()
            .map(Point::json)
            .collect::<Vec<_>>()
            .join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
    std::fs::write(path, &json).expect("workspace root is writable");
    println!();
    println!("wrote {} bench points to BENCH_persist.json", points.len());
}
