//! Buffer cache + fsync cost models.

use std::collections::{BTreeSet, HashMap};

use msnap_disk::{Disk, BLOCK_SIZE};
use msnap_sim::{Category, Meters, Nanos, Vt};

/// Which file system's fsync cost model applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// FreeBSD FFS: soft updates + journaling, in-place data writes.
    Ffs,
    /// ZFS: copy-on-write; cheaper random flush per block at scale, but
    /// higher streaming cost (COW tree updates).
    Zfs,
}

/// A file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u32);

/// Cost-model constants, fitted to the paper's Table 6 fsync columns.
mod costs {
    use msnap_sim::Nanos;

    // write()/read() path.
    pub const SYSCALL: Nanos = Nanos::from_ns(900);
    pub const VFS_WRITE: Nanos = Nanos::from_ns(1_200);
    pub const VFS_READ: Nanos = Nanos::from_ns(600);
    pub const RANGELOCK: Nanos = Nanos::from_ns(800);
    pub const LOCKING: Nanos = Nanos::from_ns(600);
    pub const BUFCACHE_PER_BLOCK: Nanos = Nanos::from_ns(2_500);
    pub const BUFCACHE_READ: Nanos = Nanos::from_ns(1_000);
    pub const MEMCPY_PER_KIB: Nanos = Nanos::from_ns(50);

    // fsync models: total = BASE + Σ run costs.
    pub const FFS_BASE: Nanos = Nanos::from_us(52);
    pub const FFS_SEQ_PER_BLOCK: Nanos = Nanos::from_ns(1_000);
    pub const FFS_RAND_BLOCK_HI: Nanos = Nanos::from_us(115);
    pub const FFS_RAND_BLOCK_LO: Nanos = Nanos::from_us(30);

    pub const ZFS_BASE: Nanos = Nanos::from_us(46);
    pub const ZFS_SEQ_PER_BLOCK: Nanos = Nanos::from_ns(600);
    pub const ZFS_SEQ_EXTRA_PER_KIB: Nanos = Nanos::from_ns(480);
    pub const ZFS_RAND_BLOCK_HI: Nanos = Nanos::from_us(180);
    pub const ZFS_RAND_BLOCK_LO: Nanos = Nanos::from_us(22);

    /// Blocks priced at the HI random rate before batching kicks in.
    pub const RAND_BATCH_KNEE: usize = 64;

    pub fn memcpy(len: usize) -> Nanos {
        Nanos::from_ns((len as u64 * MEMCPY_PER_KIB.as_ns()) / 1024)
    }
}

#[derive(Debug, Default)]
struct File {
    name: String,
    data: Vec<u8>,
    dirty: BTreeSet<u64>,
    /// Disk block backing each file block (allocated at first flush).
    blocks: HashMap<u64, u64>,
    /// One past the highest file block ever flushed: runs at or above
    /// this edge are appends (sequential); runs below are in-place
    /// (random).
    flushed_edge: u64,
    /// fsyncs of one file serialize on its vnode lock.
    fsync_busy_until: Nanos,
}

/// A simulated file system: an in-memory buffer cache over real disk
/// blocks, with calibrated `fsync` latency. See the crate docs.
#[derive(Debug)]
pub struct FileSystem {
    kind: FsKind,
    files: Vec<File>,
    by_name: HashMap<String, Fd>,
    next_disk_block: u64,
    meters: Meters,
}

impl FileSystem {
    /// Creates an empty file system of the given kind. Disk blocks are
    /// allocated from 2^30 upward so baselines and a MemSnap store can
    /// coexist on one device in mixed experiments.
    pub fn new(kind: FsKind) -> Self {
        FileSystem {
            kind,
            files: Vec::new(),
            by_name: HashMap::new(),
            next_disk_block: 1 << 30,
            meters: Meters::new(),
        }
    }

    /// The file system kind.
    pub fn kind(&self) -> FsKind {
        self.kind
    }

    /// Per-syscall latency meters (`"write"`, `"read"`, `"fsync"`).
    pub fn meters(&self) -> &Meters {
        &self.meters
    }

    /// Resets the syscall meters (workload warm-up).
    pub fn reset_meters(&mut self) {
        self.meters = Meters::new();
    }

    /// Creates (or truncates) a file and returns its descriptor.
    pub fn create(&mut self, _vt: &mut Vt, name: &str) -> Fd {
        if let Some(&fd) = self.by_name.get(name) {
            self.files[fd.0 as usize].data.clear();
            self.files[fd.0 as usize].dirty.clear();
            return fd;
        }
        let fd = Fd(self.files.len() as u32);
        self.files.push(File {
            name: name.to_string(),
            ..File::default()
        });
        self.by_name.insert(name.to_string(), fd);
        fd
    }

    /// Opens an existing file.
    pub fn open(&self, name: &str) -> Option<Fd> {
        self.by_name.get(name).copied()
    }

    /// Current file size in bytes.
    pub fn size(&self, fd: Fd) -> u64 {
        self.files[fd.0 as usize].data.len() as u64
    }

    /// Buffered write at `offset`; data is volatile until `fsync`.
    pub fn write(&mut self, vt: &mut Vt, _disk: &mut Disk, fd: Fd, offset: u64, data: &[u8]) {
        let start = vt.now();
        let file = &mut self.files[fd.0 as usize];
        let end = offset as usize + data.len();
        if file.data.len() < end {
            file.data.resize(end, 0);
        }
        file.data[offset as usize..end].copy_from_slice(data);

        let first_block = offset / BLOCK_SIZE as u64;
        let last_block = (end as u64 - 1) / BLOCK_SIZE as u64;
        let blocks = last_block - first_block + 1;
        for b in first_block..=last_block {
            file.dirty.insert(b);
        }

        vt.charge(Category::Syscall, costs::SYSCALL);
        vt.charge(Category::Vfs, costs::VFS_WRITE);
        vt.charge(Category::Rangelock, costs::RANGELOCK);
        vt.charge(Category::Locking, costs::LOCKING);
        vt.charge(Category::BufferCache, costs::BUFCACHE_PER_BLOCK * blocks);
        vt.charge(Category::BufferCache, costs::memcpy(data.len()));
        self.meters.record("write", vt.now() - start);
    }

    /// Buffered read at `offset`. Reads beyond EOF return zeroes (sparse
    /// semantics, matching the simulated mmap path).
    pub fn read(&mut self, vt: &mut Vt, _disk: &mut Disk, fd: Fd, offset: u64, out: &mut [u8]) {
        let start = vt.now();
        let file = &self.files[fd.0 as usize];
        let off = offset as usize;
        let have = file.data.len().saturating_sub(off).min(out.len());
        if have > 0 {
            out[..have].copy_from_slice(&file.data[off..off + have]);
        }
        out[have..].fill(0);

        vt.charge(Category::Syscall, costs::SYSCALL);
        vt.charge(Category::Vfs, costs::VFS_READ);
        vt.charge(Category::BufferCache, costs::BUFCACHE_READ);
        vt.charge(Category::BufferCache, costs::memcpy(out.len()));
        self.meters.record("read", vt.now() - start);
    }

    /// Truncates the file to `len` bytes (used by WAL resets).
    pub fn truncate(&mut self, _vt: &mut Vt, fd: Fd, len: u64) {
        let file = &mut self.files[fd.0 as usize];
        file.data.truncate(len as usize);
        file.dirty.retain(|&b| b * (BLOCK_SIZE as u64) < len);
        file.flushed_edge = file.flushed_edge.min(len.div_ceil(BLOCK_SIZE as u64));
    }

    /// Flushes the file's dirty blocks durably; blocks the caller for the
    /// modeled fsync latency (Table 6 columns) and performs the real disk
    /// writes. Returns the completion instant.
    pub fn fsync(&mut self, vt: &mut Vt, disk: &mut Disk, fd: Fd) -> Nanos {
        let start = vt.now();
        vt.charge(Category::Syscall, costs::SYSCALL);
        vt.charge(Category::Vfs, costs::VFS_WRITE);

        let file = &mut self.files[fd.0 as usize];
        let dirty: Vec<u64> = std::mem::take(&mut file.dirty).into_iter().collect();
        if dirty.is_empty() {
            self.meters.record("fsync", vt.now() - start);
            return vt.now();
        }

        // Split the dirty set into contiguous runs and classify each as
        // appending (sequential) or in-place (random).
        let mut runs: Vec<(u64, u64)> = Vec::new(); // (first, count)
        for &b in &dirty {
            match runs.last_mut() {
                Some((first, count)) if *first + *count == b => *count += 1,
                _ => runs.push((b, 1)),
            }
        }

        let (base, seq_pb, seq_extra_per_kib, rand_hi, rand_lo) = match self.kind {
            FsKind::Ffs => (
                costs::FFS_BASE,
                costs::FFS_SEQ_PER_BLOCK,
                Nanos::ZERO,
                costs::FFS_RAND_BLOCK_HI,
                costs::FFS_RAND_BLOCK_LO,
            ),
            FsKind::Zfs => (
                costs::ZFS_BASE,
                costs::ZFS_SEQ_PER_BLOCK,
                costs::ZFS_SEQ_EXTRA_PER_KIB,
                costs::ZFS_RAND_BLOCK_HI,
                costs::ZFS_RAND_BLOCK_LO,
            ),
        };

        let mut model = base;
        let mut rand_blocks_so_far = 0usize;
        let mut seq_bytes = 0u64;
        for &(first, count) in &runs {
            // Appending runs (including ones that start by rewriting the
            // partially-filled tail block) extend the flushed edge.
            if first + count >= file.flushed_edge {
                // Appending run: journal-friendly streaming write.
                model += seq_pb * count;
                seq_bytes += count * BLOCK_SIZE as u64;
            } else {
                // In-place run: per-block metadata + data updates, with a
                // batching discount past the knee.
                for _ in 0..count {
                    model += if rand_blocks_so_far < costs::RAND_BATCH_KNEE {
                        rand_hi
                    } else {
                        rand_lo
                    };
                    rand_blocks_so_far += 1;
                }
            }
        }
        if seq_bytes > 0 {
            // Clustered sequential writes pipeline across the striped
            // pair: setup once, then stream at aggregate bandwidth.
            let cfg = disk.config();
            let stream = cfg.setup
                + Nanos::from_ns(
                    (seq_bytes as f64 * cfg.ns_per_byte / cfg.channels as f64).round() as u64,
                );
            model += stream;
            model += Nanos::from_ns(seq_extra_per_kib.as_ns() * (seq_bytes / 1024));
        }

        // Perform the real writes (durability + device statistics).
        let mut images: Vec<(u64, Vec<u8>)> = Vec::with_capacity(dirty.len());
        for &b in &dirty {
            let disk_block = *file.blocks.entry(b).or_insert_with(|| {
                let db = self.next_disk_block;
                self.next_disk_block += 1;
                db
            });
            let off = (b as usize) * BLOCK_SIZE;
            let mut image = vec![0u8; BLOCK_SIZE];
            let have = file.data.len().saturating_sub(off).min(BLOCK_SIZE);
            image[..have].copy_from_slice(&file.data[off..off + have]);
            images.push((disk_block, image));
        }
        let iov: Vec<(u64, &[u8])> = images.iter().map(|(b, d)| (*b, &d[..])).collect();
        // The IO is issued when fsync enters the kernel; the modeled
        // journaling/metadata latency overlaps it.
        let token = disk
            .writev_at(start, &iov)
            .expect("the fs baseline does not run under fault injection");
        file.flushed_edge = file
            .flushed_edge
            .max(dirty.iter().max().map_or(0, |&b| b + 1));

        // The call blocks for the modeled latency (never less than the
        // device itself took), and fsyncs of one file serialize on its
        // vnode lock.
        let begin = vt.now().max(file.fsync_busy_until);
        let completes = (begin + model).max(token.completes());
        file.fsync_busy_until = completes;
        let wait = completes - vt.now();
        vt.charge(Category::IoWait, wait);
        self.meters.record("fsync", vt.now() - start);
        completes
    }

    /// Simulates losing the buffer cache in a crash: every file's volatile
    /// contents are replaced by what had been flushed to the (already
    /// crash-rolled-back) device.
    pub fn discard_cache(&mut self, disk: &Disk) {
        for file in &mut self.files {
            let mut durable = vec![0u8; file.data.len()];
            for (&file_block, &disk_block) in &file.blocks {
                if let Some(bytes) = disk.peek(disk_block) {
                    let off = (file_block as usize) * BLOCK_SIZE;
                    if off < durable.len() {
                        let n = (durable.len() - off).min(BLOCK_SIZE);
                        durable[off..off + n].copy_from_slice(&bytes[..n]);
                    }
                }
            }
            file.data = durable;
            file.dirty.clear();
        }
    }

    /// The file's name (diagnostics).
    pub fn name(&self, fd: Fd) -> &str {
        &self.files[fd.0 as usize].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    fn setup(kind: FsKind) -> (FileSystem, Disk, Vt) {
        (
            FileSystem::new(kind),
            Disk::new(DiskConfig::paper()),
            Vt::new(0),
        )
    }

    #[test]
    fn write_read_round_trip() {
        let (mut fs, mut disk, mut vt) = setup(FsKind::Ffs);
        let fd = fs.create(&mut vt, "f");
        fs.write(&mut vt, &mut disk, fd, 10, b"hello");
        let mut out = [0u8; 5];
        fs.read(&mut vt, &mut disk, fd, 10, &mut out);
        assert_eq!(&out, b"hello");
        assert_eq!(fs.size(fd), 15);
    }

    #[test]
    fn read_past_eof_zero_fills() {
        let (mut fs, mut disk, mut vt) = setup(FsKind::Ffs);
        let fd = fs.create(&mut vt, "f");
        let mut out = [9u8; 8];
        fs.read(&mut vt, &mut disk, fd, 100, &mut out);
        assert_eq!(out, [0; 8]);
    }

    /// Sequential (appending) fsync latency must match the paper's
    /// Table 6 within 30%.
    #[test]
    fn fsync_sequential_matches_table6() {
        for (kind, expect) in [
            (FsKind::Ffs, [(4usize, 70.0f64), (64, 134.0), (1024, 581.0)]),
            (FsKind::Zfs, [(4, 64.0), (64, 137.0), (1024, 937.0)]),
        ] {
            for (kib, paper_us) in expect {
                let (mut fs, mut disk, mut vt) = setup(kind);
                let fd = fs.create(&mut vt, "f");
                fs.write(&mut vt, &mut disk, fd, 0, &vec![7u8; kib * 1024]);
                let t0 = vt.now();
                fs.fsync(&mut vt, &mut disk, fd);
                let us = (vt.now() - t0).as_us_f64();
                let err = (us - paper_us).abs() / paper_us;
                assert!(
                    err < 0.30,
                    "{kind:?} seq {kib} KiB: model {us:.0} us vs paper {paper_us} us"
                );
            }
        }
    }

    /// Random (in-place) fsync latency must match Table 6 within 40%.
    #[test]
    fn fsync_random_matches_table6() {
        for (kind, expect) in [
            (
                FsKind::Ffs,
                [(4usize, 156.0f64), (64, 1900.0), (4096, 33_700.0)],
            ),
            (FsKind::Zfs, [(4, 232.0), (64, 2900.0), (4096, 30_900.0)]),
        ] {
            for (kib, paper_us) in expect {
                let (mut fs, mut disk, mut vt) = setup(kind);
                let fd = fs.create(&mut vt, "f");
                // Pre-extend and flush so subsequent writes are in-place.
                fs.write(&mut vt, &mut disk, fd, 0, &vec![0u8; 8 << 20]);
                fs.fsync(&mut vt, &mut disk, fd);
                // Dirty `kib` KiB of scattered blocks.
                let blocks = kib * 1024 / BLOCK_SIZE;
                let file_blocks = (8 << 20) / BLOCK_SIZE;
                for i in 0..blocks {
                    let block = (i * 97 + 13) % file_blocks;
                    fs.write(
                        &mut vt,
                        &mut disk,
                        fd,
                        (block * BLOCK_SIZE) as u64,
                        &[1u8; 16],
                    );
                }
                let t0 = vt.now();
                fs.fsync(&mut vt, &mut disk, fd);
                let us = (vt.now() - t0).as_us_f64();
                let err = (us - paper_us).abs() / paper_us;
                assert!(
                    err < 0.40,
                    "{kind:?} rand {kib} KiB: model {us:.0} us vs paper {paper_us} us"
                );
            }
        }
    }

    #[test]
    fn fsync_is_durable_across_cache_loss() {
        let (mut fs, mut disk, mut vt) = setup(FsKind::Ffs);
        let fd = fs.create(&mut vt, "f");
        fs.write(&mut vt, &mut disk, fd, 0, b"flushed!");
        fs.fsync(&mut vt, &mut disk, fd);
        fs.write(&mut vt, &mut disk, fd, 0, b"volatile");
        // Crash: device keeps completed writes; cache is lost.
        disk.crash(vt.now());
        fs.discard_cache(&disk);
        let mut out = [0u8; 8];
        fs.read(&mut vt, &mut disk, fd, 0, &mut out);
        assert_eq!(&out, b"flushed!");
    }

    #[test]
    fn unflushed_writes_lost_on_crash() {
        let (mut fs, mut disk, mut vt) = setup(FsKind::Ffs);
        let fd = fs.create(&mut vt, "f");
        fs.write(&mut vt, &mut disk, fd, 0, b"volatile");
        disk.crash(vt.now());
        fs.discard_cache(&disk);
        let mut out = [0u8; 8];
        fs.read(&mut vt, &mut disk, fd, 0, &mut out);
        assert_eq!(out, [0u8; 8]);
    }

    #[test]
    fn empty_fsync_is_cheap() {
        let (mut fs, mut disk, mut vt) = setup(FsKind::Ffs);
        let fd = fs.create(&mut vt, "f");
        let t0 = vt.now();
        fs.fsync(&mut vt, &mut disk, fd);
        assert!((vt.now() - t0) < Nanos::from_us(5));
    }

    #[test]
    fn write_latency_matches_paper_buffer_cache() {
        // Table 7: buffered write ~6.7 us, read ~2.9 us.
        let (mut fs, mut disk, mut vt) = setup(FsKind::Ffs);
        let fd = fs.create(&mut vt, "f");
        fs.write(&mut vt, &mut disk, fd, 0, &[1u8; 1024]);
        let w = fs.meters().get("write").unwrap().mean().as_us_f64();
        assert!((w - 6.7).abs() < 2.0, "write {w:.1} us vs 6.7 us");
        let mut out = [0u8; 1024];
        fs.read(&mut vt, &mut disk, fd, 0, &mut out);
        let r = fs.meters().get("read").unwrap().mean().as_us_f64();
        assert!((r - 2.9).abs() < 1.5, "read {r:.1} us vs 2.9 us");
    }

    #[test]
    fn truncate_shrinks_and_clears_dirty() {
        let (mut fs, mut disk, mut vt) = setup(FsKind::Ffs);
        let fd = fs.create(&mut vt, "f");
        fs.write(&mut vt, &mut disk, fd, 0, &vec![1u8; 3 * BLOCK_SIZE]);
        fs.truncate(&mut vt, fd, 100);
        assert_eq!(fs.size(fd), 100);
        let t0 = vt.now();
        fs.fsync(&mut vt, &mut disk, fd);
        // Only one block remains dirty.
        assert!((vt.now() - t0) < Nanos::from_us(200));
    }
}
