//! End-to-end proofs for the lock-free persistent indexes (`msnap-pindex`).
//!
//! Three angles:
//!
//! - **Exhaustive crash sweeps** ([`crash_at_every_io`]): concurrent
//!   writers run a deterministic workload with *independent* per-writer
//!   μCheckpoints (the schedule that makes cross-writer tears possible),
//!   and the device is crashed just before and exactly at every write
//!   completion. After every crash, recovery must show **zero lost acked
//!   operations and zero duplicated keys** — the detectable-descriptor
//!   guarantee.
//! - **Same-key races across a crash**: concurrent writers fight over one
//!   key; whatever the crash point, the recovered value must be one of
//!   the racers' values and its op id must be accounted for.
//! - **Seeded-interleaving linearizability** (proptest): every schedule
//!   [`InterleaveSched`] generates must leave a final state explainable
//!   as *some* sequential permutation of the operations that respects
//!   real-time order — and the same seed must reproduce the same
//!   schedule, state, and proof.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use memsnap::{MemSnap, PersistFlags, RegionSel};
use msnap_disk::{crash_at_every_io, Disk, DiskConfig};
use msnap_pindex::{op_parts, OpOutcome, PHash, PSkipList, PutOp};
use msnap_sim::{InterleaveSched, Nanos, StepOutcome, Vt};
use msnap_skipdb::{Kv, PIndexKv};

const WRITERS: u32 = 4;
const OPS_PER_WRITER: u32 = 5;

/// One acknowledged operation of the sweep workload.
#[derive(Debug, Clone)]
struct Acked {
    writer: u32,
    seq: u32,
    key: u64,
    value: Vec<u8>,
    /// Completion instant of the last write of the op's sync persist —
    /// the moment durability was promised.
    durable_at: Nanos,
}

/// `(writer, seq, key, value, acked-at)` tuples of a reference run.
type AckLog = Vec<(u32, u32, u64, Vec<u8>, Nanos)>;

/// Runs the deterministic concurrent workload: each writer inserts
/// unique keys, interleaved by smallest-virtual-clock, and syncs its own
/// μCheckpoint after every op (independent per-writer commits — the
/// pattern that makes one writer's commit capture another's in-progress
/// linearizing CAS).
fn run_sweep_workload() -> (MemSnap, AckLog) {
    let mut boot = Vt::new(99);
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let space = ms.vm_mut().create_space();
    let mut sk = PSkipList::create(&mut ms, space, &mut boot, "sweep", 128, WRITERS).unwrap();
    let mut vts: Vec<Vt> = (0..WRITERS).map(Vt::new).collect();
    let mut done = vec![0u32; WRITERS as usize];
    let mut acks: AckLog = Vec::new();
    while done.iter().any(|&d| d < OPS_PER_WRITER) {
        let w = (0..WRITERS as usize)
            .filter(|&w| done[w] < OPS_PER_WRITER)
            .min_by_key(|&w| (vts[w].now(), w))
            .unwrap();
        let seq_no = done[w] + 1;
        let key = (w as u64 + 1) * 1000 + u64::from(seq_no);
        let value = key.to_le_bytes().to_vec();
        let mut op = sk.begin_put(w as u32, key, &value);
        let vt = &mut vts[w];
        while op.step(&mut sk, &mut ms, vt) == OpOutcome::Progress {}
        let thread = vt.id();
        ms.msnap_persist(
            vt,
            thread,
            RegionSel::Region(sk.carve.region.md),
            PersistFlags::sync(),
        )
        .unwrap();
        let (writer, seq) = op_parts(op.op_id());
        acks.push((writer, seq, key, value, vt.now()));
        done[w] = seq_no;
    }
    (ms, acks)
}

/// Recover and audit one crash point: every op acked by `at` present
/// exactly once with its value, no duplicated keys, no torn nodes.
fn audit_crash_point(disk: Disk, at: Nanos, acked: &[Acked]) {
    let acked_by_now = acked.iter().filter(|a| a.durable_at <= at).count();
    let mut vt = Vt::new(0);
    // A crash can land before the store or carve header is durable; then
    // there is nothing to recover — and nothing may have been acked.
    let recovered = MemSnap::restore(&mut vt, disk).and_then(|mut ms| {
        let space = ms.vm_mut().create_space();
        PSkipList::recover(&mut ms, space, &mut vt, "sweep").map(|(sk, r)| (ms, sk, r))
    });
    let (mut ms, sk, report) = match recovered {
        Ok(t) => t,
        Err(e) => {
            assert_eq!(
                acked_by_now, 0,
                "restore failed ({e}) at {at} despite {acked_by_now} acked ops"
            );
            return;
        }
    };

    // `dump` walks the recovered level-0 chain validating every node's
    // checksum (a torn node panics), and yields keys in order.
    let entries = sk.dump(&mut ms, &mut vt);
    let mut lost = 0usize;
    let mut duplicated = 0usize;
    let mut keys_seen: BTreeMap<u64, usize> = BTreeMap::new();
    for (key, _, _) in &entries {
        *keys_seen.entry(*key).or_insert(0) += 1;
    }
    for (_, count) in keys_seen.iter() {
        if *count > 1 {
            duplicated += count - 1;
        }
    }
    assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "recovered chain out of order at {at}"
    );
    for a in acked.iter().filter(|a| a.durable_at <= at) {
        let present = sk.get(&mut ms, &mut vt, a.key) == Some(a.value.clone());
        let landed = report.op_landed(a.writer, a.seq);
        if !present || !landed {
            lost += 1;
        }
    }
    assert_eq!(
        (lost, duplicated),
        (0, 0),
        "crash at {at}: {lost} lost acked ops, {duplicated} duplicated keys \
         ({acked_by_now} acked by then, {} recovered)",
        entries.len(),
    );
}

#[test]
fn skiplist_crash_sweep_loses_nothing_acked() {
    // Learn each ack's true durability instant from a reference run: the
    // last write completion at or before the moment the sync persist
    // returned.
    let (ms, acks) = run_sweep_workload();
    let reference = ms.into_disk();
    let completions = reference.write_completions().to_vec();
    let acked: Vec<Acked> = acks
        .iter()
        .map(|(writer, seq, key, value, by)| Acked {
            writer: *writer,
            seq: *seq,
            key: *key,
            value: value.clone(),
            durable_at: completions
                .iter()
                .copied()
                .filter(|&c| c <= *by)
                .max()
                .expect("every op persists"),
        })
        .collect();
    assert_eq!(acked.len(), (WRITERS * OPS_PER_WRITER) as usize);

    let points = crash_at_every_io(
        || run_sweep_workload().0.into_disk(),
        |disk, at| audit_crash_point(disk, at, &acked),
    );
    assert!(
        points as u32 > WRITERS * OPS_PER_WRITER,
        "sweep must straddle every per-writer commit, got {points} points"
    );
}

#[test]
fn same_key_race_recovers_one_racer_after_any_crash() {
    // All writers update THE SAME key, each syncing independently. At
    // any crash point the recovered value must be exactly one racer's
    // value and its op must be accounted for — never a torn mix, never
    // two nodes for the key.
    const KEY: u64 = 777;
    // Returns the settled store plus the instant the first sync persist
    // returned — restore may only fail at crash points before that ack
    // became durable.
    let run = || {
        let mut boot = Vt::new(99);
        let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
        let space = ms.vm_mut().create_space();
        let mut sk = PSkipList::create(&mut ms, space, &mut boot, "race", 64, WRITERS).unwrap();
        let mut vts: Vec<Vt> = (0..WRITERS).map(Vt::new).collect();
        let mut first_ack = Nanos::MAX;
        for round in 0..3u32 {
            for w in 0..WRITERS {
                let vt = &mut vts[w as usize];
                sk.put(&mut ms, vt, w, KEY, &[w as u8, round as u8]);
                let thread = vt.id();
                ms.msnap_persist(
                    vt,
                    thread,
                    RegionSel::Region(sk.carve.region.md),
                    PersistFlags::sync(),
                )
                .unwrap();
                first_ack = first_ack.min(vt.now());
            }
        }
        (ms, first_ack)
    };
    let (ms, first_ack) = run();
    let reference = ms.into_disk();
    let first_durable = reference
        .write_completions()
        .iter()
        .copied()
        .filter(|&c| c <= first_ack)
        .max()
        .expect("the first racer persisted");
    let points = crash_at_every_io(
        || run().0.into_disk(),
        |disk, at| {
            let mut vt = Vt::new(0);
            // Pre-setup crash points leave nothing to recover; once the
            // first racer's commit is durable, recovery must succeed.
            let recovered = MemSnap::restore(&mut vt, disk).and_then(|mut ms| {
                let space = ms.vm_mut().create_space();
                PSkipList::recover(&mut ms, space, &mut vt, "race").map(|(sk, r)| (ms, sk, r))
            });
            let (mut ms, sk, report) = match recovered {
                Ok(t) => t,
                Err(e) => {
                    assert!(
                        at < first_durable,
                        "restore failed ({e}) at {at} after the first durable ack"
                    );
                    return;
                }
            };
            let entries = sk.dump(&mut ms, &mut vt);
            assert!(
                entries.iter().filter(|(k, _, _)| *k == KEY).count() <= 1,
                "duplicated key after crash at {at}"
            );
            if let Some(value) = sk.get(&mut ms, &mut vt, KEY) {
                assert_eq!(value.len(), 2, "torn value after crash at {at}");
                let (w, round) = (u32::from(value[0]), u32::from(value[1]));
                assert!(w < WRITERS && round < 3, "fabricated value at {at}");
                let op = sk
                    .op_of(&mut ms, &mut vt, KEY)
                    .expect("node carries its op");
                let (ow, oseq) = op_parts(op);
                assert_eq!(ow, w, "value and op id disagree at {at}");
                assert!(report.op_landed(ow, oseq), "winner not accounted at {at}");
            }
        },
    );
    assert!(points > 10, "race sweep too small: {points} points");
}

#[test]
fn hash_crash_sweep_loses_nothing_acked() {
    const KEYS: u64 = 12;
    let run = || {
        let mut vt = Vt::new(0);
        let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
        let space = ms.vm_mut().create_space();
        let mut ph = PHash::create(&mut ms, space, &mut vt, "hash", 128, 2).unwrap();
        let thread = vt.id();
        let mut acks = Vec::new();
        for k in 0..KEYS {
            ph.put(&mut ms, &mut vt, (k % 2) as u32, k, &k.to_le_bytes());
            ms.msnap_persist(
                vt_ref(&mut vt),
                thread,
                RegionSel::Region(ph.carve.region.md),
                PersistFlags::sync(),
            )
            .unwrap();
            acks.push((k, vt.now()));
        }
        (ms, acks)
    };
    let (ms, acks) = run();
    let reference = ms.into_disk();
    let completions = reference.write_completions().to_vec();
    let durable_at: Vec<(u64, Nanos)> = acks
        .iter()
        .map(|(k, by)| {
            (
                *k,
                completions
                    .iter()
                    .copied()
                    .filter(|&c| c <= *by)
                    .max()
                    .expect("every op persists"),
            )
        })
        .collect();
    let points = crash_at_every_io(
        || run().0.into_disk(),
        |disk, at| {
            let acked_by_now = durable_at.iter().filter(|(_, d)| *d <= at).count();
            let mut vt = Vt::new(0);
            let recovered = MemSnap::restore(&mut vt, disk).and_then(|mut ms| {
                let space = ms.vm_mut().create_space();
                PHash::recover(&mut ms, space, &mut vt, "hash").map(|(ph, r)| (ms, ph, r))
            });
            let (mut ms, ph, report) = match recovered {
                Ok(t) => t,
                Err(e) => {
                    assert_eq!(
                        acked_by_now, 0,
                        "restore failed ({e}) at {at} despite {acked_by_now} acked ops"
                    );
                    return;
                }
            };
            let mut lost = 0;
            for (k, d) in durable_at.iter().filter(|(_, d)| *d <= at) {
                let present = ph.get(&mut ms, &mut vt, *k) == Some(k.to_le_bytes().to_vec());
                let landed = report.op_landed((*k % 2) as u32, (*k / 2) as u32 + 1);
                if !present || !landed {
                    lost += 1;
                }
                let _ = d;
            }
            assert_eq!(lost, 0, "crash at {at}: {lost} lost acked hash ops");
        },
    );
    assert!(points as u64 > KEYS, "hash sweep too small: {points}");
}

// `&mut Vt` reborrow helper so the closure above reads naturally.
fn vt_ref(vt: &mut Vt) -> &mut Vt {
    vt
}

#[test]
fn pindex_kv_group_commit_sweep_is_atomic_per_batch() {
    // The SkipDB backend's concurrent path: every writer's batch rides a
    // group commit. Whatever the crash point, each batch must be
    // all-or-nothing.
    const BATCH: u64 = 8;
    let run = || {
        let mut boot = Vt::new(0);
        let mut kv = PIndexKv::format(Disk::new(DiskConfig::paper()), 256, WRITERS, &mut boot);
        let mut vts: Vec<Vt> = (0..WRITERS).map(Vt::new).collect();
        let batches: Vec<Vec<(u64, Vec<u8>)>> = (0..u64::from(WRITERS))
            .map(|w| {
                (0..BATCH)
                    .map(|i| (w * 100 + i, (w * 100 + i).to_le_bytes().to_vec()))
                    .collect()
            })
            .collect();
        kv.multi_put_concurrent(&mut vts, &batches).unwrap();
        kv.into_disk()
    };
    let points = crash_at_every_io(run, |disk, at| {
        let mut vt = Vt::new(0);
        // Atomicity is vacuous where the store itself is not yet
        // durable: all batches read as absent, which is "nothing".
        let Ok((mut kv, _report)) = PIndexKv::try_restore(disk, &mut vt) else {
            return;
        };
        for w in 0..u64::from(WRITERS) {
            let present = (0..BATCH)
                .filter(|i| kv.get(&mut vt, w * 100 + i).is_some())
                .count() as u64;
            assert!(
                present == 0 || present == BATCH,
                "crash at {at}: writer {w} batch torn, {present}/{BATCH} keys"
            );
        }
    });
    assert!(points > 4, "group sweep too small: {points} points");
}

// ---------------------------------------------------------------------------
// Seeded-interleaving linearizability.
// ---------------------------------------------------------------------------

/// One completed operation with its real-time span in scheduler steps.
#[derive(Debug, Clone)]
struct OpRecord {
    op: u64,
    key: u64,
    remove: bool,
    /// Remove of an absent/tombstoned key: observed, wrote nothing.
    noop: bool,
    value: Vec<u8>,
    start: u64,
    end: u64,
}

/// Drives `plans` (one op list per writer: `(remove, key, value)`) under
/// the seeded interleaving scheduler. Returns the op records and the
/// final `(key -> (op, value-or-tomb))` state, plus the schedule trace.
#[allow(clippy::type_complexity)]
fn run_interleaved(
    seed: u64,
    plans: &[Vec<(bool, u64, Vec<u8>)>],
) -> (
    Vec<OpRecord>,
    BTreeMap<u64, (u64, Option<Vec<u8>>)>,
    Vec<u32>,
) {
    let mut boot = Vt::new(99);
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let space = ms.vm_mut().create_space();
    let sk = PSkipList::create(&mut ms, space, &mut boot, "lin", 128, plans.len() as u32)
        .expect("carve fits");
    let shared = Rc::new(RefCell::new((ms, sk)));
    let steps = Rc::new(Cell::new(0u64));
    let records = Rc::new(RefCell::new(Vec::<OpRecord>::new()));

    let mut sched = InterleaveSched::new(seed);
    for (w, plan) in plans.iter().enumerate() {
        let shared = Rc::clone(&shared);
        let steps = Rc::clone(&steps);
        let records = Rc::clone(&records);
        let mut queue: std::vec::IntoIter<(bool, u64, Vec<u8>)> = plan.clone().into_iter();
        let mut cur: Option<(PutOp, bool, u64, Vec<u8>, u64)> = None;
        sched.spawn(move |vt: &mut Vt| {
            let mut guard = shared.borrow_mut();
            let (ms, sk) = &mut *guard;
            if cur.is_none() {
                let Some((remove, key, value)) = queue.next() else {
                    return StepOutcome::Done;
                };
                let op = if remove {
                    sk.begin_remove(w as u32, key)
                } else {
                    sk.begin_put(w as u32, key, &value)
                };
                cur = Some((op, remove, key, value, steps.get()));
            }
            steps.set(steps.get() + 1);
            let (op, remove, key, value, start) = cur.as_mut().unwrap();
            if op.step(sk, ms, vt) == OpOutcome::Finished {
                records.borrow_mut().push(OpRecord {
                    op: op.op_id(),
                    key: *key,
                    remove: *remove,
                    noop: op.was_noop(),
                    value: value.clone(),
                    start: *start,
                    end: steps.get(),
                });
                cur = None;
            }
            StepOutcome::Continue
        });
    }
    let (_vts, trace) = sched.run_traced();

    let mut guard = shared.borrow_mut();
    let (ms, sk) = &mut *guard;
    let mut reader = Vt::new(98);
    let mut finals = BTreeMap::new();
    for (key, op, tomb) in sk.dump(ms, &mut reader) {
        let value = if tomb {
            None
        } else {
            sk.get(ms, &mut reader, key)
        };
        finals.insert(key, (op, value));
    }
    let records = records.borrow().clone();
    (records, finals, trace)
}

/// The linearizability oracle: the final state of every key must be the
/// effect of an operation that no other same-key operation strictly
/// follows in real time (such an op can be linearized last).
fn assert_linearizable(records: &[OpRecord], finals: &BTreeMap<u64, (u64, Option<Vec<u8>>)>) {
    let mut by_key: BTreeMap<u64, Vec<&OpRecord>> = BTreeMap::new();
    for r in records {
        by_key.entry(r.key).or_default().push(r);
    }
    for (key, ops) in &by_key {
        match finals.get(key) {
            Some((win_op, value)) => {
                let winner = ops
                    .iter()
                    .find(|r| r.op == *win_op)
                    .unwrap_or_else(|| panic!("key {key}: final op {win_op:#x} never ran"));
                if winner.remove {
                    assert_eq!(value, &None, "key {key}: tombstone with a value");
                } else {
                    assert_eq!(
                        value.as_ref(),
                        Some(&winner.value),
                        "key {key}: final value is not the winner's"
                    );
                }
                // No-op removes observed the key absent/tombstoned and
                // wrote nothing; they impose no ordering on the winner.
                for other in ops.iter().filter(|r| r.op != *win_op && !r.noop) {
                    assert!(
                        winner.end >= other.start,
                        "key {key}: op {:#x} finished before {:#x} started, \
                         yet the earlier one won",
                        winner.op,
                        other.op,
                    );
                }
            }
            None => {
                // Key absent entirely: only possible when no put ever ran
                // (remove-of-absent no-ops leave nothing behind).
                assert!(
                    ops.iter().all(|r| r.remove),
                    "key {key}: a put completed but left no node"
                );
            }
        }
    }
    // And nothing fabricated: every final op belongs to a real record.
    for (key, (op, _)) in finals {
        assert!(
            records.iter().any(|r| r.op == *op),
            "key {key}: fabricated op {op:#x}"
        );
    }
}

/// Builds per-writer op plans from a seed: contended keys (small domain)
/// with a mix of puts and removes.
fn plans_from_seed(seed: u64, writers: usize, ops: usize) -> Vec<Vec<(bool, u64, Vec<u8>)>> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..writers)
        .map(|w| {
            (0..ops)
                .map(|i| {
                    let r = next();
                    let key = r % 6; // heavy contention
                    let remove = r & 0x80 == 0x80 && i > 0;
                    let value = vec![w as u8, i as u8, (r >> 8) as u8];
                    (remove, key, value)
                })
                .collect()
        })
        .collect()
}

#[test]
fn interleaved_schedules_are_deterministic_by_seed() {
    let plans = plans_from_seed(3, 3, 8);
    let (r1, f1, t1) = run_interleaved(42, &plans);
    let (r2, f2, t2) = run_interleaved(42, &plans);
    assert_eq!(t1, t2, "same seed, different schedule");
    assert_eq!(f1, f2, "same seed, different final state");
    assert_eq!(r1.len(), r2.len());
    let (_, f3, t3) = run_interleaved(43, &plans);
    assert!(
        t1 != t3 || f1 == f3,
        "different seed should differ (or agree harmlessly)"
    );
}

#[cfg(test)]
mod lin_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every seeded interleaving of contended concurrent mutators
        /// linearizes: the final state is explainable as a sequential
        /// permutation respecting real-time order.
        #[test]
        fn every_seeded_interleaving_linearizes(
            seed in 0u64..10_000,
            plan_seed in 0u64..1_000,
            writers in 2usize..5,
        ) {
            let plans = plans_from_seed(plan_seed, writers, 10);
            let (records, finals, _trace) = run_interleaved(seed, &plans);
            // Every non-noop op completed exactly once.
            prop_assert!(records.len() <= writers * 10);
            assert_linearizable(&records, &finals);
        }
    }
}
