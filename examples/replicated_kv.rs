//! A replicated key-value store: delta shipping over a lossy link,
//! lag-driven flow control, and a crash-consistent failover.
//!
//! A MemSnap KV primary streams its committed epochs to a standby over a
//! simulated WAN link that drops 15% of datagrams. The primary is then
//! killed with one batch committed locally but unacknowledged behind a
//! partition; the standby promotes, serves reads of exactly a committed
//! batch prefix, and the old primary's crashed device re-attaches as a
//! replica and converges by delta alone.
//!
//! Run with: `cargo run --example replicated_kv`

use msnap_repl::{ReplConfig, ReplEngine};
use msnap_sim::NetConfig;
use msnap_skipdb::drivers::{run_replicated_kv, KvReplConfig};

fn main() {
    println!("== replicated KV over a 15%-loss WAN link ==");
    let report = run_replicated_kv(&KvReplConfig {
        batches_before_crash: 8,
        extra_batches: 4,
        keys_per_batch: 8,
        net: NetConfig::lossy(13),
        repl: ReplConfig::default(),
    });
    println!(
        "committed {} batches, then one more behind a partition; killed the primary",
        report.committed_batches
    );
    println!(
        "promoted standby sees {}/{} batches (the partitioned one is gone), \
         first read {} after promotion",
        report.visible_batches, report.committed_batches, report.failover_latency
    );
    assert!(
        report.prefix_consistent,
        "failover must surface an exact committed batch prefix"
    );
    println!("promoted store is an exact committed batch prefix ✓");
    println!(
        "old primary re-attached and converged via {} delta ships, {} full images",
        report.reattach_delta_syncs, report.reattach_full_syncs
    );
    assert!(report.reattach_converged);
    println!("old primary matches the new one byte for byte ✓");
    println!("final store: {} keys", report.final_len);

    println!("\n== flow control: a 1-epoch lag budget on the same link ==");
    let tight = run_replicated_kv(&KvReplConfig {
        batches_before_crash: 8,
        extra_batches: 0,
        keys_per_batch: 8,
        net: NetConfig::lossy(13),
        repl: ReplConfig {
            max_lag_epochs: 1,
            ..ReplConfig::default()
        },
    });
    assert!(tight.prefix_consistent && tight.reattach_converged);
    println!(
        "with max_lag_epochs = 1 the standby never trails more than one \
         commit; everything above still holds ✓"
    );

    // The engine API directly, for orientation: the drivers above wrap
    // exactly this loop.
    println!("\n== the raw loop: engine.tick() after every commit ==");
    let mut eng = ReplEngine::new(ReplConfig::default());
    eng.add_replica("standby", NetConfig::calm(1)).unwrap();
    println!(
        "replica state machine starts at {:?}; tick() ships deltas, settle() \
         drains, promote() consumes the engine and fences the new primary",
        eng.replica("standby").unwrap().state()
    );
}
