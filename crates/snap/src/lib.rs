//! Snapshot shipping: checksummed, resumable delta streams between a
//! primary [`ObjectStore`] and a replica.
//!
//! The store layer retains named epoch snapshots
//! ([`ObjectStore::snapshot_create`]) and can structurally diff two
//! retained epochs in time proportional to what changed
//! ([`ObjectStore::snapshot_diff`]). This crate turns that diff into a
//! **delta stream** — a self-describing framed byte sequence — and
//! applies it on a replica as **one crash-atomic commit**:
//!
//! - [`DeltaStream::build`] reads the changed pages of a retained target
//!   snapshot (relative to a retained base, or the empty image for a
//!   full sync) and frames them: a checksummed header, one checksummed
//!   frame per page, and a trailer binding the whole stream.
//! - [`ApplySession`] consumes frames one at a time on the replica side,
//!   validating sequence numbers and checksums as it goes. A truncated
//!   transfer resumes from [`ApplySession::next_seq`] — already-fed
//!   frames are not re-shipped.
//! - [`ApplySession::finish`] verifies the trailer and lands every
//!   staged page through [`ObjectStore::apply_image`] at the stream's
//!   target epoch. The root-record write is the single commit point, so
//!   a crash mid-apply leaves the replica at exactly its previous epoch
//!   or exactly the target epoch — never between.
//! - [`sync_to`] is the one-call driver: incremental when the replica's
//!   epoch matches a retained base snapshot on the primary, full-sync
//!   fallback when that base is gone.
//!
//! Every wire structure also encodes and decodes **piecewise**
//! ([`StreamHeader::encode`], [`PageFrame::encode`],
//! [`StreamTrailer::encode`]), so a replication transport can ship each
//! frame as its own datagram over a lossy link and resume from
//! [`ApplySession::next_seq`] after drops. The decode path never
//! panics on malformed bytes — an arbitrary byte string from the
//! network produces [`SnapError::Malformed`], not a crashed replica.
//!
//! For failover, [`ApplySession::begin`] also accepts a **rebase**: if
//! the stream's base epoch does not match the replica's live epoch but
//! the replica retains a snapshot at exactly that epoch (a failed
//! primary rejoining always does — the last shipped-and-acked base),
//! the session lands through [`ObjectStore::apply_image_at_base`],
//! atomically abandoning the replica's divergent history.
//!
//! The stream's frame checksums protect bytes **in flight**; at-rest
//! integrity on the replica is the store's own: `apply_image`
//! recomputes the Merkle-chained page digests as it commits the staged
//! pages, so a landed stream is immediately covered by the replica's
//! scrub and read-path verification with no trust carried over from
//! the wire (DESIGN.md §6g).

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use msnap_disk::{Disk, BLOCK_SIZE};
use msnap_sim::Vt;
use msnap_store::{
    fnv1a, fnv1a_extend, CommitToken, Epoch, ObjectId, ObjectStore, StoreError, VectorCut,
};

/// Magic number opening a delta-stream header.
const STREAM_MAGIC: u64 = 0x4d534e_41504453; // "MSN APDS"
/// Magic number opening each page frame.
const FRAME_MAGIC: u64 = 0x4d534e_41504446; // "MSN APDF"
/// Magic number opening the stream trailer.
const TRAILER_MAGIC: u64 = 0x4d534e_41504454 ^ 0xFF; // distinct from records

/// Encoded header size before the object-name and cut-epoch bytes.
const HEADER_FIXED: usize = 80;
/// Streams refuse to name a cut wider than the store's shard ceiling —
/// an attacker-controlled epoch count must not drive an allocation.
const MAX_CUT_EPOCHS: u64 = msnap_store::MAX_SHARDS as u64;
/// Encoded size of one page frame.
const FRAME_LEN: usize = 32 + BLOCK_SIZE;
/// Encoded trailer size.
const TRAILER_LEN: usize = 32;

/// Errors raised while building, decoding, or applying a delta stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// An error surfaced by the underlying object store.
    Store(StoreError),
    /// The stream's base epoch does not match the replica's current
    /// epoch — the delta does not apply; the caller falls back to a full
    /// sync.
    BaseMismatch {
        /// Base epoch the stream was diffed against.
        stream_base: Epoch,
        /// The replica object's current epoch.
        replica: Epoch,
    },
    /// The replica is already at (or past) the stream's target epoch.
    AlreadyCurrent,
    /// A frame arrived out of order: resumable streams must be fed in
    /// sequence.
    SequenceGap {
        /// The next sequence number the session expects.
        expected: u64,
        /// The sequence number that arrived.
        got: u64,
    },
    /// A frame's checksum does not cover its content: the frame was
    /// corrupted in flight.
    FrameCorrupt {
        /// Sequence number of the corrupt frame.
        seq: u64,
    },
    /// The trailer is missing frames or its stream checksum mismatches.
    TrailerMismatch,
    /// The byte stream is truncated or structurally invalid.
    Malformed,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Store(e) => write!(f, "object store: {e}"),
            SnapError::BaseMismatch {
                stream_base,
                replica,
            } => write!(
                f,
                "delta base epoch {stream_base} does not match replica epoch {replica}"
            ),
            SnapError::AlreadyCurrent => f.write_str("replica is already at the target epoch"),
            SnapError::SequenceGap { expected, got } => {
                write!(f, "frame sequence gap: expected {expected}, got {got}")
            }
            SnapError::FrameCorrupt { seq } => write!(f, "frame {seq} failed its checksum"),
            SnapError::TrailerMismatch => f.write_str("stream trailer does not bind the frames"),
            SnapError::Malformed => f.write_str("malformed delta stream"),
        }
    }
}

impl Error for SnapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for SnapError {
    fn from(e: StoreError) -> Self {
        SnapError::Store(e)
    }
}

/// The self-describing head of a delta stream: which object it updates,
/// the epoch span it covers, and how many frames follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHeader {
    /// Name of the object the stream updates (store-directory name).
    pub object: String,
    /// Epoch the delta was diffed against; `None` for a full image.
    pub base_epoch: Option<Epoch>,
    /// Epoch the replica lands at when the stream is applied.
    pub target_epoch: Epoch,
    /// Object length in pages at the target epoch.
    pub len_pages: u64,
    /// Number of page frames in the stream.
    pub frame_count: u64,
    /// The primary's newest durable epoch-vector cut at build time, when
    /// the primary is sharded and has stamped one. Replication uses it to
    /// promote replicas only at manifest-wide consistent cuts; a
    /// single-shard stream carries `None` and decodes unchanged.
    pub cut: Option<VectorCut>,
}

/// One shipped page: its index, its 4 KiB image, and a checksum binding
/// both to the frame's position in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageFrame {
    /// 0-based position in the stream.
    pub seq: u64,
    /// Page index within the object.
    pub page: u64,
    /// The page image ([`BLOCK_SIZE`] bytes).
    pub data: Vec<u8>,
    /// FNV-1a over `seq || page || data`.
    pub checksum: u64,
}

/// Reads a little-endian `u64` at `off`, failing with
/// [`SnapError::Malformed`] instead of panicking on short input —
/// network bytes are untrusted.
fn read_u64(buf: &[u8], off: usize) -> Result<u64, SnapError> {
    let end = off.checked_add(8).ok_or(SnapError::Malformed)?;
    let bytes = buf.get(off..end).ok_or(SnapError::Malformed)?;
    let mut v = [0u8; 8];
    v.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(v))
}

fn write_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

impl StreamHeader {
    /// Wire size of this header: the fixed part, the object name, and
    /// one `u64` per cut epoch when a cut rides along.
    pub fn encoded_len(&self) -> usize {
        HEADER_FIXED + self.object.len() + self.cut.as_ref().map_or(0, |c| c.epochs.len() * 8)
    }

    /// Serializes the header to its checksummed, self-delimiting wire
    /// form (the first piece of [`DeltaStream::encode`]). The cut, when
    /// present, is framed as `cut_seq` and `cut_len` in the fixed part
    /// (`cut_len = 0` means no cut) followed by the epoch vector after
    /// the name bytes; the checksum binds all of it.
    pub fn encode(&self) -> Vec<u8> {
        let mut head = [0u8; HEADER_FIXED];
        write_u64(&mut head, 0, STREAM_MAGIC);
        write_u64(&mut head, 8, self.object.len() as u64);
        write_u64(&mut head, 16, u64::from(self.base_epoch.is_some()));
        write_u64(&mut head, 24, self.base_epoch.unwrap_or(0));
        write_u64(&mut head, 32, self.target_epoch);
        write_u64(&mut head, 40, self.len_pages);
        write_u64(&mut head, 48, self.frame_count);
        write_u64(&mut head, 56, self.cut.as_ref().map_or(0, |c| c.seq));
        write_u64(
            &mut head,
            64,
            self.cut.as_ref().map_or(0, |c| c.epochs.len() as u64),
        );
        let mut tail = self.object.as_bytes().to_vec();
        if let Some(cut) = &self.cut {
            for e in &cut.epochs {
                tail.extend_from_slice(&e.to_le_bytes());
            }
        }
        let sum = fnv1a_extend(fnv1a(&head[0..72]), &tail);
        write_u64(&mut head, 72, sum);
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&head);
        out.extend_from_slice(&tail);
        out
    }

    /// Parses a header from the front of `bytes`, returning it and the
    /// number of bytes consumed. Never panics on malformed input.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation, a bad magic, or a
    /// checksum that does not cover the bytes.
    pub fn decode(bytes: &[u8]) -> Result<(StreamHeader, usize), SnapError> {
        if read_u64(bytes, 0)? != STREAM_MAGIC {
            return Err(SnapError::Malformed);
        }
        let name_len = read_u64(bytes, 8)? as usize;
        let cut_len = read_u64(bytes, 64)?;
        if cut_len > MAX_CUT_EPOCHS {
            return Err(SnapError::Malformed);
        }
        let name_end = HEADER_FIXED
            .checked_add(name_len)
            .ok_or(SnapError::Malformed)?;
        let total = name_end
            .checked_add(cut_len as usize * 8)
            .ok_or(SnapError::Malformed)?;
        let name_bytes = bytes
            .get(HEADER_FIXED..name_end)
            .ok_or(SnapError::Malformed)?;
        let tail = bytes.get(HEADER_FIXED..total).ok_or(SnapError::Malformed)?;
        let fixed = bytes.get(0..72).ok_or(SnapError::Malformed)?;
        if fnv1a_extend(fnv1a(fixed), tail) != read_u64(bytes, 72)? {
            return Err(SnapError::Malformed);
        }
        let cut = if cut_len == 0 {
            None
        } else {
            let epochs = (0..cut_len)
                .map(|i| read_u64(bytes, name_end + i as usize * 8))
                .collect::<Result<Vec<_>, _>>()?;
            Some(VectorCut {
                seq: read_u64(bytes, 56)?,
                epochs,
            })
        };
        let header = StreamHeader {
            object: String::from_utf8(name_bytes.to_vec()).map_err(|_| SnapError::Malformed)?,
            base_epoch: (read_u64(bytes, 16)? != 0)
                .then(|| read_u64(bytes, 24))
                .transpose()?,
            target_epoch: read_u64(bytes, 32)?,
            len_pages: read_u64(bytes, 40)?,
            frame_count: read_u64(bytes, 48)?,
            cut,
        };
        Ok((header, total))
    }
}

impl PageFrame {
    fn compute_checksum(seq: u64, page: u64, data: &[u8]) -> u64 {
        let mut sum = fnv1a(&seq.to_le_bytes());
        sum = fnv1a_extend(sum, &page.to_le_bytes());
        fnv1a_extend(sum, data)
    }

    /// Whether the frame's checksum covers its content.
    pub fn verify(&self) -> bool {
        self.data.len() == BLOCK_SIZE
            && self.checksum == Self::compute_checksum(self.seq, self.page, &self.data)
    }

    /// Wire size of one frame.
    pub const fn encoded_len() -> usize {
        FRAME_LEN
    }

    /// Serializes the frame — one datagram's worth of stream.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not [`BLOCK_SIZE`] bytes (frames built by
    /// this crate always are).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_LEN);
        let mut fh = [0u8; 32];
        write_u64(&mut fh, 0, FRAME_MAGIC);
        write_u64(&mut fh, 8, self.seq);
        write_u64(&mut fh, 16, self.page);
        write_u64(&mut fh, 24, self.checksum);
        out.extend_from_slice(&fh);
        assert_eq!(self.data.len(), BLOCK_SIZE, "page frames carry one block");
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a frame from the front of `bytes`, returning it and the
    /// bytes consumed. Structural only — the content checksum is checked
    /// by [`PageFrame::verify`] / [`ApplySession::feed`], so a transport
    /// can report [`SnapError::FrameCorrupt`] with the right sequence
    /// number.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation or a bad magic.
    pub fn decode(bytes: &[u8]) -> Result<(PageFrame, usize), SnapError> {
        if read_u64(bytes, 0)? != FRAME_MAGIC {
            return Err(SnapError::Malformed);
        }
        let data = bytes.get(32..FRAME_LEN).ok_or(SnapError::Malformed)?;
        let frame = PageFrame {
            seq: read_u64(bytes, 8)?,
            page: read_u64(bytes, 16)?,
            checksum: read_u64(bytes, 24)?,
            data: data.to_vec(),
        };
        Ok((frame, FRAME_LEN))
    }
}

impl StreamTrailer {
    /// Wire size of the trailer.
    pub const fn encoded_len() -> usize {
        TRAILER_LEN
    }

    /// Serializes the trailer (checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut t = [0u8; TRAILER_LEN];
        write_u64(&mut t, 0, TRAILER_MAGIC);
        write_u64(&mut t, 8, self.frames);
        write_u64(&mut t, 16, self.stream_sum);
        let sum = fnv1a(&t[0..24]);
        write_u64(&mut t, 24, sum);
        t.to_vec()
    }

    /// Parses a trailer from the front of `bytes`, returning it and the
    /// bytes consumed. Never panics on malformed input.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation, a bad magic, or a
    /// self-checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Result<(StreamTrailer, usize), SnapError> {
        if read_u64(bytes, 0)? != TRAILER_MAGIC {
            return Err(SnapError::Malformed);
        }
        let fixed = bytes.get(0..24).ok_or(SnapError::Malformed)?;
        if fnv1a(fixed) != read_u64(bytes, 24)? {
            return Err(SnapError::Malformed);
        }
        Ok((
            StreamTrailer {
                frames: read_u64(bytes, 8)?,
                stream_sum: read_u64(bytes, 16)?,
            },
            TRAILER_LEN,
        ))
    }
}

/// The stream's end marker: the frame count and a checksum chaining
/// every frame checksum, so a truncated or reordered stream cannot pass
/// as complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTrailer {
    /// Total frames the stream carries.
    pub frames: u64,
    /// FNV-1a over the concatenated frame checksums, in order.
    pub stream_sum: u64,
}

/// A complete delta stream: header, page frames, trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaStream {
    /// The stream head.
    pub header: StreamHeader,
    /// The page frames, in sequence order.
    pub frames: Vec<PageFrame>,
    /// The end marker.
    pub trailer: StreamTrailer,
}

fn chain_sum(frames: &[PageFrame]) -> u64 {
    frames.iter().fold(msnap_store::FNV_OFFSET, |h, f| {
        fnv1a_extend(h, &f.checksum.to_le_bytes())
    })
}

impl DeltaStream {
    /// Builds the stream shipping `target` (a retained snapshot on the
    /// primary) as a delta against `base` (another retained snapshot of
    /// the same object), or as a full image when `base` is `None`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Store`] wrapping [`StoreError::SnapshotNotFound`] /
    /// [`StoreError::SnapshotMismatch`] for bad snapshot pairs.
    pub fn build(
        vt: &mut Vt,
        disk: &mut Disk,
        store: &mut ObjectStore,
        base: Option<&str>,
        target: &str,
    ) -> Result<DeltaStream, SnapError> {
        let entry = store
            .snapshot_lookup(target)
            .ok_or(StoreError::SnapshotNotFound)?
            .clone();
        let base_epoch = match base {
            None => None,
            Some(name) => Some(
                store
                    .snapshot_lookup(name)
                    .ok_or(StoreError::SnapshotNotFound)?
                    .epoch,
            ),
        };
        let pages = store.snapshot_diff(vt, disk, base, target)?;
        let object = store
            .object_name(entry.object)
            .ok_or(StoreError::NotFound)?;
        let mut frames = Vec::with_capacity(pages.len());
        let mut buf = vec![0u8; BLOCK_SIZE];
        for (seq, page) in pages.into_iter().enumerate() {
            store.read_page_at(vt, disk, target, page, &mut buf)?;
            frames.push(PageFrame {
                seq: seq as u64,
                page,
                data: buf.clone(),
                checksum: PageFrame::compute_checksum(seq as u64, page, &buf),
            });
        }
        let trailer = StreamTrailer {
            frames: frames.len() as u64,
            stream_sum: chain_sum(&frames),
        };
        Ok(DeltaStream {
            header: StreamHeader {
                object,
                base_epoch,
                target_epoch: entry.epoch,
                len_pages: entry.len_pages,
                frame_count: frames.len() as u64,
                // A sharded primary names its newest durable vector cut
                // so the consumer can promote only complete cuts.
                cut: store.last_cut().cloned(),
            },
            frames,
            trailer,
        })
    }

    /// Payload bytes the stream ships (the replication cost a full image
    /// is compared against).
    pub fn encoded_len(&self) -> usize {
        self.header.encoded_len() + self.frames.len() * FRAME_LEN + TRAILER_LEN
    }

    /// Serializes the stream to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.header.encode());
        for f in &self.frames {
            out.extend_from_slice(&f.encode());
        }
        out.extend_from_slice(&self.trailer.encode());
        out
    }

    /// Parses and fully validates a wire-form stream: header checksum,
    /// every frame checksum, and the trailer binding. Never panics (or
    /// over-allocates) on malformed input.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for structural damage,
    /// [`SnapError::FrameCorrupt`] / [`SnapError::TrailerMismatch`] for
    /// checksum failures.
    pub fn decode(bytes: &[u8]) -> Result<DeltaStream, SnapError> {
        let (header, mut off) = StreamHeader::decode(bytes)?;
        // An attacker-controlled frame count must not drive the
        // allocation — cap the reserve by what the bytes could hold.
        let cap = (header.frame_count as usize).min(bytes.len() / FRAME_LEN + 1);
        let mut frames = Vec::with_capacity(cap);
        for seq in 0..header.frame_count {
            let rest = bytes.get(off..).ok_or(SnapError::Malformed)?;
            let (frame, used) = PageFrame::decode(rest)?;
            if frame.seq != seq {
                return Err(SnapError::Malformed);
            }
            if !frame.verify() {
                return Err(SnapError::FrameCorrupt { seq });
            }
            frames.push(frame);
            off += used;
        }
        let rest = bytes.get(off..).ok_or(SnapError::Malformed)?;
        let (trailer, _) = StreamTrailer::decode(rest)?;
        if trailer.frames != frames.len() as u64 || trailer.stream_sum != chain_sum(&frames) {
            return Err(SnapError::TrailerMismatch);
        }
        Ok(DeltaStream {
            header,
            frames,
            trailer,
        })
    }
}

/// Replica-side application of one delta stream: feed frames in order
/// (resuming from [`ApplySession::next_seq`] after an interruption),
/// then [`ApplySession::finish`] to land the whole stream as one
/// crash-atomic commit.
#[derive(Debug)]
pub struct ApplySession {
    object: ObjectId,
    target_epoch: Epoch,
    expected_frames: u64,
    staged: Vec<(u64, Vec<u8>)>,
    next_seq: u64,
    running_sum: u64,
    /// A retained snapshot on the replica at exactly the stream's base
    /// epoch, when the replica's *live* epoch has diverged past it: the
    /// failover rebase path ([`ObjectStore::apply_image_at_base`]).
    rebase_from: Option<String>,
}

impl ApplySession {
    /// Opens an apply session against the replica for `header`.
    ///
    /// A delta stream (`base_epoch = Some`) requires the replica to sit
    /// exactly at the base epoch — **or** to retain a snapshot at
    /// exactly that epoch, in which case the session becomes a *rebase*:
    /// [`ApplySession::finish`] applies the delta on top of the retained
    /// snapshot, atomically abandoning everything the replica committed
    /// past it (how a failed primary rejoins after promotion elsewhere).
    /// A full stream applies from any epoch behind the target. The
    /// replica object is created if missing.
    ///
    /// # Errors
    ///
    /// [`SnapError::BaseMismatch`] (caller falls back to a full sync),
    /// [`SnapError::AlreadyCurrent`], or [`SnapError::Store`].
    pub fn begin(
        vt: &mut Vt,
        disk: &mut Disk,
        replica: &mut ObjectStore,
        header: &StreamHeader,
    ) -> Result<ApplySession, SnapError> {
        let object = match replica.lookup(&header.object) {
            Some(id) => id,
            None => replica.create(vt, disk, &header.object)?,
        };
        let at = replica.epoch(object);
        if at >= header.target_epoch {
            return Err(SnapError::AlreadyCurrent);
        }
        let mut rebase_from = None;
        if let Some(base) = header.base_epoch {
            if base != at {
                rebase_from = replica
                    .snapshots()
                    .into_iter()
                    .find(|s| s.object == object && s.epoch == base)
                    .map(|s| s.name);
                if rebase_from.is_none() {
                    return Err(SnapError::BaseMismatch {
                        stream_base: base,
                        replica: at,
                    });
                }
            }
        }
        Ok(ApplySession {
            object,
            target_epoch: header.target_epoch,
            expected_frames: header.frame_count,
            // An untrusted frame count must not drive the allocation;
            // the staging vector grows as frames actually arrive.
            staged: Vec::new(),
            next_seq: 0,
            running_sum: msnap_store::FNV_OFFSET,
            rebase_from,
        })
    }

    /// Whether this session will rebase onto a retained snapshot,
    /// abandoning the replica's divergent history at
    /// [`ApplySession::finish`].
    pub fn is_rebase(&self) -> bool {
        self.rebase_from.is_some()
    }

    /// The sequence number the session expects next — the resume point
    /// after an interrupted transfer.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Stages one frame. Frames must arrive in sequence order and verify
    /// their checksum; a rejected frame leaves the session unchanged, so
    /// the sender may retransmit it.
    ///
    /// # Errors
    ///
    /// [`SnapError::SequenceGap`] or [`SnapError::FrameCorrupt`].
    pub fn feed(&mut self, frame: &PageFrame) -> Result<(), SnapError> {
        if frame.seq != self.next_seq {
            return Err(SnapError::SequenceGap {
                expected: self.next_seq,
                got: frame.seq,
            });
        }
        if !frame.verify() {
            return Err(SnapError::FrameCorrupt { seq: frame.seq });
        }
        self.staged.push((frame.page, frame.data.clone()));
        self.running_sum = fnv1a_extend(self.running_sum, &frame.checksum.to_le_bytes());
        self.next_seq += 1;
        Ok(())
    }

    /// Verifies the trailer against everything staged and commits the
    /// stream through [`ObjectStore::apply_image`] (or
    /// [`ObjectStore::apply_image_at_base`] for a rebase session) — one
    /// crash-atomic root switch landing the replica exactly at the
    /// target epoch.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailerMismatch`] if frames are missing or the
    /// stream checksum disagrees (nothing is written), or
    /// [`SnapError::Store`] if the commit itself fails (the replica
    /// stays at its previous epoch).
    pub fn finish(
        self,
        vt: &mut Vt,
        disk: &mut Disk,
        replica: &mut ObjectStore,
        trailer: &StreamTrailer,
    ) -> Result<CommitToken, SnapError> {
        if self.next_seq != self.expected_frames
            || trailer.frames != self.expected_frames
            || trailer.stream_sum != self.running_sum
        {
            return Err(SnapError::TrailerMismatch);
        }
        let iov: Vec<(u64, &[u8])> = self.staged.iter().map(|(p, d)| (*p, &d[..])).collect();
        let token = match &self.rebase_from {
            None => replica.apply_image(vt, disk, self.object, &iov, self.target_epoch)?,
            Some(base) => {
                replica.apply_image_at_base(vt, disk, self.object, base, &iov, self.target_epoch)?
            }
        };
        Ok(token)
    }
}

/// Outcome of one [`sync_to`] catch-up round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Epoch the replica landed at.
    pub target_epoch: Epoch,
    /// Pages shipped.
    pub pages: u64,
    /// Wire bytes of the stream.
    pub bytes: u64,
    /// Whether the round fell back to a full image (no usable base).
    pub full_sync: bool,
}

/// Ships the retained snapshot `target` from the primary to the replica:
/// incrementally when the primary still retains a snapshot at exactly
/// the replica's epoch (the delta base), as a full image otherwise —
/// the base-epoch-gone fallback. The stream round-trips through its
/// wire encoding, so every checksum in the framing is exercised on
/// every sync.
///
/// # Errors
///
/// [`SnapError::AlreadyCurrent`] if the replica is at or past the
/// target, or any build/decode/apply error. A failed apply leaves the
/// replica at its previous epoch; the call may simply be retried.
#[allow(clippy::too_many_arguments)]
pub fn sync_to(
    vt: &mut Vt,
    primary: &mut ObjectStore,
    primary_disk: &mut Disk,
    replica: &mut ObjectStore,
    replica_disk: &mut Disk,
    target: &str,
) -> Result<SyncReport, SnapError> {
    let entry = primary
        .snapshot_lookup(target)
        .ok_or(StoreError::SnapshotNotFound)?
        .clone();
    let object_name = primary
        .object_name(entry.object)
        .ok_or(StoreError::NotFound)?;
    let replica_epoch = replica
        .lookup(&object_name)
        .map_or(0, |id| replica.epoch(id));
    if replica_epoch >= entry.epoch {
        return Err(SnapError::AlreadyCurrent);
    }
    // A delta needs a retained base at exactly the replica's epoch; when
    // reclamation (snapshot_delete) has dropped it, fall back to full.
    let base = primary
        .snapshots()
        .into_iter()
        .find(|s| s.object == entry.object && s.epoch == replica_epoch)
        .map(|s| s.name);
    let stream = DeltaStream::build(vt, primary_disk, primary, base.as_deref(), target)?;
    let wire = stream.encode();
    let bytes = wire.len() as u64;
    let stream = DeltaStream::decode(&wire)?;
    let mut session = ApplySession::begin(vt, replica_disk, replica, &stream.header)?;
    for frame in &stream.frames {
        session.feed(frame)?;
    }
    let token = session.finish(vt, replica_disk, replica, &stream.trailer)?;
    ObjectStore::wait(vt, token);
    Ok(SyncReport {
        target_epoch: token.epoch,
        pages: stream.trailer.frames,
        bytes,
        full_sync: base.is_none(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    fn primary_with_two_snapshots() -> (Disk, ObjectStore, Vt, ObjectId) {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut store = ObjectStore::format(&mut disk);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        for i in 0..5u64 {
            let p = page_of(0x10 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        store.snapshot_create(&mut vt, &mut disk, obj, "a").unwrap();
        for i in [1u64, 3] {
            let p = page_of(0x90 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        store.snapshot_create(&mut vt, &mut disk, obj, "b").unwrap();
        (disk, store, vt, obj)
    }

    #[test]
    fn stream_round_trips_through_wire_form() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        assert_eq!(stream.frames.len(), 2);
        assert_eq!(
            stream.frames.iter().map(|f| f.page).collect::<Vec<_>>(),
            vec![1, 3]
        );
        let wire = stream.encode();
        assert_eq!(wire.len(), stream.encoded_len());
        assert_eq!(DeltaStream::decode(&wire).unwrap(), stream);
    }

    #[test]
    fn corrupted_wire_bytes_are_rejected() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        let wire = stream.encode();

        // Header damage.
        let mut bad = wire.clone();
        bad[40] ^= 1;
        assert_eq!(DeltaStream::decode(&bad), Err(SnapError::Malformed));
        // Frame payload damage.
        let mut bad = wire.clone();
        let frame0_data = stream.header.encoded_len() + 32;
        bad[frame0_data + 17] ^= 0x20;
        assert_eq!(
            DeltaStream::decode(&bad),
            Err(SnapError::FrameCorrupt { seq: 0 })
        );
        // Truncation.
        assert_eq!(
            DeltaStream::decode(&wire[..wire.len() - 1]),
            Err(SnapError::Malformed)
        );
    }

    #[test]
    fn apply_session_enforces_order_and_resumes() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let full = DeltaStream::build(&mut vt, &mut disk, &mut store, None, "a").unwrap();

        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &full.header).unwrap();
        // Out-of-order feed is rejected and does not advance the session.
        assert_eq!(
            session.feed(&full.frames[1]),
            Err(SnapError::SequenceGap {
                expected: 0,
                got: 1
            })
        );
        // A corrupted frame is rejected; the retransmitted original lands.
        let mut torn = full.frames[0].clone();
        torn.data[9] ^= 1;
        assert_eq!(session.feed(&torn), Err(SnapError::FrameCorrupt { seq: 0 }));
        session.feed(&full.frames[0]).unwrap();
        assert_eq!(session.next_seq(), 1);
        // "Crash" of the transfer: a fresh session resumes from 0 — the
        // staging is in memory; durability comes only from finish().
        for f in &full.frames[1..] {
            session.feed(f).unwrap();
        }
        // Premature finish with a wrong trailer is refused.
        assert!(matches!(
            session.finish(
                &mut vt,
                &mut rdisk,
                &mut replica,
                &StreamTrailer {
                    frames: full.trailer.frames + 1,
                    stream_sum: 0
                }
            ),
            Err(SnapError::TrailerMismatch)
        ));
    }

    #[test]
    fn sync_to_uses_delta_when_base_is_retained_and_full_otherwise() {
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);

        // First round: replica at epoch 0, no base retained → full sync.
        let r1 = sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "a",
        )
        .unwrap();
        assert!(r1.full_sync);
        assert_eq!(r1.pages, 5);

        // Second round: replica sits exactly at snapshot "a" → delta.
        let r2 = sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "b",
        )
        .unwrap();
        assert!(!r2.full_sync);
        assert_eq!(r2.pages, 2, "only the changed pages ship");
        assert!(r2.bytes < r1.bytes);

        // Replica image now equals the target snapshot byte-for-byte.
        let robj = replica.lookup("db").unwrap();
        assert_eq!(
            replica.epoch(robj),
            store.snapshot_lookup("b").unwrap().epoch
        );
        let mut want = page_of(0);
        let mut got = page_of(0);
        for page in 0..5u64 {
            store
                .read_page_at(&mut vt, &mut disk, "b", page, &mut want)
                .unwrap();
            replica
                .read_page(&mut vt, &mut rdisk, robj, page, &mut got)
                .unwrap();
            assert_eq!(got, want, "replica page {page} diverges");
        }

        // Already-current replica refuses the round.
        assert_eq!(
            sync_to(
                &mut vt,
                &mut store,
                &mut disk,
                &mut replica,
                &mut rdisk,
                "b"
            )
            .unwrap_err(),
            SnapError::AlreadyCurrent
        );

        // Base gone (snapshot deleted on the primary): advance the
        // primary, snapshot again, delete "b" — the replica at "b" must
        // fall back to a full image for "c".
        let p = page_of(0xEE);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        ObjectStore::wait(&mut vt, t);
        store.snapshot_create(&mut vt, &mut disk, obj, "c").unwrap();
        store.snapshot_delete(&mut vt, &mut disk, "b").unwrap();
        let r3 = sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "c",
        )
        .unwrap();
        assert!(r3.full_sync, "missing base epoch must fall back to full");
        assert_eq!(
            replica.epoch(robj),
            store.snapshot_lookup("c").unwrap().epoch
        );
    }

    #[test]
    fn piecewise_codec_matches_the_stream_form() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        // header ++ frames ++ trailer, each encoded alone, is the wire form.
        let mut wire = stream.header.encode();
        for f in &stream.frames {
            wire.extend_from_slice(&f.encode());
        }
        wire.extend_from_slice(&stream.trailer.encode());
        assert_eq!(wire, stream.encode());

        let (h, used) = StreamHeader::decode(&wire).unwrap();
        assert_eq!(h, stream.header);
        let (f0, fused) = PageFrame::decode(&wire[used..]).unwrap();
        assert_eq!(f0, stream.frames[0]);
        assert!(f0.verify());
        let (t, _) = StreamTrailer::decode(&wire[used + 2 * fused..]).unwrap();
        assert_eq!(t, stream.trailer);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders() {
        // A replica faces untrusted network bytes: every decoder must
        // fail cleanly on garbage, truncations, and bit flips.
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let wire = DeltaStream::build(&mut vt, &mut disk, &mut store, None, "b")
            .unwrap()
            .encode();
        for len in 0..wire.len() {
            assert!(DeltaStream::decode(&wire[..len]).is_err());
            let _ = StreamHeader::decode(&wire[..len]);
            let _ = PageFrame::decode(&wire[..len]);
            let _ = StreamTrailer::decode(&wire[..len]);
        }
        for stride in [1usize, 7, 13] {
            let mut bad = wire.clone();
            for i in (0..bad.len()).step_by(stride) {
                bad[i] ^= 0x5A;
            }
            assert!(DeltaStream::decode(&bad).is_err());
        }
        // A header lying about its frame count must not over-allocate
        // or panic.
        let mut lying = wire.clone();
        lying[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(DeltaStream::decode(&lying).is_err());
    }

    #[test]
    fn vector_cut_rides_the_stream_header() {
        // A sharded primary stamps a cut; the stream header carries it
        // through the wire byte-for-byte. The legacy streams above all
        // carry `cut: None` (cut_len = 0 on the wire) and round-trip
        // unchanged — this covers the Some side.
        let mut disk = Disk::new(DiskConfig::paper());
        let mut store = ObjectStore::format_sharded(&mut disk, 4);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        for i in 0..3u64 {
            let p = page_of(0x40 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        let cut = store.cut(&mut vt, &mut disk).unwrap();
        assert_eq!(cut.epochs.len(), 4);
        store.snapshot_create(&mut vt, &mut disk, obj, "s").unwrap();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, None, "s").unwrap();
        assert_eq!(stream.header.cut.as_ref(), Some(&cut));
        let wire = stream.encode();
        assert_eq!(wire.len(), stream.encoded_len());
        let decoded = DeltaStream::decode(&wire).unwrap();
        assert_eq!(decoded, stream);
        assert_eq!(decoded.header.cut.unwrap(), cut);
        // A header claiming an absurd epoch count is malformed, not an
        // allocation.
        let mut lying = wire.clone();
        lying[64..72].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(DeltaStream::decode(&lying), Err(SnapError::Malformed));
    }

    #[test]
    fn rebase_session_abandons_divergent_replica_history() {
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        // "Replica" is an old primary: it holds snapshot "a" and then
        // diverged past it on its own.
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "a",
        )
        .unwrap();
        let robj = replica.lookup("db").unwrap();
        replica
            .snapshot_create(&mut vt, &mut rdisk, robj, "acked")
            .unwrap();
        for i in 0..6u64 {
            let p = page_of(0xC0 + i as u8);
            let t = replica
                .persist(&mut vt, &mut rdisk, robj, &[(i % 5, &p)])
                .unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        let diverged = replica.epoch(robj);
        assert!(diverged > store.snapshot_lookup("a").unwrap().epoch);

        // New primary fences past the divergence, snapshots, and ships
        // the delta a → fence. The replica's live epoch mismatches the
        // base, but it retains "acked" at exactly the base epoch: rebase.
        let t = store
            .fence_epoch(&mut vt, &mut disk, obj, diverged + 10)
            .unwrap();
        ObjectStore::wait(&mut vt, t);
        store.snapshot_create(&mut vt, &mut disk, obj, "f").unwrap();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "f").unwrap();
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &stream.header).unwrap();
        assert!(session.is_rebase());
        for f in &stream.frames {
            session.feed(f).unwrap();
        }
        let token = session
            .finish(&mut vt, &mut rdisk, &mut replica, &stream.trailer)
            .unwrap();
        ObjectStore::wait(&mut vt, token);
        assert_eq!(replica.epoch(robj), diverged + 10);

        // Byte-for-byte the rejoined replica equals the fence snapshot;
        // the divergent writes are gone.
        let mut want = page_of(0);
        let mut got = page_of(0);
        for page in 0..5u64 {
            store
                .read_page_at(&mut vt, &mut disk, "f", page, &mut want)
                .unwrap();
            replica
                .read_page(&mut vt, &mut rdisk, robj, page, &mut got)
                .unwrap();
            assert_eq!(got, want, "rejoined page {page} diverges");
        }
    }

    #[test]
    fn delta_against_wrong_replica_epoch_reports_base_mismatch() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let delta = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        // Fresh replica (epoch 0) cannot take a delta based at "a".
        let err = ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &delta.header)
            .err()
            .unwrap();
        assert!(matches!(err, SnapError::BaseMismatch { replica: 0, .. }));
    }
}
