//! Replication costs: what a lossy link does to steady-state lag and
//! shipped bytes, and what a failover costs end to end.
//!
//! Three sweeps:
//!
//! - loss-rate sweep on a raw MemSnap primary: one replica behind a
//!   WAN-style link whose drop rate grows 0% → 30%; reports mean/max
//!   epoch lag sampled after every commit, acknowledgement latency,
//!   wire bytes (retransmissions included) vs goodput, and wall time to
//!   drain;
//! - failover: the KV driver kills a primary with one unacknowledged
//!   batch, promotes the standby, and measures promotion-to-first-read
//!   latency plus the old primary's delta-only re-sync;
//! - replicated LiteDB: read-your-writes ingest under a lag budget.
//!
//! Emits the machine-readable `BENCH_repl.json` at the workspace root.

use memsnap::{MemSnap, PersistFlags, RegionSel, PAGE_SIZE};
use msnap_bench::{header, table, us};
use msnap_disk::{Disk, DiskConfig};
use msnap_litedb::drivers::{run_replicated, ReplicatedConfig};
use msnap_repl::{ReplConfig, ReplEngine};
use msnap_sim::{Nanos, NetConfig, Vt};
use msnap_skipdb::drivers::{run_replicated_kv, KvReplConfig};

const COMMITS: u64 = 24;
const REGION_PAGES: u64 = 8;
const LOSS_RATES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];

struct LossPoint {
    loss: f64,
    mean_lag_epochs: f64,
    max_lag_epochs: u64,
    ack_lag: Nanos,
    wire_bytes: u64,
    goodput_bytes: u64,
    retransmit_frames: u64,
    subpage_frames: u64,
    saved_dedup: u64,
    saved_compress: u64,
    wall: Nanos,
}

/// One replica behind a WAN link at the given loss rate: commit
/// `COMMITS` epochs with one engine tick each, then drain. `small`
/// rewrites one 64-byte line per commit (the scattered small-write
/// shape sub-page frames exist for); otherwise each commit rewrites a
/// whole page.
fn loss_point(loss: f64, small: bool) -> LossPoint {
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let mut vt = Vt::new(0);
    let space = ms.vm_mut().create_space();
    let r = ms.msnap_open(&mut vt, space, "data", REGION_PAGES).unwrap();
    let t = vt.id();

    let cfg = ReplConfig::default();
    let mut eng = ReplEngine::new(cfg);
    eng.add_replica("standby", NetConfig::with_loss(9, loss))
        .unwrap();
    // Bootstrap: first image ships before the steady-state measurement.
    ms.write(&mut vt, space, t, r.addr, &[1; PAGE_SIZE])
        .unwrap();
    ms.msnap_persist(&mut vt, t, RegionSel::Region(r.md), PersistFlags::sync())
        .unwrap();
    eng.settle(&mut vt, &mut ms, Nanos::from_secs(120)).unwrap();

    let start = vt.now();
    let mut lag_sum = 0u64;
    let mut max_lag = 0u64;
    for i in 0..COMMITS {
        let page = i % REGION_PAGES;
        if small {
            let line = (i * 7) % 64;
            ms.write(
                &mut vt,
                space,
                t,
                r.addr + page * PAGE_SIZE as u64 + line * 64,
                &[2 + (i % 250) as u8; 64],
            )
            .unwrap();
        } else {
            ms.write(
                &mut vt,
                space,
                t,
                r.addr + page * PAGE_SIZE as u64,
                &[2 + (i % 250) as u8; PAGE_SIZE],
            )
            .unwrap();
        }
        ms.msnap_persist(&mut vt, t, RegionSel::Region(r.md), PersistFlags::sync())
            .unwrap();
        let mut tick = eng.tick(&mut vt, &mut ms).unwrap();
        while tick.throttled {
            vt.advance(cfg.retransmit_timeout / 2);
            tick = eng.tick(&mut vt, &mut ms).unwrap();
        }
        let lag = eng.link_metrics("standby").unwrap().lag_epochs;
        lag_sum += lag;
        max_lag = max_lag.max(lag);
    }
    assert!(eng.settle(&mut vt, &mut ms, Nanos::from_secs(600)).unwrap());

    let (down, _up) = eng.link_net_stats("standby").unwrap();
    let m = eng.link_metrics("standby").unwrap();
    let ack_lag = eng
        .link_meters("standby")
        .unwrap()
        .get("repl_ack_lag")
        .map_or(Nanos::ZERO, |s| s.mean());
    LossPoint {
        loss,
        mean_lag_epochs: lag_sum as f64 / COMMITS as f64,
        max_lag_epochs: max_lag,
        ack_lag,
        wire_bytes: down.bytes_sent,
        goodput_bytes: down.bytes_delivered,
        retransmit_frames: m.retransmit_frames,
        subpage_frames: m.subpage_frames,
        saved_dedup: m.wire_bytes_saved_dedup,
        saved_compress: m.wire_bytes_saved_compress,
        wall: vt.now() - start,
    }
}

fn loss_table(points: &[LossPoint]) {
    table(
        &[
            "loss",
            "mean lag",
            "max lag",
            "ack lag us",
            "wire KiB",
            "goodput KiB",
            "resent frames",
            "sub frames",
            "saved KiB",
            "wall ms",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.loss * 100.0),
                    format!("{:.2}", p.mean_lag_epochs),
                    format!("{}", p.max_lag_epochs),
                    us(p.ack_lag.as_us_f64()),
                    format!("{:.1}", p.wire_bytes as f64 / 1024.0),
                    format!("{:.1}", p.goodput_bytes as f64 / 1024.0),
                    format!("{}", p.retransmit_frames),
                    format!("{}", p.subpage_frames),
                    format!("{:.1}", (p.saved_dedup + p.saved_compress) as f64 / 1024.0),
                    format!("{:.1}", p.wall.as_ns() as f64 / 1e6),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn loss_json(points: &[LossPoint]) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "{{\"loss\":{:.2},\"mean_lag_epochs\":{:.3},\"max_lag_epochs\":{},\
                 \"ack_lag_us\":{:.3},\"wire_bytes\":{},\"goodput_bytes\":{},\
                 \"retransmit_frames\":{},\"subpage_frames\":{},\
                 \"saved_dedup\":{},\"saved_compress\":{},\"wall_ms\":{:.3}}}",
                p.loss,
                p.mean_lag_epochs,
                p.max_lag_epochs,
                p.ack_lag.as_us_f64(),
                p.wire_bytes,
                p.goodput_bytes,
                p.retransmit_frames,
                p.subpage_frames,
                p.saved_dedup,
                p.saved_compress,
                p.wall.as_ns() as f64 / 1e6,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ")
}

fn main() {
    header(
        "Steady-state replication vs link loss",
        &format!(
            "{COMMITS} commits over an {REGION_PAGES}-page region, one \
             replica behind a 2 ms WAN link; lag sampled after every tick."
        ),
    );
    let points: Vec<LossPoint> = LOSS_RATES
        .into_iter()
        .map(|l| loss_point(l, false))
        .collect();
    loss_table(&points);

    header(
        "Small-write replication vs link loss",
        "Same sweep, but each commit rewrites one 64-byte line: \
         sub-page frames keep wire bytes proportional to bytes changed, \
         and Nak retransmits resend only the lost frames.",
    );
    let small_points: Vec<LossPoint> = LOSS_RATES
        .into_iter()
        .map(|l| loss_point(l, true))
        .collect();
    loss_table(&small_points);

    header(
        "Failover",
        "Primary killed with one unacknowledged batch; standby promoted; \
         old primary re-attaches as a replica of the new one.",
    );
    let failover = run_replicated_kv(&KvReplConfig {
        batches_before_crash: 8,
        extra_batches: 4,
        keys_per_batch: 8,
        net: NetConfig::calm(77),
        repl: ReplConfig::default(),
    });
    assert!(failover.prefix_consistent && failover.reattach_converged);
    table(
        &[
            "visible batches",
            "first read us",
            "reattach fulls",
            "reattach deltas",
        ],
        &[vec![
            format!(
                "{}/{}",
                failover.visible_batches, failover.committed_batches
            ),
            us(failover.failover_latency.as_us_f64()),
            format!("{}", failover.reattach_full_syncs),
            format!("{}", failover.reattach_delta_syncs),
        ]],
    );

    header(
        "Replicated LiteDB",
        "16 transactions against 2 replicas on a 15%-loss link with a \
         2-epoch lag budget: flow control bounds staleness.",
    );
    let litedb = run_replicated(&ReplicatedConfig {
        txns: 16,
        keys_per_txn: 8,
        replicas: 2,
        net: NetConfig::lossy(5),
        repl: ReplConfig {
            max_lag_epochs: 2,
            ..ReplConfig::default()
        },
    });
    assert!(litedb.read_your_writes && litedb.replicas_consistent);
    table(
        &["txns", "stalls", "max lag", "shipped KiB", "full", "delta"],
        &[vec![
            format!("{}", litedb.txns),
            format!("{}", litedb.throttle_stalls),
            format!("{}", litedb.max_lag_epochs),
            format!("{:.1}", litedb.bytes_shipped as f64 / 1024.0),
            format!("{}", litedb.full_syncs),
            format!("{}", litedb.delta_syncs),
        ]],
    );

    let small_section = format!("[\n    {}\n  ]", loss_json(&small_points));
    let loss_json = loss_json(&points);
    let json = format!(
        "{{\n  \"bench\": \"repl\",\n  \"commits\": {COMMITS},\n  \
         \"loss_sweep\": [\n    {loss_json}\n  ],\n  \
         \"failover\": {{\"visible_batches\":{},\"committed_batches\":{},\
         \"first_read_us\":{:.3},\"reattach_full_syncs\":{},\"reattach_delta_syncs\":{}}},\n  \
         \"litedb\": {{\"txns\":{},\"throttle_stalls\":{},\"max_lag_epochs\":{},\
         \"bytes_shipped\":{},\"full_syncs\":{},\"delta_syncs\":{}}}\n}}\n",
        failover.visible_batches,
        failover.committed_batches,
        failover.failover_latency.as_us_f64(),
        failover.reattach_full_syncs,
        failover.reattach_delta_syncs,
        litedb.txns,
        litedb.throttle_stalls,
        litedb.max_lag_epochs,
        litedb.bytes_shipped,
        litedb.full_syncs,
        litedb.delta_syncs,
    );
    let json = msnap_bench::splice_json_section(&json, "loss_sweep_small_writes", &small_section);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repl.json");
    std::fs::write(path, &json).expect("workspace root is writable");
    println!();
    println!(
        "wrote {} + {} loss points to BENCH_repl.json",
        points.len(),
        small_points.len()
    );
}
