//! O(dirty-set) store metadata: what Arc-shared COW nodes, demand-loaded
//! subtrees, and the unified block cache buy.
//!
//! Three sweeps on the raw object store:
//!
//! - open latency vs object size: the lazy open reads a constant number
//!   of metadata blocks regardless of size, while an eager open (which
//!   materializes the whole tree, the pre-lazy behavior) grows linearly;
//! - snapshot-create cost vs object size at a fixed 16-page dirty set:
//!   the retained clone is an O(1) Arc share and the root flush is
//!   O(dirty path), so the cost is flat — against it, the wall-clock of
//!   a deep copy of the same tree, which grows with the object;
//! - block-cache hit rate under uniform vs Zipfian page reads, 10k reads
//!   against a 1024-page object through the default 256-block cache;
//! - checksummed-read overhead: cache hits serve the already-verified
//!   image for free, media misses pay the inline digest verification —
//!   plus the raw wall-clock throughput of the page digest itself;
//! - scrub throughput vs per-call IO budget: one full verification pass
//!   over a 4096-page object, sliced finer or coarser.
//!
//! Emits the machine-readable `BENCH_store.json` at the workspace root.

use std::time::Instant;

use msnap_bench::{header, table, us};
use msnap_disk::{Disk, DiskConfig, BLOCK_SIZE};
use msnap_sim::Vt;
use msnap_store::{digest32, ObjectStore, RadixTree, DEFAULT_CACHE_BLOCKS};

const SIZES: [u64; 4] = [64, 256, 1024, 4096];
const DIRTY_PAGES: u64 = 16;
const READ_OBJECT_PAGES: u64 = 1024;
const READS: u64 = 10_000;

fn page_image(tag: u64, page: u64) -> Vec<u8> {
    let mut img = vec![0u8; BLOCK_SIZE];
    img[0..8].copy_from_slice(&tag.to_le_bytes());
    img[8..16].copy_from_slice(&page.to_le_bytes());
    img
}

/// Persists pages `0..pages` in one μCheckpoint.
fn churn(
    vt: &mut Vt,
    disk: &mut Disk,
    store: &mut ObjectStore,
    obj: msnap_store::ObjectId,
    tag: u64,
    pages: u64,
) {
    let images: Vec<Vec<u8>> = (0..pages).map(|p| page_image(tag, p)).collect();
    let iov: Vec<(u64, &[u8])> = images
        .iter()
        .enumerate()
        .map(|(p, img)| (p as u64, &img[..]))
        .collect();
    let t = store.persist(vt, disk, obj, &iov).unwrap();
    ObjectStore::wait(vt, t);
}

/// A settled device holding one `pages`-page object whose tree is on
/// disk as a full root with no trailing deltas (a reopen replays
/// nothing and adopts every node cold). Returns the build's clock too:
/// measurements must continue on the same timeline, or the reopen's
/// first IO would absorb the build's queued channel time.
fn device_with(pages: u64) -> (Disk, Vt) {
    let mut disk = Disk::new(DiskConfig::paper());
    let mut store = ObjectStore::format(&mut disk);
    let mut vt = Vt::new(0);
    let obj = store.create(&mut vt, &mut disk, "db").unwrap();
    churn(&mut vt, &mut disk, &mut store, obj, 0, pages);
    // Create-then-delete flushes the full root without retaining a pin.
    store
        .snapshot_create(&mut vt, &mut disk, obj, "flush")
        .unwrap();
    store.snapshot_delete(&mut vt, &mut disk, "flush").unwrap();
    disk.settle();
    (disk, vt)
}

struct OpenPoint {
    pages: u64,
    lazy_us: f64,
    lazy_hydrations: u64,
    eager_us: f64,
    eager_hydrations: u64,
}

/// Open latency vs object size, lazy vs eager.
fn sweep_open() -> Vec<OpenPoint> {
    header(
        "Open latency vs object size",
        "lazy = ObjectStore::open alone (O(1) metadata IO); eager = open \
         plus materializing every page, the pre-lazy behavior.",
    );
    let mut points = Vec::new();
    for pages in SIZES {
        let (mut disk, mut vt) = device_with(pages);
        let t0 = vt.now();
        let mut store = ObjectStore::open(&mut vt, &mut disk).unwrap();
        let lazy = vt.now() - t0;
        let lazy_hydrations = store.stats().hydrations;
        assert_eq!(lazy_hydrations, 0, "lazy open must not hydrate");

        let obj = store.lookup("db").unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        for p in 0..pages {
            store
                .read_page(&mut vt, &mut disk, obj, p, &mut buf)
                .unwrap();
        }
        let eager = vt.now() - t0;
        points.push(OpenPoint {
            pages,
            lazy_us: lazy.as_us_f64(),
            lazy_hydrations,
            eager_us: eager.as_us_f64(),
            eager_hydrations: store.stats().hydrations,
        });
    }
    table(
        &["pages", "lazy us", "lazy loads", "eager us", "eager loads"],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.pages),
                    us(p.lazy_us),
                    format!("{}", p.lazy_hydrations),
                    us(p.eager_us),
                    format!("{}", p.eager_hydrations),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let lo = points.iter().map(|p| p.lazy_us).fold(f64::MAX, f64::min);
    let hi = points.iter().map(|p| p.lazy_us).fold(0.0, f64::max);
    assert!(
        hi <= 2.0 * lo,
        "lazy open must stay flat across sizes: {lo:.1}us .. {hi:.1}us"
    );
    points
}

struct SnapPoint {
    pages: u64,
    create_us: f64,
    arc_clone_ns: u128,
    deep_clone_ns: u128,
}

/// Snapshot-create cost at a fixed dirty set vs object size; Arc clone
/// vs deep clone of a same-sized tree (wall clock).
fn sweep_snapshot() -> Vec<SnapPoint> {
    header(
        "Snapshot create vs object size (fixed 16-page dirty set)",
        "create = full-root flush (O(dirty path)) + catalog write + O(1) \
         Arc clone of the tree; deep clone of the same tree shown for \
         contrast (wall-clock ns, grows with the object).",
    );
    let mut points = Vec::new();
    for pages in SIZES {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut store = ObjectStore::format(&mut disk);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        churn(&mut vt, &mut disk, &mut store, obj, 0, pages);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "warm")
            .unwrap();
        churn(&mut vt, &mut disk, &mut store, obj, 1, DIRTY_PAGES);
        let t0 = vt.now();
        store
            .snapshot_create(&mut vt, &mut disk, obj, "bench")
            .unwrap();
        let create = vt.now() - t0;

        // Clone costs on a standalone tree of the same shape.
        let mut tree = RadixTree::new();
        for p in 0..pages {
            tree.set(p, 1_000 + p);
        }
        let mut next = 1u64;
        let mut writes = Vec::new();
        tree.commit(
            &mut || {
                next += 1;
                next
            },
            &mut writes,
        );
        const ITERS: u32 = 512;
        let t = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(tree.clone());
        }
        let arc_clone_ns = t.elapsed().as_nanos() / u128::from(ITERS);
        let t = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(tree.deep_clone());
        }
        let deep_clone_ns = t.elapsed().as_nanos() / u128::from(ITERS);

        points.push(SnapPoint {
            pages,
            create_us: create.as_us_f64(),
            arc_clone_ns,
            deep_clone_ns,
        });
    }
    table(
        &["pages", "create us", "arc clone ns", "deep clone ns"],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.pages),
                    us(p.create_us),
                    format!("{}", p.arc_clone_ns),
                    format!("{}", p.deep_clone_ns),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let lo = points.iter().map(|p| p.create_us).fold(f64::MAX, f64::min);
    let hi = points.iter().map(|p| p.create_us).fold(0.0, f64::max);
    assert!(
        hi <= 2.0 * lo,
        "snapshot create must stay flat across sizes: {lo:.1}us .. {hi:.1}us"
    );
    points
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

struct ReadPoint {
    dist: &'static str,
    hits: u64,
    misses: u64,
    hydrations: u64,
    hit_rate: f64,
}

/// Cache hit rate over 10k reads, uniform vs Zipfian(s=1).
fn sweep_reads() -> Vec<ReadPoint> {
    header(
        "Block-cache hit rate, uniform vs Zipfian reads",
        &format!(
            "{READ_OBJECT_PAGES}-page object, {DEFAULT_CACHE_BLOCKS}-block \
             cache, {READS} fixed-seed reads."
        ),
    );
    // Zipfian(s=1) CDF over page ranks.
    let mut cdf = Vec::with_capacity(READ_OBJECT_PAGES as usize);
    let mut acc = 0.0f64;
    for rank in 1..=READ_OBJECT_PAGES {
        acc += 1.0 / rank as f64;
        cdf.push(acc);
    }
    let total = acc;

    let mut points = Vec::new();
    for dist in ["uniform", "zipfian"] {
        let (mut disk, mut vt) = device_with(READ_OBJECT_PAGES);
        let mut store = ObjectStore::open(&mut vt, &mut disk).unwrap();
        let obj = store.lookup("db").unwrap();
        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let mut buf = vec![0u8; BLOCK_SIZE];
        for _ in 0..READS {
            let x = xorshift(&mut rng);
            let page = if dist == "uniform" {
                x % READ_OBJECT_PAGES
            } else {
                let u = (x >> 11) as f64 / (1u64 << 53) as f64 * total;
                let rank = cdf.partition_point(|&c| c < u) as u64;
                // Scatter hot ranks across the page space (7919 is
                // coprime with the page count, so this is a bijection).
                (rank * 7919) % READ_OBJECT_PAGES
            };
            store
                .read_page(&mut vt, &mut disk, obj, page, &mut buf)
                .unwrap();
        }
        let stats = store.stats();
        let hit_rate = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64;
        points.push(ReadPoint {
            dist,
            hits: stats.cache_hits,
            misses: stats.cache_misses,
            hydrations: stats.hydrations,
            hit_rate,
        });
    }
    table(
        &["dist", "hits", "misses", "node loads", "hit rate"],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.dist.to_string(),
                    format!("{}", p.hits),
                    format!("{}", p.misses),
                    format!("{}", p.hydrations),
                    format!("{:.1}%", p.hit_rate * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let zipf = points.iter().find(|p| p.dist == "zipfian").unwrap();
    assert!(
        zipf.hit_rate >= 0.5,
        "skewed reads must be cache-friendly: {:.1}%",
        zipf.hit_rate * 100.0
    );
    points
}

struct VerifyPoint {
    mode: &'static str,
    reads: u64,
    avg_read_us: f64,
}

/// Per-read cost with digest verification, cache hit vs media miss,
/// plus the raw wall-clock throughput of the digest.
fn sweep_verify() -> (Vec<VerifyPoint>, f64) {
    header(
        "Checksummed read: cache hit vs media miss",
        "hits serve the cached, already-verified image (no digest work); \
         misses read media and verify the page digest inline before the \
         bytes are served.",
    );
    let mut points = Vec::new();

    // Cache hits: one hot page re-read after warming.
    {
        let (mut disk, mut vt) = device_with(READ_OBJECT_PAGES);
        let mut store = ObjectStore::open(&mut vt, &mut disk).unwrap();
        let obj = store.lookup("db").unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        store
            .read_page(&mut vt, &mut disk, obj, 0, &mut buf)
            .unwrap();
        let t0 = vt.now();
        for _ in 0..READS {
            store
                .read_page(&mut vt, &mut disk, obj, 0, &mut buf)
                .unwrap();
        }
        points.push(VerifyPoint {
            mode: "cache_hit",
            reads: READS,
            avg_read_us: (vt.now() - t0).as_us_f64() / READS as f64,
        });
    }

    // Media misses: sequential sweeps with the cache dropped per round,
    // so every read verifies a page fresh off the device.
    {
        let (mut disk, mut vt) = device_with(READ_OBJECT_PAGES);
        let mut store = ObjectStore::open(&mut vt, &mut disk).unwrap();
        let obj = store.lookup("db").unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        let rounds = READS / READ_OBJECT_PAGES;
        let mut n = 0u64;
        let t0 = vt.now();
        for _ in 0..rounds {
            store.drop_cache();
            for p in 0..READ_OBJECT_PAGES {
                store
                    .read_page(&mut vt, &mut disk, obj, p, &mut buf)
                    .unwrap();
                n += 1;
            }
        }
        points.push(VerifyPoint {
            mode: "media_miss",
            reads: n,
            avg_read_us: (vt.now() - t0).as_us_f64() / n as f64,
        });
    }

    // Raw digest cost, wall clock (bytes/ns == GB/s).
    let img = page_image(7, 7);
    const ITERS: u32 = 1 << 15;
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ITERS {
        acc ^= u64::from(digest32(std::hint::black_box(&img[..])));
    }
    std::hint::black_box(acc);
    let ns_per_page = t.elapsed().as_nanos() as f64 / f64::from(ITERS);
    let digest_gb_per_s = BLOCK_SIZE as f64 / ns_per_page;

    table(
        &["mode", "reads", "avg read us"],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.mode.to_string(),
                    format!("{}", p.reads),
                    us(p.avg_read_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("  raw digest: {ns_per_page:.0} ns/page ({digest_gb_per_s:.2} GB/s wall clock)");
    (points, digest_gb_per_s)
}

struct ScrubPoint {
    budget: u64,
    calls: u64,
    pages_verified: u64,
    nodes_verified: u64,
    pass_us: f64,
    pages_per_s: f64,
}

/// One full scrub pass over a 4096-page object, at several per-call IO
/// budgets.
fn sweep_scrub() -> Vec<ScrubPoint> {
    header(
        "Scrub throughput vs IO budget",
        "full verification pass over a 4096-page object; finer budgets \
         interleave better with foreground work, coarser budgets finish \
         the pass in fewer calls.",
    );
    let mut points = Vec::new();
    for budget in [64u64, 256, 1024, 4096] {
        let (mut disk, mut vt) = device_with(4096);
        let mut store = ObjectStore::open(&mut vt, &mut disk).unwrap();
        let mut calls = 0u64;
        let t0 = vt.now();
        while store.scrub_stats().passes == 0 {
            store.scrub(&mut vt, &mut disk, budget).unwrap();
            calls += 1;
            assert!(calls < 1_000_000, "scrub never completed a pass");
        }
        let pass = vt.now() - t0;
        let s = store.scrub_stats();
        assert_eq!(s.corruptions_found, 0, "clean device scrubs clean");
        points.push(ScrubPoint {
            budget,
            calls,
            pages_verified: s.pages_verified,
            nodes_verified: s.nodes_verified,
            pass_us: pass.as_us_f64(),
            pages_per_s: s.pages_verified as f64 / (pass.as_us_f64() / 1e6),
        });
    }
    table(
        &["budget", "calls", "pages", "nodes", "pass us", "pages/s"],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.budget),
                    format!("{}", p.calls),
                    format!("{}", p.pages_verified),
                    format!("{}", p.nodes_verified),
                    us(p.pass_us),
                    format!("{:.0}", p.pages_per_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    points
}

fn main() {
    let open = sweep_open();
    let snapshot = sweep_snapshot();
    let reads = sweep_reads();
    let (verify, digest_gb_per_s) = sweep_verify();
    let scrub = sweep_scrub();

    let open_json = open
        .iter()
        .map(|p| {
            format!(
                "{{\"pages\":{},\"lazy_us\":{:.3},\"lazy_hydrations\":{},\
                 \"eager_us\":{:.3},\"eager_hydrations\":{}}}",
                p.pages, p.lazy_us, p.lazy_hydrations, p.eager_us, p.eager_hydrations
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let snap_json = snapshot
        .iter()
        .map(|p| {
            format!(
                "{{\"pages\":{},\"create_us\":{:.3},\"arc_clone_ns\":{},\
                 \"deep_clone_ns\":{}}}",
                p.pages, p.create_us, p.arc_clone_ns, p.deep_clone_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let reads_json = reads
        .iter()
        .map(|p| {
            format!(
                "{{\"dist\":\"{}\",\"reads\":{READS},\"hits\":{},\"misses\":{},\
                 \"hydrations\":{},\"hit_rate\":{:.4}}}",
                p.dist, p.hits, p.misses, p.hydrations, p.hit_rate
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let verify_json = verify
        .iter()
        .map(|p| {
            format!(
                "{{\"mode\":\"{}\",\"reads\":{},\"avg_read_us\":{:.3}}}",
                p.mode, p.reads, p.avg_read_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let scrub_json = scrub
        .iter()
        .map(|p| {
            format!(
                "{{\"budget\":{},\"calls\":{},\"pages_verified\":{},\
                 \"nodes_verified\":{},\"pass_us\":{:.1},\"pages_per_s\":{:.0}}}",
                p.budget, p.calls, p.pages_verified, p.nodes_verified, p.pass_us, p.pages_per_s
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"store\",\n  \"cache_blocks\": {DEFAULT_CACHE_BLOCKS},\n  \
         \"open\": [\n    {open_json}\n  ],\n  \
         \"snapshot_create\": [\n    {snap_json}\n  ],\n  \
         \"reads\": [\n    {reads_json}\n  ],\n  \
         \"digest_gb_per_s\": {digest_gb_per_s:.2},\n  \
         \"read_verify\": [\n    {verify_json}\n  ],\n  \
         \"scrub\": [\n    {scrub_json}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    // Carry over the `shard_scaling` section (owned by the
    // shard_scaling bench target) across this full rewrite.
    let json = match std::fs::read_to_string(path).ok().and_then(|old| {
        msnap_bench::json_section_span(&old, "shard_scaling").map(|(s, e)| old[s..e].to_string())
    }) {
        Some(section) => {
            let value = section.split_once(':').unwrap().1.trim().to_string();
            msnap_bench::splice_json_section(&json, "shard_scaling", &value)
        }
        None => json,
    };
    std::fs::write(path, &json).expect("workspace root is writable");
    println!();
    println!(
        "wrote {} open + {} snapshot + {} read + {} verify + {} scrub points to BENCH_store.json",
        open.len(),
        snapshot.len(),
        reads.len(),
        verify.len(),
        scrub.len()
    );
}
