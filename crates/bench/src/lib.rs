//! Shared formatting for the benchmark harnesses.
//!
//! Every table and figure of the MemSnap paper has a `harness = false`
//! bench target in this crate; `cargo bench` regenerates all of them.
//! Each harness prints the paper's reported values next to this
//! reproduction's measured values so EXPERIMENTS.md can be audited
//! directly from the output.

#![warn(missing_docs)]

/// Prints a section header.
pub fn header(title: &str, note: &str) {
    println!();
    println!("=== {title} ===");
    if !note.is_empty() {
        println!("{note}");
    }
    println!();
}

/// Prints an aligned table: `headers` then `rows`.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", line.join("  "));
    };
    print_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("  {}", "-".repeat(total));
    for row in rows {
        print_row(row);
    }
}

/// Formats microseconds with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}K", v / 1000.0)
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Formats a paper-vs-measured pair with the ratio.
pub fn vs(paper: f64, measured: f64) -> String {
    if paper == 0.0 {
        return format!("- / {}", us(measured));
    }
    format!(
        "{} / {} ({:+.0}%)",
        us(paper),
        us(measured),
        (measured / paper - 1.0) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_formats_ranges() {
        assert_eq!(us(3.25), "3.2");
        assert_eq!(us(250.4), "250");
        assert_eq!(us(12_500.0), "12.5K");
    }

    #[test]
    fn vs_reports_ratio() {
        assert_eq!(vs(100.0, 110.0), "100 / 110 (+10%)");
        assert!(vs(0.0, 5.0).starts_with("- /"));
    }
}
