//! A durable key-value store with no WAL: the RocksDB case study (§7.2)
//! as a runnable demo.
//!
//! Compares the persistent-skip-list MemSnap store against the
//! WAL+SSTable baseline under a Meta MixGraph burst, then kills the power
//! mid-run and verifies recovery.
//!
//! Run with: `cargo run --example kv_store`

use std::cell::RefCell;
use std::rc::Rc;

use msnap_disk::{Disk, DiskConfig};
use msnap_sim::Vt;
use msnap_skipdb::drivers::{fill, run_mixgraph, torture_memsnap, MixGraphConfig};
use msnap_skipdb::{BaselineKv, Kv, MemSnapKv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MixGraphConfig {
        keys: 5_000,
        ops_per_thread: 500,
        threads: 8,
        seed: 7,
    };

    println!("== MixGraph: 83% Get / 14% Put / 3% Seek, 8 threads ==");
    let mut vt = Vt::new(u32::MAX);
    let mut kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), 1 << 15, &mut vt);
    fill(&mut kv, &mut vt, cfg.keys, 256);
    let ms = run_mixgraph(Rc::new(RefCell::new(kv)), &cfg, vt.now());
    println!(
        "memsnap skiplist: {:.1} Kops, avg {}, p99 {}",
        ms.kops,
        ms.latency.mean(),
        ms.latency.percentile(99.0)
    );

    let mut vt = Vt::new(u32::MAX);
    let mut kv = BaselineKv::format(Disk::new(DiskConfig::paper()), 4 << 20, &mut vt);
    fill(&mut kv, &mut vt, cfg.keys, 256);
    let wal = run_mixgraph(Rc::new(RefCell::new(kv)), &cfg, vt.now());
    println!(
        "WAL + SSTables:   {:.1} Kops, avg {}, p99 {}",
        wal.kops,
        wal.latency.mean(),
        wal.latency.percentile(99.0)
    );

    println!("\n== crash consistency torture test (paper §7.2) ==");
    let outcome = torture_memsnap(500, 8, 25, 10, 0.6, 42);
    println!(
        "acked {} increment-transactions before the crash; recovered sum = {}",
        outcome.acked_txns, outcome.recovered_sum
    );
    assert!(
        outcome.is_consistent(),
        "recovered state must match acknowledged work"
    );
    println!("recovered sum equals acknowledged work: consistent ✓");

    println!("\n== put/get/seek round trip ==");
    let mut vt = Vt::new(0);
    let mut kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), 4096, &mut vt);
    kv.put(&mut vt, 3, b"three")?;
    kv.put(&mut vt, 1, b"one")?;
    kv.put(&mut vt, 2, b"two")?;
    for (k, v) in kv.seek(&mut vt, 0, 10) {
        println!("  {k} => {}", String::from_utf8_lossy(&v));
    }
    Ok(())
}
