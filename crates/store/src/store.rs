//! The object store proper.
//!
//! Commit protocol: a μCheckpoint writes its data blocks (one contiguous,
//! sequential extent) and then commits with a single metadata block —
//! either a **delta record** (the commit's page → block pairs; the common
//! case) or, every [`DELTA_SLOTS`]-th commit or for very large commits, a
//! **full root** that first flushes the in-memory COW tree's dirty nodes.
//! Recovery adopts the newest valid full root and replays consecutive
//! delta records on top. Deferring node IO this way keeps the per-commit
//! cost at "data + one block", which is what the paper's Table 5 measures
//! (39.7 μs of IO for a 64 KiB μCheckpoint).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::error::Error;
use std::fmt;

use msnap_disk::{Disk, IoError, WriteToken, BLOCK_SIZE};
use msnap_sim::{Category, Nanos, Vt};

use crate::layout::{
    self, BatchGroup, BatchRecord, DeltaRecord, DirEntry, Epoch, ObjectId, RootRecord, ShardLayout,
    SnapCatalog, SnapEntry, BATCH_SLOTS, DELTA_SLOTS, DIGEST_NONE, DIR_BLOCKS, DIR_ENTRY_LEN,
    ENTRIES_PER_BLOCK, FIRST_DATA_BLOCK, MAX_DELTA_PAIRS, MAX_OBJECTS, MAX_SNAPSHOTS, NAME_LEN,
    OBJECT_META_BLOCKS, SNAP_CATALOG_SLOTS, SUPER_MAGIC,
};
use crate::radix::TreeError;
use crate::{BlockAllocator, BlockCache, RadixTree};

/// Errors returned by the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// No object with the given name or id.
    NotFound,
    /// An object with this name already exists.
    Exists,
    /// The directory is full.
    TooManyObjects,
    /// The object name exceeds the directory's name field.
    NameTooLong,
    /// The on-disk image is not a formatted store.
    NotFormatted,
    /// The device (or the allocator's capacity ceiling) is out of blocks.
    OutOfSpace,
    /// A device write failed and retries (if the fault was transient) did
    /// not help. The commit was aborted cleanly: no epoch advanced, no
    /// blocks leaked.
    Io(IoError),
    /// No retained snapshot with the given name.
    SnapshotNotFound,
    /// A retained snapshot with this name already exists.
    SnapshotExists,
    /// The snapshot catalog is full ([`MAX_SNAPSHOTS`] entries).
    TooManySnapshots,
    /// A diff was requested between snapshots of different objects.
    SnapshotMismatch,
    /// [`StoreShard::apply_image`] with a target epoch at or behind the
    /// object's current epoch: the image would move the replica backward.
    StaleEpoch,
    /// A page's at-rest digest did not match the bytes the device
    /// returned: silent corruption (bit rot) detected — and **not**
    /// served. The block is quarantined; heal it from a retained
    /// snapshot or a replica (see [`StoreShard::scrub`] and
    /// [`StoreShard::repair_page`]).
    CorruptData {
        /// Page index whose data failed verification.
        page: u64,
        /// The corrupt device block (now quarantined).
        block: u64,
        /// The epoch the read was served at.
        epoch: Epoch,
    },
    /// A radix-node block failed its digest check during demand
    /// hydration: the tree's own media rotted.
    CorruptMeta {
        /// The corrupt node block.
        block: u64,
    },
    /// [`StoreShard::repair_page`] was handed bytes that do not match
    /// the page's expected digest: the proposed clean copy is itself
    /// corrupt (or stale) and was rejected.
    RepairMismatch,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound => f.write_str("object not found"),
            StoreError::Exists => f.write_str("object already exists"),
            StoreError::TooManyObjects => f.write_str("object directory is full"),
            StoreError::NameTooLong => f.write_str("object name too long"),
            StoreError::NotFormatted => f.write_str("device does not contain a formatted store"),
            StoreError::OutOfSpace => f.write_str("store is out of blocks"),
            StoreError::Io(e) => write!(f, "device write failed: {e}"),
            StoreError::SnapshotNotFound => f.write_str("snapshot not found"),
            StoreError::SnapshotExists => f.write_str("snapshot already exists"),
            StoreError::TooManySnapshots => f.write_str("snapshot catalog is full"),
            StoreError::SnapshotMismatch => f.write_str("snapshots belong to different objects"),
            StoreError::StaleEpoch => f.write_str("image target epoch is not ahead of the object"),
            StoreError::CorruptData { page, block, epoch } => write!(
                f,
                "page {page} (block {block}, epoch {epoch}) failed digest verification"
            ),
            StoreError::CorruptMeta { block } => {
                write!(f, "tree node block {block} failed digest verification")
            }
            StoreError::RepairMismatch => {
                f.write_str("repair data does not match the page's expected digest")
            }
        }
    }
}

impl Error for StoreError {}

impl From<IoError> for StoreError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::NoSpace { .. } => StoreError::OutOfSpace,
            other => StoreError::Io(other),
        }
    }
}

impl From<TreeError> for StoreError {
    fn from(e: TreeError) -> Self {
        match e {
            TreeError::Io(e) => e.into(),
            TreeError::CorruptNode { block } => StoreError::CorruptMeta { block },
        }
    }
}

/// Bounded retry budget for transient device faults: a submission is
/// retried at most this many times in total before the commit aborts.
pub const MAX_IO_ATTEMPTS: u32 = 3;

/// Block numbers handed out by the full-commit closure after the
/// allocator is exhausted: far beyond any real device, never written —
/// the commit aborts before any IO is issued. Kept below 2^32 so the
/// aborted commit's node serialization can still pack scratch entries
/// into digest-carrying radix words.
const SCRATCH_BLOCK_BASE: u64 = 0xF000_0000;

/// Submits `iov`, retrying transient failures up to [`MAX_IO_ATTEMPTS`]
/// total attempts. Each retry is a fresh submission (a new fault-plan
/// index), which is what makes transient faults survivable.
///
/// On success every written block is dropped from `cache`: the cache is
/// invalidated by writes, never populated by them, so the first read of a
/// freshly written block always observes the device (and any fault that
/// corrupted it).
fn writev_retry(
    disk: &mut Disk,
    at: Nanos,
    iov: &[(u64, &[u8])],
    cache: &mut BlockCache,
) -> Result<WriteToken, IoError> {
    let mut attempts = 1;
    loop {
        match disk.writev_at(at, iov) {
            Err(e) if e.is_transient() && attempts < MAX_IO_ATTEMPTS => attempts += 1,
            other => {
                if other.is_ok() {
                    for (block, _) in iov {
                        cache.invalidate(*block);
                    }
                }
                return other;
            }
        }
    }
}

/// Default block-cache capacity, in 4 KiB blocks (1 MiB of cached state).
pub const DEFAULT_CACHE_BLOCKS: usize = 256;

/// Reads `block` into `out` through the store's block cache, charging
/// device IO only on a miss. `node` marks radix-node demand loads so
/// [`StoreStats::hydrations`] counts exactly the tree reads that reached
/// the device.
///
/// A free function (not a method) so callers can borrow the cache and
/// stats disjointly from an object's tree while a hydration closure is
/// live.
fn read_block_cached(
    vt: &mut Vt,
    disk: &mut Disk,
    cache: &mut BlockCache,
    stats: &mut StoreStats,
    block: u64,
    out: &mut [u8],
    node: bool,
) -> Result<(), IoError> {
    if cache.get(block, out) {
        stats.cache_hits += 1;
        return Ok(());
    }
    disk.try_read_block(vt, block, out)?;
    stats.cache_misses += 1;
    if node {
        stats.hydrations += 1;
    }
    if cache.insert(block, out) {
        stats.cache_evictions += 1;
    }
    Ok(())
}

/// Result of a committed μCheckpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitToken {
    /// The object's epoch after this μCheckpoint.
    pub epoch: Epoch,
    /// Instant the μCheckpoint (commit record included) is durable.
    pub completes: Nanos,
    /// Payload + metadata bytes written to the device.
    pub bytes_written: u64,
}

/// Aggregate store statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Committed μCheckpoints.
    pub commits: u64,
    /// Commits that used the delta-record fast path.
    pub delta_commits: u64,
    /// Data pages written across all commits.
    pub pages_written: u64,
    /// Radix-tree node blocks written (full commits only).
    pub nodes_written: u64,
    /// Batched (group-commit) submissions: each covers several objects'
    /// μCheckpoints with one data extent and one commit record.
    pub batch_commits: u64,
    /// Per-object μCheckpoints committed through batched submissions.
    pub batched_objects: u64,
    /// Reads served from the block cache without touching the device.
    pub cache_hits: u64,
    /// Cached reads that missed and went to the device.
    pub cache_misses: u64,
    /// Cache slots reclaimed by the CLOCK sweep to admit a new block.
    pub cache_evictions: u64,
    /// Radix-node demand loads that reached the device: the IO cost of
    /// hydrating unloaded subtrees (a cache hit on a node block is a
    /// `cache_hits` increment, not a hydration).
    pub hydrations: u64,
}

/// Cumulative statistics for the online scrubber
/// ([`StoreShard::scrub`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubStats {
    /// Leaf pages whose data block was read back and verified against
    /// the digest the radix entry carries.
    pub pages_verified: u64,
    /// Committed radix-node media images read back and verified.
    pub nodes_verified: u64,
    /// Digest mismatches found (data blocks and node media).
    pub corruptions_found: u64,
    /// Corruptions healed: pages re-materialized from a retained
    /// snapshot (or a peer via [`StoreShard::repair_page`]) and
    /// resident nodes rewritten from their clean in-memory copies.
    pub repairs: u64,
    /// Corruptions with no clean local source: quarantined and reported
    /// through [`StoreShard::unrepaired_pages`], awaiting a peer copy.
    pub unrepaired: u64,
    /// Old-layout (pre-digest) leaf entries backfilled with a freshly
    /// computed digest during the scrub walk.
    pub digests_backfilled: u64,
    /// Device block reads the scrub spent — its IO budget consumption.
    pub io_spent: u64,
    /// Full passes over the radix forest completed.
    pub passes: u64,
}

/// A corrupt page the scrubber quarantined but could not heal locally
/// (no retained snapshot holds an independent clean copy). Replication
/// drains these into `PageRepairRequest` messages; a peer's clean copy
/// lands through [`StoreShard::repair_page`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrepairedPage {
    /// Object owning the page.
    pub object: ObjectId,
    /// The corrupt page.
    pub page: u64,
    /// The quarantined block that failed verification.
    pub block: u64,
    /// The digest a clean copy must match, byte for byte.
    pub digest: u32,
    /// Object epoch at detection.
    pub epoch: Epoch,
}

/// CPU cost constants for store operations.
///
/// Calibrated against the paper's Table 5: "Initiating Writes" for a
/// 64 KiB (16-page) μCheckpoint costs 6.5 μs.
mod costs {
    use msnap_sim::Nanos;

    /// Fixed cost of assembling and submitting a μCheckpoint IO.
    pub const INITIATE_BASE: Nanos = Nanos::from_ns(4_000);
    /// Per-page cost: allocation, tree update, iovec entry.
    pub const INITIATE_PER_PAGE: Nanos = Nanos::from_ns(160);
    /// Per-tree-node serialization cost (full commits).
    pub const NODE_SERIALIZE: Nanos = Nanos::from_ns(250);
    /// Cost of a root/delta-slot parse during recovery.
    pub const ROOT_PARSE: Nanos = Nanos::from_ns(400);
}

struct ObjectState {
    entry: DirEntry,
    /// The object's page index, always current in memory; dirty nodes are
    /// flushed on full commits only.
    tree: RadixTree,
    epoch: Epoch,
    last_commit: Nanos,
    deltas_since_full: u64,
    /// Alternates the full-root slot (consecutive full roots never share
    /// a slot).
    full_count: u64,
    /// Node blocks superseded since the last full commit: recyclable only
    /// after the *next* full root is durable (recovery replays deltas on
    /// top of the previous full root's nodes until then).
    node_freed_pending: Vec<u64>,
    /// Monotone durability frontier: max completion instant over all of
    /// this object's commits. Gates data-block recycling so that recovery
    /// to *any* reachable epoch finds its blocks intact.
    chain_completes: Nanos,
}

/// A retained snapshot held in memory: its catalog entry, the pinned
/// epoch's (fully committed) tree for point-in-time reads and diffs, and
/// the exact block set the snapshot pins.
///
/// After [`StoreShard::open`] the tree is *unloaded* (an O(1) wrapper
/// around the catalog's root block) and `pinned` is false: `blocks` is
/// empty and no pins are registered. Pins materialize on demand — see
/// [`StoreShard::ensure_pins`] — before the store frees its first
/// block, which is the only moment pins are consulted.
struct SnapState {
    entry: SnapEntry,
    tree: RadixTree,
    blocks: Vec<u64>,
    /// Whether `blocks` is populated and counted in `snap_pins`.
    pinned: bool,
}

/// One shard of the copy-on-write object store: a complete store in its
/// own right (allocator, radix forest, batch ring, snapshot catalog)
/// whose metadata slab lives at a [`ShardLayout`]-determined base. A
/// legacy single-shard store is exactly a `StoreShard` with the
/// `base = 0` layout; the sharded [`crate::ObjectStore`] wrapper owns
/// `N` of these plus the extent broker that partitions the data area
/// between them. See the crate and module docs.
pub struct StoreShard {
    layout: ShardLayout,
    alloc: BlockAllocator,
    objects: Vec<ObjectState>,
    by_name: HashMap<String, ObjectId>,
    /// Blocks superseded by a commit, recyclable once the entry's instant
    /// has passed: a min-heap on the gating instant, popped until `now`.
    pending_free: BinaryHeap<Reverse<(Nanos, Vec<u64>)>>,
    /// Retained snapshots, in catalog order.
    snapshots: Vec<SnapState>,
    /// Snapshot name → index into `snapshots`, so per-page snapshot reads
    /// do not linear-scan the catalog.
    snap_by_name: HashMap<String, usize>,
    /// False while some snapshot adopted by `open` has not yet had its
    /// pin set enumerated. No block may be freed until this is true.
    pins_ready: bool,
    /// Next snapshot-catalog sequence number.
    snap_seq: u64,
    /// Pin refcount per disk block reachable from a retained snapshot.
    /// Pinned blocks are withheld from recycling instead of freed.
    snap_pins: HashMap<u64, u32>,
    /// Pinned blocks whose recycle gate has already passed: they return
    /// to the allocator the moment their last pin drops.
    withheld: HashSet<u64>,
    /// What each batch-ring slot currently holds: the `(object, epoch)`
    /// of every group in the record occupying it. A slot entry is *live*
    /// while its epoch is newer than the object's latest full root, and a
    /// live entry forces a full-root flush before the slot is reused.
    batch_ring: Vec<Vec<(ObjectId, Epoch)>>,
    /// Next store-wide batch sequence number.
    batch_seq: u64,
    stats: StoreStats,
    /// Ablation knob: disable the delta-record fast path (every commit
    /// flushes tree nodes and writes a full root).
    delta_commits: bool,
    /// Unified CLOCK block cache serving page reads, snapshot reads, and
    /// radix-node hydration. Invalidated on write; discarded across
    /// `open` (recovery never trusts pre-crash cached state).
    cache: BlockCache,
    /// Blocks whose media failed digest verification: withheld from the
    /// allocator forever — never recycled, never served again.
    quarantined: HashSet<u64>,
    /// Resumable scrub cursor: the next `(object index, page)` to
    /// verify. `(objects.len(), _)` marks a pass boundary.
    scrub_cursor: (usize, u64),
    /// Node blocks already media-verified in the current scrub pass.
    /// Committed COW nodes are shared across objects and snapshots, so
    /// each block is read once per pass. Cleared when the pass wraps.
    scrub_verified: HashSet<u64>,
    /// Cumulative scrub statistics.
    scrub_stats: ScrubStats,
    /// Corrupt pages with no clean local source, waiting for a peer
    /// copy via [`StoreShard::repair_page`].
    unrepaired: Vec<UnrepairedPage>,
}

impl fmt::Debug for StoreShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreShard")
            .field("objects", &self.objects.len())
            .field("high_water", &self.alloc.high_water())
            .finish()
    }
}

impl StoreShard {
    /// Formats `disk` with an empty store and returns it.
    ///
    /// Formatting happens before any workload runs; injecting faults into
    /// it is unsupported, so a device error here is a setup bug and
    /// panics.
    pub fn format(disk: &mut Disk) -> Self {
        let alloc = BlockAllocator::with_capacity(FIRST_DATA_BLOCK, disk.config().capacity_blocks);
        let shard = Self::format_at(disk, ShardLayout::legacy(), alloc);
        disk.settle();
        shard
    }

    /// Formats one shard's metadata slab at `layout` and returns the
    /// shard working out of `alloc`. Used by the legacy [`StoreShard::format`]
    /// (layout base 0, capacity-bounded allocator) and by the sharded
    /// wrapper (per-shard slabs, broker-range-bounded allocators). The
    /// caller settles the device once all shards are formatted.
    pub(crate) fn format_at(disk: &mut Disk, layout: ShardLayout, alloc: BlockAllocator) -> Self {
        let mut sb = [0u8; BLOCK_SIZE];
        sb[0..8].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
        disk.write_block_at(Nanos::ZERO, layout.superblock(), &sb)
            .expect("formatting a faulty device is unsupported");
        let zero = [0u8; BLOCK_SIZE];
        let dir = layout.dir_start();
        let ring = layout.batch_ring_start();
        let cat = layout.snap_catalog_start();
        for b in (dir..dir + DIR_BLOCKS)
            .chain(ring..ring + BATCH_SLOTS)
            .chain(cat..cat + SNAP_CATALOG_SLOTS)
        {
            disk.write_block_at(Nanos::ZERO, b, &zero)
                .expect("formatting a faulty device is unsupported");
        }
        StoreShard {
            layout,
            alloc,
            objects: Vec::new(),
            by_name: HashMap::new(),
            pending_free: BinaryHeap::new(),
            snapshots: Vec::new(),
            snap_by_name: HashMap::new(),
            pins_ready: true,
            snap_seq: 0,
            snap_pins: HashMap::new(),
            withheld: HashSet::new(),
            batch_ring: vec![Vec::new(); BATCH_SLOTS as usize],
            batch_seq: 0,
            stats: StoreStats::default(),
            delta_commits: true,
            cache: BlockCache::new(DEFAULT_CACHE_BLOCKS),
            quarantined: HashSet::new(),
            scrub_cursor: (0, 0),
            scrub_verified: HashSet::new(),
            scrub_stats: ScrubStats::default(),
            unrepaired: Vec::new(),
        }
    }

    /// Opens the store from a (possibly crashed) device: adopt each
    /// object's newest valid full root, replay consecutive delta records
    /// on top, and rebuild the allocator past every reachable block.
    ///
    /// Recovery IO is **O(dirty set), not O(object size)**: trees are
    /// adopted as unloaded wrappers around their committed root blocks
    /// (hydrated on first touch), and the allocator frontier comes from
    /// the root records' persisted `high_water` — the bump frontier is
    /// monotone, so the newest durable root of each object covers every
    /// block any earlier commit allocated — raised past each replayed
    /// delta's data blocks. Blocks of *unreplayed* (torn) deltas are
    /// unreferenced garbage and safe to reuse. Retained snapshots are
    /// adopted unloaded too; their pin sets materialize on demand before
    /// the store frees its first block (`ensure_pins`).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFormatted`] if the superblock is missing.
    pub fn open(vt: &mut Vt, disk: &mut Disk) -> Result<Self, StoreError> {
        Self::open_at(vt, disk, ShardLayout::legacy(), false)
    }

    /// Opens one shard from its metadata slab at `layout`. With
    /// `bounded_alloc` the recovered allocator is range-bounded at its
    /// own frontier (hands out nothing until the wrapper re-grants the
    /// tail of the frontier's extent); without it the allocator bumps
    /// freely to the device capacity — the legacy single-shard mode.
    pub(crate) fn open_at(
        vt: &mut Vt,
        disk: &mut Disk,
        layout: ShardLayout,
        bounded_alloc: bool,
    ) -> Result<Self, StoreError> {
        let mut sb = [0u8; BLOCK_SIZE];
        disk.read_block(vt, layout.superblock(), &mut sb);
        if u64::from_le_bytes(sb[0..8].try_into().unwrap()) != SUPER_MAGIC {
            return Err(StoreError::NotFormatted);
        }

        let mut entries = Vec::new();
        let mut buf = [0u8; BLOCK_SIZE];
        let dir_start = layout.dir_start();
        for b in dir_start..dir_start + DIR_BLOCKS {
            disk.read_block(vt, b, &mut buf);
            for i in 0..ENTRIES_PER_BLOCK {
                if let Some(e) = DirEntry::decode(&buf[i * DIR_ENTRY_LEN..(i + 1) * DIR_ENTRY_LEN])
                {
                    entries.push(e);
                }
            }
        }

        // Scan the batch ring once: rebuild the next sequence number and
        // the slot occupancy, and bucket each record's groups by object so
        // the per-object replay below can fold them into its delta chain.
        let mut batch_seq = 0u64;
        let mut batch_ring: Vec<Vec<(ObjectId, Epoch)>> = vec![Vec::new(); BATCH_SLOTS as usize];
        let mut batch_groups: HashMap<u32, Vec<BatchGroup>> = HashMap::new();
        for i in 0..BATCH_SLOTS {
            vt.charge(Category::FileSystem, costs::ROOT_PARSE);
            disk.read_block(vt, layout.batch_ring_start() + i, &mut buf);
            if let Some(rec) = BatchRecord::from_block(&buf) {
                batch_seq = batch_seq.max(rec.seq + 1);
                batch_ring[i as usize] = rec.groups.iter().map(|g| (g.object, g.epoch)).collect();
                for g in rec.groups {
                    batch_groups.entry(g.object.0).or_default().push(g);
                }
            }
        }

        let mut high_water = layout.data_floor;
        let mut objects: Vec<Option<ObjectState>> = Vec::new();
        let mut by_name = HashMap::new();
        for entry in entries {
            high_water = high_water.max(entry.meta_base + OBJECT_META_BLOCKS);

            // Newest valid full root.
            let mut base: Option<RootRecord> = None;
            let mut base_slot_index = 0;
            for i in 0..2 {
                vt.charge(Category::FileSystem, costs::ROOT_PARSE);
                disk.read_block(vt, entry.meta_base + i, &mut buf);
                if let Some(rec) = RootRecord::from_block(&buf, entry.id) {
                    // `flush_seq` breaks ties when both slots hold the
                    // *same* epoch: a repair commit rewrites the root at
                    // the current epoch, and recovery must adopt the
                    // repaired (higher-sequence) one.
                    if base.is_none_or(|b| {
                        rec.epoch > b.epoch || (rec.epoch == b.epoch && rec.flush_seq > b.flush_seq)
                    }) {
                        base = Some(rec);
                        base_slot_index = i;
                    }
                }
            }
            let base_epoch = base.map_or(0, |b| b.epoch);
            let mut tree = match base {
                Some(rec) => {
                    RadixTree::from_committed_digest(rec.tree_root, rec.root_digest, rec.len_pages)
                }
                None => RadixTree::new(),
            };

            // Collect valid delta records newer than the base, plus this
            // object's groups from the batch ring (a batched commit is a
            // delta whose record happens to be shared with other objects).
            let mut deltas = Vec::new();
            for i in 0..DELTA_SLOTS {
                vt.charge(Category::FileSystem, costs::ROOT_PARSE);
                disk.read_block(vt, entry.meta_base + 2 + i, &mut buf);
                if let Some(rec) = DeltaRecord::from_block(&buf, entry.id) {
                    if rec.epoch > base_epoch {
                        deltas.push(rec);
                    }
                }
            }
            for g in batch_groups.remove(&entry.id.0).unwrap_or_default() {
                if g.epoch > base_epoch {
                    deltas.push(DeltaRecord {
                        object: entry.id,
                        epoch: g.epoch,
                        len_pages: g.len_pages,
                        payload_sum: g.payload_sum,
                        pairs: g.pairs,
                    });
                }
            }
            deltas.sort_by_key(|d| d.epoch);
            // Replay the consecutive prefix. Each record's data extent is
            // re-read and checked against the record's `payload_sum`
            // before the commit is applied: a record can be durable while
            // its data was torn or bit-flipped (the device "lied"), and
            // the checksum is what keeps such a commit — and everything
            // after it — out of the recovered prefix. With the batch ring
            // a *stale* record (a truncated-future epoch whose slot was
            // not yet reused) can share an epoch with the live chain, so
            // every candidate at the next epoch is tried and the first
            // one whose payload verifies extends the prefix.
            let mut epoch = base_epoch;
            let mut i = 0;
            while i < deltas.len() {
                if deltas[i].epoch != epoch + 1 {
                    // Past the chain tip (or a duplicate of an epoch that
                    // already verified): skip candidates until the chain
                    // either extends or provably ends.
                    if deltas[i].epoch <= epoch {
                        i += 1;
                        continue;
                    }
                    break;
                }
                let delta = &deltas[i];
                i += 1;
                let mut sum = layout::FNV_OFFSET;
                let mut digests = Vec::with_capacity(delta.pairs.len());
                for (_, word) in &delta.pairs {
                    let (block, _) = layout::unpack_entry(*word);
                    disk.read_block(vt, block, &mut buf);
                    sum = layout::fnv1a_extend(sum, &buf);
                    digests.push(layout::digest32(&buf));
                }
                if sum != delta.payload_sum {
                    // A torn candidate: another record of the same epoch
                    // (if any) may still verify, so only this candidate is
                    // rejected, not the whole tail.
                    continue;
                }
                // Replay hydrates only the touched paths. Hydration now
                // verifies node digests, so a rotted node under the base
                // root truncates the chain here (crash-atomically, before
                // any of this delta's pairs apply) instead of panicking —
                // scrub surfaces the rot afterwards.
                let mut meta_ok = true;
                for (page, _) in &delta.pairs {
                    if tree
                        .hydrate_path(*page, &mut |b, out| {
                            disk.read_block(vt, b, out);
                            Ok(())
                        })
                        .is_err()
                    {
                        meta_ok = false;
                        break;
                    }
                }
                if !meta_ok {
                    break;
                }
                for ((page, word), digest) in delta.pairs.iter().zip(digests) {
                    let (block, _) = layout::unpack_entry(*word);
                    // The payload checksum above just verified the data,
                    // so the freshly computed digest is authoritative —
                    // pre-digest (v1) records backfill here for free.
                    tree.set_entry(*page, block, digest);
                    high_water = high_water.max(block + 1);
                }
                epoch = delta.epoch;
            }
            let _ = tree.take_freed();

            // The newest durable root's `high_water` is the allocator
            // frontier as of that commit; the frontier is monotone, so it
            // covers every data and node block any earlier commit of any
            // object allocated. No tree walk needed.
            if let Some(rec) = base {
                high_water = high_water.max(rec.high_water).max(rec.tree_root + 1);
            }

            let idx = entry.id.0 as usize;
            if objects.len() <= idx {
                objects.resize_with(idx + 1, || None);
            }
            by_name.insert(entry.name.clone(), entry.id);
            objects[idx] = Some(ObjectState {
                entry,
                tree,
                epoch,
                last_commit: Nanos::ZERO,
                deltas_since_full: epoch - base_epoch,
                // v2 roots persist their full-root sequence number; v1
                // roots (flush_seq 0) fall back to the slot-parity rule.
                full_count: base.map_or(0, |b| {
                    if b.flush_seq > 0 {
                        b.flush_seq
                    } else {
                        base_slot_index + 1
                    }
                }),
                node_freed_pending: Vec::new(),
                chain_completes: Nanos::ZERO,
            });
        }

        let objects: Vec<ObjectState> = objects
            .into_iter()
            .map(|o| o.expect("directory ids are dense"))
            .collect();

        // Snapshot catalog: adopt the valid slot with the highest seq (a
        // torn catalog write leaves the previous catalog intact). Trees
        // are adopted unloaded — pin sets materialize on demand (see
        // `ensure_pins`) before anything is freed. Pinned blocks need no
        // frontier adjustment here: every snapshot block was allocated at
        // or before its object's root flush, so the newest durable roots'
        // monotone `high_water` already covers them.
        let mut catalog: Option<SnapCatalog> = None;
        for i in 0..SNAP_CATALOG_SLOTS {
            vt.charge(Category::FileSystem, costs::ROOT_PARSE);
            disk.read_block(vt, layout.snap_catalog_start() + i, &mut buf);
            if let Some(cat) = SnapCatalog::from_block(&buf) {
                if catalog.as_ref().is_none_or(|c| cat.seq > c.seq) {
                    catalog = Some(cat);
                }
            }
        }
        let catalog = catalog.unwrap_or_default();
        let snap_seq = if catalog.entries.is_empty() && catalog.seq == 0 {
            0
        } else {
            catalog.seq + 1
        };
        let mut snapshots = Vec::with_capacity(catalog.entries.len());
        let mut snap_by_name = HashMap::new();
        for entry in catalog.entries {
            if entry.object.0 as usize >= objects.len() {
                continue; // catalog can never outrun the directory
            }
            high_water = high_water.max(entry.tree_root + 1);
            let tree = RadixTree::from_committed_digest(
                entry.tree_root,
                entry.root_digest,
                entry.len_pages,
            );
            snap_by_name.insert(entry.name.clone(), snapshots.len());
            snapshots.push(SnapState {
                entry,
                tree,
                blocks: Vec::new(),
                pinned: false,
            });
        }
        let pins_ready = snapshots.is_empty();

        Ok(StoreShard {
            layout,
            alloc: if bounded_alloc {
                // The wrapper re-grants the unallocated tail of the
                // frontier's extent (and anything newer) from broker
                // state it recovers across all shards.
                BlockAllocator::bounded(high_water, high_water)
            } else {
                BlockAllocator::with_capacity(high_water, disk.config().capacity_blocks)
            },
            objects,
            by_name,
            pending_free: BinaryHeap::new(),
            snapshots,
            snap_by_name,
            pins_ready,
            snap_seq,
            snap_pins: HashMap::new(),
            withheld: HashSet::new(),
            batch_ring,
            batch_seq,
            stats: StoreStats::default(),
            delta_commits: true,
            cache: BlockCache::new(DEFAULT_CACHE_BLOCKS),
            quarantined: HashSet::new(),
            scrub_cursor: (0, 0),
            scrub_verified: HashSet::new(),
            scrub_stats: ScrubStats::default(),
            unrepaired: Vec::new(),
        })
    }

    /// Creates a new empty object named `name`.
    ///
    /// The directory update is synchronous: once `create` returns, the
    /// object exists after a crash.
    ///
    /// # Errors
    ///
    /// [`StoreError::Exists`], [`StoreError::NameTooLong`],
    /// [`StoreError::TooManyObjects`], [`StoreError::OutOfSpace`], or —
    /// if the directory write fails after retries — [`StoreError::Io`].
    /// On error the store is unchanged and no blocks are leaked.
    pub fn create(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        name: &str,
    ) -> Result<ObjectId, StoreError> {
        if name.len() > NAME_LEN {
            return Err(StoreError::NameTooLong);
        }
        if self.by_name.contains_key(name) {
            return Err(StoreError::Exists);
        }
        if self.objects.len() >= MAX_OBJECTS {
            return Err(StoreError::TooManyObjects);
        }
        let id = ObjectId(self.objects.len() as u32);
        let meta_base = self
            .alloc
            .alloc_contiguous(OBJECT_META_BLOCKS)
            .ok_or(StoreError::OutOfSpace)?;
        let entry = DirEntry {
            name: name.to_string(),
            id,
            meta_base,
        };
        self.objects.push(ObjectState {
            entry: entry.clone(),
            tree: RadixTree::new(),
            epoch: 0,
            last_commit: Nanos::ZERO,
            deltas_since_full: 0,
            full_count: 0,
            node_freed_pending: Vec::new(),
            chain_completes: Nanos::ZERO,
        });
        self.by_name.insert(name.to_string(), id);
        if let Err(e) = self.write_dir_entry(vt, disk, &entry) {
            // Clean abort: the object never existed.
            self.by_name.remove(name);
            self.objects.pop();
            for b in meta_base..meta_base + OBJECT_META_BLOCKS {
                self.alloc.free(b);
            }
            return Err(e);
        }
        Ok(id)
    }

    /// Looks up an object by name.
    pub fn lookup(&self, name: &str) -> Option<ObjectId> {
        self.by_name.get(name).copied()
    }

    /// Names of all objects, in id order.
    pub fn object_names(&self) -> Vec<String> {
        self.objects.iter().map(|o| o.entry.name.clone()).collect()
    }

    /// The object's current epoch.
    pub fn epoch(&self, id: ObjectId) -> Epoch {
        self.objects[id.0 as usize].epoch
    }

    /// The object's length in pages.
    pub fn len_pages(&self, id: ObjectId) -> u64 {
        self.objects[id.0 as usize].tree.len_pages()
    }

    /// The durability instant of the object's latest μCheckpoint.
    pub fn last_commit(&self, id: ObjectId) -> Nanos {
        self.objects[id.0 as usize].last_commit
    }

    /// Store-wide statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Grants the block range `[start, end)` to this shard's allocator.
    /// Only meaningful for bounded (broker-fed) shards.
    pub(crate) fn grant_range(&mut self, start: u64, end: u64) {
        self.alloc.add_range(start, end);
    }

    /// The shard's bump frontier (next never-allocated block).
    pub(crate) fn high_water(&self) -> u64 {
        self.alloc.high_water()
    }

    /// Sum of all object epochs: the shard's logical clock. Every commit
    /// advances exactly one object's epoch by one, so this sum is a
    /// monotone counter that recovery reconstructs for free from the
    /// recovered roots — the per-shard component of a vector cut.
    pub(crate) fn epoch_sum(&self) -> u64 {
        self.objects.iter().map(|o| o.epoch).sum()
    }

    /// Max durability frontier over all objects: the instant by which
    /// every commit this shard has ever initiated is on the device.
    pub(crate) fn max_chain_completes(&self) -> Nanos {
        self.objects
            .iter()
            .map(|o| o.chain_completes)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// The name of a (shard-local) object id, if it exists.
    pub(crate) fn object_name(&self, id: ObjectId) -> Option<&str> {
        self.objects
            .get(id.0 as usize)
            .map(|o| o.entry.name.as_str())
    }

    /// Resizes the block cache to `blocks` 4 KiB slots, dropping current
    /// contents. Zero disables caching (every read goes to the device).
    pub fn set_cache_capacity(&mut self, blocks: usize) {
        self.cache = BlockCache::new(blocks);
    }

    /// Drops every cached block without resizing. Tests that corrupt the
    /// device behind the store's back call this so the next read observes
    /// the raw device, as direct IO would.
    pub fn drop_cache(&mut self) {
        self.cache.clear();
    }

    /// Blocks currently resident in the cache.
    pub fn cached_blocks(&self) -> usize {
        self.cache.len()
    }

    /// Ablation knob: when `false`, every μCheckpoint flushes the COW
    /// tree and writes a full root (no delta-record fast path).
    pub fn set_delta_commits(&mut self, enabled: bool) {
        self.delta_commits = enabled;
    }

    /// Commits a μCheckpoint: durably persists `pages` (page-index, page
    /// image) into `object` as one atomic epoch.
    ///
    /// The call charges the *CPU* cost of initiating the writes and
    /// returns without blocking; the returned token carries the
    /// completion instant. Synchronous callers follow with
    /// [`StoreShard::wait`].
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfSpace`] when the extent (or the tree-node
    /// blocks of a full commit) cannot be allocated, and
    /// [`StoreError::Io`] when a device write fails after
    /// [`MAX_IO_ATTEMPTS`] bounded retries of transient faults. Either
    /// way the commit aborts *cleanly*: the object stays at its previous
    /// epoch, the in-memory tree is unchanged, and every block the
    /// attempt allocated is returned to the allocator — a failed persist
    /// leaks nothing and the caller may simply retry.
    ///
    /// # Panics
    ///
    /// Panics if any page image is not exactly [`BLOCK_SIZE`] bytes.
    pub fn persist(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        pages: &[(u64, &[u8])],
    ) -> Result<CommitToken, StoreError> {
        // Recycle blocks whose gating instant has passed. This is
        // commit-independent maintenance: it stays applied even if this
        // commit aborts. Pins must be materialized before anything is
        // freed.
        self.ensure_pins(vt, disk)?;
        self.recycle_pending(vt.now());

        // Demand-load the tree paths this commit will touch *before* any
        // allocation or mutation: a failed node read aborts with the
        // object untouched.
        self.hydrate_object_paths(vt, disk, object, pages)?;

        vt.charge(
            Category::FileSystem,
            costs::INITIATE_BASE + costs::INITIATE_PER_PAGE * pages.len() as u64,
        );

        let state = &mut self.objects[object.0 as usize];
        let epoch = state.epoch + 1;
        let use_delta = self.delta_commits
            && pages.len() <= MAX_DELTA_PAIRS
            && state.deltas_since_full + 1 < DELTA_SLOTS;

        let token = if use_delta {
            // Fast path: data extent + one delta record. The in-memory
            // tree is not touched until both writes succeed, so aborting
            // only needs the allocator snapshot. Dirty tree nodes stay in
            // memory; their superseded on-disk versions wait for the next
            // full root.

            // Abort-safety snapshot. The allocator is cheap to clone (a
            // bump pointer plus the free set), and restoring it un-does
            // every allocation of an aborted commit in one move.
            let alloc_snapshot = self.alloc.clone();
            let Some(first) = self.alloc.alloc_contiguous(pages.len() as u64) else {
                return Err(StoreError::OutOfSpace);
            };
            let mut iov: Vec<(u64, &[u8])> = Vec::with_capacity(pages.len() + 1);
            let mut delta_pairs = Vec::with_capacity(pages.len());
            for (i, (page, data)) in pages.iter().enumerate() {
                let block = first + i as u64;
                // Pair words carry the page digest in their high half, so
                // the existing record checksum covers it.
                delta_pairs.push((*page, layout::pack_entry(block, layout::digest32(data))));
                iov.push((block, data));
            }
            let len_pages = pages
                .iter()
                .map(|(p, _)| p + 1)
                .fold(state.tree.len_pages(), u64::max);
            let payload_sum = iov
                .iter()
                .fold(layout::FNV_OFFSET, |h, (_, d)| layout::fnv1a_extend(h, d));
            let record = DeltaRecord {
                object,
                epoch,
                len_pages,
                payload_sum,
                pairs: delta_pairs,
            };
            let slot = state.entry.delta_slot(epoch);
            let cache = &mut self.cache;
            let token = (|| {
                let data_token = writev_retry(disk, vt.now(), &iov, cache)?;
                writev_retry(
                    disk,
                    data_token.completes(),
                    &[(slot, &record.to_block())],
                    cache,
                )
            })();
            let token = match token {
                Ok(t) => t,
                Err(e) => {
                    self.alloc = alloc_snapshot;
                    return Err(e.into());
                }
            };
            // Durable: apply the commit to the in-memory tree. Superseded
            // data blocks are still referenced by older delta records in
            // the ring (recovery re-reads them to verify `payload_sum`),
            // so like superseded nodes they are quarantined until the next
            // full root supersedes the whole ring — never recycled early.
            for (page, word) in &record.pairs {
                let (block, digest) = layout::unpack_entry(*word);
                if let Some(old) = state.tree.set_entry(*page, block, digest) {
                    state.node_freed_pending.push(old);
                }
            }
            state.node_freed_pending.extend(state.tree.take_freed());
            state.deltas_since_full += 1;
            state.epoch = epoch;
            state.chain_completes = state.chain_completes.max(token.completes());
            state.last_commit = token.completes();
            self.stats.delta_commits += 1;
            CommitToken {
                epoch,
                completes: token.completes(),
                bytes_written: (pages.len() as u64 + 1) * BLOCK_SIZE as u64,
            }
        } else {
            // Slow path: flush dirty COW nodes and write a full root.
            self.full_commit(vt, disk, object, pages, epoch)?
        };

        self.stats.commits += 1;
        self.stats.pages_written += pages.len() as u64;
        Ok(token)
    }

    /// Shared full-commit core: COW-sets `pages` into the tree at
    /// `epoch`, flushes every dirty node, writes data + nodes as one
    /// extent followed by a full root record, and updates all commit
    /// state. `epoch` may equal the object's current epoch (a data-less
    /// root flush) or jump ahead of it (replica image application); the
    /// root record is the single commit point either way.
    ///
    /// On error the tree and allocator are restored; nothing leaks.
    fn full_commit(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        pages: &[(u64, &[u8])],
        epoch: Epoch,
    ) -> Result<CommitToken, StoreError> {
        let alloc_snapshot = self.alloc.clone();
        let state = &mut self.objects[object.0 as usize];
        // The tree must be mutated *before* the IO (node images are
        // serialized from it), so abort restores a pre-commit clone. Full
        // commits are the rare path (every DELTA_SLOTS-th commit,
        // oversized commits, snapshot/image flushes), which keeps the
        // clone cost amortized.
        let tree_snapshot = state.tree.clone();

        let data_blocks = match self.alloc.alloc_contiguous(pages.len() as u64) {
            Some(first) => first,
            None if pages.is_empty() => 0,
            None => return Err(StoreError::OutOfSpace),
        };
        let mut iov: Vec<(u64, &[u8])> = Vec::with_capacity(pages.len() + 8);
        let mut data_freed = Vec::new();
        for (i, (page, data)) in pages.iter().enumerate() {
            let block = data_blocks + i as u64;
            iov.push((block, data));
            if let Some(old) = state.tree.set_entry(*page, block, layout::digest32(data)) {
                data_freed.push(old);
            }
        }
        // The commit closure cannot fail, so allocator exhaustion is
        // flagged and handed out of never-written scratch blocks, then
        // the whole commit aborts.
        let mut exhausted = false;
        let mut scratch = SCRATCH_BLOCK_BASE;
        let mut node_writes = Vec::new();
        let tree_root = state.tree.commit(
            &mut || match self.alloc.alloc() {
                Some(b) => b,
                None => {
                    exhausted = true;
                    scratch += 1;
                    scratch
                }
            },
            &mut node_writes,
        );
        if exhausted {
            state.tree = tree_snapshot;
            self.alloc = alloc_snapshot;
            return Err(StoreError::OutOfSpace);
        }
        vt.charge(
            Category::FileSystem,
            costs::NODE_SERIALIZE * node_writes.len() as u64,
        );
        for (block, image) in &node_writes {
            iov.push((*block, image));
        }
        let record = RootRecord {
            object,
            epoch,
            tree_root,
            len_pages: state.tree.len_pages(),
            // The bump frontier *after* this commit's allocations: at
            // recovery the newest durable root's frontier covers every
            // block any earlier commit allocated, which is what lets
            // `open` skip the O(object) tree walk.
            high_water: self.alloc.high_water(),
            root_digest: state.tree.committed_root_digest(),
            flush_seq: state.full_count + 1,
        };
        let slot = state.entry.root_slot(state.full_count + 1);
        let cache = &mut self.cache;
        let token = (|| {
            let record_at = if iov.is_empty() {
                vt.now()
            } else {
                writev_retry(disk, vt.now(), &iov, cache)?.completes()
            };
            writev_retry(disk, record_at, &[(slot, &record.to_block())], cache)
        })();
        let token = match token {
            Ok(t) => t,
            Err(e) => {
                state.tree = tree_snapshot;
                self.alloc = alloc_snapshot;
                return Err(e.into());
            }
        };
        state.full_count += 1;
        // Everything superseded up to and including this full root is
        // recyclable once it is durable.
        data_freed.append(&mut state.node_freed_pending);
        data_freed.extend(state.tree.take_freed());
        state.deltas_since_full = 0;
        state.epoch = epoch;
        state.chain_completes = state.chain_completes.max(token.completes());
        state.last_commit = token.completes();
        self.pending_free
            .push(Reverse((state.chain_completes, data_freed)));
        self.stats.nodes_written += node_writes.len() as u64;

        Ok(CommitToken {
            epoch,
            completes: token.completes(),
            bytes_written: (pages.len() as u64 + node_writes.len() as u64 + 1) * BLOCK_SIZE as u64,
        })
    }

    /// Commits several objects' μCheckpoints as **one** batched
    /// submission (the group-commit path): a single contiguous data
    /// extent covering every group's pages followed by a single
    /// [`BatchRecord`] carrying each object's `(page, block)` pairs and
    /// per-object payload checksum. `INITIATE_BASE` and the commit-record
    /// IO are paid once for the whole batch instead of once per object.
    ///
    /// Each group still commits its own epoch and gets its own
    /// [`CommitToken`] (all sharing the batch's completion instant), and
    /// recovery truncation stays per-object: a torn extent segment only
    /// truncates the chains of the objects whose payload it corrupts.
    ///
    /// Batches of zero or one group, and batches too large for one
    /// record block, fall back to [`StoreShard::persist`] per group.
    ///
    /// # Errors
    ///
    /// As for [`StoreShard::persist`]. The batched submission is
    /// all-or-nothing: on error **no** group's epoch advances and every
    /// allocated block is returned. (In the serial fallback, groups
    /// committed before the failing one stay committed, exactly as
    /// separate `persist` calls would.)
    ///
    /// # Panics
    ///
    /// Panics if a group is empty, an object appears in more than one
    /// group, or a page image is not exactly [`BLOCK_SIZE`] bytes.
    #[allow(clippy::type_complexity)]
    pub fn persist_batch(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        groups: &[(ObjectId, &[(u64, &[u8])])],
    ) -> Result<Vec<CommitToken>, StoreError> {
        self.ensure_pins(vt, disk)?;
        self.recycle_pending(vt.now());
        // Small or oversized batches gain nothing from the shared record:
        // take the plain per-object path (which also keeps the
        // single-caller cost model exactly as Table 5 calibrates it).
        if groups.len() <= 1 || !BatchRecord::fits(groups.iter().map(|(_, p)| p.len())) {
            return groups
                .iter()
                .map(|(obj, pages)| self.persist(vt, disk, *obj, pages))
                .collect();
        }
        {
            let mut seen: Vec<u32> = groups.iter().map(|(o, _)| o.0).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), groups.len(), "one group per object");
        }
        assert!(
            groups.iter().all(|(_, p)| !p.is_empty()),
            "batched groups carry at least one page"
        );

        // Demand-load every touched tree path up front: a failed node
        // read aborts the whole batch before any group is mutated.
        for (object, pages) in groups {
            self.hydrate_object_paths(vt, disk, *object, pages)?;
        }

        // Maintenance before the batch proper, charged to the submitter
        // and kept even if the batch later aborts (like block recycling):
        // any object whose chain would outgrow its delta window, and any
        // object still live in the ring slot this batch is about to
        // overwrite, first flushes a full root.
        let slot = (self.batch_seq % BATCH_SLOTS) as usize;
        for (object, _) in groups {
            let state = &self.objects[object.0 as usize];
            if state.deltas_since_full + 1 >= DELTA_SLOTS {
                self.flush_full_root(vt, disk, *object)?;
            }
        }
        for (object, epoch) in self.batch_ring[slot].clone() {
            let state = &self.objects[object.0 as usize];
            if epoch > state.epoch - state.deltas_since_full {
                self.flush_full_root(vt, disk, object)?;
            }
        }

        // One initiation charge for the whole batch: this is the
        // amortization that group commit buys.
        let total_pages: usize = groups.iter().map(|(_, p)| p.len()).sum();
        vt.charge(
            Category::FileSystem,
            costs::INITIATE_BASE + costs::INITIATE_PER_PAGE * total_pages as u64,
        );

        let alloc_snapshot = self.alloc.clone();
        let Some(first) = self.alloc.alloc_contiguous(total_pages as u64) else {
            return Err(StoreError::OutOfSpace);
        };
        let mut iov: Vec<(u64, &[u8])> = Vec::with_capacity(total_pages + 1);
        let mut rec_groups = Vec::with_capacity(groups.len());
        let mut next = first;
        for (object, pages) in groups {
            let state = &self.objects[object.0 as usize];
            let len_pages = pages
                .iter()
                .map(|(p, _)| p + 1)
                .fold(state.tree.len_pages(), u64::max);
            let mut pairs = Vec::with_capacity(pages.len());
            let mut payload_sum = layout::FNV_OFFSET;
            for (page, data) in *pages {
                pairs.push((*page, layout::pack_entry(next, layout::digest32(data))));
                iov.push((next, *data));
                payload_sum = layout::fnv1a_extend(payload_sum, data);
                next += 1;
            }
            rec_groups.push(BatchGroup {
                object: *object,
                epoch: state.epoch + 1,
                len_pages,
                payload_sum,
                pairs,
            });
        }
        let record = BatchRecord {
            seq: self.batch_seq,
            groups: rec_groups,
        };
        let record_block = self.layout.batch_ring_start() + self.batch_seq % BATCH_SLOTS;
        let cache = &mut self.cache;
        let token = (|| {
            let data_token = writev_retry(disk, vt.now(), &iov, cache)?;
            writev_retry(
                disk,
                data_token.completes(),
                &[(record_block, &record.to_block())],
                cache,
            )
        })();
        let token = match token {
            Ok(t) => t,
            Err(e) => {
                self.alloc = alloc_snapshot;
                return Err(e.into());
            }
        };
        disk.note_merged(groups.len() as u64);

        // Durable: apply every group, exactly like the delta fast path.
        let mut tokens = Vec::with_capacity(groups.len());
        for g in &record.groups {
            let state = &mut self.objects[g.object.0 as usize];
            for (page, word) in &g.pairs {
                let (block, digest) = layout::unpack_entry(*word);
                if let Some(old) = state.tree.set_entry(*page, block, digest) {
                    state.node_freed_pending.push(old);
                }
            }
            state.node_freed_pending.extend(state.tree.take_freed());
            state.deltas_since_full += 1;
            state.epoch = g.epoch;
            state.chain_completes = state.chain_completes.max(token.completes());
            state.last_commit = token.completes();
            tokens.push(CommitToken {
                epoch: g.epoch,
                // The record block is shared; attribute it to the first
                // participant so batch bytes sum correctly.
                bytes_written: (g.pairs.len() as u64 + u64::from(tokens.is_empty()))
                    * BLOCK_SIZE as u64,
                completes: token.completes(),
            });
        }
        self.batch_ring[slot] = record.groups.iter().map(|g| (g.object, g.epoch)).collect();
        self.batch_seq += 1;
        self.stats.commits += groups.len() as u64;
        self.stats.delta_commits += groups.len() as u64;
        self.stats.batch_commits += 1;
        self.stats.batched_objects += groups.len() as u64;
        self.stats.pages_written += total_pages as u64;
        Ok(tokens)
    }

    /// Materializes the pin sets of snapshots adopted unloaded by
    /// [`StoreShard::open`]: hydrates each snapshot tree (through the
    /// block cache) and registers its reachable blocks in `snap_pins`.
    ///
    /// Called before any path that can free a block (recycling, snapshot
    /// deletion) — pins are consulted only at free time, so deferring
    /// them is what makes `open` O(1) IO even with retained snapshots.
    /// Until the first free, the allocator hands out only blocks past the
    /// recovered frontier, which no snapshot can reach. Materialization
    /// is per-snapshot atomic: a failed read leaves the remaining
    /// snapshots unpinned and the call retryable.
    fn ensure_pins(&mut self, vt: &mut Vt, disk: &mut Disk) -> Result<(), StoreError> {
        if self.pins_ready {
            return Ok(());
        }
        for i in 0..self.snapshots.len() {
            if self.snapshots[i].pinned {
                continue;
            }
            let blocks = {
                let snap = &mut self.snapshots[i];
                let cache = &mut self.cache;
                let stats = &mut self.stats;
                snap.tree.reachable_blocks_with(&mut |b, out| {
                    read_block_cached(vt, disk, cache, stats, b, out, true)
                })?
            };
            for &b in &blocks {
                *self.snap_pins.entry(b).or_insert(0) += 1;
            }
            let snap = &mut self.snapshots[i];
            snap.blocks = blocks;
            snap.pinned = true;
        }
        self.pins_ready = true;
        Ok(())
    }

    /// Demand-loads the tree paths `pages` will touch, before any commit
    /// mutation: a failed node read surfaces here, with the tree, cache,
    /// and allocator all unchanged.
    fn hydrate_object_paths(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        pages: &[(u64, &[u8])],
    ) -> Result<(), StoreError> {
        let state = &mut self.objects[object.0 as usize];
        let cache = &mut self.cache;
        let stats = &mut self.stats;
        for (page, _) in pages {
            state.tree.hydrate_path(*page, &mut |b, out| {
                read_block_cached(vt, disk, cache, stats, b, out, true)
            })?;
        }
        Ok(())
    }

    /// Pops every `pending_free` entry whose gating instant has passed.
    /// Blocks pinned by a retained snapshot are **withheld** rather than
    /// freed — they return to the allocator only when their last pin
    /// drops — so pinned epochs survive the full-root flushes that would
    /// otherwise recycle their superseded blocks.
    fn recycle_pending(&mut self, now: Nanos) {
        while let Some(Reverse((gate, _))) = self.pending_free.peek() {
            if *gate > now {
                break;
            }
            let Reverse((_, blocks)) = self.pending_free.pop().expect("peeked entry exists");
            for b in blocks {
                if self.quarantined.contains(&b) {
                    // Rotted media: never recycled, never served again.
                } else if self.snap_pins.contains_key(&b) {
                    self.withheld.insert(b);
                } else {
                    self.alloc.free(b);
                }
            }
        }
    }

    /// Flushes `object`'s COW tree and writes a full root at its
    /// *current* epoch (no data, no epoch advance). This supersedes every
    /// delta and batch record of the object, freeing its delta window and
    /// releasing its claim on batch-ring slots.
    ///
    /// On error the tree and allocator are restored; nothing leaks.
    fn flush_full_root(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
    ) -> Result<(), StoreError> {
        let epoch = self.objects[object.0 as usize].epoch;
        self.full_commit(vt, disk, object, &[], epoch)?;
        Ok(())
    }

    /// Pins `object`'s current epoch as the named, persisted snapshot and
    /// returns the pinned epoch.
    ///
    /// The call first flushes a full root (so the pinned tree is wholly
    /// durable — the flush writes only *dirty* nodes, so snapshot cost is
    /// O(dirty set), not O(object size)), pins every block the tree
    /// reaches, and appends the snapshot to the catalog with a
    /// crash-atomic dual-slot write ordered after the root is durable: a
    /// crash mid-call leaves either no snapshot or a complete one. The
    /// snapshot shares all blocks with the live tree (COW); subsequent
    /// commits diverge from it without copying.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`], [`StoreError::NameTooLong`],
    /// [`StoreError::SnapshotExists`], [`StoreError::TooManySnapshots`],
    /// [`StoreError::OutOfSpace`], or [`StoreError::Io`]. On error the
    /// store is unchanged (a durable root flush may remain — harmless
    /// maintenance).
    pub fn snapshot_create(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        name: &str,
    ) -> Result<Epoch, StoreError> {
        if name.len() > NAME_LEN {
            return Err(StoreError::NameTooLong);
        }
        if self.snap_by_name.contains_key(name) {
            return Err(StoreError::SnapshotExists);
        }
        if self.snapshots.len() >= MAX_SNAPSHOTS {
            return Err(StoreError::TooManySnapshots);
        }
        if self.objects.get(object.0 as usize).is_none() {
            return Err(StoreError::NotFound);
        }
        self.flush_full_root(vt, disk, object)?;
        // Hydrate the live tree before cloning so the pin enumeration
        // below is infallible and the snapshot shares every resident
        // node with the live tree (the clone itself is O(1)).
        {
            let state = &mut self.objects[object.0 as usize];
            let cache = &mut self.cache;
            let stats = &mut self.stats;
            state.tree.hydrate_all(&mut |b, out| {
                read_block_cached(vt, disk, cache, stats, b, out, true)
            })?;
        }
        let state = &self.objects[object.0 as usize];
        let entry = SnapEntry {
            name: name.to_string(),
            object,
            epoch: state.epoch,
            tree_root: state.tree.committed_root(),
            len_pages: state.tree.len_pages(),
            root_digest: state.tree.committed_root_digest(),
        };
        let tree = state.tree.clone();
        let root_durable = state.chain_completes;
        let blocks = tree.reachable_blocks();
        for &b in &blocks {
            *self.snap_pins.entry(b).or_insert(0) += 1;
        }
        let epoch = entry.epoch;
        self.snap_by_name
            .insert(name.to_string(), self.snapshots.len());
        self.snapshots.push(SnapState {
            entry,
            tree,
            blocks,
            pinned: true,
        });
        if let Err(e) = self.write_catalog(vt, disk, root_durable) {
            let snap = self.snapshots.pop().expect("entry was just pushed");
            self.snap_by_name.remove(name);
            self.unpin(&snap.blocks);
            return Err(e);
        }
        Ok(epoch)
    }

    /// Drops the named snapshot: rewrites the catalog without it
    /// (crash-atomically) and releases its pins. Withheld blocks whose
    /// last pin drops return to the allocator immediately.
    ///
    /// # Errors
    ///
    /// [`StoreError::SnapshotNotFound`], or [`StoreError::Io`] if the
    /// catalog write fails (the snapshot is then still retained).
    pub fn snapshot_delete(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        name: &str,
    ) -> Result<(), StoreError> {
        let idx = *self
            .snap_by_name
            .get(name)
            .ok_or(StoreError::SnapshotNotFound)?;
        let snap = self.snapshots.remove(idx);
        self.rebuild_snap_index();
        if let Err(e) = self.write_catalog(vt, disk, vt.now()) {
            self.snapshots.insert(idx, snap);
            self.rebuild_snap_index();
            return Err(e);
        }
        // A snapshot adopted unloaded and deleted before its pins ever
        // materialized has nothing registered to release.
        self.unpin(&snap.blocks);
        Ok(())
    }

    /// Rebuilds the name → index map after `snapshots` reorders (removal
    /// shifts every later index).
    fn rebuild_snap_index(&mut self) {
        self.snap_by_name = self
            .snapshots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.entry.name.clone(), i))
            .collect();
    }

    /// The retained snapshots, in catalog order.
    pub fn snapshots(&self) -> Vec<SnapEntry> {
        self.snapshots.iter().map(|s| s.entry.clone()).collect()
    }

    /// Looks up a retained snapshot by name.
    pub fn snapshot_lookup(&self, name: &str) -> Option<&SnapEntry> {
        self.snap_by_name
            .get(name)
            .map(|&i| &self.snapshots[i].entry)
    }

    /// Reads one page of the named snapshot — the object's image as of
    /// the pinned epoch, regardless of anything committed since. Pages
    /// unwritten at that epoch read as zeroes.
    ///
    /// The snapshot is looked up by name in O(1), its tree hydrates on
    /// demand (only the touched path), and both node and data reads go
    /// through the block cache.
    ///
    /// # Errors
    ///
    /// [`StoreError::SnapshotNotFound`], or [`StoreError::Io`] if a
    /// demand-load read fails (the tree is left unpoisoned; retry after
    /// the fault clears).
    pub fn read_page_at(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        name: &str,
        page: u64,
        out: &mut [u8],
    ) -> Result<(), StoreError> {
        let idx = *self
            .snap_by_name
            .get(name)
            .ok_or(StoreError::SnapshotNotFound)?;
        let snap = &mut self.snapshots[idx];
        let cache = &mut self.cache;
        let stats = &mut self.stats;
        let entry = snap.tree.get_entry_or_load(page, &mut |b, buf| {
            read_block_cached(vt, disk, cache, stats, b, buf, true)
        })?;
        match entry {
            Some((block, digest)) => {
                read_block_cached(vt, disk, cache, stats, block, out, false)?;
                // Digests from pre-digest snapshots are unknown and skip
                // verification (no backfill either: a snapshot tree's
                // committed structure must stay intact for pins/diffs).
                if digest != DIGEST_NONE && layout::digest32(out) != digest {
                    cache.invalidate(block);
                    self.quarantined.insert(block);
                    let epoch = snap.entry.epoch;
                    out.fill(0);
                    return Err(StoreError::CorruptData { page, block, epoch });
                }
            }
            None => out.fill(0),
        }
        Ok(())
    }

    /// Pages that differ between two retained snapshots of the same
    /// object (in page order): the incremental delta a replica at
    /// `base`'s epoch needs to reach `target`'s. Shared COW subtrees are
    /// skipped without descent — and, for trees adopted unloaded by
    /// `open`, **without hydration**: equal committed block numbers on
    /// both sides imply identical subtrees (the COW invariant), so only
    /// divergent regions are demand-loaded. The walk is proportional to
    /// the changed region, not the object size. `base = None` diffs
    /// against the empty image (the full-sync fallback).
    ///
    /// # Errors
    ///
    /// [`StoreError::SnapshotNotFound`],
    /// [`StoreError::SnapshotMismatch`] if the snapshots belong to
    /// different objects, or [`StoreError::Io`] if a demand-load read of
    /// a divergent subtree fails (the trees stay unpoisoned; retry).
    pub fn snapshot_diff(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        base: Option<&str>,
        target: &str,
    ) -> Result<Vec<u64>, StoreError> {
        let ti = *self
            .snap_by_name
            .get(target)
            .ok_or(StoreError::SnapshotNotFound)?;
        let bi = match base {
            None => None,
            Some(n) => {
                let bi = *self
                    .snap_by_name
                    .get(n)
                    .ok_or(StoreError::SnapshotNotFound)?;
                if self.snapshots[bi].entry.object != self.snapshots[ti].entry.object {
                    return Err(StoreError::SnapshotMismatch);
                }
                Some(bi)
            }
        };
        // Split the snapshot vector so base and target can hydrate
        // independently during the walk.
        let (base_tree, target_tree) = match bi {
            None => (None, &mut self.snapshots[ti].tree),
            Some(bi) if bi == ti => return Ok(Vec::new()),
            Some(bi) => {
                let (lo, hi) = (bi.min(ti), bi.max(ti));
                let (left, right) = self.snapshots.split_at_mut(hi);
                let (a, b) = (&mut left[lo].tree, &mut right[0].tree);
                if bi < ti {
                    (Some(a), b)
                } else {
                    (Some(b), a)
                }
            }
        };
        let cache = &mut self.cache;
        let stats = &mut self.stats;
        let pairs = RadixTree::diff_pages_with(base_tree, target_tree, &mut |b, out| {
            read_block_cached(vt, disk, cache, stats, b, out, true)
        })?;
        Ok(pairs.into_iter().map(|(page, _)| page).collect())
    }

    /// Replica-side commit: applies `pages` as one crash-atomic full
    /// image landing exactly at `target_epoch` (which must be ahead of
    /// the object's current epoch — full roots, unlike delta records,
    /// may jump epochs). The root-record write is the single commit
    /// point, so a crash anywhere during the apply recovers the replica
    /// at exactly its previous epoch or exactly `target_epoch`, never
    /// between.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`], [`StoreError::StaleEpoch`],
    /// [`StoreError::OutOfSpace`], or [`StoreError::Io`]. On error the
    /// replica stays at its previous epoch and nothing leaks.
    pub fn apply_image(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        pages: &[(u64, &[u8])],
        target_epoch: Epoch,
    ) -> Result<CommitToken, StoreError> {
        self.ensure_pins(vt, disk)?;
        self.recycle_pending(vt.now());
        let state = self
            .objects
            .get(object.0 as usize)
            .ok_or(StoreError::NotFound)?;
        if target_epoch <= state.epoch {
            return Err(StoreError::StaleEpoch);
        }
        self.hydrate_object_paths(vt, disk, object, pages)?;
        vt.charge(
            Category::FileSystem,
            costs::INITIATE_BASE + costs::INITIATE_PER_PAGE * pages.len() as u64,
        );
        let token = self.full_commit(vt, disk, object, pages, target_epoch)?;
        self.stats.commits += 1;
        self.stats.pages_written += pages.len() as u64;
        Ok(token)
    }

    /// Advances `object` to `epoch` without changing its content: a
    /// data-less full root at the new epoch. Replication uses this as a
    /// **promotion fence**: a replica promoted to primary first jumps
    /// its epoch past anything the failed primary could have durably
    /// committed, so every epoch the new primary hands out is strictly
    /// newer than the abandoned history and [`StoreShard::apply_image`]'s
    /// forward-only rule keeps holding on every node.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`], [`StoreError::StaleEpoch`] if `epoch`
    /// is not ahead of the object, [`StoreError::OutOfSpace`], or
    /// [`StoreError::Io`]. On error the object is unchanged.
    pub fn fence_epoch(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        epoch: Epoch,
    ) -> Result<CommitToken, StoreError> {
        self.ensure_pins(vt, disk)?;
        self.recycle_pending(vt.now());
        let state = self
            .objects
            .get(object.0 as usize)
            .ok_or(StoreError::NotFound)?;
        if epoch <= state.epoch {
            return Err(StoreError::StaleEpoch);
        }
        vt.charge(Category::FileSystem, costs::INITIATE_BASE);
        let token = self.full_commit(vt, disk, object, &[], epoch)?;
        self.stats.commits += 1;
        Ok(token)
    }

    /// Rebase commit: applies `pages` **on top of the retained snapshot
    /// `base`** (not the live tree) as one crash-atomic full image at
    /// `target_epoch`, abandoning everything the object committed since
    /// the snapshot.
    ///
    /// This is how a failed primary rejoins as a replica: its live tree
    /// holds epochs the new primary never acknowledged (a divergent
    /// history), but both sides retain the last shipped-and-acked
    /// snapshot, so the new primary ships a delta diffed against that
    /// common base and the old primary lands it here. The root-record
    /// write is the single commit point — a crash mid-rebase recovers
    /// the object at exactly its divergent epoch or exactly
    /// `target_epoch`, never a blend. Blocks only the abandoned history
    /// reached are quarantined and recycled once the rebase root is
    /// durable (snapshot pins still withhold what retained epochs
    /// reach).
    ///
    /// # Errors
    ///
    /// [`StoreError::SnapshotNotFound`] / [`StoreError::SnapshotMismatch`]
    /// for a bad base, [`StoreError::NotFound`],
    /// [`StoreError::StaleEpoch`] if `target_epoch` is not ahead of the
    /// live epoch, [`StoreError::OutOfSpace`], or [`StoreError::Io`].
    /// On error the object keeps its divergent history unchanged.
    pub fn apply_image_at_base(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        base: &str,
        pages: &[(u64, &[u8])],
        target_epoch: Epoch,
    ) -> Result<CommitToken, StoreError> {
        // `ensure_pins` both registers the base snapshot's pin set
        // (consulted for the quarantine filter below) and hydrates every
        // snapshot tree, so the cloned base is fully resident.
        self.ensure_pins(vt, disk)?;
        self.recycle_pending(vt.now());
        let idx = *self
            .snap_by_name
            .get(base)
            .ok_or(StoreError::SnapshotNotFound)?;
        let snap = &self.snapshots[idx];
        if snap.entry.object != object {
            return Err(StoreError::SnapshotMismatch);
        }
        let base_tree = snap.tree.clone();
        let base_blocks: HashSet<u64> = snap.blocks.iter().copied().collect();
        let state = self
            .objects
            .get_mut(object.0 as usize)
            .ok_or(StoreError::NotFound)?;
        if target_epoch <= state.epoch {
            return Err(StoreError::StaleEpoch);
        }
        // Hydrate the live (about-to-be-divergent) tree up front: the
        // post-commit quarantine walk must not fail once the rebase root
        // is durable.
        {
            let state = &mut self.objects[object.0 as usize];
            let cache = &mut self.cache;
            let stats = &mut self.stats;
            state.tree.hydrate_all(&mut |b, out| {
                read_block_cached(vt, disk, cache, stats, b, out, true)
            })?;
        }
        vt.charge(
            Category::FileSystem,
            costs::INITIATE_BASE + costs::INITIATE_PER_PAGE * pages.len() as u64,
        );
        let state = &mut self.objects[object.0 as usize];
        let divergent = std::mem::replace(&mut state.tree, base_tree);
        let token = match self.full_commit(vt, disk, object, pages, target_epoch) {
            Ok(t) => t,
            Err(e) => {
                // full_commit restored the (cloned) base tree; put the
                // divergent history back so the object is untouched.
                self.objects[object.0 as usize].tree = divergent;
                return Err(e);
            }
        };
        // Quarantine the blocks only the abandoned history reached.
        // Blocks shared with the base snapshot went through the ordinary
        // superseded path inside full_commit (and stay withheld while
        // pinned); blocks still reachable from the rebased tree are live.
        let state = &mut self.objects[object.0 as usize];
        let live: HashSet<u64> = state.tree.reachable_blocks().into_iter().collect();
        let dead: Vec<u64> = divergent
            .disk_blocks()
            .into_iter()
            .filter(|b| !live.contains(b) && !base_blocks.contains(b))
            .collect();
        let gate = state.chain_completes;
        self.pending_free.push(Reverse((gate, dead)));
        self.stats.commits += 1;
        self.stats.pages_written += pages.len() as u64;
        Ok(token)
    }

    /// Blocks currently pinned by retained snapshots.
    pub fn pinned_blocks(&self) -> usize {
        self.snap_pins.len()
    }

    /// Pinned blocks whose recycle gate has passed: they are withheld
    /// from the allocator until their last pin drops.
    pub fn withheld_blocks(&self) -> usize {
        self.withheld.len()
    }

    /// Rewrites the snapshot catalog from the in-memory snapshot list
    /// into the next alternating slot, submitted no earlier than `at`
    /// (callers pass the pinned root's durability instant so the catalog
    /// never lands before the tree it references). Synchronous; bumps the
    /// catalog sequence only on success.
    fn write_catalog(&mut self, vt: &mut Vt, disk: &mut Disk, at: Nanos) -> Result<(), StoreError> {
        let cat = SnapCatalog {
            seq: self.snap_seq,
            entries: self.snapshots.iter().map(|s| s.entry.clone()).collect(),
        };
        let slot = self.layout.snap_slot(cat.seq);
        let token = writev_retry(
            disk,
            at.max(vt.now()),
            &[(slot, &cat.to_block())],
            &mut self.cache,
        )?;
        Disk::wait(vt, token);
        self.snap_seq += 1;
        Ok(())
    }

    /// Releases one pin on each block; blocks whose last pin drops and
    /// that were withheld return to the allocator.
    fn unpin(&mut self, blocks: &[u64]) {
        for &b in blocks {
            match self.snap_pins.get_mut(&b) {
                Some(count) if *count > 1 => *count -= 1,
                _ => {
                    self.snap_pins.remove(&b);
                    if self.withheld.remove(&b) && !self.quarantined.contains(&b) {
                        self.alloc.free(b);
                    }
                }
            }
        }
    }

    /// Blocks `vt` until `token`'s μCheckpoint is durable.
    pub fn wait(vt: &mut Vt, token: CommitToken) {
        let wait = token.completes.saturating_sub(vt.now());
        if wait > Nanos::ZERO {
            vt.charge(Category::IoWait, wait);
        }
    }

    /// Reads one page of `object` into `out`. Pages never written read as
    /// zeroes (regions are zero-initialized).
    ///
    /// The tree hydrates on demand (only the touched path) and both node
    /// and data reads go through the block cache.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if `object` does not exist, or
    /// [`StoreError::Io`] if a demand-load read fails (the tree is left
    /// unpoisoned; retry after the fault clears).
    pub fn read_page(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        page: u64,
        out: &mut [u8],
    ) -> Result<(), StoreError> {
        let state = self
            .objects
            .get_mut(object.0 as usize)
            .ok_or(StoreError::NotFound)?;
        let cache = &mut self.cache;
        let stats = &mut self.stats;
        let entry = state.tree.get_entry_or_load(page, &mut |b, buf| {
            read_block_cached(vt, disk, cache, stats, b, buf, true)
        })?;
        match entry {
            Some((block, digest)) => {
                read_block_cached(vt, disk, cache, stats, block, out, false)?;
                let actual = layout::digest32(out);
                if digest == DIGEST_NONE {
                    // Pre-digest (v1) entry: adopt the digest on first
                    // read; the next commit that flushes this leaf
                    // persists it.
                    state.tree.backfill_digest(page, actual);
                } else if actual != digest {
                    // Never serve rotted bytes: quarantine and surface.
                    cache.invalidate(block);
                    self.quarantined.insert(block);
                    let epoch = state.epoch;
                    out.fill(0);
                    return Err(StoreError::CorruptData { page, block, epoch });
                }
            }
            None => out.fill(0),
        }
        Ok(())
    }

    /// Runs one increment of the online scrubber: reads committed media —
    /// resident radix-node images and leaf data blocks — back straight
    /// from the device (bypassing the CLOCK cache, so a cached clean copy
    /// cannot mask rotted media) and verifies every block against the
    /// digest its parent carries. `budget` caps the device reads this
    /// call may spend (hydrating an unloaded subtree mid-walk can
    /// overshoot by the nodes on one path).
    ///
    /// The cursor is resumable: scrub walks the radix forest object by
    /// object, page by page, and picks up exactly where the budget ran
    /// out. Node blocks shared by several trees (COW) are verified once
    /// per pass; unloaded subtrees are digest-verified by hydration
    /// itself, whenever they first load. When a pass completes the cursor
    /// wraps and [`ScrubStats::passes`] increments.
    ///
    /// On a digest mismatch the block is quarantined (never recycled,
    /// never served) and scrub repairs in preference order: a corrupt
    /// *resident* node is rewritten from its clean in-memory copy via a
    /// crash-atomic full-root flush; a corrupt leaf page is
    /// re-materialized from the newest retained snapshot still holding an
    /// independent clean copy. Pages with no clean local source are
    /// reported through [`StoreShard::unrepaired_pages`] for a peer to
    /// heal via [`StoreShard::repair_page`]. Repaired pages always land
    /// through the normal crash-atomic commit path — never in place.
    ///
    /// Returns the statistics delta for this call; cumulative totals are
    /// at [`StoreShard::scrub_stats`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::OutOfSpace`] if a device read
    /// fails or a repair commit cannot complete. Detected corruption is
    /// *not* an error from scrub — it is counted, quarantined, and
    /// repaired or reported.
    pub fn scrub(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        budget: u64,
    ) -> Result<ScrubStats, StoreError> {
        let before = self.scrub_stats;
        let mut budget = budget;
        let mut buf = [0u8; BLOCK_SIZE];
        while budget > 0 {
            let (obj_idx, start_page) = self.scrub_cursor;
            if obj_idx >= self.objects.len() {
                // Pass complete: wrap the cursor and forget per-pass memos.
                self.scrub_stats.passes += 1;
                self.scrub_verified.clear();
                self.scrub_cursor = (0, 0);
                break;
            }
            let object = self.objects[obj_idx].entry.id;

            // Phase 1 (on entering an object): verify the media of its
            // resident committed nodes.
            if start_page == 0 {
                loop {
                    let worklist: Vec<(u64, u32)> = self.objects[obj_idx]
                        .tree
                        .committed_nodes()
                        .into_iter()
                        .filter(|(b, d)| *d != DIGEST_NONE && !self.scrub_verified.contains(b))
                        .collect();
                    let mut corrupt = None;
                    for (block, digest) in worklist {
                        if budget == 0 {
                            // Out of budget mid-node-phase: resume here
                            // next call (`scrub_verified` holds progress).
                            return Ok(self.scrub_delta(before));
                        }
                        budget -= 1;
                        self.scrub_stats.io_spent += 1;
                        disk.try_read_block(vt, block, &mut buf)?;
                        if layout::digest32(&buf) == digest {
                            self.scrub_stats.nodes_verified += 1;
                            self.scrub_verified.insert(block);
                        } else {
                            corrupt = Some(block);
                            break;
                        }
                    }
                    let Some(block) = corrupt else { break };
                    // Rotted node media with a clean in-memory copy:
                    // quarantine the block and rewrite the path through a
                    // crash-atomic full-root flush, then rescan.
                    self.scrub_stats.corruptions_found += 1;
                    self.cache.invalidate(block);
                    self.quarantined.insert(block);
                    let resident = self.objects[obj_idx].tree.dirty_committed_node(block);
                    debug_assert!(resident, "committed_nodes listed a resident node");
                    self.flush_full_root(vt, disk, object)?;
                    self.scrub_stats.repairs += 1;
                }
            }

            // Phase 2: walk leaf entries from the cursor, verifying each
            // page's data block against its digest. Hydration reads go
            // straight to the device too (and verify node digests on the
            // way down).
            let limit = budget.min(4096) as usize;
            let mut hydration_io = 0u64;
            let entries = {
                let state = &mut self.objects[obj_idx];
                state.tree.entries_from(start_page, limit, &mut |b, out| {
                    hydration_io += 1;
                    disk.try_read_block(vt, b, out)
                })
            };
            self.scrub_stats.io_spent += hydration_io;
            budget = budget.saturating_sub(hydration_io);
            let entries = match entries {
                Ok(e) => e,
                Err(TreeError::Io(e)) => return Err(e.into()),
                Err(TreeError::CorruptNode { block }) => {
                    // An *unloaded* subtree's media rotted: there is no
                    // in-memory copy to heal from and the mapping under it
                    // is unreadable. Quarantine, count it as unrepaired
                    // metadata, and move to the next object.
                    self.scrub_stats.corruptions_found += 1;
                    self.scrub_stats.unrepaired += 1;
                    self.cache.invalidate(block);
                    self.quarantined.insert(block);
                    self.scrub_cursor = (obj_idx + 1, 0);
                    continue;
                }
            };
            let full_chunk = entries.len() == limit;
            let mut next_page = start_page;
            let mut out_of_budget = false;
            for (page, block, digest) in entries {
                if budget == 0 {
                    out_of_budget = true;
                    next_page = page; // resume at this page
                    break;
                }
                budget -= 1;
                self.scrub_stats.io_spent += 1;
                next_page = page + 1;
                disk.try_read_block(vt, block, &mut buf)?;
                let actual = layout::digest32(&buf);
                if digest == DIGEST_NONE {
                    // Pre-digest entry: the read-back is the lazy
                    // backfill the old layout is promised.
                    self.objects[obj_idx].tree.backfill_digest(page, actual);
                    self.scrub_stats.digests_backfilled += 1;
                    self.scrub_stats.pages_verified += 1;
                    continue;
                }
                if actual == digest {
                    self.scrub_stats.pages_verified += 1;
                    continue;
                }
                // Rotted page data: quarantine, then repair — newest
                // retained snapshot with an independent clean copy first,
                // else hand the page to replication.
                self.scrub_stats.corruptions_found += 1;
                self.cache.invalidate(block);
                self.quarantined.insert(block);
                match self.snapshot_clean_copy(vt, disk, object, page, digest, block)? {
                    Some(data) => {
                        self.repair_commit(vt, disk, object, page, &data)?;
                        self.scrub_stats.repairs += 1;
                    }
                    None => {
                        self.scrub_stats.unrepaired += 1;
                        let epoch = self.objects[obj_idx].epoch;
                        self.unrepaired.push(UnrepairedPage {
                            object,
                            page,
                            block,
                            digest,
                            epoch,
                        });
                    }
                }
            }
            self.scrub_cursor = if out_of_budget || full_chunk {
                (obj_idx, next_page)
            } else {
                (obj_idx + 1, 0)
            };
        }
        Ok(self.scrub_delta(before))
    }

    /// Cumulative scrub statistics across every [`StoreShard::scrub`]
    /// call (and peer repairs landed via [`StoreShard::repair_page`]).
    pub fn scrub_stats(&self) -> ScrubStats {
        self.scrub_stats
    }

    /// Corrupt pages quarantined with no clean local source: replication
    /// turns these into `RepairRequest` messages, and a verified peer
    /// copy heals them through [`StoreShard::repair_page`].
    pub fn unrepaired_pages(&self) -> Vec<UnrepairedPage> {
        self.unrepaired.clone()
    }

    /// Blocks quarantined after failing digest verification. They are
    /// never recycled and never served again.
    pub fn quarantined_blocks(&self) -> usize {
        self.quarantined.len()
    }

    /// The component-wise difference of the cumulative stats since
    /// `before` — what one `scrub` call reports.
    fn scrub_delta(&self, before: ScrubStats) -> ScrubStats {
        let now = self.scrub_stats;
        ScrubStats {
            pages_verified: now.pages_verified - before.pages_verified,
            nodes_verified: now.nodes_verified - before.nodes_verified,
            corruptions_found: now.corruptions_found - before.corruptions_found,
            repairs: now.repairs - before.repairs,
            unrepaired: now.unrepaired - before.unrepaired,
            digests_backfilled: now.digests_backfilled - before.digests_backfilled,
            io_spent: now.io_spent - before.io_spent,
            passes: now.passes - before.passes,
        }
    }

    /// Searches retained snapshots, newest first, for an *independent*
    /// clean copy of `page` matching `digest`: a leaf entry whose block
    /// differs from the corrupt one (COW sharing means "same block" is
    /// the same rotted media, not redundancy) and whose bytes verify.
    fn snapshot_clean_copy(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        page: u64,
        digest: u32,
        bad_block: u64,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        let mut buf = [0u8; BLOCK_SIZE];
        for i in (0..self.snapshots.len()).rev() {
            if self.snapshots[i].entry.object != object {
                continue;
            }
            let entry = {
                let snap = &mut self.snapshots[i];
                match snap
                    .tree
                    .get_entry_or_load(page, &mut |b, out| disk.try_read_block(vt, b, out))
                {
                    Ok(e) => e,
                    Err(TreeError::Io(e)) => return Err(e.into()),
                    // This snapshot's own metadata rotted; try an older one.
                    Err(TreeError::CorruptNode { .. }) => continue,
                }
            };
            let Some((block, _)) = entry else { continue };
            if block == bad_block || self.quarantined.contains(&block) {
                continue;
            }
            self.scrub_stats.io_spent += 1;
            disk.try_read_block(vt, block, &mut buf)?;
            if layout::digest32(&buf) == digest {
                return Ok(Some(buf.to_vec()));
            }
        }
        Ok(None)
    }

    /// Commits one clean page image at the object's *current* epoch
    /// through the ordinary crash-atomic full-root path: the corrupt
    /// block is superseded (and stays quarantined), the root record is
    /// the single commit point, and its `flush_seq` makes recovery
    /// prefer the repaired root over the pre-repair one at the same
    /// epoch.
    fn repair_commit(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        page: u64,
        data: &[u8],
    ) -> Result<CommitToken, StoreError> {
        let pages: [(u64, &[u8]); 1] = [(page, data)];
        self.hydrate_object_paths(vt, disk, object, &pages)?;
        vt.charge(
            Category::FileSystem,
            costs::INITIATE_BASE + costs::INITIATE_PER_PAGE,
        );
        let epoch = self.objects[object.0 as usize].epoch;
        let token = self.full_commit(vt, disk, object, &pages, epoch)?;
        self.stats.commits += 1;
        self.stats.pages_written += 1;
        Ok(token)
    }

    /// Heals `page` with a clean copy fetched from elsewhere — typically
    /// a replication peer answering a `PageRepairRequest`: verifies
    /// `data` against the page's expected digest, quarantines the rotted
    /// block, and commits the clean bytes at the object's current epoch
    /// through the ordinary crash-atomic commit path, never in place.
    ///
    /// Also the idempotent landing point for pages the scrubber reported
    /// through [`StoreShard::unrepaired_pages`].
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for a missing object or an absent page,
    /// [`StoreError::RepairMismatch`] when `data` does not hash to the
    /// expected digest (a corrupt or stale peer copy is rejected, not
    /// committed), plus the usual commit errors. On error the object is
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`BLOCK_SIZE`] bytes.
    pub fn repair_page(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        object: ObjectId,
        page: u64,
        data: &[u8],
    ) -> Result<CommitToken, StoreError> {
        assert_eq!(data.len(), BLOCK_SIZE, "repair data must be one page");
        let state = self
            .objects
            .get_mut(object.0 as usize)
            .ok_or(StoreError::NotFound)?;
        let cache = &mut self.cache;
        let stats = &mut self.stats;
        let entry = state.tree.get_entry_or_load(page, &mut |b, buf| {
            read_block_cached(vt, disk, cache, stats, b, buf, true)
        })?;
        let Some((block, digest)) = entry else {
            return Err(StoreError::NotFound);
        };
        if digest != DIGEST_NONE && layout::digest32(data) != digest {
            return Err(StoreError::RepairMismatch);
        }
        // Check the current media so repairing an already-clean page
        // stays an ordinary (harmless) rewrite without quarantining.
        let mut buf = [0u8; BLOCK_SIZE];
        disk.try_read_block(vt, block, &mut buf)?;
        let was_corrupt = digest != DIGEST_NONE && layout::digest32(&buf) != digest;
        if was_corrupt {
            self.cache.invalidate(block);
            self.quarantined.insert(block);
        }
        let token = self.repair_commit(vt, disk, object, page, data)?;
        self.unrepaired
            .retain(|u| !(u.object == object && u.page == page));
        if was_corrupt {
            self.scrub_stats.repairs += 1;
        }
        Ok(token)
    }

    fn write_dir_entry(
        &mut self,
        vt: &mut Vt,
        disk: &mut Disk,
        entry: &DirEntry,
    ) -> Result<(), StoreError> {
        let slot = entry.id.0 as usize;
        let dir_block = self.layout.dir_start() + (slot / ENTRIES_PER_BLOCK) as u64;
        let mut buf = [0u8; BLOCK_SIZE];
        disk.read_block(vt, dir_block, &mut buf);
        let off = (slot % ENTRIES_PER_BLOCK) * DIR_ENTRY_LEN;
        entry.encode(&mut buf[off..off + DIR_ENTRY_LEN]);
        let token = writev_retry(disk, vt.now(), &[(dir_block, &buf[..])], &mut self.cache)?;
        Disk::wait(vt, token);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    fn setup() -> (Disk, StoreShard, Vt) {
        let mut disk = Disk::new(DiskConfig::paper());
        let store = StoreShard::format(&mut disk);
        (disk, store, Vt::new(0))
    }

    #[test]
    fn create_lookup_and_duplicate() {
        let (mut disk, mut store, mut vt) = setup();
        let id = store.create(&mut vt, &mut disk, "a").unwrap();
        assert_eq!(store.lookup("a"), Some(id));
        assert_eq!(store.lookup("b"), None);
        assert_eq!(
            store.create(&mut vt, &mut disk, "a"),
            Err(StoreError::Exists)
        );
    }

    #[test]
    fn persist_then_read_round_trips() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p0 = page_of(1);
        let p9 = page_of(2);
        let token = store
            .persist(&mut vt, &mut disk, obj, &[(0, &p0), (9, &p9)])
            .unwrap();
        StoreShard::wait(&mut vt, token);
        assert_eq!(token.epoch, 1);

        let mut out = page_of(0);
        store
            .read_page(&mut vt, &mut disk, obj, 0, &mut out)
            .unwrap();
        assert_eq!(out, p0);
        store
            .read_page(&mut vt, &mut disk, obj, 9, &mut out)
            .unwrap();
        assert_eq!(out, p9);
        store
            .read_page(&mut vt, &mut disk, obj, 5, &mut out)
            .unwrap();
        assert!(out.iter().all(|&b| b == 0), "unwritten pages read zero");
    }

    #[test]
    fn epochs_are_monotonic_per_object() {
        let (mut disk, mut store, mut vt) = setup();
        let a = store.create(&mut vt, &mut disk, "a").unwrap();
        let b = store.create(&mut vt, &mut disk, "b").unwrap();
        let p = page_of(1);
        for i in 1..=3 {
            let t = store.persist(&mut vt, &mut disk, a, &[(0, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
            assert_eq!(t.epoch, i);
        }
        let t = store.persist(&mut vt, &mut disk, b, &[(0, &p)]).unwrap();
        assert_eq!(t.epoch, 1, "objects have independent epochs");
    }

    #[test]
    fn small_commits_use_the_delta_path() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let before = disk.stats().writes();
        let token = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, token);
        // Exactly two IOs: the data extent and the delta record — no tree
        // node writes.
        assert_eq!(disk.stats().writes() - before, 2);
        assert_eq!(store.stats().delta_commits, 1);
        assert_eq!(store.stats().nodes_written, 0);
    }

    #[test]
    fn full_root_every_delta_slots_commits() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(3);
        for i in 0..DELTA_SLOTS + 2 {
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        assert!(store.stats().nodes_written > 0, "a full commit happened");
        assert!(store.stats().delta_commits >= DELTA_SLOTS - 1);
    }

    #[test]
    fn reopen_restores_committed_data_after_deltas() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        // Several delta commits, no full root yet.
        for i in 0..5u64 {
            let p = page_of(10 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        disk.settle();

        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        assert_eq!(store2.epoch(obj2), 5, "delta replay recovers all epochs");
        let mut out = page_of(0);
        for i in 0..5u64 {
            store2
                .read_page(&mut vt2, &mut disk, obj2, i, &mut out)
                .unwrap();
            assert_eq!(out, page_of(10 + i as u8), "page {i}");
        }
    }

    #[test]
    fn reopen_restores_across_full_roots_and_deltas() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let total = DELTA_SLOTS + 10;
        for i in 0..total {
            let p = page_of((i % 250) as u8 + 1);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        disk.settle();

        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        assert_eq!(store2.epoch(obj2), total);
        let mut out = page_of(0);
        for i in 0..total {
            store2
                .read_page(&mut vt2, &mut disk, obj2, i, &mut out)
                .unwrap();
            assert_eq!(out, page_of((i % 250) as u8 + 1), "page {i}");
        }
    }

    #[test]
    fn crash_mid_checkpoint_recovers_previous_epoch() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p1 = page_of(1);
        let t1 = store.persist(&mut vt, &mut disk, obj, &[(0, &p1)]).unwrap();
        StoreShard::wait(&mut vt, t1);

        // Second checkpoint; crash before its commit record completes.
        let p2 = page_of(2);
        let t2 = store.persist(&mut vt, &mut disk, obj, &[(0, &p2)]).unwrap();
        disk.crash(t2.completes - Nanos::from_ns(1));

        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        assert_eq!(store2.epoch(obj2), 1, "recovery adopts the previous epoch");
        let mut out = page_of(0);
        store2
            .read_page(&mut vt2, &mut disk, obj2, 0, &mut out)
            .unwrap();
        assert_eq!(out, p1);
    }

    #[test]
    fn crash_after_checkpoint_keeps_it() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p2 = page_of(2);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p2)]).unwrap();
        disk.crash(t.completes);

        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        assert_eq!(store2.epoch(obj2), 1);
        let mut out = page_of(0);
        store2
            .read_page(&mut vt2, &mut disk, obj2, 0, &mut out)
            .unwrap();
        assert_eq!(out, p2);
    }

    #[test]
    fn torn_data_extent_truncates_the_recovered_prefix() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p1 = page_of(1);
        let t1 = store.persist(&mut vt, &mut disk, obj, &[(0, &p1)]).unwrap();
        StoreShard::wait(&mut vt, t1);

        // Commit 2's two-block data extent tears after its first block,
        // but the record write (the next submission) lands intact — the
        // device acknowledged a lie.
        let pa = page_of(2);
        let pb = page_of(3);
        disk.set_fault_plan(FaultPlan::new().at(disk.io_seq(), Fault::Torn { prefix_blocks: 1 }));
        let t2 = store
            .persist(&mut vt, &mut disk, obj, &[(0, &pa), (1, &pb)])
            .unwrap();
        let t3 = store
            .persist(&mut vt, &mut disk, obj, &[(1, &page_of(4))])
            .unwrap();
        StoreShard::wait(&mut vt, t2);
        disk.crash(t3.completes);

        // Replay must stop *before* commit 2 (payload mismatch), which
        // also keeps the durable commit 3 out: the recovered state is
        // exactly the epoch-1 prefix, never a torn hybrid.
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        assert_eq!(store2.epoch(obj2), 1, "torn commit and successors rejected");
        let mut out = page_of(0);
        store2
            .read_page(&mut vt2, &mut disk, obj2, 0, &mut out)
            .unwrap();
        assert_eq!(out, p1);
    }

    #[test]
    fn bit_flipped_data_block_truncates_the_recovered_prefix() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p1 = page_of(1);
        let t1 = store.persist(&mut vt, &mut disk, obj, &[(0, &p1)]).unwrap();
        StoreShard::wait(&mut vt, t1);

        // Silent media corruption: one bit of commit 2's data flips as it
        // is written. No crash mid-commit — the corruption is only
        // discoverable by checksum.
        disk.set_fault_plan(FaultPlan::new().at(
            disk.io_seq(),
            Fault::BitFlip {
                entry: 0,
                byte: 100,
                bit: 3,
            },
        ));
        let t2 = store
            .persist(&mut vt, &mut disk, obj, &[(0, &page_of(2))])
            .unwrap();
        disk.crash(t2.completes);

        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        assert_eq!(store2.epoch(obj2), 1, "flipped commit rejected");
        let mut out = page_of(0);
        store2
            .read_page(&mut vt2, &mut disk, obj2, 0, &mut out)
            .unwrap();
        assert_eq!(out, p1);
    }

    #[test]
    fn delta_superseded_blocks_stay_quarantined_until_the_full_root() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        // Overwrite the same page across the whole delta window, then
        // crash and corrupt nothing: every intermediate delta record must
        // still verify, i.e. its superseded data block was not recycled.
        let mut last = Nanos::ZERO;
        for i in 1..DELTA_SLOTS as u8 {
            let p = page_of(i);
            let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
            last = t.completes;
        }
        disk.crash(last);
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        assert_eq!(store2.epoch(obj2), DELTA_SLOTS - 1);
        let mut out = page_of(0);
        store2
            .read_page(&mut vt2, &mut disk, obj2, 0, &mut out)
            .unwrap();
        assert_eq!(out, page_of((DELTA_SLOTS - 1) as u8));
    }

    #[test]
    fn snapshot_pinned_blocks_survive_full_root_flushes() {
        // Extends the quarantine regression above to retained epochs:
        // once a snapshot pins an epoch, full-root flushes — which
        // release the delta window's quarantine — must *withhold* the
        // pinned blocks instead of recycling them.
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let originals: Vec<Vec<u8>> = (0..4).map(|i| page_of(0xA0 + i as u8)).collect();
        for (i, p) in originals.iter().enumerate() {
            let t = store
                .persist(&mut vt, &mut disk, obj, &[(i as u64, p)])
                .unwrap();
            StoreShard::wait(&mut vt, t);
        }
        let snap_epoch = store
            .snapshot_create(&mut vt, &mut disk, obj, "keep")
            .unwrap();
        assert_eq!(snap_epoch, 4);

        // Churn page 0 across more than two full delta windows: at least
        // two full roots pass, every pre-snapshot block is superseded and
        // its recycle gate expires.
        for i in 0..(2 * DELTA_SLOTS + 4) {
            let p = page_of(i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        assert!(
            store.withheld_blocks() > 0,
            "expired-but-pinned blocks must be withheld, not freed"
        );
        let mut out = page_of(0);
        for (i, p) in originals.iter().enumerate() {
            store
                .read_page_at(&mut vt, &mut disk, "keep", i as u64, &mut out)
                .unwrap();
            assert_eq!(&out, p, "snapshot page {i} changed under churn");
        }

        // The pins survive recovery: reopen and read the epoch again.
        disk.settle();
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        assert_eq!(store2.snapshot_lookup("keep").unwrap().epoch, snap_epoch);
        for (i, p) in originals.iter().enumerate() {
            store2
                .read_page_at(&mut vt2, &mut disk, "keep", i as u64, &mut out)
                .unwrap();
            assert_eq!(&out, p, "snapshot page {i} lost across recovery");
        }
    }

    #[test]
    fn snapshot_delete_releases_withheld_blocks() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, t);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "old")
            .unwrap();
        for i in 0..(DELTA_SLOTS + 2) {
            let q = page_of(i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(0, &q)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        assert!(store.withheld_blocks() > 0);
        let free_before = store.alloc.free_blocks();
        store.snapshot_delete(&mut vt, &mut disk, "old").unwrap();
        assert_eq!(store.withheld_blocks(), 0);
        assert_eq!(store.pinned_blocks(), 0);
        assert!(store.alloc.free_blocks() > free_before);
        assert_eq!(
            store
                .read_page_at(&mut vt, &mut disk, "old", 0, &mut page_of(0))
                .unwrap_err(),
            StoreError::SnapshotNotFound
        );
    }

    #[test]
    fn snapshot_catalog_write_is_crash_atomic() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, t);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "s1")
            .unwrap();
        let q = page_of(2);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &q)]).unwrap();
        StoreShard::wait(&mut vt, t);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "s2")
            .unwrap();
        disk.settle();

        // Tear the newest catalog slot (seq 1 → slot 1): mount must fall
        // back to the seq-0 catalog, i.e. exactly the first snapshot.
        disk.corrupt_bit(crate::layout::SNAP_CATALOG_START + 1, 30, 2);
        let mut vt2 = Vt::new(1);
        let store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let names: Vec<String> = store2.snapshots().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["s1".to_string()]);
    }

    #[test]
    fn snapshot_name_and_capacity_limits() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, t);
        assert_eq!(
            store
                .snapshot_create(&mut vt, &mut disk, obj, &"x".repeat(NAME_LEN + 1))
                .unwrap_err(),
            StoreError::NameTooLong
        );
        store.snapshot_create(&mut vt, &mut disk, obj, "a").unwrap();
        assert_eq!(
            store
                .snapshot_create(&mut vt, &mut disk, obj, "a")
                .unwrap_err(),
            StoreError::SnapshotExists
        );
        for i in 1..MAX_SNAPSHOTS {
            store
                .snapshot_create(&mut vt, &mut disk, obj, &format!("a{i}"))
                .unwrap();
        }
        assert_eq!(
            store
                .snapshot_create(&mut vt, &mut disk, obj, "overflow")
                .unwrap_err(),
            StoreError::TooManySnapshots
        );
    }

    #[test]
    fn snapshot_diff_and_apply_image_replicate_byte_for_byte() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let base_pages: Vec<Vec<u8>> = (0..6).map(|i| page_of(0x10 + i as u8)).collect();
        for (i, p) in base_pages.iter().enumerate() {
            let t = store
                .persist(&mut vt, &mut disk, obj, &[(i as u64, p)])
                .unwrap();
            StoreShard::wait(&mut vt, t);
        }
        let epoch_a = store.snapshot_create(&mut vt, &mut disk, obj, "a").unwrap();
        // Change pages 2 and 4, add page 6.
        for i in [2u64, 4, 6] {
            let p = page_of(0x80 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        let epoch_b = store.snapshot_create(&mut vt, &mut disk, obj, "b").unwrap();

        assert_eq!(
            store
                .snapshot_diff(&mut vt, &mut disk, Some("a"), "b")
                .unwrap(),
            vec![2, 4, 6],
            "diff must report exactly the changed pages"
        );
        let full = store.snapshot_diff(&mut vt, &mut disk, None, "a").unwrap();
        assert_eq!(full, vec![0, 1, 2, 3, 4, 5]);

        // Replica: full-sync to "a", then the incremental delta to "b".
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = StoreShard::format(&mut rdisk);
        let robj = replica.create(&mut vt, &mut rdisk, "db").unwrap();
        let mut buf = page_of(0);
        let ship = |store: &mut StoreShard,
                    disk: &mut Disk,
                    replica: &mut StoreShard,
                    rdisk: &mut Disk,
                    vt: &mut Vt,
                    snap: &str,
                    pages: &[u64],
                    epoch| {
            let mut images = Vec::new();
            let mut out = page_of(0);
            for &pg in pages {
                store.read_page_at(vt, disk, snap, pg, &mut out).unwrap();
                images.push((pg, out.clone()));
            }
            let iov: Vec<(u64, &[u8])> = images.iter().map(|(p, d)| (*p, &d[..])).collect();
            let t = replica.apply_image(vt, rdisk, robj, &iov, epoch).unwrap();
            StoreShard::wait(vt, t);
        };
        ship(
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            &mut vt,
            "a",
            &full,
            epoch_a,
        );
        assert_eq!(replica.epoch(robj), epoch_a);
        ship(
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            &mut vt,
            "b",
            &[2, 4, 6],
            epoch_b,
        );
        assert_eq!(replica.epoch(robj), epoch_b);
        for pg in 0..7u64 {
            let mut want = page_of(0);
            store
                .read_page_at(&mut vt, &mut disk, "b", pg, &mut want)
                .unwrap();
            replica
                .read_page(&mut vt, &mut rdisk, robj, pg, &mut buf)
                .unwrap();
            assert_eq!(buf, want, "replica page {pg} diverges");
        }

        // A stale or equal target epoch is refused.
        assert_eq!(
            replica
                .apply_image(&mut vt, &mut rdisk, robj, &[], epoch_b)
                .unwrap_err(),
            StoreError::StaleEpoch
        );
    }

    #[test]
    fn fence_epoch_jumps_forward_without_changing_content() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(0x33);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, t);
        assert_eq!(store.epoch(obj), 1);

        let t = store.fence_epoch(&mut vt, &mut disk, obj, 100).unwrap();
        StoreShard::wait(&mut vt, t);
        assert_eq!(store.epoch(obj), 100);
        let mut out = page_of(0);
        store
            .read_page(&mut vt, &mut disk, obj, 0, &mut out)
            .unwrap();
        assert_eq!(out, p, "a fence never changes content");
        // The fence survives reopen.
        disk.settle();
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        assert_eq!(store2.epoch(obj), 100);
        store2
            .read_page(&mut vt2, &mut disk, obj, 0, &mut out)
            .unwrap();
        assert_eq!(out, p);
        // A fence at or behind the live epoch is refused.
        assert_eq!(
            store.fence_epoch(&mut vt, &mut disk, obj, 100).unwrap_err(),
            StoreError::StaleEpoch
        );
    }

    #[test]
    fn apply_image_at_base_abandons_divergent_history() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        for i in 0..4u64 {
            let p = page_of(0x10 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        store
            .snapshot_create(&mut vt, &mut disk, obj, "acked")
            .unwrap();
        let base_epoch = store.epoch(obj);

        // Divergent history: commits the new primary never saw.
        for i in 0..8u64 {
            let p = page_of(0xD0 + i as u8);
            let t = store
                .persist(&mut vt, &mut disk, obj, &[(i % 4, &p)])
                .unwrap();
            StoreShard::wait(&mut vt, t);
        }
        assert!(store.epoch(obj) > base_epoch);

        // The rebase delta: the new primary changed pages 1 and 3 since
        // the common base, and its fence puts the target far ahead.
        let p1 = page_of(0xA1);
        let p3 = page_of(0xA3);
        let target = store.epoch(obj) + 50;
        let t = store
            .apply_image_at_base(
                &mut vt,
                &mut disk,
                obj,
                "acked",
                &[(1, &p1), (3, &p3)],
                target,
            )
            .unwrap();
        StoreShard::wait(&mut vt, t);
        assert_eq!(store.epoch(obj), target);

        // Content = base image with the delta applied; the divergent
        // writes (0xD0..) are gone everywhere.
        let mut out = page_of(0);
        let want: Vec<Vec<u8>> = vec![page_of(0x10), p1.clone(), page_of(0x12), p3.clone()];
        for (pg, w) in want.iter().enumerate() {
            store
                .read_page(&mut vt, &mut disk, obj, pg as u64, &mut out)
                .unwrap();
            assert_eq!(&out, w, "page {pg} after rebase");
        }
        // And the rebase is durable: reopen sees the same image.
        disk.settle();
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        assert_eq!(store2.epoch(obj), target);
        for (pg, w) in want.iter().enumerate() {
            store2
                .read_page(&mut vt2, &mut disk, obj, pg as u64, &mut out)
                .unwrap();
            assert_eq!(&out, w, "page {pg} after rebase + reopen");
        }

        // The base snapshot still reads its pinned image afterwards.
        store
            .read_page_at(&mut vt, &mut disk, "acked", 1, &mut out)
            .unwrap();
        assert_eq!(out, page_of(0x11));

        // Error cases leave the divergent history untouched.
        let (mut disk3, mut store3, mut vt3) = setup();
        let other = store3.create(&mut vt3, &mut disk3, "other").unwrap();
        assert_eq!(
            store3
                .apply_image_at_base(&mut vt3, &mut disk3, other, "nope", &[], 10)
                .unwrap_err(),
            StoreError::SnapshotNotFound
        );
        assert_eq!(
            store
                .apply_image_at_base(&mut vt, &mut disk, obj, "acked", &[], target)
                .unwrap_err(),
            StoreError::StaleEpoch
        );
    }

    #[test]
    fn apply_image_at_base_recycles_only_abandoned_blocks() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        for i in 0..4u64 {
            let p = page_of(1 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        store
            .snapshot_create(&mut vt, &mut disk, obj, "base")
            .unwrap();
        for round in 0..20u64 {
            let p = page_of(0x40 + round as u8);
            let t = store
                .persist(&mut vt, &mut disk, obj, &[(round % 4, &p)])
                .unwrap();
            StoreShard::wait(&mut vt, t);
        }
        let p0 = page_of(0xEE);
        let target = store.epoch(obj) + 1;
        let t = store
            .apply_image_at_base(&mut vt, &mut disk, obj, "base", &[(0, &p0)], target)
            .unwrap();
        StoreShard::wait(&mut vt, t);

        // Long after the rebase, heavy traffic must be able to reuse the
        // abandoned blocks without ever corrupting the live image or the
        // pinned base snapshot.
        for round in 0..64u64 {
            let p = page_of(round as u8);
            let t = store
                .persist(&mut vt, &mut disk, obj, &[(round % 4, &p)])
                .unwrap();
            StoreShard::wait(&mut vt, t);
        }
        let mut out = page_of(0);
        for pg in 0..4u64 {
            store
                .read_page_at(&mut vt, &mut disk, "base", pg, &mut out)
                .unwrap();
            assert_eq!(out, page_of(1 + pg as u8), "pinned base page {pg}");
        }
        disk.settle();
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        for pg in 0..4u64 {
            let want = {
                let mut w = page_of(0);
                store
                    .read_page(&mut vt, &mut disk, obj, pg, &mut w)
                    .unwrap();
                w
            };
            store2
                .read_page(&mut vt2, &mut disk, obj, pg, &mut out)
                .unwrap();
            assert_eq!(out, want, "reopened page {pg}");
        }
    }

    #[test]
    fn snapshot_diff_rejects_cross_object_pairs() {
        let (mut disk, mut store, mut vt) = setup();
        let a = store.create(&mut vt, &mut disk, "a").unwrap();
        let b = store.create(&mut vt, &mut disk, "b").unwrap();
        let p = page_of(1);
        for obj in [a, b] {
            let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
            StoreShard::wait(&mut vt, t);
        }
        store.snapshot_create(&mut vt, &mut disk, a, "sa").unwrap();
        store.snapshot_create(&mut vt, &mut disk, b, "sb").unwrap();
        assert_eq!(
            store
                .snapshot_diff(&mut vt, &mut disk, Some("sa"), "sb")
                .unwrap_err(),
            StoreError::SnapshotMismatch
        );
        assert_eq!(
            store
                .snapshot_diff(&mut vt, &mut disk, Some("sa"), "nope")
                .unwrap_err(),
            StoreError::SnapshotNotFound
        );
    }

    #[test]
    fn data_extent_is_sequential() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        // Random page indices...
        let p = page_of(7);
        let pages: Vec<(u64, &[u8])> = [907u64, 13, 500_000, 42]
            .iter()
            .map(|&i| (i, &p[..]))
            .collect();
        let before = disk.stats().writes();
        let token = store.persist(&mut vt, &mut disk, obj, &pages).unwrap();
        StoreShard::wait(&mut vt, token);
        // ...become exactly two IOs: one vectored data write and the
        // delta record.
        assert_eq!(disk.stats().writes() - before, 2);
    }

    #[test]
    fn open_unformatted_disk_fails() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut vt = Vt::new(0);
        assert_eq!(
            StoreShard::open(&mut vt, &mut disk).unwrap_err(),
            StoreError::NotFormatted
        );
    }

    #[test]
    fn recovery_allocator_does_not_clobber_live_blocks() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let pages: Vec<Vec<u8>> = (0..60).map(|i| page_of(i as u8)).collect();
        for (i, p) in pages.iter().enumerate() {
            let t = store
                .persist(&mut vt, &mut disk, obj, &[(i as u64, p)])
                .unwrap();
            StoreShard::wait(&mut vt, t);
        }
        disk.settle();

        // Reopen and write more; old pages must stay intact.
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        let extra = page_of(0xFF);
        for i in 60..120u64 {
            let t = store2
                .persist(&mut vt2, &mut disk, obj2, &[(i, &extra)])
                .unwrap();
            StoreShard::wait(&mut vt2, t);
        }
        let mut out = page_of(0);
        for (i, p) in pages.iter().enumerate() {
            store2
                .read_page(&mut vt2, &mut disk, obj2, i as u64, &mut out)
                .unwrap();
            assert_eq!(&out, p, "page {i} corrupted after recovery + writes");
        }
    }

    #[test]
    fn overwrites_recycle_blocks_only_after_durability() {
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let t1 = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, t1);
        let _t2 = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        assert_eq!(store.alloc.free_blocks(), 0, "not yet durable");
    }

    #[test]
    fn initiate_cost_matches_table5() {
        // Table 5: initiating writes for 16 dirty pages costs 6.5 us.
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let pages: Vec<(u64, &[u8])> = (0..16u64).map(|i| (i, &p[..])).collect();
        let before = vt.costs().get(Category::FileSystem);
        store.persist(&mut vt, &mut disk, obj, &pages).unwrap();
        let cpu = (vt.costs().get(Category::FileSystem) - before).as_us_f64();
        assert!(
            (cpu - 6.5).abs() < 2.0,
            "initiate CPU {cpu:.1} us vs paper 6.5 us"
        );
    }

    #[test]
    fn persist_io_wait_matches_table5() {
        // Table 5: waiting on IO for a 64 KiB μCheckpoint is ~39.7 us.
        // With the delta path: a 64 KiB extent (two striped segments) +
        // one commit record.
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let pages: Vec<(u64, &[u8])> = (0..16u64).map(|i| (i, &p[..])).collect();
        let start = vt.now();
        let token = store.persist(&mut vt, &mut disk, obj, &pages).unwrap();
        let io_wait = (token.completes - start).as_us_f64();
        assert!(
            (io_wait - 39.7).abs() / 39.7 < 0.45,
            "IO wait {io_wait:.1} us vs paper 39.7 us"
        );
    }
    #[test]
    fn persist_out_of_space_aborts_cleanly() {
        let mut disk = Disk::new(DiskConfig::fast().with_capacity_blocks(FIRST_DATA_BLOCK + 40));
        let mut store = StoreShard::format(&mut disk);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        // Fill the device with commits until one fails.
        let mut committed = 0u64;
        let err = loop {
            match store.persist(&mut vt, &mut disk, obj, &[(committed, &p)]) {
                Ok(t) => {
                    StoreShard::wait(&mut vt, t);
                    committed += 1;
                }
                Err(e) => break e,
            }
            assert!(committed < 1000, "capacity ceiling never hit");
        };
        assert_eq!(err, StoreError::OutOfSpace);
        // The abort is clean: epoch unchanged, data readable, and another
        // failed attempt does not consume blocks (no leak => stable error).
        assert_eq!(store.epoch(obj), committed);
        let high_water = store.alloc.high_water();
        let free = store.alloc.free_blocks();
        assert_eq!(
            store
                .persist(&mut vt, &mut disk, obj, &[(committed, &p)])
                .unwrap_err(),
            StoreError::OutOfSpace
        );
        assert_eq!(
            store.alloc.high_water(),
            high_water,
            "failed persist leaked frontier"
        );
        assert_eq!(
            store.alloc.free_blocks(),
            free,
            "failed persist leaked free list"
        );
        let mut out = page_of(0);
        for i in 0..committed {
            store
                .read_page(&mut vt, &mut disk, obj, i, &mut out)
                .unwrap();
            assert_eq!(out, p, "page {i} damaged by aborted commit");
        }
    }

    #[test]
    fn transient_faults_are_retried_and_hidden() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        // Every first attempt of the next two submissions fails
        // transiently; the bounded retry must absorb both.
        let next = disk.io_seq();
        disk.set_fault_plan(
            FaultPlan::new()
                .at(next, Fault::Drop { transient: true })
                .at(next + 2, Fault::Drop { transient: true }),
        );
        let p = page_of(9);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, t);
        assert_eq!(t.epoch, 1);
        let mut out = page_of(0);
        store
            .read_page(&mut vt, &mut disk, obj, 0, &mut out)
            .unwrap();
        assert_eq!(out, p);
        assert_eq!(disk.fault_injector().unwrap().injected().len(), 2);
    }

    #[test]
    fn hard_fault_aborts_persist_without_epoch_advance() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut disk, mut store, mut vt) = setup();
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, t);

        // Hard-fail the data extent of the next commit.
        disk.set_fault_plan(FaultPlan::new().at(disk.io_seq(), Fault::Drop { transient: false }));
        let p2 = page_of(2);
        let err = store
            .persist(&mut vt, &mut disk, obj, &[(0, &p2)])
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
        assert_eq!(
            store.epoch(obj),
            1,
            "aborted commit must not advance the epoch"
        );
        let mut out = page_of(0);
        store
            .read_page(&mut vt, &mut disk, obj, 0, &mut out)
            .unwrap();
        assert_eq!(out, p, "old contents must survive the abort");

        // The store keeps working afterwards.
        disk.clear_fault_plan();
        let t2 = store.persist(&mut vt, &mut disk, obj, &[(0, &p2)]).unwrap();
        StoreShard::wait(&mut vt, t2);
        assert_eq!(t2.epoch, 2);
        store
            .read_page(&mut vt, &mut disk, obj, 0, &mut out)
            .unwrap();
        assert_eq!(out, p2);
    }

    #[test]
    fn hard_fault_on_commit_record_aborts_full_commit() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut disk, mut store, mut vt) = setup();
        store.set_delta_commits(false); // force the full-root path
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        let p = page_of(1);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        StoreShard::wait(&mut vt, t);

        // Fail the *second* write of the commit (the root record), so the
        // tree was already mutated and committed in memory — the abort
        // must restore it.
        disk.set_fault_plan(
            FaultPlan::new().at(disk.io_seq() + 1, Fault::Drop { transient: false }),
        );
        let p2 = page_of(2);
        let err = store
            .persist(&mut vt, &mut disk, obj, &[(1, &p2)])
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        assert_eq!(store.epoch(obj), 1);
        assert_eq!(store.len_pages(obj), 1, "aborted page must not appear");

        // Subsequent commits and recovery still work.
        disk.clear_fault_plan();
        let t2 = store.persist(&mut vt, &mut disk, obj, &[(1, &p2)]).unwrap();
        StoreShard::wait(&mut vt, t2);
        disk.settle();
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let obj2 = store2.lookup("db").unwrap();
        assert_eq!(store2.epoch(obj2), 2);
        let mut out = page_of(0);
        store2
            .read_page(&mut vt2, &mut disk, obj2, 0, &mut out)
            .unwrap();
        assert_eq!(out, p);
        store2
            .read_page(&mut vt2, &mut disk, obj2, 1, &mut out)
            .unwrap();
        assert_eq!(out, p2);
    }

    #[test]
    fn batch_persist_is_two_ios_for_many_objects() {
        let (mut disk, mut store, mut vt) = setup();
        let a = store.create(&mut vt, &mut disk, "a").unwrap();
        let b = store.create(&mut vt, &mut disk, "b").unwrap();
        let c = store.create(&mut vt, &mut disk, "c").unwrap();
        let p1 = page_of(1);
        let p2 = page_of(2);
        let p3 = page_of(3);
        let before = disk.stats().writes();
        let ga = [(0, &p1[..]), (5, &p2[..])];
        let gb = [(9, &p2[..])];
        let gc = [(0, &p3[..])];
        let groups: Vec<(ObjectId, &[(u64, &[u8])])> =
            vec![(a, &ga[..]), (b, &gb[..]), (c, &gc[..])];
        let tokens = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
        // One data extent + one shared batch record for all three objects.
        assert_eq!(disk.stats().writes() - before, 2);
        assert_eq!(tokens.len(), 3);
        assert!(tokens.iter().all(|t| t.epoch == 1));
        assert!(tokens.windows(2).all(|w| w[0].completes == w[1].completes));
        assert_eq!(disk.stats().merged_submissions(), 1);
        assert_eq!(disk.stats().merged_parts(), 3);
        assert_eq!(store.stats().batch_commits, 1);
        assert_eq!(store.stats().batched_objects, 3);
        assert_eq!(store.stats().commits, 3);

        let mut out = page_of(0);
        for (obj, page, want) in [(a, 0, &p1), (a, 5, &p2), (b, 9, &p2), (c, 0, &p3)] {
            store
                .read_page(&mut vt, &mut disk, obj, page, &mut out)
                .unwrap();
            assert_eq!(&out, want);
        }
    }

    #[test]
    fn batch_initiation_is_charged_once() {
        // 8 objects × 2 pages batched must charge far less initiation CPU
        // than 8 separate persists (INITIATE_BASE is paid once).
        let (mut disk, mut store, mut vt) = setup();
        let ids: Vec<ObjectId> = (0..8)
            .map(|i| store.create(&mut vt, &mut disk, &format!("o{i}")).unwrap())
            .collect();
        let p = page_of(7);
        let pages: Vec<(u64, &[u8])> = vec![(0, &p[..]), (1, &p[..])];
        let groups: Vec<(ObjectId, &[(u64, &[u8])])> =
            ids.iter().map(|id| (*id, &pages[..])).collect();
        let before = vt.costs().get(Category::FileSystem);
        store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
        let batched = vt.costs().get(Category::FileSystem) - before;
        let expect = costs::INITIATE_BASE + costs::INITIATE_PER_PAGE * 16;
        assert_eq!(batched, expect, "one initiation for the whole batch");
    }

    #[test]
    fn single_group_batches_take_the_plain_path() {
        let (mut disk, mut store, mut vt) = setup();
        let a = store.create(&mut vt, &mut disk, "a").unwrap();
        let p = page_of(1);
        let ga = [(0, &p[..])];
        let groups: Vec<(ObjectId, &[(u64, &[u8])])> = vec![(a, &ga[..])];
        let tokens = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
        assert_eq!(tokens.len(), 1);
        assert_eq!(store.stats().batch_commits, 0, "no batch record written");
        assert_eq!(store.stats().delta_commits, 1);
    }

    #[test]
    fn batch_recovery_restores_every_group() {
        let (mut disk, mut store, mut vt) = setup();
        let a = store.create(&mut vt, &mut disk, "a").unwrap();
        let b = store.create(&mut vt, &mut disk, "b").unwrap();
        let mut last = Nanos::ZERO;
        for round in 0..5u8 {
            let pa = page_of(10 + round);
            let pb = page_of(20 + round);
            let ga = [(round as u64, &pa[..])];
            let gb = [(round as u64, &pb[..])];
            let groups: Vec<(ObjectId, &[(u64, &[u8])])> = vec![(a, &ga[..]), (b, &gb[..])];
            let tokens = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
            last = tokens[0].completes;
            vt.wait_until(last);
        }
        disk.crash(last);

        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let a2 = store2.lookup("a").unwrap();
        let b2 = store2.lookup("b").unwrap();
        assert_eq!(store2.epoch(a2), 5);
        assert_eq!(store2.epoch(b2), 5);
        let mut out = page_of(0);
        for round in 0..5u8 {
            store2
                .read_page(&mut vt2, &mut disk, a2, round as u64, &mut out)
                .unwrap();
            assert_eq!(out, page_of(10 + round));
            store2
                .read_page(&mut vt2, &mut disk, b2, round as u64, &mut out)
                .unwrap();
            assert_eq!(out, page_of(20 + round));
        }
    }

    #[test]
    fn torn_batch_extent_truncates_only_affected_objects() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut disk, mut store, mut vt) = setup();
        let a = store.create(&mut vt, &mut disk, "a").unwrap();
        let b = store.create(&mut vt, &mut disk, "b").unwrap();
        // A durable baseline for both objects.
        let p = page_of(1);
        let ga = [(0, &p[..])];
        let gb = [(0, &p[..])];
        let groups: Vec<(ObjectId, &[(u64, &[u8])])> = vec![(a, &ga[..]), (b, &gb[..])];
        let t = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
        vt.wait_until(t[0].completes);

        // Next batch: a's page is the extent's first block, b's pages
        // follow. Tear the extent after one block — only b's payload is
        // lost, and only b's chain must truncate.
        let pa = page_of(2);
        let pb = page_of(3);
        disk.set_fault_plan(FaultPlan::new().at(disk.io_seq(), Fault::Torn { prefix_blocks: 1 }));
        let ga = [(0, &pa[..])];
        let gb = [(0, &pb[..])];
        let groups: Vec<(ObjectId, &[(u64, &[u8])])> = vec![(a, &ga[..]), (b, &gb[..])];
        let t = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
        disk.crash(t[1].completes);

        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let a2 = store2.lookup("a").unwrap();
        let b2 = store2.lookup("b").unwrap();
        assert_eq!(store2.epoch(a2), 2, "a's share of the batch verified");
        assert_eq!(store2.epoch(b2), 1, "b's torn share truncated");
        let mut out = page_of(0);
        store2
            .read_page(&mut vt2, &mut disk, a2, 0, &mut out)
            .unwrap();
        assert_eq!(out, pa);
        store2
            .read_page(&mut vt2, &mut disk, b2, 0, &mut out)
            .unwrap();
        assert_eq!(out, p, "b rolls back to the baseline");
    }

    #[test]
    fn failed_batch_aborts_every_group_cleanly() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut disk, mut store, mut vt) = setup();
        let a = store.create(&mut vt, &mut disk, "a").unwrap();
        let b = store.create(&mut vt, &mut disk, "b").unwrap();
        let p = page_of(1);
        let ga = [(0, &p[..])];
        let gb = [(0, &p[..])];
        let groups: Vec<(ObjectId, &[(u64, &[u8])])> = vec![(a, &ga[..]), (b, &gb[..])];
        let t = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
        vt.wait_until(t[0].completes);

        // Hard-fail the shared commit record: neither object may advance.
        disk.set_fault_plan(
            FaultPlan::new().at(disk.io_seq() + 1, Fault::Drop { transient: false }),
        );
        let p2 = page_of(2);
        let ga = [(0, &p2[..])];
        let gb = [(0, &p2[..])];
        let groups: Vec<(ObjectId, &[(u64, &[u8])])> = vec![(a, &ga[..]), (b, &gb[..])];
        let free = store.alloc.free_blocks();
        let high_water = store.alloc.high_water();
        let err = store
            .persist_batch(&mut vt, &mut disk, &groups)
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        assert_eq!(store.epoch(a), 1);
        assert_eq!(store.epoch(b), 1);
        assert_eq!(store.alloc.free_blocks(), free, "no leaked free list");
        assert_eq!(store.alloc.high_water(), high_water, "no leaked frontier");

        // The store keeps working afterwards.
        disk.clear_fault_plan();
        let t2 = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
        assert_eq!(t2[0].epoch, 2);
        assert_eq!(t2[1].epoch, 2);
    }

    #[test]
    fn batch_ring_reuse_flushes_live_objects_first() {
        let (mut disk, mut store, mut vt) = setup();
        let a = store.create(&mut vt, &mut disk, "a").unwrap();
        let b = store.create(&mut vt, &mut disk, "b").unwrap();
        let c = store.create(&mut vt, &mut disk, "c").unwrap();
        // Batch 0 includes `a`; then b+c batch until the ring wraps and
        // slot 0 is reused. `a` never commits again, so its batch-0 group
        // stays live until the reuse forces its full root.
        let pa = page_of(9);
        let ga = [(0, &pa[..])];
        let gb = [(0, &pa[..])];
        let gc = [(0, &pa[..])];
        let groups: Vec<(ObjectId, &[(u64, &[u8])])> =
            vec![(a, &ga[..]), (b, &gb[..]), (c, &gc[..])];
        let t = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
        vt.wait_until(t[0].completes);
        let mut last = Nanos::ZERO;
        for round in 0..BATCH_SLOTS {
            let pb = page_of((round % 200) as u8);
            let gb = [(1 + round, &pb[..])];
            let gc = [(1 + round, &pb[..])];
            let groups: Vec<(ObjectId, &[(u64, &[u8])])> = vec![(b, &gb[..]), (c, &gc[..])];
            let t = store.persist_batch(&mut vt, &mut disk, &groups).unwrap();
            last = t[0].completes;
            vt.wait_until(last);
        }
        assert!(
            store.stats().nodes_written > 0,
            "ring reuse must have flushed a full root"
        );
        // After the wrap `a`'s batch-0 record is gone; its state must
        // survive via its full root.
        disk.crash(last);
        let mut vt2 = Vt::new(1);
        let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
        let a2 = store2.lookup("a").unwrap();
        assert_eq!(store2.epoch(a2), 1, "a's epoch survives ring reuse");
        let mut out = page_of(0);
        store2
            .read_page(&mut vt2, &mut disk, a2, 0, &mut out)
            .unwrap();
        assert_eq!(out, pa);
    }

    #[test]
    fn batch_equals_serial_persists_after_recovery() {
        // The same commits applied batched and serially must recover to
        // identical epochs and contents.
        let run = |batched: bool| {
            let (mut disk, mut store, mut vt) = setup();
            let a = store.create(&mut vt, &mut disk, "a").unwrap();
            let b = store.create(&mut vt, &mut disk, "b").unwrap();
            let mut last = Nanos::ZERO;
            for round in 0..6u8 {
                let pa = page_of(round + 1);
                let pb = page_of(round + 101);
                let ga: [(u64, &[u8]); 2] = [(0, &pa[..]), (round as u64, &pa[..])];
                let gb: [(u64, &[u8]); 1] = [(2 * round as u64, &pb[..])];
                if batched {
                    let t = store
                        .persist_batch(&mut vt, &mut disk, &[(a, &ga[..]), (b, &gb[..])])
                        .unwrap();
                    last = t[1].completes;
                } else {
                    let t1 = store.persist(&mut vt, &mut disk, a, &ga).unwrap();
                    let t2 = store.persist(&mut vt, &mut disk, b, &gb).unwrap();
                    last = t1.completes.max(t2.completes);
                }
                vt.wait_until(last);
            }
            disk.crash(last);
            let mut vt2 = Vt::new(1);
            let mut store2 = StoreShard::open(&mut vt2, &mut disk).unwrap();
            let a2 = store2.lookup("a").unwrap();
            let b2 = store2.lookup("b").unwrap();
            let mut image = Vec::new();
            for obj in [a2, b2] {
                image.push(store2.epoch(obj).to_le_bytes().to_vec());
                for page in 0..12u64 {
                    let mut out = page_of(0);
                    store2
                        .read_page(&mut vt2, &mut disk, obj, page, &mut out)
                        .unwrap();
                    image.push(out);
                }
            }
            image
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn create_failure_rolls_back_directory_state() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut disk, mut store, mut vt) = setup();
        let free_before = store.alloc.free_blocks();
        disk.set_fault_plan(FaultPlan::new().at(disk.io_seq(), Fault::Drop { transient: false }));
        let err = store.create(&mut vt, &mut disk, "doomed").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        assert_eq!(store.lookup("doomed"), None);
        assert_eq!(store.object_names().len(), 0);
        // The meta blocks went back to the free list (no leak).
        assert_eq!(
            store.alloc.free_blocks(),
            free_before + OBJECT_META_BLOCKS as usize
        );
        // Creating the same name now succeeds.
        disk.clear_fault_plan();
        store.create(&mut vt, &mut disk, "doomed").unwrap();
    }
}
