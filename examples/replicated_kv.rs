//! A replicated key-value store: delta shipping over a lossy link,
//! lag-driven flow control, and a crash-consistent failover.
//!
//! A MemSnap KV primary streams its committed epochs to a standby over a
//! simulated WAN link that drops 15% of datagrams. The primary is then
//! killed with one batch committed locally but unacknowledged behind a
//! partition; the standby promotes, serves reads of exactly a committed
//! batch prefix, and the old primary's crashed device re-attaches as a
//! replica and converges by delta alone.
//!
//! A final act demonstrates self-healing: media rot injected on the
//! standby's device is caught by its background scrub and healed
//! byte-for-byte from the primary's verified copy over the same link.
//!
//! Run with: `cargo run --example replicated_kv`

use memsnap::{MemSnap, PersistFlags, RegionSel, PAGE_SIZE};
use msnap_disk::{Disk, DiskConfig};
use msnap_repl::{ReplConfig, ReplEngine};
use msnap_sim::{Nanos, NetConfig, Vt};
use msnap_skipdb::drivers::{run_replicated_kv, KvReplConfig};

fn main() {
    println!("== replicated KV over a 15%-loss WAN link ==");
    let report = run_replicated_kv(&KvReplConfig {
        batches_before_crash: 8,
        extra_batches: 4,
        keys_per_batch: 8,
        net: NetConfig::lossy(13),
        repl: ReplConfig::default(),
    });
    println!(
        "committed {} batches, then one more behind a partition; killed the primary",
        report.committed_batches
    );
    println!(
        "promoted standby sees {}/{} batches (the partitioned one is gone), \
         first read {} after promotion",
        report.visible_batches, report.committed_batches, report.failover_latency
    );
    assert!(
        report.prefix_consistent,
        "failover must surface an exact committed batch prefix"
    );
    println!("promoted store is an exact committed batch prefix ✓");
    println!(
        "old primary re-attached and converged via {} delta ships, {} full images",
        report.reattach_delta_syncs, report.reattach_full_syncs
    );
    assert!(report.reattach_converged);
    println!("old primary matches the new one byte for byte ✓");
    println!("final store: {} keys", report.final_len);

    println!("\n== flow control: a 1-epoch lag budget on the same link ==");
    let tight = run_replicated_kv(&KvReplConfig {
        batches_before_crash: 8,
        extra_batches: 0,
        keys_per_batch: 8,
        net: NetConfig::lossy(13),
        repl: ReplConfig {
            max_lag_epochs: 1,
            ..ReplConfig::default()
        },
    });
    assert!(tight.prefix_consistent && tight.reattach_converged);
    println!(
        "with max_lag_epochs = 1 the standby never trails more than one \
         commit; everything above still holds ✓"
    );

    // The engine API directly, for orientation: the drivers above wrap
    // exactly this loop.
    println!("\n== the raw loop: engine.tick() after every commit ==");
    let mut eng = ReplEngine::new(ReplConfig::default());
    eng.add_replica("standby", NetConfig::calm(1)).unwrap();
    println!(
        "replica state machine starts at {:?}; tick() ships deltas, settle() \
         drains, promote() consumes the engine and fences the new primary",
        eng.replica("standby").unwrap().state()
    );

    println!("\n== self-healing: rot on the standby, healed from the primary ==");
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let mut vt = Vt::new(0);
    let space = ms.vm_mut().create_space();
    let r = ms.msnap_open(&mut vt, space, "data", 16).unwrap();
    let object = ms.region_object_name(r.md).unwrap().to_string();
    let mut eng = ReplEngine::new(ReplConfig::default());
    eng.add_replica("standby", NetConfig::calm(7)).unwrap();
    let t = vt.id();
    for fill in 1..=3u8 {
        ms.write(&mut vt, space, t, r.addr, &[fill; PAGE_SIZE])
            .unwrap();
        ms.msnap_persist(&mut vt, t, RegionSel::Region(r.md), PersistFlags::sync())
            .unwrap();
        eng.settle(&mut vt, &mut ms, Nanos::from_secs(5)).unwrap();
    }
    // Flip one bit in the standby's media copy of page 0, behind every
    // cache and checksum the write path ever computed.
    {
        let node = eng.replica_mut("standby").unwrap();
        let want = [3u8; PAGE_SIZE];
        let mut live = None;
        for b in 0..16384 {
            if node.disk_mut().peek(b).is_some_and(|img| img == want) {
                live = Some(b);
            }
        }
        node.disk_mut()
            .corrupt_bit(live.expect("committed page on media"), 0, 0);
    }
    // The standby's background scrub catches it by digest; with every
    // commit having rewritten the page, no local snapshot holds a clean
    // copy, so it is quarantined and reported.
    while eng.replica("standby").unwrap().scrub_stats().passes == 0 {
        eng.replica_mut("standby").unwrap().scrub(64).unwrap();
    }
    let unrepaired = eng.replica("standby").unwrap().store().unrepaired_pages();
    println!(
        "standby scrub: {} corrupt page(s), {} unrepairable locally",
        eng.replica("standby")
            .unwrap()
            .scrub_stats()
            .corruptions_found,
        unrepaired.len()
    );
    // The next engine rounds carry a RepairRequest up the link and the
    // primary's digest-verified copy back down.
    let mut rounds = 0;
    while !eng
        .replica("standby")
        .unwrap()
        .store()
        .unrepaired_pages()
        .is_empty()
    {
        eng.tick(&mut vt, &mut ms).unwrap();
        vt.advance(Nanos::from_ms(10));
        rounds += 1;
        assert!(rounds < 1000, "peer repair must converge");
    }
    let mut buf = vec![0u8; PAGE_SIZE];
    eng.replica_mut("standby")
        .unwrap()
        .read_page(&object, 0, &mut buf)
        .unwrap();
    assert_eq!(buf, vec![3u8; PAGE_SIZE]);
    println!(
        "healed byte-for-byte from the primary in {rounds} engine rounds \
         ({} repair messages on the link) ✓",
        eng.link_metrics("standby").unwrap().repair_requests
    );
}
