//! Key distributions.

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` using Gray–Wormald style inversion on the
/// harmonic CDF (exact for the small `n` used here, O(1) per sample after
//  an O(n) table build).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `theta` (0 = uniform-ish,
    /// ~0.99 = classic YCSB skew).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A bounded generalized-Pareto sampler over `0..n`, as used by MixGraph
/// for write-key selection ("writes are chosen using a generalized Pareto
/// distribution", §7.2 / Cao et al. FAST '20).
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    n: u64,
    /// Shape ξ of the generalized Pareto distribution.
    shape: f64,
    /// Scale σ.
    scale: f64,
}

impl BoundedPareto {
    /// Creates a sampler over `0..n` with MixGraph-like shape/scale.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "Pareto needs a non-empty domain");
        BoundedPareto {
            n,
            shape: 0.2,
            scale: n as f64 / 50.0,
        }
    }

    /// Samples a key in `0..n` (low keys are hot).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(1e-12..1.0);
        // Inverse CDF of the generalized Pareto distribution.
        let x = self.scale * ((u.powf(-self.shape) - 1.0) / self.shape);
        (x as u64).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0;
        let samples = 20_000;
        for _ in 0..samples {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-1% of keys take far more than 1% of accesses.
        assert!(head > samples / 10, "head hits: {head}");
    }

    #[test]
    fn zipf_stays_in_domain() {
        let z = Zipf::new(10, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn pareto_is_hot_at_low_keys() {
        let p = BoundedPareto::new(1_000_000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = 0;
        let samples = 20_000;
        for _ in 0..samples {
            if p.sample(&mut rng) < 100_000 {
                low += 1;
            }
        }
        assert!(low > samples / 2, "low-key hits: {low}");
    }

    #[test]
    fn pareto_stays_in_domain() {
        let p = BoundedPareto::new(100);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(p.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn samplers_are_deterministic_by_seed() {
        let z = Zipf::new(100, 0.9);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..32).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
