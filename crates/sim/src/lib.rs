//! Virtual-time substrate for the MemSnap reproduction.
//!
//! The MemSnap paper ([Tsalapatis et al., ASPLOS 2024]) evaluates a kernel
//! mechanism on specific NVMe hardware. This reproduction replaces wall-clock
//! measurement with a *deterministic discrete-event simulation*: every
//! modeled step (page fault, PTE write, TLB shootdown, disk IO, syscall
//! entry, …) charges a calibrated number of nanoseconds to a per-virtual-
//! thread clock. Benchmarks then report virtual latencies and virtual
//! throughput, which reproduces the *shape* of the paper's results on any
//! machine.
//!
//! The crate provides:
//!
//! - [`Nanos`]: a virtual-time instant/duration newtype.
//! - [`Vt`]: a virtual thread — a clock plus a per-thread cost tracker.
//! - [`Resource`] and [`ChannelPool`]: availability-time models for shared
//!   hardware (a lock, a disk channel).
//! - [`SimLink`] / [`NetConfig`]: a deterministic seeded lossy network
//!   link (latency, bandwidth, drops, reordering, partitions) for
//!   replication experiments.
//! - [`SimSwitch`]: an N-port hub of seeded links with fair round-robin
//!   polling, for multi-client fan-in (network services).
//! - [`SimLock`]: a virtual-time mutex usable from conservatively scheduled
//!   virtual threads.
//! - [`Scheduler`] and [`Process`]: a conservative (min-clock-first)
//!   discrete-event scheduler for multi-threaded workloads.
//! - [`InterleaveSched`]: a seeded pseudo-random interleaving scheduler
//!   for reproducible concurrency proofs (linearizability, recovery).
//! - [`LatencyStats`] / [`Meters`]: log-linear histograms for latency
//!   percentiles and named call-site statistics.
//! - [`CostTracker`] / [`Category`]: CPU-time attribution used to reproduce
//!   the paper's CPU-breakdown tables (Tables 1 and 8).
//!
//! # Example
//!
//! ```
//! use msnap_sim::{Nanos, Vt, Category};
//!
//! let mut vt = Vt::new(0);
//! vt.charge(Category::Syscall, Nanos::from_us(2));
//! assert_eq!(vt.now(), Nanos::from_us(2));
//! assert_eq!(vt.costs().total(), Nanos::from_us(2));
//! ```
//!
//! [Tsalapatis et al., ASPLOS 2024]: https://doi.org/10.1145/3620666.3651334

#![warn(missing_docs)]

mod cost;
mod interleave;
mod lock;
mod net;
mod resource;
mod sched;
mod stats;
mod time;
mod vthread;

pub use cost::{Category, CostTracker};
pub use interleave::InterleaveSched;
pub use lock::SimLock;
pub use net::{LinkStats, NetConfig, SimLink, SimSwitch};
pub use resource::{ChannelPool, Resource};
pub use sched::{Process, Scheduler, StepOutcome};
pub use stats::{LatencyStats, Meters};
pub use time::Nanos;
pub use vthread::{Vt, VthreadId};
