//! The store-agnostic KV interface.

use std::fmt;

use msnap_sim::{Meters, Vt};

/// A write the store could not make durable. The operation is *aborted*:
/// in-memory state may retain the write (it will ride along with the next
/// successful persist), but nothing new is durable and the caller decides
/// whether to acknowledge the underlying device error and retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvError(pub memsnap::MsnapError);

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "write aborted: {}", self.0)
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.0)
    }
}

impl From<memsnap::MsnapError> for KvError {
    fn from(e: memsnap::MsnapError) -> Self {
        KvError(e)
    }
}

/// Persistence counters common to the three architectures.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KvStats {
    /// Durable write operations (Put / MultiPut commits).
    pub commits: u64,
    /// MemTable flushes into SSTables (baseline only).
    pub flushes: u64,
    /// Compaction passes (baseline only).
    pub compactions: u64,
}

/// A key-value store with RocksDB-shaped operations. Writes are durable
/// when the call returns (the paper evaluates all three systems with
/// synchronous persistence).
pub trait Kv {
    /// Durably writes one key.
    ///
    /// # Errors
    ///
    /// [`KvError`] when the device rejects the persist IO: the write is
    /// aborted, not partially durable.
    fn put(&mut self, vt: &mut Vt, key: u64, value: &[u8]) -> Result<(), KvError>;

    /// Durably writes a batch as one transaction (RocksDB's
    /// WriteCommitted path: the MemTable is modified only at commit, with
    /// a single MultiPut).
    ///
    /// # Errors
    ///
    /// As for [`Kv::put`] — the batch aborts as a unit.
    fn multi_put(&mut self, vt: &mut Vt, pairs: &[(u64, Vec<u8>)]) -> Result<(), KvError>;

    /// Point lookup.
    fn get(&mut self, vt: &mut Vt, key: u64) -> Option<Vec<u8>>;

    /// Ordered scan of up to `limit` entries with keys ≥ `key`.
    fn seek(&mut self, vt: &mut Vt, key: u64, limit: usize) -> Vec<(u64, Vec<u8>)>;

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persistence counters.
    fn stats(&self) -> KvStats;

    /// Per-call latency meters.
    fn meters(&self) -> Meters;
}
