//! The simulated block device.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use msnap_sim::{Category, ChannelPool, Nanos, Vt};

use crate::{
    DiskConfig, Fault, FaultInjector, FaultPlan, IoError, IoStats, ReadFault, ReadFaultPlan,
    BLOCK_SIZE,
};

/// Handle for an asynchronously submitted write.
///
/// Returned by the `*_at` submission methods; pass to [`Disk::wait`] (or
/// compare [`WriteToken::completes`] yourself) to model completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteToken {
    completes: Nanos,
    bytes: usize,
}

impl WriteToken {
    /// The virtual instant the write becomes durable.
    pub fn completes(&self) -> Nanos {
        self.completes
    }

    /// Number of payload bytes in the write.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// One rollback record: the pre-image of a block overwritten by a write
/// that completes at `completes`.
#[derive(Debug)]
struct UndoEntry {
    completes: Nanos,
    block: u64,
    prev: Option<Box<[u8]>>,
}

/// A simulated striped NVMe device.
///
/// Contents are real bytes (4 KiB blocks); time is virtual. Writes are
/// applied to the in-memory image immediately on submission and become
/// *durable* at their completion instant; [`Disk::crash`] rolls the image
/// back to exactly the durable prefix. See the crate docs for the latency
/// model.
#[derive(Debug)]
pub struct Disk {
    cfg: DiskConfig,
    blocks: HashMap<u64, Box<[u8]>>,
    undo: Vec<UndoEntry>,
    channels: ChannelPool,
    stats: IoStats,
    injector: Option<FaultInjector>,
    /// 0-based sequence number of the next write submission; the key the
    /// fault plan is indexed by.
    io_seq: u64,
    /// Completion instant of every write segment, in submission order —
    /// the IO boundaries [`crash_at_every_io`] sweeps. Torn tails
    /// (never-durable segments) are excluded.
    write_log: Vec<Nanos>,
    /// Completion instants of write submissions still in flight — the
    /// explicit queue-depth model. Popped past entries lazily at each
    /// submission; the remaining occupancy is sampled into [`IoStats`].
    inflight: BinaryHeap<Reverse<Nanos>>,
    /// 0-based sequence number of the next *fallible* read submission —
    /// the key [`ReadFaultPlan`] is indexed by. Infallible reads do not
    /// consume sequence numbers.
    read_seq: u64,
    read_faults: ReadFaultPlan,
}

impl Disk {
    /// Creates an empty device with the given configuration.
    pub fn new(cfg: DiskConfig) -> Self {
        let channels = ChannelPool::new(cfg.channels);
        Disk {
            cfg,
            blocks: HashMap::new(),
            undo: Vec::new(),
            channels,
            stats: IoStats::new(),
            injector: None,
            io_seq: 0,
            write_log: Vec::new(),
            inflight: BinaryHeap::new(),
            read_seq: 0,
            read_faults: ReadFaultPlan::new(),
        }
    }

    /// Installs a fault plan; the device consults it on every write
    /// submission from now on. Replaces any previous plan and clears the
    /// injection audit log.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Removes the fault plan, returning the injector (with its audit
    /// log of faults actually applied), if one was installed.
    pub fn clear_fault_plan(&mut self) -> Option<FaultInjector> {
        self.injector.take()
    }

    /// The active fault injector, if any — exposes the audit log.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Completion instants of all write segments so far, in submission
    /// order. These are the IO boundaries a crash can land between; see
    /// [`crash_at_every_io`].
    pub fn write_completions(&self) -> &[Nanos] {
        &self.write_log
    }

    /// Number of write submissions so far — the index the fault plan
    /// will assign to the *next* submission.
    pub fn io_seq(&self) -> u64 {
        self.io_seq
    }

    /// The device configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Accumulated IO statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Resets IO statistics (e.g. after workload warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::new();
    }

    /// Submits a scatter/gather write of whole blocks at `now`.
    ///
    /// Every entry pairs a block number with exactly [`BLOCK_SIZE`] bytes.
    /// Data is visible to subsequent reads immediately (the caller holds it
    /// in memory anyway) and durable at the returned token's completion
    /// instant. Segments of up to the stripe size are dispatched across the
    /// device channels, so large vectored writes overlap.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::NoSpace`] if any block lies beyond
    /// `DiskConfig::capacity_blocks`, and [`IoError::Failed`] if the
    /// installed fault plan drops this submission. On error nothing is
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if any entry is not exactly [`BLOCK_SIZE`] bytes (a caller
    /// bug, not a device fault).
    pub fn writev_at(&mut self, now: Nanos, iov: &[(u64, &[u8])]) -> Result<WriteToken, IoError> {
        let total: usize = iov.iter().map(|(_, d)| d.len()).sum();
        for (block, data) in iov {
            assert_eq!(
                data.len(),
                BLOCK_SIZE,
                "block {block}: write entries must be BLOCK_SIZE bytes"
            );
        }

        if let Some(cap) = self.cfg.capacity_blocks {
            if let Some((block, _)) = iov.iter().find(|(b, _)| *b >= cap) {
                return Err(IoError::NoSpace {
                    block: *block,
                    capacity_blocks: cap,
                });
            }
        }

        // Consult the fault plan. Every submission consumes a sequence
        // number, including dropped ones, so a retry is a *new* submission
        // the plan may treat differently — that is what makes transient
        // faults recoverable.
        let io = self.io_seq;
        self.io_seq += 1;
        let fault = self.injector.as_mut().and_then(|inj| inj.consult(io));
        // Index of the first iov entry the device silently loses (torn
        // write); `iov.len()` means none.
        let mut torn_from = iov.len();
        let mut flip: Option<(usize, usize, u8)> = None;
        let mut spike = Nanos::ZERO;
        match fault {
            Some(Fault::Drop { transient }) => {
                let block = iov.first().map(|(b, _)| *b).unwrap_or(0);
                return Err(IoError::Failed { block, transient });
            }
            Some(Fault::Torn { prefix_blocks }) => {
                torn_from = prefix_blocks.min(iov.len());
            }
            Some(Fault::BitFlip { entry, byte, bit }) if !iov.is_empty() => {
                flip = Some((entry % iov.len(), byte % BLOCK_SIZE, bit % 8));
            }
            Some(Fault::BitFlip { .. }) => {}
            Some(Fault::LatencySpike { extra }) => spike = extra,
            None => {}
        }

        // Schedule segments across channels. Within one batch the device
        // pipelines: only the first segment per channel pays the fixed
        // setup cost; later segments stream at channel bandwidth. This is
        // what lets deep-queue scatter/gather writes saturate the striped
        // pair (paper Table 6: memsnap beats QD1 direct IO at large
        // sizes).
        let blocks_per_segment = (self.cfg.stripe_bytes / BLOCK_SIZE).max(1);
        let mut completes = now;
        let mut i = 0;
        let mut seg_index = 0;
        while i < iov.len() {
            let seg_blocks = blocks_per_segment.min(iov.len() - i);
            let seg_bytes = seg_blocks * BLOCK_SIZE;
            let mut latency = if seg_index < self.cfg.channels {
                self.cfg.segment_latency(seg_bytes)
            } else {
                self.cfg.segment_latency(seg_bytes) - self.cfg.setup
            };
            latency += spike;
            seg_index += 1;
            let done = self.channels.submit(now, latency);
            // A fully torn segment never becomes durable; a partially torn
            // one is durable only up to the tear. Lost blocks are applied
            // to the live image (the device acked them and serves them
            // from cache) but their undo records carry `Nanos::MAX`, so
            // any crash rolls them back.
            for (k, (block, data)) in iov[i..i + seg_blocks].iter().enumerate() {
                let lost = i + k >= torn_from;
                let prev = self.blocks.insert(*block, data.to_vec().into_boxed_slice());
                self.undo.push(UndoEntry {
                    completes: if lost { Nanos::MAX } else { done },
                    block: *block,
                    prev,
                });
            }
            if i < torn_from {
                self.write_log.push(done);
            }
            completes = completes.max(done);
            i += seg_blocks;
        }

        if let Some((entry, byte, bit)) = flip {
            let block = iov[entry].0;
            if let Some(data) = self.blocks.get_mut(&block) {
                data[byte] ^= 1 << bit;
            }
        }

        // Queue-depth model: retire submissions that completed by `now`,
        // then sample the occupancy this submission observes (itself
        // included).
        while matches!(self.inflight.peek(), Some(Reverse(done)) if *done <= now) {
            self.inflight.pop();
        }
        self.inflight.push(Reverse(completes));
        self.stats.record_depth(self.inflight.len() as u64);

        self.stats
            .record_write(total, completes.saturating_sub(now));
        Ok(WriteToken {
            completes,
            bytes: total,
        })
    }

    /// Reports that the submission just issued carried `parts` logical
    /// commits merged into one IO (group commit). Pure accounting — see
    /// [`IoStats::merged_submissions`].
    pub fn note_merged(&mut self, parts: u64) {
        self.stats.record_merged(parts);
    }

    /// Submits a single-block write at `now`. See [`Disk::writev_at`].
    pub fn write_block_at(
        &mut self,
        now: Nanos,
        block: u64,
        data: &[u8],
    ) -> Result<WriteToken, IoError> {
        self.writev_at(now, &[(block, data)])
    }

    /// Synchronous scatter/gather write: submits at the thread's current
    /// time and blocks it until completion (charged as IO wait).
    pub fn writev(&mut self, vt: &mut Vt, iov: &[(u64, &[u8])]) -> Result<WriteToken, IoError> {
        let token = self.writev_at(vt.now(), iov)?;
        Self::wait(vt, token);
        Ok(token)
    }

    /// Synchronous single-block write. See [`Disk::writev`].
    pub fn write_block(
        &mut self,
        vt: &mut Vt,
        block: u64,
        data: &[u8],
    ) -> Result<WriteToken, IoError> {
        self.writev(vt, &[(block, data)])
    }

    /// Blocks `vt` until `token` completes, charging the wait as
    /// [`Category::IoWait`].
    pub fn wait(vt: &mut Vt, token: WriteToken) {
        let wait = token.completes.saturating_sub(vt.now());
        if wait > Nanos::ZERO {
            vt.charge(Category::IoWait, wait);
        }
    }

    /// Reads one block at `now` without blocking a thread; returns the
    /// completion instant. Missing (never-written) blocks read as zeroes.
    pub fn read_block_at(&mut self, now: Nanos, block: u64, out: &mut [u8]) -> Nanos {
        assert_eq!(out.len(), BLOCK_SIZE, "reads are whole blocks");
        match self.blocks.get(&block) {
            Some(data) => out.copy_from_slice(data),
            None => out.fill(0),
        }
        let done = self
            .channels
            .submit(now, self.cfg.segment_latency(BLOCK_SIZE));
        self.stats.record_read(BLOCK_SIZE, done.saturating_sub(now));
        done
    }

    /// Synchronous single-block read.
    pub fn read_block(&mut self, vt: &mut Vt, block: u64, out: &mut [u8]) {
        let done = self.read_block_at(vt.now(), block, out);
        let wait = done.saturating_sub(vt.now());
        if wait > Nanos::ZERO {
            vt.charge(Category::IoWait, wait);
        }
    }

    /// Installs a read-fault plan; every *fallible* read submission from
    /// now on consults it. Replaces any previous plan. The fallible-read
    /// sequence counter is not reset — plans are indexed by the device
    /// lifetime counter (see [`Disk::read_seq`]).
    pub fn set_read_fault_plan(&mut self, plan: ReadFaultPlan) {
        self.read_faults = plan;
    }

    /// Number of fallible read submissions so far — the index the read
    /// fault plan will assign to the *next* [`Disk::try_read_block_at`].
    pub fn read_seq(&self) -> u64 {
        self.read_seq
    }

    /// Fallible counterpart of [`Disk::read_block_at`]: reads one block at
    /// `now` without blocking a thread and returns the completion instant.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Failed`] if the installed [`ReadFaultPlan`]
    /// schedules a failure for this submission. No bytes are transferred
    /// and no time is charged; a retry is a *new* submission (fresh
    /// sequence number) the plan may treat differently.
    pub fn try_read_block_at(
        &mut self,
        now: Nanos,
        block: u64,
        out: &mut [u8],
    ) -> Result<Nanos, IoError> {
        let seq = self.read_seq;
        self.read_seq += 1;
        match self.read_faults.fault_for(seq) {
            Some(ReadFault::Fail { transient }) => {
                return Err(IoError::Failed { block, transient });
            }
            Some(ReadFault::BitRot { byte, bit }) => {
                // Rot the media in place, then serve the read normally:
                // the caller gets corrupted bytes with Ok, and every
                // later read of this block sees the same rot.
                self.corrupt_bit(block, byte, bit);
            }
            None => {}
        }
        Ok(self.read_block_at(now, block, out))
    }

    /// Synchronous fallible single-block read; charges the wait as
    /// [`Category::IoWait`] on success. See [`Disk::try_read_block_at`].
    pub fn try_read_block(
        &mut self,
        vt: &mut Vt,
        block: u64,
        out: &mut [u8],
    ) -> Result<(), IoError> {
        let done = self.try_read_block_at(vt.now(), block, out)?;
        let wait = done.saturating_sub(vt.now());
        if wait > Nanos::ZERO {
            vt.charge(Category::IoWait, wait);
        }
        Ok(())
    }

    /// Simulates a power failure at instant `at`: every write that had not
    /// completed by `at` is rolled back, leaving exactly the durable image.
    ///
    /// Writes that completed at or before `at` survive. The undo log is
    /// cleared; the device can keep being used (as a "rebooted" device).
    pub fn crash(&mut self, at: Nanos) {
        // Roll back in reverse submission order so stacked overwrites of
        // the same block restore correctly.
        for entry in self.undo.drain(..).rev().collect::<Vec<_>>() {
            if entry.completes > at {
                match entry.prev {
                    Some(prev) => {
                        self.blocks.insert(entry.block, prev);
                    }
                    None => {
                        self.blocks.remove(&entry.block);
                    }
                }
            }
        }
    }

    /// Declares all submitted writes durable and drops rollback state.
    ///
    /// Call between workload phases to bound undo-log memory when crash
    /// injection is not needed beyond this point.
    pub fn settle(&mut self) {
        self.undo.clear();
    }

    /// Direct access to a block's current contents (test/diagnostic aid).
    pub fn peek(&self, block: u64) -> Option<&[u8]> {
        self.blocks.get(&block).map(|b| &b[..])
    }

    /// Fault injection: flips one bit of a stored block, bypassing the
    /// timing model and the undo journal — models media corruption for
    /// recovery tests. No-op if the block was never written.
    pub fn corrupt_bit(&mut self, block: u64, byte: usize, bit: u8) {
        if let Some(data) = self.blocks.get_mut(&block) {
            data[byte % BLOCK_SIZE] ^= 1 << (bit % 8);
        }
    }

    /// Fault injection: deterministically rots `count` distinct blocks out
    /// of `candidates`, flipping one pseudorandom bit in each — the bulk
    /// counterpart of [`Disk::corrupt_bit`] for seeded at-rest corruption
    /// sweeps. Returns the blocks that were actually rotted (candidates
    /// never written are skipped). Same seed + same candidates → same rot.
    pub fn seeded_rot(&mut self, seed: u64, candidates: &[u64], count: usize) -> Vec<u64> {
        // splitmix64: tiny, deterministic, and good enough to scatter the
        // picks; no external RNG dependency.
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut pool: Vec<u64> = candidates.to_vec();
        let mut rotted = Vec::new();
        while rotted.len() < count && !pool.is_empty() {
            let pick = (next() as usize) % pool.len();
            let block = pool.swap_remove(pick);
            if !self.blocks.contains_key(&block) {
                continue;
            }
            let byte = (next() as usize) % BLOCK_SIZE;
            let bit = (next() % 8) as u8;
            self.corrupt_bit(block, byte, bit);
            rotted.push(block);
        }
        rotted
    }

    /// Number of distinct blocks ever written (and not rolled back).
    pub fn blocks_in_use(&self) -> usize {
        self.blocks.len()
    }
}

/// Sweeps every IO boundary of a deterministic workload as a crash point.
///
/// `run` executes the workload from scratch and returns the device *with
/// its undo journal intact* (do not call [`Disk::settle`]). The driver
/// runs it once to learn the completion instant of every write segment,
/// then re-runs it per boundary, crashing the device just before and
/// exactly at each completion — the two instants on either side of the
/// durability edge — and hands the crashed device to `check` together
/// with the crash instant. `check` asserts whatever recovery invariant
/// the workload promises (typically: recovery yields exactly a committed
/// prefix).
///
/// Returns the number of crash points exercised.
///
/// # Panics
///
/// Panics if `run` is not deterministic enough to reproduce the same
/// number of write submissions (the sweep would silently test the wrong
/// boundaries otherwise).
pub fn crash_at_every_io(
    mut run: impl FnMut() -> Disk,
    mut check: impl FnMut(Disk, Nanos),
) -> usize {
    let reference = run();
    let submissions = reference.io_seq();
    let mut boundaries = BTreeSet::new();
    boundaries.insert(Nanos::ZERO);
    for &done in reference.write_completions() {
        boundaries.insert(done.saturating_sub(Nanos::from_ns(1)));
        boundaries.insert(done);
    }
    let mut points = 0;
    for at in boundaries {
        let mut disk = run();
        assert_eq!(
            disk.io_seq(),
            submissions,
            "workload must be deterministic across sweep re-runs"
        );
        disk.crash(at);
        check(disk, at);
        points += 1;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut vt = Vt::new(0);
        disk.write_block(&mut vt, 5, &block_of(0xAB)).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        disk.read_block(&mut vt, 5, &mut out);
        assert_eq!(out, block_of(0xAB));
    }

    #[test]
    fn read_fault_plan_hits_only_scheduled_fallible_reads() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut vt = Vt::new(0);
        disk.write_block(&mut vt, 5, &block_of(0xAB)).unwrap();
        disk.set_read_fault_plan(ReadFaultPlan::new().at(1, true));
        let mut out = vec![0u8; BLOCK_SIZE];
        // Infallible reads neither consult the plan nor consume numbers.
        disk.read_block(&mut vt, 5, &mut out);
        assert_eq!(disk.read_seq(), 0);
        // Fallible read 0: clean. Read 1: scheduled transient failure.
        disk.try_read_block(&mut vt, 5, &mut out).unwrap();
        let err = disk.try_read_block(&mut vt, 5, &mut out).unwrap_err();
        assert!(err.is_transient());
        // The retry is submission 2 — past the plan, so it succeeds.
        out.fill(0);
        disk.try_read_block(&mut vt, 5, &mut out).unwrap();
        assert_eq!(out, block_of(0xAB));
        assert_eq!(disk.read_seq(), 3);
    }

    #[test]
    fn bit_rot_fault_serves_corrupted_data_without_error() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut vt = Vt::new(0);
        disk.write_block(&mut vt, 5, &block_of(0xAB)).unwrap();
        disk.set_read_fault_plan(ReadFaultPlan::new().rot_at(0, 3, 1));
        let mut out = vec![0u8; BLOCK_SIZE];
        // The rotted read reports success but byte 3 has bit 1 flipped.
        disk.try_read_block(&mut vt, 5, &mut out).unwrap();
        let mut want = block_of(0xAB);
        want[3] ^= 1 << 1;
        assert_eq!(out, want);
        // Rot is on the media, not the wire: later clean reads see it too.
        out.fill(0);
        disk.try_read_block(&mut vt, 5, &mut out).unwrap();
        assert_eq!(out, want);
        disk.read_block(&mut vt, 5, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    fn seeded_rot_is_deterministic_and_skips_unwritten_blocks() {
        let mut vt = Vt::new(0);
        let build = || {
            let mut d = Disk::new(DiskConfig::fast());
            let mut v = Vt::new(0);
            for b in 0..8u64 {
                d.write_block(&mut v, b, &block_of(b as u8)).unwrap();
            }
            d
        };
        let mut a = build();
        let mut b = build();
        let candidates: Vec<u64> = (0..12).collect(); // 8..12 never written
        let rot_a = a.seeded_rot(42, &candidates, 3);
        let rot_b = b.seeded_rot(42, &candidates, 3);
        assert_eq!(rot_a, rot_b);
        assert_eq!(rot_a.len(), 3);
        assert!(rot_a.iter().all(|&blk| blk < 8));
        for &blk in &rot_a {
            let mut out = vec![0u8; BLOCK_SIZE];
            a.read_block(&mut vt, blk, &mut out);
            assert_ne!(out, block_of(blk as u8), "block {blk} not rotted");
            let mut out_b = vec![0u8; BLOCK_SIZE];
            b.read_block(&mut vt, blk, &mut out_b);
            assert_eq!(out, out_b, "rot differs between identical seeds");
        }
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut out = vec![1u8; BLOCK_SIZE];
        disk.read_block_at(Nanos::ZERO, 999, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn sync_write_latency_matches_model() {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut vt = Vt::new(0);
        disk.write_block(&mut vt, 0, &block_of(1)).unwrap();
        let us = vt.now().as_us_f64();
        assert!((us - 17.0).abs() < 2.0, "4 KiB QD1 write took {us} us");
    }

    #[test]
    fn vectored_write_overlaps_channels() {
        // 32 blocks = 128 KiB = two 64 KiB segments; with two channels they
        // overlap, so the elapsed time is much less than 2x a segment.
        let mut disk = Disk::new(DiskConfig::paper());
        let data = block_of(3);
        let iov: Vec<(u64, &[u8])> = (0..32).map(|b| (b as u64, &data[..])).collect();
        let token = disk.writev_at(Nanos::ZERO, &iov).unwrap();
        let seg = disk.config().segment_latency(64 * 1024);
        assert!(token.completes() < seg * 2, "segments did not overlap");
        assert!(token.completes() >= seg);
    }

    #[test]
    fn crash_rolls_back_incomplete_writes() {
        let mut disk = Disk::new(DiskConfig::paper());
        let t1 = disk.write_block_at(Nanos::ZERO, 7, &block_of(1)).unwrap();
        // Second write to the same block, submitted after the first
        // completes.
        let t2 = disk
            .write_block_at(t1.completes(), 7, &block_of(2))
            .unwrap();
        assert!(t2.completes() > t1.completes());

        // Crash between the two completions: only the first survives.
        disk.crash(t1.completes());
        assert_eq!(disk.peek(7).unwrap(), &block_of(1)[..]);
    }

    #[test]
    fn crash_before_any_completion_empties_block() {
        let mut disk = Disk::new(DiskConfig::paper());
        disk.write_block_at(Nanos::ZERO, 7, &block_of(9)).unwrap();
        disk.crash(Nanos::ZERO); // nothing completed by t=0
        assert!(disk.peek(7).is_none());
    }

    #[test]
    fn crash_preserves_completed_vectored_segments() {
        let mut disk = Disk::new(DiskConfig::paper());
        let data = block_of(5);
        // 64 blocks = 4 segments over 2 channels: two waves.
        let iov: Vec<(u64, &[u8])> = (0..64).map(|b| (b as u64, &data[..])).collect();
        let token = disk.writev_at(Nanos::ZERO, &iov).unwrap();
        let first_wave = disk.config().segment_latency(64 * 1024) + Nanos::from_ns(100);
        disk.crash(first_wave);
        let survivors = (0..64).filter(|b| disk.peek(*b).is_some()).count();
        assert!(survivors >= 32, "first-wave segments must survive");
        assert!(survivors < 64, "second-wave segments must be rolled back");
        assert!(token.completes() > first_wave);
    }

    #[test]
    fn wait_charges_io_wait() {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut vt = Vt::new(0);
        let token = disk.write_block_at(vt.now(), 1, &block_of(1)).unwrap();
        Disk::wait(&mut vt, token);
        assert_eq!(vt.now(), token.completes());
        assert_eq!(vt.costs().get(Category::IoWait), token.completes());
    }

    #[test]
    fn stats_track_bytes_and_ios() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut vt = Vt::new(0);
        disk.write_block(&mut vt, 0, &block_of(1)).unwrap();
        disk.write_block(&mut vt, 1, &block_of(2)).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        disk.read_block(&mut vt, 0, &mut out);
        assert_eq!(disk.stats().writes(), 2);
        assert_eq!(disk.stats().bytes_written(), 2 * BLOCK_SIZE as u64);
        assert_eq!(disk.stats().reads(), 1);
    }

    #[test]
    #[should_panic(expected = "BLOCK_SIZE")]
    fn partial_block_writes_rejected() {
        let mut disk = Disk::new(DiskConfig::fast());
        let _ = disk.write_block_at(Nanos::ZERO, 0, &[1, 2, 3]);
    }

    #[test]
    fn settle_then_crash_keeps_everything() {
        let mut disk = Disk::new(DiskConfig::paper());
        disk.write_block_at(Nanos::ZERO, 3, &block_of(4)).unwrap();
        disk.settle();
        disk.crash(Nanos::ZERO);
        assert_eq!(disk.peek(3).unwrap(), &block_of(4)[..]);
    }

    #[test]
    fn capacity_exhaustion_fails_without_side_effects() {
        let mut disk = Disk::new(DiskConfig::fast().with_capacity_blocks(10));
        disk.write_block_at(Nanos::ZERO, 9, &block_of(1)).unwrap();
        let err = disk
            .write_block_at(Nanos::ZERO, 10, &block_of(2))
            .unwrap_err();
        assert_eq!(
            err,
            IoError::NoSpace {
                block: 10,
                capacity_blocks: 10
            }
        );
        assert!(!err.is_transient());
        assert!(disk.peek(10).is_none());
        assert_eq!(disk.stats().writes(), 1, "failed write must not be counted");
    }

    #[test]
    fn dropped_write_applies_nothing_and_reports_transience() {
        let mut disk = Disk::new(DiskConfig::fast());
        disk.set_fault_plan(
            FaultPlan::new()
                .at(0, Fault::Drop { transient: true })
                .at(1, Fault::Drop { transient: false }),
        );
        let soft = disk
            .write_block_at(Nanos::ZERO, 5, &block_of(1))
            .unwrap_err();
        assert!(soft.is_transient());
        assert!(disk.peek(5).is_none());
        let hard = disk
            .write_block_at(Nanos::ZERO, 5, &block_of(1))
            .unwrap_err();
        assert!(!hard.is_transient());
        // Third submission: past the plan, succeeds.
        disk.write_block_at(Nanos::ZERO, 5, &block_of(1)).unwrap();
        assert_eq!(disk.peek(5).unwrap(), &block_of(1)[..]);
        assert_eq!(disk.fault_injector().unwrap().injected().len(), 2);
    }

    #[test]
    fn torn_write_loses_the_tail_only_at_crash() {
        let mut disk = Disk::new(DiskConfig::fast());
        disk.set_fault_plan(FaultPlan::new().at(0, Fault::Torn { prefix_blocks: 2 }));
        let data = block_of(7);
        let iov: Vec<(u64, &[u8])> = (0..4).map(|b| (b as u64, &data[..])).collect();
        let token = disk.writev_at(Nanos::ZERO, &iov).unwrap();
        // The device lies: before a crash all four blocks read back fine.
        for b in 0..4 {
            assert_eq!(disk.peek(b).unwrap(), &data[..], "pre-crash block {b}");
        }
        // After a crash — even one well past the token — only the prefix
        // survives.
        disk.crash(token.completes() + Nanos::from_secs(1));
        assert!(disk.peek(0).is_some());
        assert!(disk.peek(1).is_some());
        assert!(disk.peek(2).is_none(), "torn tail must be lost");
        assert!(disk.peek(3).is_none(), "torn tail must be lost");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let mut disk = Disk::new(DiskConfig::fast());
        disk.set_fault_plan(FaultPlan::new().at(
            0,
            Fault::BitFlip {
                entry: 0,
                byte: 100,
                bit: 3,
            },
        ));
        disk.write_block_at(Nanos::ZERO, 4, &block_of(0)).unwrap();
        let stored = disk.peek(4).unwrap();
        let diff: u32 = stored
            .iter()
            .zip(block_of(0).iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
        assert_eq!(stored[100], 1 << 3);
    }

    #[test]
    fn latency_spike_delays_completion() {
        let mut disk = Disk::new(DiskConfig::fast());
        let base = disk.write_block_at(Nanos::ZERO, 0, &block_of(1)).unwrap();
        let mut spiky = Disk::new(DiskConfig::fast());
        spiky.set_fault_plan(FaultPlan::new().at(
            0,
            Fault::LatencySpike {
                extra: Nanos::from_us(300),
            },
        ));
        let slow = spiky.write_block_at(Nanos::ZERO, 0, &block_of(1)).unwrap();
        assert_eq!(
            slow.completes(),
            base.completes() + Nanos::from_us(300),
            "spike must add exactly the configured extra latency"
        );
        assert_eq!(spiky.peek(0).unwrap(), &block_of(1)[..], "data still lands");
    }

    #[test]
    fn queue_depth_tracks_overlapping_submissions() {
        let mut disk = Disk::new(DiskConfig::paper());
        let data = block_of(1);
        // Three submissions at the same instant stack up; a fourth far in
        // the future sees an empty queue again.
        for b in 0..3u64 {
            disk.write_block_at(Nanos::ZERO, b, &data).unwrap();
        }
        assert_eq!(disk.stats().max_queue_depth(), 3);
        disk.write_block_at(Nanos::from_secs(1), 9, &data).unwrap();
        let avg = disk.stats().avg_queue_depth();
        assert!((avg - (1.0 + 2.0 + 3.0 + 1.0) / 4.0).abs() < 1e-9, "{avg}");
    }

    #[test]
    fn write_log_records_segment_boundaries() {
        let mut disk = Disk::new(DiskConfig::paper());
        let data = block_of(2);
        // 16 blocks = 64 KiB = two 32 KiB segments.
        let iov: Vec<(u64, &[u8])> = (0..16).map(|b| (b as u64, &data[..])).collect();
        disk.writev_at(Nanos::ZERO, &iov).unwrap();
        assert_eq!(disk.write_completions().len(), 2);
        assert_eq!(disk.io_seq(), 1);
    }

    #[test]
    fn crash_at_every_io_visits_both_sides_of_each_boundary() {
        // Workload: three dependent single-block writes.
        let run = || {
            let mut disk = Disk::new(DiskConfig::paper());
            let data = block_of(1);
            let mut now = Nanos::ZERO;
            for b in 0..3u64 {
                now = disk.write_block_at(now, b, &data).unwrap().completes();
            }
            disk
        };
        let mut seen = Vec::new();
        let points = crash_at_every_io(run, |disk, at| {
            let survivors = (0..3u64).filter(|b| disk.peek(*b).is_some()).count();
            seen.push((at, survivors));
        });
        // 3 completions × (just-before + at) + t=0; the first boundary's
        // "just before" may coincide with nothing else, so expect 7 points.
        assert_eq!(points, 7);
        // Survivor count must be monotone in the crash instant and hit
        // every prefix 0..=3.
        let counts: Vec<usize> = seen.iter().map(|(_, s)| *s).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        for want in 0..=3usize {
            assert!(
                counts.contains(&want),
                "missing prefix {want} in {counts:?}"
            );
        }
    }
}
