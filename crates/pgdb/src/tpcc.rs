//! The TPC-C driver (Figure 6): runs the sysbench-style mix over any
//! storage variant and reports transactions/s, disk MiB/s and IO/s.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use msnap_disk::{Disk, DiskConfig};
use msnap_sim::{Category, LatencyStats, Nanos, Scheduler, StepOutcome, Vt};
use msnap_workloads::tpcc::{Tpcc, TpccTxn, DISTRICTS_PER_WAREHOUSE, ITEMS};

use crate::{BlockStore, IoReport, PgDb, PgTable, StoreVariant, PG_BLOCK};

/// Table ids in the TPC-C schema.
const T_WAREHOUSE: PgTable = PgTable(0);
const T_DISTRICT: PgTable = PgTable(1);
const T_CUSTOMER: PgTable = PgTable(2);
const T_STOCK: PgTable = PgTable(3);
const T_ORDERS: PgTable = PgTable(4);
const T_ORDER_LINE: PgTable = PgTable(5);
const T_HISTORY: PgTable = PgTable(6);
/// Number of tables.
pub const NTABLES: u32 = 7;

/// Per-transaction userspace CPU outside storage (parser, planner,
/// executor, protocol — PostgreSQL is a heavyweight engine, which is why
/// Figure 6's storage-stack deltas are single-digit percentages).
const TXN_CPU: Nanos = Nanos::from_us(700);

/// TPC-C run parameters (paper: 150 warehouses, 24 connections, 2 min;
/// scaled defaults for CI).
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Warehouses.
    pub warehouses: u64,
    /// Concurrent connections (virtual threads / simulated processes).
    pub connections: usize,
    /// Virtual run duration.
    pub duration: Nanos,
    /// WAL bytes that trigger a checkpoint (file variants). The paper's
    /// testbed checkpoints regularly over a 2-minute run; scaled runs use
    /// a proportionally smaller trigger so the same number of checkpoint
    /// cycles happens.
    pub ckpt_wal_bytes: u64,
    /// Time-based checkpoint trigger (checkpoint_timeout, scaled).
    pub ckpt_interval: Nanos,
    /// RNG seed.
    pub seed: u64,
}

/// Results of one TPC-C run.
#[derive(Debug, Clone)]
pub struct TpccReport {
    /// Transactions completed.
    pub txns: u64,
    /// Transactions per virtual second.
    pub tps: f64,
    /// Virtual duration measured.
    pub wall: Nanos,
    /// Device IO summary (the lower panels of Figure 6).
    pub io: IoReport,
    /// Checkpoints performed (file variants).
    pub checkpoints: u64,
    /// Per-transaction latency.
    pub latency: LatencyStats,
}

/// Mutable benchmark state shared by the connections.
struct TpccState {
    db: PgDb,
    next_o_id: Vec<u64>,
    undelivered: Vec<VecDeque<u64>>,
    next_history: u64,
}

fn district_key(w: u64, d: u64) -> u64 {
    w * DISTRICTS_PER_WAREHOUSE + d
}

fn customer_key(w: u64, d: u64, c: u64) -> u64 {
    district_key(w, d) * 4096 + c
}

fn stock_key(w: u64, i: u64) -> u64 {
    w * ITEMS + i
}

fn row(tag: u8, len: usize) -> Vec<u8> {
    vec![tag; len]
}

/// Builds and populates a TPC-C database over `variant`.
pub fn setup(variant: StoreVariant, warehouses: u64, connections: usize, vt: &mut Vt) -> PgDb {
    let store = BlockStore::new(
        variant,
        Disk::new(DiskConfig::paper()),
        NTABLES,
        connections,
        // Capacity: stock dominates (ITEMS rows/warehouse, ~62 B each).
        (warehouses * ITEMS * 340 / PG_BLOCK as u64 + 8192).next_multiple_of(64),
        vt,
    );
    let mut db = PgDb::new(store, NTABLES);
    let t = vt.id();
    for w in 0..warehouses {
        db.insert(vt, 0, t, T_WAREHOUSE, w, &row(1, 90));
        for d in 0..DISTRICTS_PER_WAREHOUSE {
            db.insert(vt, 0, t, T_DISTRICT, district_key(w, d), &row(2, 95));
            for c in 0..msnap_workloads::tpcc::CUSTOMERS_PER_DISTRICT {
                db.insert(vt, 0, t, T_CUSTOMER, customer_key(w, d, c), &row(3, 655));
            }
            db.commit(vt, 0, t);
        }
        for i in 0..ITEMS {
            db.insert(vt, 0, t, T_STOCK, stock_key(w, i), &row(4, 306));
            if i % 512 == 511 {
                db.commit(vt, 0, t);
            }
        }
        db.commit(vt, 0, t);
    }
    db
}

fn execute_txn(state: &mut TpccState, vt: &mut Vt, conn: usize, txn: &TpccTxn) {
    let thread = vt.id();
    vt.charge(Category::OtherUserspace, TXN_CPU);
    let db = &mut state.db;
    match txn {
        TpccTxn::NewOrder {
            warehouse: w,
            district: d,
            customer: c,
            items,
        } => {
            let dk = district_key(*w, *d);
            let _ = db.read(vt, conn, T_WAREHOUSE, *w);
            let _ = db.read(vt, conn, T_DISTRICT, dk);
            db.update(vt, conn, thread, T_DISTRICT, dk, &row(2, 95));
            let _ = db.read(vt, conn, T_CUSTOMER, customer_key(*w, *d, *c));
            let o_id = state.next_o_id[dk as usize];
            state.next_o_id[dk as usize] += 1;
            let order_key = (dk << 24) | o_id;
            db.insert(vt, conn, thread, T_ORDERS, order_key, &row(5, 48));
            for (line, item) in items.iter().enumerate() {
                let sk = stock_key(*w, *item);
                let _ = db.read(vt, conn, T_STOCK, sk);
                db.update(vt, conn, thread, T_STOCK, sk, &row(4, 306));
                db.insert(
                    vt,
                    conn,
                    thread,
                    T_ORDER_LINE,
                    (order_key << 4) | line as u64,
                    &row(6, 54),
                );
            }
            state.undelivered[dk as usize].push_back(order_key);
            db.commit(vt, conn, thread);
        }
        TpccTxn::Payment {
            warehouse: w,
            district: d,
            customer: c,
            ..
        } => {
            let dk = district_key(*w, *d);
            db.update(vt, conn, thread, T_WAREHOUSE, *w, &row(1, 90));
            db.update(vt, conn, thread, T_DISTRICT, dk, &row(2, 95));
            let ck = customer_key(*w, *d, *c);
            let _ = db.read(vt, conn, T_CUSTOMER, ck);
            db.update(vt, conn, thread, T_CUSTOMER, ck, &row(3, 655));
            let h = state.next_history;
            state.next_history += 1;
            db.insert(vt, conn, thread, T_HISTORY, h, &row(7, 46));
            db.commit(vt, conn, thread);
        }
        TpccTxn::OrderStatus {
            warehouse: w,
            district: d,
            customer: c,
        } => {
            let _ = db.read(vt, conn, T_CUSTOMER, customer_key(*w, *d, *c));
            let dk = district_key(*w, *d);
            if let Some(&order) = state.undelivered[dk as usize].back() {
                let _ = db.read(vt, conn, T_ORDERS, order);
                for line in 0..4 {
                    let _ = db.read(vt, conn, T_ORDER_LINE, (order << 4) | line);
                }
            }
        }
        TpccTxn::Delivery { warehouse: w } => {
            let mut wrote = false;
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                let dk = district_key(*w, d);
                if let Some(order) = state.undelivered[dk as usize].pop_front() {
                    db.update(vt, conn, thread, T_ORDERS, order, &row(5, 48));
                    wrote = true;
                }
            }
            if wrote {
                db.commit(vt, conn, thread);
            }
        }
        TpccTxn::StockLevel {
            warehouse: w,
            district: d,
        } => {
            let _ = db.read(vt, conn, T_DISTRICT, district_key(*w, *d));
            for i in 0..20u64 {
                let _ = db.read(vt, conn, T_STOCK, stock_key(*w, (i * 487) % ITEMS));
            }
        }
    }
}

/// Runs TPC-C over an already-populated database. `start` is the virtual
/// instant the benchmark begins — pass the setup thread's clock so the
/// connections do not race the setup phase's device backlog.
pub fn run(mut db: PgDb, cfg: &TpccConfig, start: Nanos) -> (TpccReport, PgDb) {
    db.store_mut().set_ckpt_wal_bytes(cfg.ckpt_wal_bytes);
    db.store_mut().set_ckpt_interval(cfg.ckpt_interval);
    db.store_mut().reset_io_stats();
    let warehouses = cfg.warehouses;
    let districts = (warehouses * DISTRICTS_PER_WAREHOUSE) as usize;
    let state = Rc::new(RefCell::new(TpccState {
        db,
        next_o_id: vec![0; districts],
        undelivered: vec![VecDeque::new(); districts],
        next_history: 0,
    }));
    let latency = Rc::new(RefCell::new(LatencyStats::new()));
    let txns = Rc::new(RefCell::new(0u64));

    let mut sched = Scheduler::new();
    for conn in 0..cfg.connections {
        let state = Rc::clone(&state);
        let latency = Rc::clone(&latency);
        let txns = Rc::clone(&txns);
        let mut gen = Tpcc::new(warehouses, cfg.seed.wrapping_add(conn as u64));
        let deadline = start + cfg.duration;
        sched.spawn(move |vt: &mut Vt| {
            vt.wait_until(start);
            let t0 = vt.now();
            let txn = gen.next_txn();
            execute_txn(&mut state.borrow_mut(), vt, conn, &txn);
            latency.borrow_mut().record(vt.now() - t0);
            *txns.borrow_mut() += 1;
            if vt.now() >= deadline {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        });
    }
    let threads = sched.run_to_completion();
    let end = threads
        .iter()
        .map(|vt| vt.now())
        .max()
        .unwrap_or(Nanos::ZERO);
    let wall = end.saturating_sub(start);

    let state = Rc::try_unwrap(state)
        .unwrap_or_else(|_| panic!("driver holds the only reference"))
        .into_inner();
    let total = *txns.borrow();
    let report = TpccReport {
        txns: total,
        tps: total as f64 / wall.as_secs_f64(),
        wall,
        io: state.db.store().io_report(wall),
        checkpoints: state.db.store().checkpoints(),
        latency: Rc::try_unwrap(latency)
            .expect("driver holds the only reference")
            .into_inner(),
    };
    (report, state.db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TpccConfig {
        TpccConfig {
            warehouses: 2,
            connections: 4,
            duration: Nanos::from_ms(250),
            ckpt_wal_bytes: 1 << 20,
            ckpt_interval: Nanos::from_ms(20),
            seed: 11,
        }
    }

    fn run_variant(variant: StoreVariant) -> TpccReport {
        let cfg = small_cfg();
        let mut vt = Vt::new(u32::MAX);
        let db = setup(variant, cfg.warehouses, cfg.connections, &mut vt);
        let (report, _) = run(db, &cfg, vt.now());
        report
    }

    #[test]
    fn tpcc_runs_on_all_variants() {
        for variant in [
            StoreVariant::Baseline,
            StoreVariant::FfsMmap,
            StoreVariant::FfsMmapBufdirect,
            StoreVariant::MemSnap,
        ] {
            let report = run_variant(variant);
            assert!(report.txns > 100, "{variant:?}: only {} txns", report.txns);
            assert!(report.tps > 0.0);
        }
    }

    /// Figure 6's throughput ordering: MemSnap ≥ baseline > mmap >
    /// bufdirect.
    #[test]
    fn fig6_tps_ordering() {
        let baseline = run_variant(StoreVariant::Baseline);
        let mmap = run_variant(StoreVariant::FfsMmap);
        let bufdirect = run_variant(StoreVariant::FfsMmapBufdirect);
        let memsnap = run_variant(StoreVariant::MemSnap);
        assert!(
            memsnap.tps >= baseline.tps * 0.97,
            "memsnap {:.0} vs baseline {:.0}",
            memsnap.tps,
            baseline.tps
        );
        assert!(
            baseline.tps > mmap.tps,
            "baseline {:.0} vs mmap {:.0}",
            baseline.tps,
            mmap.tps
        );
        assert!(
            mmap.tps > bufdirect.tps,
            "mmap {:.0} vs bufdirect {:.0}",
            mmap.tps,
            bufdirect.tps
        );
    }

    /// Figure 6's IO panels: MemSnap writes far fewer bytes (paper: -80%)
    /// but issues more IOs (paper: +26%).
    #[test]
    fn fig6_io_shape() {
        let baseline = run_variant(StoreVariant::Baseline);
        let memsnap = run_variant(StoreVariant::MemSnap);
        // Normalize per transaction.
        let base_bytes = baseline.io.bytes_written as f64 / baseline.txns as f64;
        let ms_bytes = memsnap.io.bytes_written as f64 / memsnap.txns as f64;
        // The paper reports -80% at full scale (30 GiB, cold blocks); at
        // CI scale blocks are hotter so the WAL sees more delta records —
        // the direction still holds clearly.
        // At CI scale blocks are hot, so the baseline's WAL dedups many
        // updates into delta records the paper's cold-block workload
        // would log as full pages; the margin here is correspondingly
        // smaller than the paper's -80%.
        assert!(
            ms_bytes < base_bytes * 0.9,
            "memsnap {ms_bytes:.0} B/txn vs baseline {base_bytes:.0} B/txn"
        );
        let base_iops = baseline.io.iops * baseline.wall.as_secs_f64() / baseline.txns as f64;
        let ms_iops = memsnap.io.iops * memsnap.wall.as_secs_f64() / memsnap.txns as f64;
        assert!(
            ms_iops > base_iops,
            "memsnap {ms_iops:.2} IO/txn vs baseline {base_iops:.2} IO/txn"
        );
    }
}
