//! The msnap-serve wire protocol: length-prefixed, checksummed frames
//! over [`msnap_sim::SimLink`] datagrams.
//!
//! A datagram carries one or more *frames*; each frame is
//!
//! ```text
//! [body_len: u32 LE][fnv1a(body): u64 LE][body]
//! ```
//!
//! and each body is one tagged [`Request`] or [`Response`]. Batching
//! several frames into one datagram is how the server flushes a round's
//! responses per connection. Decoding is strict and total: a malformed
//! datagram yields a typed [`WireError`], never a panic, and a frame
//! whose checksum does not match its body is rejected wholesale (the
//! link is lossy, not corrupting — a bad checksum means an encoder bug,
//! so it is surfaced, not skipped).
//!
//! Every multi-byte integer is little-endian. Strings carry a `u16`
//! length, values a `u16` length, vectors a `u32` element count; all
//! lengths are validated against the remaining body before allocation.

use msnap_store::fnv1a;

/// Hard cap on one stored value; a slot is 64 bytes with 2 bytes of
/// header (see [`crate::server`]).
pub const MAX_VALUE_BYTES: usize = 62;

/// Hard cap on a tenant name on the wire.
pub const MAX_TENANT_BYTES: usize = 128;

/// Frame header bytes (length prefix + checksum).
pub const FRAME_HEADER: usize = 4 + 8;

/// Typed decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended inside a header, length field, or payload.
    Truncated,
    /// A frame's checksum does not match its body.
    BadChecksum,
    /// An unknown request/response tag.
    BadTag(u8),
    /// A length field exceeds its hard cap or the remaining body.
    BadLength,
    /// A tenant name is not valid UTF-8.
    BadString,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::BadChecksum => f.write_str("frame checksum mismatch"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadLength => f.write_str("length field out of bounds"),
            WireError::BadString => f.write_str("invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Error codes a server returns in [`Response::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrCode {
    /// The session id is not live on this node (e.g. after a failover —
    /// the client should re-Hello).
    UnknownSession,
    /// The key is at or beyond the tenant's fixed capacity.
    KeyOutOfRange,
    /// The value exceeds [`MAX_VALUE_BYTES`].
    ValueTooLarge,
    /// The watch id is not live on this node.
    UnknownWatch,
    /// The request was structurally valid but unserviceable.
    BadRequest,
}

impl ErrCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrCode::UnknownSession => 1,
            ErrCode::KeyOutOfRange => 2,
            ErrCode::ValueTooLarge => 3,
            ErrCode::UnknownWatch => 4,
            ErrCode::BadRequest => 5,
        }
    }

    fn from_byte(b: u8) -> Result<ErrCode, WireError> {
        Ok(match b {
            1 => ErrCode::UnknownSession,
            2 => ErrCode::KeyOutOfRange,
            3 => ErrCode::ValueTooLarge,
            4 => ErrCode::UnknownWatch,
            5 => ErrCode::BadRequest,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens a session. `staleness` is the session's bounded-staleness
    /// budget: a read may be served by a replica at most this many
    /// epochs behind the primary (0 = replica must be fully caught up
    /// on the object read).
    Hello {
        /// Epoch staleness budget for replica-routed reads.
        staleness: u64,
    },
    /// Writes `value` at `key` of `tenant` (created on first touch).
    Put {
        /// Session id from [`Response::HelloOk`].
        session: u64,
        /// Per-session request id (dedup key for retries).
        req: u64,
        /// Tenant namespace.
        tenant: String,
        /// Key in `0..capacity`.
        key: u64,
        /// Value, at most [`MAX_VALUE_BYTES`].
        value: Vec<u8>,
    },
    /// Reads `key` of `tenant`.
    Get {
        /// Session id.
        session: u64,
        /// Per-session request id.
        req: u64,
        /// Tenant namespace.
        tenant: String,
        /// Key in `0..capacity`.
        key: u64,
    },
    /// Reads every live key in `[lo, hi)` of `tenant`.
    Scan {
        /// Session id.
        session: u64,
        /// Per-session request id.
        req: u64,
        /// Tenant namespace.
        tenant: String,
        /// Inclusive scan start.
        lo: u64,
        /// Exclusive scan end.
        hi: u64,
    },
    /// Subscribes to invalidation events for keys of `tenant` in
    /// `[lo, hi)`.
    Subscribe {
        /// Session id.
        session: u64,
        /// Per-session request id.
        req: u64,
        /// Tenant namespace.
        tenant: String,
        /// Inclusive watch start.
        lo: u64,
        /// Exclusive watch end.
        hi: u64,
    },
    /// Cancels a watch.
    Unsubscribe {
        /// Session id.
        session: u64,
        /// Per-session request id.
        req: u64,
        /// Watch id from [`Response::SubOk`].
        watch: u64,
    },
    /// Requests the server's counters.
    StatsReq {
        /// Session id.
        session: u64,
        /// Per-session request id.
        req: u64,
    },
    /// Acknowledges a [`Response::Notify`] bundle (cumulative per
    /// session: the bundle with this cut sequence was processed).
    NotifyAck {
        /// Session id.
        session: u64,
        /// Cut sequence of the processed bundle.
        cut_seq: u64,
    },
}

/// One invalidation event inside a [`Response::Notify`] bundle: the
/// keys of `watch`'s range whose pages changed in `epoch` of one tenant
/// stripe object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotifyEvent {
    /// The watch this event belongs to.
    pub watch: u64,
    /// Stripe index within the tenant (which sharded object changed).
    pub stripe: u64,
    /// The committed μCheckpoint epoch the changes belong to.
    pub epoch: u64,
    /// Changed-key ranges `[lo, hi)`, page-granular, clipped to the
    /// watch range, adjacent ranges merged.
    pub ranges: Vec<(u64, u64)>,
}

/// Server counters returned by [`Response::StatsOk`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Live sessions.
    pub sessions: u64,
    /// Live watches.
    pub watches: u64,
    /// Puts committed.
    pub puts: u64,
    /// Gets served.
    pub gets: u64,
    /// Scans served.
    pub scans: u64,
    /// Notify bundles sent (first transmissions).
    pub notify_bundles: u64,
    /// Invalidation events fanned out.
    pub notify_events: u64,
    /// Vector cuts stamped.
    pub cuts: u64,
    /// Reads served by a replica.
    pub replica_reads: u64,
    /// Reads served by the primary.
    pub primary_reads: u64,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session granted.
    HelloOk {
        /// The new session id.
        session: u64,
        /// Stripe objects per tenant on this node.
        stripes: u64,
        /// Keys per tenant.
        capacity: u64,
    },
    /// Write acknowledged: the value is durable on the primary and — on
    /// a replicated node — applied by every attached replica, so it
    /// survives failover.
    PutOk {
        /// Echoed request id.
        req: u64,
        /// The μCheckpoint epoch the write committed in.
        epoch: u64,
    },
    /// Read result.
    GetOk {
        /// Echoed request id.
        req: u64,
        /// Committed epoch of the object serving the read.
        epoch: u64,
        /// Whether a replica served it (bounded-staleness routing).
        from_replica: bool,
        /// The value, or `None` if the key is unset.
        value: Option<Vec<u8>>,
    },
    /// Scan result.
    ScanOk {
        /// Echoed request id.
        req: u64,
        /// Live `(key, value)` pairs in the scanned range, ascending.
        pairs: Vec<(u64, Vec<u8>)>,
    },
    /// Watch granted.
    SubOk {
        /// Echoed request id.
        req: u64,
        /// The new watch id.
        watch: u64,
        /// Per-stripe epochs already reflected in the subscriber's
        /// baseline: events arrive only for epochs beyond these.
        from_epochs: Vec<u64>,
    },
    /// Watch cancelled.
    UnsubOk {
        /// Echoed request id.
        req: u64,
    },
    /// Server counters.
    StatsOk {
        /// Echoed request id.
        req: u64,
        /// Counter snapshot.
        stats: WireStats,
    },
    /// A cut-aligned invalidation bundle: *all* of this session's
    /// events for vector cut `cut_seq`, across every watched tenant and
    /// shard, delivered atomically. `prev_seq` chains bundles so the
    /// client processes them in cut order (exactly once) even when the
    /// link reorders or the server retransmits.
    Notify {
        /// The vector cut this bundle is aligned to.
        cut_seq: u64,
        /// The session's previous non-empty bundle (0 = first).
        prev_seq: u64,
        /// The events, grouped per watch.
        events: Vec<NotifyEvent>,
    },
    /// Request failed.
    Err {
        /// Echoed request id (0 for Hello failures).
        req: u64,
        /// Why.
        code: ErrCode,
    },
}

// ---- encoding ----------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}
fn put_val(buf: &mut Vec<u8>, v: &[u8]) {
    put_u16(buf, v.len() as u16);
    buf.extend_from_slice(v);
}

/// Appends one framed message body to `out`.
fn frame(out: &mut Vec<u8>, body: &[u8]) {
    put_u32(out, body.len() as u32);
    put_u64(out, fnv1a(body));
    out.extend_from_slice(body);
}

fn request_body(r: &Request) -> Vec<u8> {
    let mut b = Vec::with_capacity(64);
    match r {
        Request::Hello { staleness } => {
            b.push(0x01);
            put_u64(&mut b, *staleness);
        }
        Request::Put {
            session,
            req,
            tenant,
            key,
            value,
        } => {
            b.push(0x02);
            put_u64(&mut b, *session);
            put_u64(&mut b, *req);
            put_str(&mut b, tenant);
            put_u64(&mut b, *key);
            put_val(&mut b, value);
        }
        Request::Get {
            session,
            req,
            tenant,
            key,
        } => {
            b.push(0x03);
            put_u64(&mut b, *session);
            put_u64(&mut b, *req);
            put_str(&mut b, tenant);
            put_u64(&mut b, *key);
        }
        Request::Scan {
            session,
            req,
            tenant,
            lo,
            hi,
        } => {
            b.push(0x04);
            put_u64(&mut b, *session);
            put_u64(&mut b, *req);
            put_str(&mut b, tenant);
            put_u64(&mut b, *lo);
            put_u64(&mut b, *hi);
        }
        Request::Subscribe {
            session,
            req,
            tenant,
            lo,
            hi,
        } => {
            b.push(0x05);
            put_u64(&mut b, *session);
            put_u64(&mut b, *req);
            put_str(&mut b, tenant);
            put_u64(&mut b, *lo);
            put_u64(&mut b, *hi);
        }
        Request::Unsubscribe {
            session,
            req,
            watch,
        } => {
            b.push(0x06);
            put_u64(&mut b, *session);
            put_u64(&mut b, *req);
            put_u64(&mut b, *watch);
        }
        Request::StatsReq { session, req } => {
            b.push(0x07);
            put_u64(&mut b, *session);
            put_u64(&mut b, *req);
        }
        Request::NotifyAck { session, cut_seq } => {
            b.push(0x08);
            put_u64(&mut b, *session);
            put_u64(&mut b, *cut_seq);
        }
    }
    b
}

fn response_body(r: &Response) -> Vec<u8> {
    let mut b = Vec::with_capacity(64);
    match r {
        Response::HelloOk {
            session,
            stripes,
            capacity,
        } => {
            b.push(0x81);
            put_u64(&mut b, *session);
            put_u64(&mut b, *stripes);
            put_u64(&mut b, *capacity);
        }
        Response::PutOk { req, epoch } => {
            b.push(0x82);
            put_u64(&mut b, *req);
            put_u64(&mut b, *epoch);
        }
        Response::GetOk {
            req,
            epoch,
            from_replica,
            value,
        } => {
            b.push(0x83);
            put_u64(&mut b, *req);
            put_u64(&mut b, *epoch);
            b.push(u8::from(*from_replica));
            match value {
                Some(v) => {
                    b.push(1);
                    put_val(&mut b, v);
                }
                None => b.push(0),
            }
        }
        Response::ScanOk { req, pairs } => {
            b.push(0x84);
            put_u64(&mut b, *req);
            put_u32(&mut b, pairs.len() as u32);
            for (k, v) in pairs {
                put_u64(&mut b, *k);
                put_val(&mut b, v);
            }
        }
        Response::SubOk {
            req,
            watch,
            from_epochs,
        } => {
            b.push(0x85);
            put_u64(&mut b, *req);
            put_u64(&mut b, *watch);
            put_u32(&mut b, from_epochs.len() as u32);
            for e in from_epochs {
                put_u64(&mut b, *e);
            }
        }
        Response::UnsubOk { req } => {
            b.push(0x86);
            put_u64(&mut b, *req);
        }
        Response::StatsOk { req, stats } => {
            b.push(0x87);
            put_u64(&mut b, *req);
            for v in [
                stats.sessions,
                stats.watches,
                stats.puts,
                stats.gets,
                stats.scans,
                stats.notify_bundles,
                stats.notify_events,
                stats.cuts,
                stats.replica_reads,
                stats.primary_reads,
            ] {
                put_u64(&mut b, v);
            }
        }
        Response::Notify {
            cut_seq,
            prev_seq,
            events,
        } => {
            b.push(0x88);
            put_u64(&mut b, *cut_seq);
            put_u64(&mut b, *prev_seq);
            put_u32(&mut b, events.len() as u32);
            for e in events {
                put_u64(&mut b, e.watch);
                put_u64(&mut b, e.stripe);
                put_u64(&mut b, e.epoch);
                put_u32(&mut b, e.ranges.len() as u32);
                for (lo, hi) in &e.ranges {
                    put_u64(&mut b, *lo);
                    put_u64(&mut b, *hi);
                }
            }
        }
        Response::Err { req, code } => {
            b.push(0x89);
            put_u64(&mut b, *req);
            b.push(code.to_byte());
        }
    }
    b
}

/// Encodes one request as a single-frame datagram.
pub fn encode_request(r: &Request) -> Vec<u8> {
    let body = request_body(r);
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    frame(&mut out, &body);
    out
}

/// Encodes one response as a single frame (standalone datagram).
pub fn encode_response(r: &Response) -> Vec<u8> {
    let body = response_body(r);
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    frame(&mut out, &body);
    out
}

/// Appends one response frame to a datagram under assembly (the
/// server's per-connection round batch).
pub fn append_response(out: &mut Vec<u8>, r: &Response) {
    frame(out, &response_body(r));
}

/// Appends one request frame to a datagram under assembly.
pub fn append_request(out: &mut Vec<u8>, r: &Request) {
    frame(out, &request_body(r));
}

// ---- decoding ----------------------------------------------------------

/// A bounds-checked body reader.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::BadLength)?;
        let s = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        if n > MAX_TENANT_BYTES {
            return Err(WireError::BadLength);
        }
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::BadString)
    }

    fn val(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u16()? as usize;
        if n > MAX_VALUE_BYTES {
            return Err(WireError::BadLength);
        }
        Ok(self.take(n)?.to_vec())
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadLength)
        }
    }
}

/// Splits a datagram into checksum-verified frame bodies.
fn deframe(datagram: &[u8]) -> Result<Vec<&[u8]>, WireError> {
    let mut bodies = Vec::new();
    let mut at = 0usize;
    while at < datagram.len() {
        let hdr = datagram.get(at..at + 12).ok_or(WireError::Truncated)?;
        let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as usize;
        let mut crc = [0u8; 8];
        crc.copy_from_slice(&hdr[4..12]);
        let crc = u64::from_le_bytes(crc);
        let start = at + 12;
        let end = start.checked_add(len).ok_or(WireError::BadLength)?;
        let body = datagram.get(start..end).ok_or(WireError::Truncated)?;
        if fnv1a(body) != crc {
            return Err(WireError::BadChecksum);
        }
        bodies.push(body);
        at = end;
    }
    Ok(bodies)
}

fn parse_request(body: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(body);
    let req = match r.u8()? {
        0x01 => Request::Hello {
            staleness: r.u64()?,
        },
        0x02 => Request::Put {
            session: r.u64()?,
            req: r.u64()?,
            tenant: r.str()?,
            key: r.u64()?,
            value: r.val()?,
        },
        0x03 => Request::Get {
            session: r.u64()?,
            req: r.u64()?,
            tenant: r.str()?,
            key: r.u64()?,
        },
        0x04 => Request::Scan {
            session: r.u64()?,
            req: r.u64()?,
            tenant: r.str()?,
            lo: r.u64()?,
            hi: r.u64()?,
        },
        0x05 => Request::Subscribe {
            session: r.u64()?,
            req: r.u64()?,
            tenant: r.str()?,
            lo: r.u64()?,
            hi: r.u64()?,
        },
        0x06 => Request::Unsubscribe {
            session: r.u64()?,
            req: r.u64()?,
            watch: r.u64()?,
        },
        0x07 => Request::StatsReq {
            session: r.u64()?,
            req: r.u64()?,
        },
        0x08 => Request::NotifyAck {
            session: r.u64()?,
            cut_seq: r.u64()?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    r.finish()?;
    Ok(req)
}

fn parse_response(body: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(body);
    let resp = match r.u8()? {
        0x81 => Response::HelloOk {
            session: r.u64()?,
            stripes: r.u64()?,
            capacity: r.u64()?,
        },
        0x82 => Response::PutOk {
            req: r.u64()?,
            epoch: r.u64()?,
        },
        0x83 => {
            let req = r.u64()?;
            let epoch = r.u64()?;
            let from_replica = r.u8()? != 0;
            let value = match r.u8()? {
                0 => None,
                1 => Some(r.val()?),
                t => return Err(WireError::BadTag(t)),
            };
            Response::GetOk {
                req,
                epoch,
                from_replica,
                value,
            }
        }
        0x84 => {
            let req = r.u64()?;
            let n = r.u32()? as usize;
            // A pair is at least 10 bytes; reject counts the body
            // cannot possibly hold before allocating.
            if n > body.len() / 10 + 1 {
                return Err(WireError::BadLength);
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((r.u64()?, r.val()?));
            }
            Response::ScanOk { req, pairs }
        }
        0x85 => {
            let req = r.u64()?;
            let watch = r.u64()?;
            let n = r.u32()? as usize;
            if n > body.len() / 8 + 1 {
                return Err(WireError::BadLength);
            }
            let mut from_epochs = Vec::with_capacity(n);
            for _ in 0..n {
                from_epochs.push(r.u64()?);
            }
            Response::SubOk {
                req,
                watch,
                from_epochs,
            }
        }
        0x86 => Response::UnsubOk { req: r.u64()? },
        0x87 => {
            let req = r.u64()?;
            let mut v = [0u64; 10];
            for slot in &mut v {
                *slot = r.u64()?;
            }
            Response::StatsOk {
                req,
                stats: WireStats {
                    sessions: v[0],
                    watches: v[1],
                    puts: v[2],
                    gets: v[3],
                    scans: v[4],
                    notify_bundles: v[5],
                    notify_events: v[6],
                    cuts: v[7],
                    replica_reads: v[8],
                    primary_reads: v[9],
                },
            }
        }
        0x88 => {
            let cut_seq = r.u64()?;
            let prev_seq = r.u64()?;
            let n = r.u32()? as usize;
            if n > body.len() / 28 + 1 {
                return Err(WireError::BadLength);
            }
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let watch = r.u64()?;
                let stripe = r.u64()?;
                let epoch = r.u64()?;
                let m = r.u32()? as usize;
                if m > body.len() / 16 + 1 {
                    return Err(WireError::BadLength);
                }
                let mut ranges = Vec::with_capacity(m);
                for _ in 0..m {
                    ranges.push((r.u64()?, r.u64()?));
                }
                events.push(NotifyEvent {
                    watch,
                    stripe,
                    epoch,
                    ranges,
                });
            }
            Response::Notify {
                cut_seq,
                prev_seq,
                events,
            }
        }
        0x89 => Response::Err {
            req: r.u64()?,
            code: ErrCode::from_byte(r.u8()?)?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    r.finish()?;
    Ok(resp)
}

/// Decodes every request frame in a datagram.
///
/// # Errors
///
/// Any [`WireError`]; a partially valid datagram is rejected whole.
pub fn decode_requests(datagram: &[u8]) -> Result<Vec<Request>, WireError> {
    deframe(datagram)?.into_iter().map(parse_request).collect()
}

/// Decodes every response frame in a datagram.
///
/// # Errors
///
/// Any [`WireError`]; a partially valid datagram is rejected whole.
pub fn decode_responses(datagram: &[u8]) -> Result<Vec<Response>, WireError> {
    deframe(datagram)?.into_iter().map(parse_response).collect()
}

/// Merges page-granular key ranges: sorts, fuses adjacent/overlapping
/// `[lo, hi)` pairs, drops empties. Both the server (building events)
/// and test oracles (building expectations) use this, so equality
/// comparisons are canonical.
pub fn merge_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.retain(|&(lo, hi)| lo < hi);
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello { staleness: 3 },
            Request::Put {
                session: 7,
                req: 1,
                tenant: "acme".into(),
                key: 42,
                value: vec![1, 2, 3],
            },
            Request::Get {
                session: 7,
                req: 2,
                tenant: "acme".into(),
                key: 42,
            },
            Request::Scan {
                session: 7,
                req: 3,
                tenant: "acme".into(),
                lo: 0,
                hi: 64,
            },
            Request::Subscribe {
                session: 7,
                req: 4,
                tenant: "acme".into(),
                lo: 0,
                hi: 128,
            },
            Request::Unsubscribe {
                session: 7,
                req: 5,
                watch: 9,
            },
            Request::StatsReq { session: 7, req: 6 },
            Request::NotifyAck {
                session: 7,
                cut_seq: 11,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk {
                session: 7,
                stripes: 4,
                capacity: 1024,
            },
            Response::PutOk { req: 1, epoch: 5 },
            Response::GetOk {
                req: 2,
                epoch: 5,
                from_replica: true,
                value: Some(vec![9; 62]),
            },
            Response::GetOk {
                req: 2,
                epoch: 5,
                from_replica: false,
                value: None,
            },
            Response::ScanOk {
                req: 3,
                pairs: vec![(1, vec![1]), (2, vec![2, 2])],
            },
            Response::SubOk {
                req: 4,
                watch: 9,
                from_epochs: vec![3, 0, 7, 2],
            },
            Response::UnsubOk { req: 5 },
            Response::StatsOk {
                req: 6,
                stats: WireStats {
                    sessions: 1,
                    watches: 2,
                    puts: 3,
                    gets: 4,
                    scans: 5,
                    notify_bundles: 6,
                    notify_events: 7,
                    cuts: 8,
                    replica_reads: 9,
                    primary_reads: 10,
                },
            },
            Response::Notify {
                cut_seq: 12,
                prev_seq: 10,
                events: vec![NotifyEvent {
                    watch: 9,
                    stripe: 1,
                    epoch: 6,
                    ranges: vec![(0, 64), (128, 192)],
                }],
            },
            Response::Err {
                req: 8,
                code: ErrCode::KeyOutOfRange,
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for r in sample_requests() {
            let dg = encode_request(&r);
            assert_eq!(decode_requests(&dg).unwrap(), vec![r]);
        }
    }

    #[test]
    fn responses_round_trip_including_batches() {
        let all = sample_responses();
        for r in &all {
            let dg = encode_response(r);
            assert_eq!(decode_responses(&dg).unwrap(), vec![r.clone()]);
        }
        // One datagram carrying every frame, length-prefix framed.
        let mut dg = Vec::new();
        for r in &all {
            append_response(&mut dg, r);
        }
        assert_eq!(decode_responses(&dg).unwrap(), all);
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let mut dg = encode_request(&Request::Hello { staleness: 0 });
        let last = dg.len() - 1;
        dg[last] ^= 0xFF;
        assert_eq!(decode_requests(&dg), Err(WireError::BadChecksum));
        assert_eq!(
            decode_requests(&dg[..dg.len() - 1]),
            Err(WireError::Truncated)
        );
    }

    /// Decoding arbitrary bytes never panics and never fabricates a
    /// checksummed frame by chance (64-bit checksum).
    #[test]
    fn random_bytes_never_panic_the_decoder() {
        let mut rng = StdRng::seed_from_u64(0xDEC0DE);
        for len in 0..200usize {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                *b = rng.gen_range(0..=255u32) as u8;
            }
            let _ = decode_requests(&buf);
            let _ = decode_responses(&buf);
        }
        // Mutated valid frames: single-byte flips anywhere must either
        // fail the checksum or still parse to *something*, never panic.
        let dg = encode_response(&sample_responses()[8].clone());
        for i in 0..dg.len() {
            let mut m = dg.clone();
            m[i] ^= 0x40;
            let _ = decode_responses(&m);
        }
    }

    #[test]
    fn merge_ranges_canonicalizes() {
        assert_eq!(
            merge_ranges(vec![(64, 128), (0, 64), (256, 320), (300, 330), (5, 5)]),
            vec![(0, 128), (256, 330)]
        );
        assert_eq!(merge_ranges(vec![]), vec![]);
    }
}
