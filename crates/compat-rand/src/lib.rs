//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *small* slice of the `rand` 0.8 API it actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++, which is more than
//! adequate for workload generation and property tests (it is not, and
//! does not claim to be, cryptographically secure — neither does the
//! real `StdRng` guarantee a stable stream across versions).

#![warn(missing_docs)]

/// Sampling a value of a type uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value using `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value with the standard distribution for its type
    /// (`f64` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Bundled generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the modulo bias over a
                // 64-bit draw is negligible for simulation purposes.
                let draw = rng.next_u64() as u128 % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = rng.next_u64() as u128 % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = rng.next_u64() as u128 % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=1);
            assert!(w <= 1);
            let f = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
