//! Figure 5: TATP throughput vs database size, MemSnap vs the WAL
//! baseline.

use msnap_bench::{header, table};
use msnap_disk::{Disk, DiskConfig};
use msnap_fs::FsKind;
use msnap_litedb::drivers::{run_tatp, setup_tatp};
use msnap_litedb::{FileBackend, LiteDb, MemSnapBackend};
use msnap_sim::{Nanos, Vt};

/// Virtual benchmark duration (paper: 60 s; scaled).
const DURATION: Nanos = Nanos::from_ms(400);

fn run(memsnap: bool, subscribers: u64) -> f64 {
    let mut vt = Vt::new(0);
    let mut db = if memsnap {
        let be = MemSnapBackend::format_with_capacity(
            Disk::new(DiskConfig::paper()),
            "tatp.db",
            1 << 17,
            &mut vt,
        );
        LiteDb::new(Box::new(be), &mut vt)
    } else {
        let be = FileBackend::format(
            Disk::new(DiskConfig::paper()),
            FsKind::Ffs,
            "tatp.db",
            &mut vt,
        );
        LiteDb::new(Box::new(be), &mut vt)
    };
    let tables = setup_tatp(&mut db, &mut vt, subscribers);
    db.reset_metrics();
    run_tatp(&mut db, &mut vt, tables, subscribers, DURATION, 7).tps
}

fn main() {
    header(
        "Figure 5: TATP throughput vs database size (measured, txns/s)",
        "80/20 read/write mix, synchronous commits, 400 ms virtual run \
         (paper: 60 s, 1K-1M records; scaled to 1K-100K).",
    );
    let mut rows = Vec::new();
    let mut first: Option<(f64, f64)> = None;
    for subscribers in [1_000u64, 10_000, 100_000] {
        let ms = run(true, subscribers);
        let fb = run(false, subscribers);
        first.get_or_insert((ms, fb));
        rows.push(vec![
            format!("{subscribers}"),
            format!("{ms:.0}"),
            format!("{fb:.0}"),
            format!("{:.2}x", ms / fb),
        ]);
    }
    table(&["records", "memsnap tps", "baseline tps", "ratio"], &rows);
    if let Some((ms0, fb0)) = first {
        let last = rows.last().unwrap();
        let ms_drop = (1.0 - last[1].parse::<f64>().unwrap() / ms0) * 100.0;
        let fb_drop = (1.0 - last[2].parse::<f64>().unwrap() / fb0) * 100.0;
        println!();
        println!(
            "throughput loss from smallest to largest DB: memsnap {ms_drop:.0}% \
             (paper 23%), baseline {fb_drop:.0}% (paper 63%) — MemSnap's \
             overhead is independent of the mapping's resident size."
        );
    }
}
