//! End-to-end replication tests: three fixed network seeds (calm, lossy,
//! partition-heavy), a failover sweep that kills the primary after every
//! commit point and verifies the promoted-replica invariant — the
//! promoted store is byte-identical to *some* committed primary epoch no
//! newer than the death point, and the old primary re-attaches and
//! converges via deltas alone — and a two-run determinism check of the
//! full per-tick trace.

use std::collections::BTreeMap;

use memsnap::{Epoch, MemSnap, PersistFlags, RegionHandle, RegionSel, PAGE_SIZE};
use msnap_disk::{Disk, DiskConfig};
use msnap_repl::{ReplConfig, ReplEngine, ReplicaState};
use msnap_sim::{Nanos, NetConfig, Vt};
use msnap_vm::AsId;

const PAGES: u64 = 8;

struct Primary {
    ms: MemSnap,
    vt: Vt,
    space: AsId,
    r: RegionHandle,
    object: String,
}

fn primary() -> Primary {
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let mut vt = Vt::new(0);
    let space = ms.vm_mut().create_space();
    let r = ms.msnap_open(&mut vt, space, "data", PAGES).unwrap();
    let object = ms.region_object_name(r.md).unwrap().to_string();
    Primary {
        ms,
        vt,
        space,
        r,
        object,
    }
}

/// Commit `i`: stamp page `i % PAGES` with a fill derived from `i`, then
/// synchronously persist. Every commit yields a distinct region image.
fn commit(p: &mut Primary, i: u64) -> Epoch {
    let fill = 1 + (i % 250) as u8;
    let page = i % PAGES;
    let t = p.vt.id();
    p.ms.write(
        &mut p.vt,
        p.space,
        t,
        p.r.addr + page * PAGE_SIZE as u64,
        &[fill; PAGE_SIZE],
    )
    .unwrap();
    p.ms.msnap_persist(
        &mut p.vt,
        t,
        RegionSel::Region(p.r.md),
        PersistFlags::sync(),
    )
    .unwrap()
}

/// The primary's current region image. Synchronous persists keep memory
/// and the durable store identical, so right after a commit this is the
/// committed image of the returned epoch.
fn primary_image(p: &mut Primary) -> Vec<u8> {
    let mut img = vec![0u8; (PAGES as usize) * PAGE_SIZE];
    for page in 0..PAGES as usize {
        p.ms.read(
            &mut p.vt,
            p.space,
            p.r.addr + (page * PAGE_SIZE) as u64,
            &mut img[page * PAGE_SIZE..(page + 1) * PAGE_SIZE],
        )
        .unwrap();
    }
    img
}

/// The replica's durable image of `object`, read from its local store.
fn replica_image(eng: &mut ReplEngine, name: &str, object: &str) -> Vec<u8> {
    let node = eng.replica_mut(name).unwrap();
    let mut img = vec![0u8; (PAGES as usize) * PAGE_SIZE];
    for page in 0..PAGES {
        let at = (page as usize) * PAGE_SIZE;
        node.read_page(object, page, &mut img[at..at + PAGE_SIZE])
            .unwrap();
    }
    img
}

#[test]
fn seed_calm_replica_tracks_every_commit() {
    let mut p = primary();
    let mut eng = ReplEngine::new(ReplConfig::default());
    eng.add_replica("standby", NetConfig::calm(101)).unwrap();
    for i in 0..6 {
        commit(&mut p, i);
        assert!(eng
            .settle(&mut p.vt, &mut p.ms, Nanos::from_secs(5))
            .unwrap());
        let live = p.ms.object_epoch(&p.object).unwrap();
        assert_eq!(eng.replica("standby").unwrap().epoch(&p.object), live);
        assert_eq!(
            replica_image(&mut eng, "standby", &p.object),
            primary_image(&mut p),
            "after commit {i} the replica lags zero epochs and zero bytes"
        );
    }
    let m = *eng.link_metrics("standby").unwrap();
    assert!(m.full_syncs >= 1 && m.delta_syncs >= 4, "{m:?}");
    assert_eq!(m.lag_epochs, 0);
}

#[test]
fn seed_lossy_every_observable_state_is_a_committed_epoch() {
    let mut p = primary();
    let mut eng = ReplEngine::new(ReplConfig::default());
    eng.add_replica("standby", NetConfig::lossy(202)).unwrap();

    // Golden map: every committed epoch's image.
    let mut golden: BTreeMap<Epoch, Vec<u8>> = BTreeMap::new();
    for i in 0..10 {
        let e = commit(&mut p, i);
        golden.insert(e, primary_image(&mut p));
        eng.tick(&mut p.vt, &mut p.ms).unwrap();

        // Bounded staleness, never a torn apply: whatever the replica
        // shows mid-stream is exactly one of the committed images (or
        // the pre-commit store it bootstrapped from).
        let r = eng.replica("standby").unwrap().epoch(&p.object);
        if golden.contains_key(&r) {
            assert_eq!(
                replica_image(&mut eng, "standby", &p.object),
                golden[&r],
                "replica at epoch {r} diverges from the committed image"
            );
        } else {
            assert_eq!(r, 0, "unknown replica epoch {r} was never committed");
        }
    }
    assert!(eng
        .settle(&mut p.vt, &mut p.ms, Nanos::from_secs(120))
        .unwrap());
    assert_eq!(
        eng.replica("standby").unwrap().epoch(&p.object),
        p.ms.object_epoch(&p.object).unwrap()
    );
    assert_eq!(
        replica_image(&mut eng, "standby", &p.object),
        primary_image(&mut p)
    );
    let (down, _up) = eng.link_net_stats("standby").unwrap();
    assert!(
        down.dropped > 0,
        "the lossy seed must actually drop: {down:?}"
    );
    assert!(eng.link_metrics("standby").unwrap().retransmit_frames > 0);
}

#[test]
fn seed_partition_heavy_throttles_then_heals() {
    let mut p = primary();
    let cfg = ReplConfig {
        max_lag_epochs: 2,
        ..ReplConfig::default()
    };
    let mut eng = ReplEngine::new(cfg);
    eng.add_replica("standby", NetConfig::calm(303)).unwrap();
    commit(&mut p, 0);
    assert!(eng
        .settle(&mut p.vt, &mut p.ms, Nanos::from_secs(5))
        .unwrap());

    // Two partition episodes; commits continue under both.
    let mut throttled_ticks = 0u64;
    let mut i = 1u64;
    for episode in 0..2 {
        eng.set_partitioned("standby", true).unwrap();
        for _ in 0..4 {
            commit(&mut p, i);
            i += 1;
            if eng.tick(&mut p.vt, &mut p.ms).unwrap().throttled {
                throttled_ticks += 1;
            }
        }
        assert!(
            !eng.settle(&mut p.vt, &mut p.ms, Nanos::from_ms(200))
                .unwrap(),
            "episode {episode}: a partitioned link cannot settle"
        );
        eng.set_partitioned("standby", false).unwrap();
        assert!(
            eng.settle(&mut p.vt, &mut p.ms, Nanos::from_secs(120))
                .unwrap(),
            "episode {episode}: healing the partition must drain the lag"
        );
        assert_eq!(
            replica_image(&mut eng, "standby", &p.object),
            primary_image(&mut p)
        );
    }
    assert!(
        throttled_ticks > 0,
        "lag budget 2 must throttle behind a partition"
    );
    assert!(eng.link_metrics("standby").unwrap().throttled_ticks > 0);
    assert_eq!(
        eng.replica("standby").unwrap().state(),
        ReplicaState::Streaming
    );
}

/// The failover sweep. A golden run records the image of every committed
/// epoch; then for every prefix length `k` the same deterministic run is
/// replayed, the primary is killed right after commit `k`'s tick, and:
///
/// 1. in-flight datagrams land (the network outlives the primary);
/// 2. the standby's store must equal *some* committed image at an epoch
///    no newer than the death point — never a torn or invented state;
/// 3. the standby promotes, restores, serves reads of exactly that
///    committed image, and accepts new writes;
/// 4. the old primary's crashed device re-attaches as a replica of the
///    promoted node and converges **via deltas alone** (no full-image
///    resync), its unreplicated suffix fenced away.
#[test]
fn failover_sweep_promotes_a_committed_epoch_at_every_death_point() {
    const COMMITS: u64 = 6;

    let run_prefix = |commits: u64| -> (Primary, ReplEngine, BTreeMap<Epoch, Vec<u8>>) {
        let mut p = primary();
        let mut eng = ReplEngine::new(ReplConfig::default());
        eng.add_replica("standby", NetConfig::calm(404)).unwrap();
        let mut golden = BTreeMap::new();
        // Seed commit: replicas attach to a primary that already holds
        // data, so the bootstrap full image covers every object.
        let e0 = commit(&mut p, 0);
        golden.insert(e0, primary_image(&mut p));
        assert!(eng
            .settle(&mut p.vt, &mut p.ms, Nanos::from_secs(5))
            .unwrap());
        for i in 1..=commits {
            let e = commit(&mut p, i);
            golden.insert(e, primary_image(&mut p));
            eng.tick(&mut p.vt, &mut p.ms).unwrap();
        }
        (p, eng, golden)
    };

    let (_, _, golden) = run_prefix(COMMITS);
    let mut delta_only_reattaches = 0u32;

    for k in 0..=COMMITS {
        let (p, mut eng, prefix) = run_prefix(k);
        let death_epoch = p.ms.object_epoch(&p.object).unwrap();
        assert_eq!(prefix, {
            let mut g = golden.clone();
            g.retain(|&e, _| e <= death_epoch);
            g
        });

        // The primary dies; whatever was already on the wire still lands.
        let old_disk = p.ms.crash(p.vt.now());
        eng.pump();

        let promoted_epoch = eng.replica("standby").unwrap().epoch(&p.object);
        assert!(
            golden.contains_key(&promoted_epoch),
            "death after commit {k}: replica epoch {promoted_epoch} was never committed"
        );
        assert!(
            promoted_epoch <= death_epoch,
            "death after commit {k}: replica is ahead of the primary"
        );
        assert_eq!(
            replica_image(&mut eng, "standby", &p.object),
            golden[&promoted_epoch],
            "death after commit {k}: promoted store is not the epoch-{promoted_epoch} image"
        );

        // Promote and boot a new primary from the fenced device.
        let promo = eng.promote("standby").unwrap();
        let mut vt2 = promo.vt;
        let mut ms2 = MemSnap::restore(&mut vt2, promo.disk).unwrap();
        let space2 = ms2.vm_mut().create_space();
        let r2 = ms2.msnap_open(&mut vt2, space2, "data", 0).unwrap();
        let mut p2 = Primary {
            ms: ms2,
            vt: vt2,
            space: space2,
            r: r2,
            object: p.object.clone(),
        };
        assert_eq!(
            primary_image(&mut p2),
            golden[&promoted_epoch],
            "death after commit {k}: the restored primary serves a different image"
        );
        // The new primary serves writes.
        let new_epoch = commit(&mut p2, 100 + k);
        assert!(
            new_epoch > death_epoch,
            "fenced epochs stay ahead of old history"
        );

        // Re-attach the old primary; its unacknowledged suffix is
        // divergent history that must be fenced away, after which it
        // converges from retained common epochs by delta alone.
        let mut eng2 = ReplEngine::new(ReplConfig::default());
        eng2.attach_replica("old", NetConfig::calm(505), old_disk)
            .unwrap();
        assert!(eng2
            .settle(&mut p2.vt, &mut p2.ms, Nanos::from_secs(120))
            .unwrap());
        assert_eq!(
            replica_image(&mut eng2, "old", &p2.object),
            primary_image(&mut p2),
            "death after commit {k}: the old primary failed to converge"
        );
        let m = *eng2.link_metrics("old").unwrap();
        if m.full_syncs == 0 {
            delta_only_reattaches += 1;
        }
        assert!(m.delta_syncs >= 1, "death after commit {k}: {m:?}");
    }
    assert_eq!(
        delta_only_reattaches,
        COMMITS as u32 + 1,
        "every re-attach diffs from a retained common epoch, never a full image"
    );
}

#[test]
fn identical_seeds_replay_identical_traces() {
    let trace = |seed: u64| -> String {
        let mut p = primary();
        let mut eng = ReplEngine::new(ReplConfig::default());
        eng.add_replica("standby", NetConfig::lossy(seed)).unwrap();
        let mut out = String::new();
        for i in 0..8 {
            commit(&mut p, i);
            let report = eng.tick(&mut p.vt, &mut p.ms).unwrap();
            let (down, up) = eng.link_net_stats("standby").unwrap();
            out.push_str(&format!(
                "tick {i}: {report:?} {:?} {down:?} {up:?} epoch={} now={:?}\n",
                eng.link_metrics("standby").unwrap(),
                eng.replica("standby").unwrap().epoch(&p.object),
                p.vt.now(),
            ));
        }
        assert!(eng
            .settle(&mut p.vt, &mut p.ms, Nanos::from_secs(120))
            .unwrap());
        out.push_str(&format!(
            "final: {:?} {:?}",
            eng.link_metrics("standby").unwrap(),
            eng.link_meters("standby").unwrap().get("repl_ack_lag"),
        ));
        out
    };
    assert_eq!(trace(42), trace(42), "a fixed seed must replay exactly");
    assert_ne!(trace(42), trace(43), "different seeds must diverge");
}
