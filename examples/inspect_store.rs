//! A tiny `fsck`-style inspector for MemSnap devices: builds a store,
//! crashes it, then walks the durable image and prints what a recovery
//! would adopt — objects, epochs, sizes, and device usage.
//!
//! Run with: `cargo run --example inspect_store`

use memsnap::{MemSnap, PersistFlags, RegionSel, PAGE_SIZE};
use msnap_disk::{Disk, DiskConfig};
use msnap_sim::Vt;
use msnap_store::ObjectStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a device with a few regions and some history.
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let mut vt = Vt::new(0);
    let space = ms.vm_mut().create_space();
    let thread = vt.id();
    for (name, pages, commits) in [
        ("users.db", 64u64, 12u64),
        ("orders.db", 128, 40),
        ("wal-less!", 8, 3),
    ] {
        let r = ms.msnap_open(&mut vt, space, name, pages)?;
        for c in 0..commits {
            ms.write(
                &mut vt,
                space,
                thread,
                r.addr + (c % pages) * PAGE_SIZE as u64,
                &[c as u8; 100],
            )?;
            ms.msnap_persist(
                &mut vt,
                thread,
                RegionSel::Region(r.md),
                PersistFlags::sync(),
            )?;
        }
    }
    // Pull the plug mid-flight on one more commit.
    let r = ms.msnap_open(&mut vt, space, "orders.db", 0)?;
    ms.write(&mut vt, space, thread, r.addr, b"in flight, never lands")?;
    let crash_at = vt.now();
    ms.msnap_persist(
        &mut vt,
        thread,
        RegionSel::Region(r.md),
        PersistFlags::async_(),
    )?;
    let mut disk = ms.crash(crash_at);

    // Inspect the durable image, exactly as recovery sees it.
    println!("== msnap-inspect: durable image after power failure ==\n");
    let mut ivt = Vt::new(1);
    let store = ObjectStore::open(&mut ivt, &mut disk)?;
    println!(
        "{:<20} {:>8} {:>12} {:>12}",
        "object", "epoch", "pages", "bytes"
    );
    for name in store.object_names() {
        let Some(id) = store.lookup(&name) else {
            continue;
        };
        println!(
            "{:<20} {:>8} {:>12} {:>12}",
            name,
            store.epoch(id),
            store.len_pages(id),
            store.len_pages(id) * PAGE_SIZE as u64,
        );
    }
    println!(
        "\ndevice blocks in use: {} ({} KiB); recovery took {}",
        disk.blocks_in_use(),
        disk.blocks_in_use() * 4,
        ivt.now(),
    );
    println!("the in-flight commit to orders.db was correctly discarded.");
    Ok(())
}
