//! Detectable operation descriptors: the per-writer persistent log.
//!
//! Each writer owns one private log page of the carve
//! ([`memsnap::IndexCarve::log_addr`]) holding a ring of
//! [`LOG_ENTRIES`] fixed 64-byte entries. An operation writes its entry —
//! including the full inline value — *before* its linearizing CAS, and a
//! later operation with the same ring position overwrites it. Because the
//! log page and the writer's node pages are private to the writer's dirty
//! set, every μCheckpoint captures a mutually consistent (descriptor,
//! node) pair, which is what makes the operation *detectable*: recovery
//! reads the ring and can replay or complete any in-flight operation
//! exactly once.
//!
//! The ring bounds how much history survives a crash: a writer must not
//! run more than [`LOG_ENTRIES`] operations between μCheckpoints of its
//! dirty set, or an un-replayable operation could be overwritten. The
//! drivers in `msnap-skipdb` enforce this per batch.

use memsnap::{IndexCarve, MemSnap};
use msnap_sim::Vt;
use msnap_vm::AsId;

use crate::{fnv1a32, op_id, MAX_VALUE};

/// Entries per writer log ring (one 4 KiB page of 64-byte entries).
pub const LOG_ENTRIES: usize = 64;

/// Encoded descriptor size.
pub(crate) const DESC_SIZE: usize = 64;

const DESC_MAGIC: u32 = 0x5058_4F50; // "PXOP"

/// What an operation does to its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Link a fresh node (key was absent).
    Insert,
    /// Overwrite the value of an existing node in place.
    Update,
    /// Tombstone an existing node in place.
    Remove,
}

impl OpKind {
    fn encode(self) -> u8 {
        match self {
            OpKind::Insert => 1,
            OpKind::Update => 2,
            OpKind::Remove => 3,
        }
    }

    fn decode(b: u8) -> Option<Self> {
        match b {
            1 => Some(OpKind::Insert),
            2 => Some(OpKind::Update),
            3 => Some(OpKind::Remove),
            _ => None,
        }
    }
}

/// One detectable descriptor: everything recovery needs to decide whether
/// the operation's linearizing step landed, and to replay it if not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDesc {
    /// Owning writer (implied by the log page; not encoded).
    pub writer: u32,
    /// Per-writer sequence number, starting at 1.
    pub seq: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// Target arena slot: the fresh node for inserts, the existing node
    /// for updates/removes. [`crate::NIL`] for hash operations (the
    /// bucket is re-derived from the key).
    pub node_slot: u32,
    /// The key operated on.
    pub key: u64,
    /// Op id this operation supersedes (the target's op id observed at
    /// start), or 0 — recovery's happens-after edge between same-key
    /// operations.
    pub prev_op: u64,
    /// Inline payload (≤ [`MAX_VALUE`]; empty for removes).
    pub value: Vec<u8>,
}

impl OpDesc {
    /// The operation's id.
    pub fn op_id(&self) -> u64 {
        op_id(self.writer, self.seq)
    }

    /// The ring position this descriptor occupies.
    pub fn ring_pos(&self) -> usize {
        (self.seq as usize - 1) % LOG_ENTRIES
    }

    /// Encodes to the fixed 64-byte wire form.
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds [`MAX_VALUE`] or `seq` is 0.
    pub fn encode(&self) -> [u8; DESC_SIZE] {
        assert!(self.value.len() <= MAX_VALUE, "value too large");
        assert!(self.seq != 0, "seq starts at 1");
        let mut b = [0u8; DESC_SIZE];
        b[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        b[4..8].copy_from_slice(&self.seq.to_le_bytes());
        b[8] = self.kind.encode();
        b[10..12].copy_from_slice(&(self.value.len() as u16).to_le_bytes());
        b[12..16].copy_from_slice(&self.node_slot.to_le_bytes());
        b[16..24].copy_from_slice(&self.key.to_le_bytes());
        b[24..32].copy_from_slice(&self.prev_op.to_le_bytes());
        b[40..40 + self.value.len()].copy_from_slice(&self.value);
        let cs = desc_checksum(&b);
        b[32..36].copy_from_slice(&cs.to_le_bytes());
        b
    }

    /// Decodes and validates one ring entry; `None` for empty or torn
    /// entries.
    pub fn decode(writer: u32, b: &[u8]) -> Option<OpDesc> {
        if b.len() < DESC_SIZE {
            return None;
        }
        let word = |at: usize| u32::from_le_bytes(b[at..at + 4].try_into().unwrap());
        if word(0) != DESC_MAGIC {
            return None;
        }
        if word(32) != desc_checksum(b) {
            return None;
        }
        let kind = OpKind::decode(b[8])?;
        let vlen = u16::from_le_bytes(b[10..12].try_into().unwrap()) as usize;
        if vlen > MAX_VALUE {
            return None;
        }
        let seq = word(4);
        if seq == 0 {
            return None;
        }
        Some(OpDesc {
            writer,
            seq,
            kind,
            node_slot: word(12),
            key: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            prev_op: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            value: b[40..40 + vlen].to_vec(),
        })
    }

    /// Writes this descriptor into its writer's log ring. One atomic
    /// step; must precede the operation's linearizing CAS.
    pub(crate) fn publish(&self, ms: &mut MemSnap, space: AsId, vt: &mut Vt, carve: &IndexCarve) {
        let addr = carve.log_addr(self.writer) + (self.ring_pos() * DESC_SIZE) as u64;
        let thread = vt.id();
        ms.write(vt, space, thread, addr, &self.encode())
            .expect("log page is mapped");
    }
}

fn desc_checksum(b: &[u8]) -> u32 {
    let mut payload = Vec::with_capacity(DESC_SIZE);
    payload.extend_from_slice(&b[0..32]);
    payload.extend_from_slice(&b[36..DESC_SIZE]);
    fnv1a32(&payload)
}

/// Reads every valid entry of one writer's ring, in seq order.
pub(crate) fn scan_ring(
    ms: &mut MemSnap,
    space: AsId,
    vt: &mut Vt,
    carve: &IndexCarve,
    writer: u32,
) -> Vec<OpDesc> {
    let mut page = vec![0u8; LOG_ENTRIES * DESC_SIZE];
    ms.read(vt, space, carve.log_addr(writer), &mut page)
        .expect("log page is mapped");
    let mut out: Vec<OpDesc> = (0..LOG_ENTRIES)
        .filter_map(|i| OpDesc::decode(writer, &page[i * DESC_SIZE..(i + 1) * DESC_SIZE]))
        .collect();
    out.sort_by_key(|d| d.seq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NIL;

    fn sample() -> OpDesc {
        OpDesc {
            writer: 3,
            seq: 9,
            kind: OpKind::Update,
            node_slot: 77,
            key: 0xDEAD_BEEF,
            prev_op: op_id(1, 4),
            value: b"hello".to_vec(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let d = sample();
        let got = OpDesc::decode(3, &d.encode()).unwrap();
        assert_eq!(got, d);
        assert_eq!(got.op_id(), op_id(3, 9));
        assert_eq!(got.ring_pos(), 8);
    }

    #[test]
    fn torn_entries_are_rejected() {
        let mut b = sample().encode();
        b[20] ^= 0xFF; // key byte
        assert_eq!(OpDesc::decode(3, &b), None);
        assert_eq!(OpDesc::decode(0, &[0u8; DESC_SIZE]), None);
    }

    #[test]
    fn value_bytes_are_checksummed() {
        let mut b = sample().encode();
        b[41] ^= 1; // inline value byte
        assert_eq!(OpDesc::decode(3, &b), None);
    }

    #[test]
    fn remove_descriptor_has_empty_value() {
        let d = OpDesc {
            writer: 0,
            seq: 1,
            kind: OpKind::Remove,
            node_slot: NIL,
            key: 5,
            prev_op: op_id(2, 2),
            value: Vec::new(),
        };
        let got = OpDesc::decode(0, &d.encode()).unwrap();
        assert_eq!(got.kind, OpKind::Remove);
        assert!(got.value.is_empty());
    }
}
