//! Simulated virtual-memory subsystem: MemSnap's dirty-set tracking.
//!
//! The paper's core mechanism lives in the FreeBSD VM layer. This crate is
//! the user-space substitute (DESIGN.md §2): real page tables, PTEs,
//! reverse maps and fault handlers operating on real page contents, with
//! hardware-priced steps (trap entry, PTE writes, TLB shootdowns) charged
//! to the virtual clock.
//!
//! The mechanisms reproduced from §3 of the paper:
//!
//! - **Minor-write-fault dirty tracking.** Pages of a tracked mapping start
//!   read-only. The first write per page traps; the handler appends the
//!   page *and the stable location of its PTE* to the faulting thread's
//!   trace buffer and dirty list, then makes the PTE writable. Subsequent
//!   writes by the same thread are free.
//! - **Trace-buffer protection reset.** After a μCheckpoint, read
//!   protection is reapplied by walking the trace buffer and writing the
//!   recorded PTEs directly — no page-table traversal. The two slower
//!   strategies of Figure 1 ([`ResetStrategy::FullTableScan`] and
//!   [`ResetStrategy::PerPageWalk`]) are implemented for comparison.
//! - **Checkpoint-in-progress COW.** Pages in an in-flight μCheckpoint
//!   carry a CIP mark (modeled as an instant: the page is busy until the
//!   IO completes). A write to a busy page duplicates it and repoints
//!   every mapping through the reverse map, so writers never block on IO.
//! - **Reverse maps.** Physical pages know every PTE mapping them, so
//!   protection resets and COW reach all processes sharing a region
//!   (needed by the PostgreSQL case study).
//!
//! # Example
//!
//! ```
//! use msnap_sim::Vt;
//! use msnap_vm::{TrackMode, Vm, PAGE_SIZE};
//!
//! let mut vm = Vm::new();
//! let mut vt = Vt::new(0);
//! let space = vm.create_space();
//! let obj = vm.create_object(16); // 16-page memory object
//! let va = 0x7000_0000_0000;
//! vm.map(space, obj, va, TrackMode::Tracked).unwrap();
//!
//! let thread = vt.id();
//! vm.write(&mut vt, space, thread, va + 10, b"hello");
//! let dirty = vm.take_dirty(vt.id(), None);
//! assert_eq!(dirty.len(), 1); // one page dirtied, tracked for this thread
//! assert_eq!(dirty[0].obj_page, 0);
//! ```

#![warn(missing_docs)]

mod pagetable;
mod vm;

pub use pagetable::{PageTable, Pte, PteLoc};
pub use vm::{costs, AsId, DirtyPage, MemObjectId, ResetStrategy, TrackMode, Vm, VmError, VmStats};

/// Page size, matching the disk block size and the paper's 4 KiB tracking
/// granularity.
pub const PAGE_SIZE: usize = 4096;
