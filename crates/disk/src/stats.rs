//! Device IO statistics.

use msnap_sim::{LatencyStats, Nanos};

/// Counters and latency histograms for a simulated device.
///
/// The PostgreSQL experiment (Fig. 6) reports disk write throughput and
/// IOs per second alongside transactions per second; these statistics are
/// the source for those series.
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    write_latency: LatencyStats,
    read_latency: LatencyStats,
    depth_samples: u64,
    depth_sum: u64,
    max_depth: u64,
    merged_submissions: u64,
    merged_parts: u64,
}

impl IoStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_write(&mut self, bytes: usize, latency: Nanos) {
        self.writes += 1;
        self.bytes_written += bytes as u64;
        self.write_latency.record(latency);
    }

    pub(crate) fn record_read(&mut self, bytes: usize, latency: Nanos) {
        self.reads += 1;
        self.bytes_read += bytes as u64;
        self.read_latency.record(latency);
    }

    pub(crate) fn record_depth(&mut self, depth: u64) {
        self.depth_samples += 1;
        self.depth_sum += depth;
        self.max_depth = self.max_depth.max(depth);
    }

    pub(crate) fn record_merged(&mut self, parts: u64) {
        self.merged_submissions += 1;
        self.merged_parts += parts;
    }

    /// Number of read IOs.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write IOs.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// End-to-end latency distribution of write IOs.
    pub fn write_latency(&self) -> &LatencyStats {
        &self.write_latency
    }

    /// End-to-end latency distribution of read IOs.
    pub fn read_latency(&self) -> &LatencyStats {
        &self.read_latency
    }

    /// Mean write-queue occupancy sampled at each submission (the
    /// submission itself included), i.e. the device's average inflight
    /// depth as seen by arriving writes.
    pub fn avg_queue_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }

    /// Peak write-queue occupancy observed at any submission.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_depth
    }

    /// Submissions that carried more than one logical commit (group
    /// commit), as reported by the store via [`crate::Disk::note_merged`].
    pub fn merged_submissions(&self) -> u64 {
        self.merged_submissions
    }

    /// Logical commits carried by merged submissions in total.
    pub fn merged_parts(&self) -> u64 {
        self.merged_parts
    }

    /// Average device write throughput over `elapsed`, in MiB/s.
    pub fn write_mib_per_sec(&self, elapsed: Nanos) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes_written as f64 / (1024.0 * 1024.0) / secs
        }
    }

    /// Average IOs per second (reads + writes) over `elapsed`.
    pub fn iops(&self, elapsed: Nanos) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.reads + self.writes) as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = IoStats::new();
        s.record_write(4096, Nanos::from_us(17));
        s.record_write(8192, Nanos::from_us(18));
        s.record_read(4096, Nanos::from_us(17));
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads(), 1);
        assert_eq!(s.bytes_written(), 12288);
        assert_eq!(s.bytes_read(), 4096);
        assert_eq!(s.write_latency().count(), 2);
    }

    #[test]
    fn queue_depth_and_merge_counters() {
        let mut s = IoStats::new();
        assert_eq!(s.avg_queue_depth(), 0.0);
        s.record_depth(1);
        s.record_depth(3);
        assert!((s.avg_queue_depth() - 2.0).abs() < 1e-9);
        assert_eq!(s.max_queue_depth(), 3);
        s.record_merged(8);
        s.record_merged(2);
        assert_eq!(s.merged_submissions(), 2);
        assert_eq!(s.merged_parts(), 10);
    }

    #[test]
    fn throughput_derivations() {
        let mut s = IoStats::new();
        s.record_write(1024 * 1024, Nanos::from_us(250));
        let mib = s.write_mib_per_sec(Nanos::from_secs(2));
        assert!((mib - 0.5).abs() < 1e-9);
        assert!((s.iops(Nanos::from_secs(2)) - 0.5).abs() < 1e-9);
        assert_eq!(s.iops(Nanos::ZERO), 0.0);
    }
}
