//! Snapshot retention and replication: what a retained epoch costs and
//! what incremental shipping saves.
//!
//! Two sweeps on the raw object store, and one end-to-end online-backup
//! run through LiteDB:
//!
//! - snapshot-create cost vs dirty-set size (the create flushes a full
//!   root, so its cost is O(pages dirtied since the last flush), plus a
//!   constant dual-slot catalog write);
//! - delta bytes shipped vs the full image at the same instant, as the
//!   churn between consecutive snapshots grows;
//! - LiteDB online backup: full-image bootstrap, then delta rounds.
//!
//! Emits the machine-readable `BENCH_snapshot.json` at the workspace
//! root.

use msnap_bench::{header, table, us};
use msnap_disk::{Disk, DiskConfig, BLOCK_SIZE};
use msnap_litedb::drivers::{run_online_backup, OnlineBackupConfig};
use msnap_sim::{Nanos, Vt};
use msnap_snap::sync_to;
use msnap_store::ObjectStore;

const OBJECT_PAGES: u64 = 1024;
const DIRTY_SIZES: [u64; 4] = [16, 64, 256, 1024];
const CHURN_SIZES: [u64; 4] = [8, 32, 128, 512];
/// Snapshot creates averaged per dirty-size point: a single create's
/// virtual-time cost is quantized by the disk model's op granularity,
/// so one-shot timing collapsed distinct dirty sizes onto identical
/// readings.
const CREATE_BATCH: u64 = 8;
/// Scattered 64-byte writes per epoch in the small-write sweep.
const SMALL_WRITE_COUNTS: [u64; 3] = [16, 64, 256];

fn page_image(tag: u64, page: u64) -> Vec<u8> {
    let mut img = vec![0u8; BLOCK_SIZE];
    img[0..8].copy_from_slice(&tag.to_le_bytes());
    img[8..16].copy_from_slice(&page.to_le_bytes());
    img
}

/// Persists `pages` sequential page images in one μCheckpoint.
fn churn(
    vt: &mut Vt,
    disk: &mut Disk,
    store: &mut ObjectStore,
    obj: msnap_store::ObjectId,
    tag: u64,
    pages: u64,
) {
    let images: Vec<Vec<u8>> = (0..pages).map(|p| page_image(tag, p)).collect();
    let iov: Vec<(u64, &[u8])> = images
        .iter()
        .enumerate()
        .map(|(p, img)| (p as u64, &img[..]))
        .collect();
    let t = store.persist(vt, disk, obj, &iov).unwrap();
    ObjectStore::wait(vt, t);
}

struct CreatePoint {
    dirty_pages: u64,
    create: Nanos,
    reads: u64,
    writes: u64,
    pinned_blocks: usize,
}

/// Snapshot-create cost as a function of the dirty set it must flush.
/// Each point batches [`CREATE_BATCH`] churn+create rounds and reports
/// the mean, so the disk model's op-granularity quantization cannot
/// collapse distinct dirty sizes onto one reading.
fn sweep_create() -> Vec<CreatePoint> {
    header(
        "Snapshot create cost vs dirty-set size",
        &format!(
            "{OBJECT_PAGES}-page object; each point dirties N pages, then \
             retains the epoch. Create = full-root flush + catalog write; \
             mean of {CREATE_BATCH} rounds."
        ),
    );
    let mut points = Vec::new();
    for dirty in DIRTY_SIZES {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut store = ObjectStore::format(&mut disk);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        churn(&mut vt, &mut disk, &mut store, obj, 0, OBJECT_PAGES);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "warm")
            .unwrap();
        let mut total = Nanos::ZERO;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut pinned = 0;
        for i in 0..CREATE_BATCH {
            churn(&mut vt, &mut disk, &mut store, obj, i + 1, dirty);
            // Quiesce: the churn's queued flush writes must neither
            // bill to the create's timer nor overlap (and hide) its
            // own I/O.
            let idle = disk
                .write_completions()
                .iter()
                .copied()
                .fold(vt.now(), Nanos::max);
            vt.wait_until(idle);
            let issued = disk.write_completions().len();
            let (r0, w0) = (disk.stats().reads(), disk.stats().writes());
            let name = format!("bench{i}");
            let t0 = vt.now();
            store
                .snapshot_create(&mut vt, &mut disk, obj, &name)
                .unwrap();
            // The create returns once the catalog write is durable,
            // but the full-root flush rides the channel queues
            // asynchronously — the epoch is only retained when its
            // last write lands, so time to that completion.
            let done = disk.write_completions()[issued..]
                .iter()
                .copied()
                .fold(vt.now(), Nanos::max);
            total += done - t0;
            reads += disk.stats().reads() - r0;
            writes += disk.stats().writes() - w0;
            pinned = store.pinned_blocks();
            // Drop each measured epoch so the batch never outgrows the
            // snapshot catalog (delete cost is outside the timer).
            store.snapshot_delete(&mut vt, &mut disk, &name).unwrap();
        }
        points.push(CreatePoint {
            dirty_pages: dirty,
            create: total / CREATE_BATCH,
            reads: reads / CREATE_BATCH,
            writes: writes / CREATE_BATCH,
            pinned_blocks: pinned,
        });
    }
    table(
        &[
            "dirty pages",
            "mean create us",
            "reads",
            "writes",
            "pinned blocks",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.dirty_pages),
                    us(p.create.as_us_f64()),
                    format!("{}", p.reads),
                    format!("{}", p.writes),
                    format!("{}", p.pinned_blocks),
                ]
            })
            .collect::<Vec<_>>(),
    );
    points
}

struct DeltaPoint {
    churned_pages: u64,
    delta_pages: u64,
    delta_bytes: u64,
    full_bytes: u64,
    sync: Nanos,
}

/// Delta bytes shipped vs the full image at the same instant.
fn sweep_delta() -> Vec<DeltaPoint> {
    header(
        "Delta shipping vs full image",
        &format!(
            "{OBJECT_PAGES}-page object replicated once in full; each round \
             churns N pages and ships the structural diff."
        ),
    );
    let mut disk = Disk::new(DiskConfig::paper());
    let mut store = ObjectStore::format(&mut disk);
    let mut vt = Vt::new(0);
    let obj = store.create(&mut vt, &mut disk, "db").unwrap();
    churn(&mut vt, &mut disk, &mut store, obj, 0, OBJECT_PAGES);
    store
        .snapshot_create(&mut vt, &mut disk, obj, "s0")
        .unwrap();

    let mut rdisk = Disk::new(DiskConfig::paper());
    let mut replica = ObjectStore::format(&mut rdisk);
    sync_to(
        &mut vt,
        &mut store,
        &mut disk,
        &mut replica,
        &mut rdisk,
        "s0",
    )
    .unwrap();

    let mut points = Vec::new();
    let mut base = "s0".to_string();
    for (round, churned) in CHURN_SIZES.into_iter().enumerate() {
        churn(
            &mut vt,
            &mut disk,
            &mut store,
            obj,
            round as u64 + 1,
            churned,
        );
        let name = format!("s{}", round + 1);
        store
            .snapshot_create(&mut vt, &mut disk, obj, &name)
            .unwrap();
        // What a non-incremental backup would ship at this instant.
        let full_bytes = msnap_snap::DeltaStream::build(&mut vt, &mut disk, &mut store, None, &name)
            .unwrap()
            .encoded_len() as u64;
        let t0 = vt.now();
        let report = sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            &name,
        )
        .unwrap();
        assert!(!report.full_sync, "base is retained: rounds must be deltas");
        points.push(DeltaPoint {
            churned_pages: churned,
            delta_pages: report.pages,
            delta_bytes: report.bytes,
            full_bytes,
            sync: vt.now() - t0,
        });
        store.snapshot_delete(&mut vt, &mut disk, &base).unwrap();
        base = name;
    }
    table(
        &[
            "churned",
            "delta pages",
            "delta KiB",
            "full KiB",
            "saved",
            "sync us",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.churned_pages),
                    format!("{}", p.delta_pages),
                    format!("{:.1}", p.delta_bytes as f64 / 1024.0),
                    format!("{:.1}", p.full_bytes as f64 / 1024.0),
                    format!("{:.1}x", p.full_bytes as f64 / p.delta_bytes as f64),
                    us(p.sync.as_us_f64()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    points
}

struct SmallWritePoint {
    writes: u64,
    changed_bytes: u64,
    page_bytes: u64,
    subpage_bytes: u64,
}

/// Shipped delta bytes under a scattered small-write workload: each
/// epoch rewrites N 64-byte lines on N distinct pages, then ships the
/// epoch once with page-granularity (v1) frames and once with sub-page
/// (v2) frames diffed against the retained base.
fn sweep_small_writes() -> Vec<SmallWritePoint> {
    header(
        "Sub-page delta shipping vs page granularity",
        &format!(
            "{OBJECT_PAGES}-page object; each epoch rewrites N scattered \
             64-byte lines, one per page. Page-granularity ships whole \
             4 KiB frames; sub-page ships only the changed line runs."
        ),
    );
    let mut disk = Disk::new(DiskConfig::paper());
    let mut store = ObjectStore::format(&mut disk);
    let mut vt = Vt::new(0);
    let obj = store.create(&mut vt, &mut disk, "db").unwrap();
    churn(&mut vt, &mut disk, &mut store, obj, 0, OBJECT_PAGES);
    store
        .snapshot_create(&mut vt, &mut disk, obj, "w0")
        .unwrap();

    let mut points = Vec::new();
    let mut base = "w0".to_string();
    for (round, writes) in SMALL_WRITE_COUNTS.into_iter().enumerate() {
        // N distinct pages (613 is odd, hence coprime with 1024), one
        // fresh 64-byte line rewritten on each.
        let mut images: Vec<(u64, Vec<u8>)> = Vec::new();
        for k in 0..writes {
            let page = (k * 613 + round as u64 * 89) % OBJECT_PAGES;
            let line = ((k * 11 + round as u64) % 64) as usize;
            let mut buf = vec![0u8; BLOCK_SIZE];
            store
                .read_page(&mut vt, &mut disk, obj, page, &mut buf)
                .unwrap();
            for (off, b) in buf[line * 64..(line + 1) * 64].iter_mut().enumerate() {
                *b = (k as u8) ^ (round as u8).wrapping_mul(31) ^ (off as u8) ^ 0x5A;
            }
            images.push((page, buf));
        }
        let iov: Vec<(u64, &[u8])> = images.iter().map(|(p, img)| (*p, &img[..])).collect();
        let t = store.persist(&mut vt, &mut disk, obj, &iov).unwrap();
        ObjectStore::wait(&mut vt, t);
        let name = format!("w{}", round + 1);
        store
            .snapshot_create(&mut vt, &mut disk, obj, &name)
            .unwrap();

        let page_bytes =
            msnap_snap::DeltaStream::build(&mut vt, &mut disk, &mut store, Some(&base), &name)
                .unwrap()
                .encoded_len() as u64;
        let subpage_bytes = msnap_snap::DeltaStream::build_v2(
            &mut vt,
            &mut disk,
            &mut store,
            Some(&base),
            &name,
            None,
            None,
        )
        .unwrap()
        .encoded_len() as u64;
        points.push(SmallWritePoint {
            writes,
            changed_bytes: writes * 64,
            page_bytes,
            subpage_bytes,
        });
        store.snapshot_delete(&mut vt, &mut disk, &base).unwrap();
        base = name;
    }
    table(
        &[
            "writes",
            "changed KiB",
            "page KiB",
            "sub-page KiB",
            "reduction",
            "B/changed B",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.writes),
                    format!("{:.1}", p.changed_bytes as f64 / 1024.0),
                    format!("{:.1}", p.page_bytes as f64 / 1024.0),
                    format!("{:.1}", p.subpage_bytes as f64 / 1024.0),
                    format!("{:.1}x", p.page_bytes as f64 / p.subpage_bytes as f64),
                    format!("{:.2}", p.subpage_bytes as f64 / p.changed_bytes as f64),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for p in &points {
        assert!(
            p.subpage_bytes * 10 <= p.page_bytes,
            "sub-page shipping must cut scattered-write delta bytes 10x \
             (writes={}, page={}, subpage={})",
            p.writes,
            p.page_bytes,
            p.subpage_bytes
        );
    }
    points
}

fn main() {
    let create = sweep_create();
    let delta = sweep_delta();
    let small = sweep_small_writes();

    header(
        "LiteDB online backup",
        "12 transactions, backup every 4: one full bootstrap, then deltas.",
    );
    let backup = run_online_backup(&OnlineBackupConfig {
        txns: 12,
        keys_per_txn: 8,
        backup_every: 4,
    });
    assert!(backup.consistent, "replica must match the last snapshot");
    table(
        &[
            "backups",
            "full",
            "delta",
            "delta pages",
            "full-equiv pages",
            "bytes shipped",
        ],
        &[vec![
            format!("{}", backup.backups),
            format!("{}", backup.full_syncs),
            format!("{}", backup.delta_syncs),
            format!("{}", backup.delta_pages),
            format!("{}", backup.full_equivalent_pages),
            format!("{}", backup.bytes_shipped),
        ]],
    );

    let create_json = create
        .iter()
        .map(|p| {
            format!(
                "{{\"dirty_pages\":{},\"create_us\":{:.3},\"reads\":{},\
                 \"writes\":{},\"pinned_blocks\":{}}}",
                p.dirty_pages,
                p.create.as_us_f64(),
                p.reads,
                p.writes,
                p.pinned_blocks
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let delta_json = delta
        .iter()
        .map(|p| {
            format!(
                "{{\"churned_pages\":{},\"delta_pages\":{},\"delta_bytes\":{},\
                 \"full_bytes\":{},\"sync_us\":{:.3}}}",
                p.churned_pages,
                p.delta_pages,
                p.delta_bytes,
                p.full_bytes,
                p.sync.as_us_f64()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"snapshot\",\n  \"object_pages\": {OBJECT_PAGES},\n  \
         \"create\": [\n    {create_json}\n  ],\n  \"delta\": [\n    {delta_json}\n  ],\n  \
         \"online_backup\": {{\"backups\":{},\"full_syncs\":{},\"delta_syncs\":{},\
         \"delta_pages\":{},\"full_equivalent_pages\":{},\"bytes_shipped\":{}}}\n}}\n",
        backup.backups,
        backup.full_syncs,
        backup.delta_syncs,
        backup.delta_pages,
        backup.full_equivalent_pages,
        backup.bytes_shipped,
    );
    let small_json = format!(
        "[\n    {}\n  ]",
        small
            .iter()
            .map(|p| {
                format!(
                    "{{\"writes\":{},\"changed_bytes\":{},\"page_bytes\":{},\
                     \"subpage_bytes\":{},\"reduction\":{:.2}}}",
                    p.writes,
                    p.changed_bytes,
                    p.page_bytes,
                    p.subpage_bytes,
                    p.page_bytes as f64 / p.subpage_bytes as f64
                )
            })
            .collect::<Vec<_>>()
            .join(",\n    ")
    );
    let json = msnap_bench::splice_json_section(&json, "small_writes", &small_json);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    std::fs::write(path, &json).expect("workspace root is writable");
    println!();
    println!(
        "wrote {} create + {} delta + {} small-write points to BENCH_snapshot.json",
        create.len(),
        delta.len(),
        small.len()
    );
}
