//! End-to-end tests of the msnap-serve network front-end: watch-stream
//! exactness under arbitrary fleet shapes, and a lossy-network failover
//! soak where no acknowledged write may be lost.

use proptest::prelude::*;

use msnap_serve::harness::run;
use msnap_serve::{FleetConfig, RunConfig, ServeConfig};
use msnap_sim::{Nanos, NetConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Subscribers receive *exactly* the changed-key ranges of each
    /// committed epoch in their watch window — no duplicates, no
    /// misses — and notify bundles arrive cut-aligned (the chain of
    /// `prev_seq` links never breaks), across arbitrary fleet shapes
    /// and seeds on calm networks.
    #[test]
    fn watch_streams_are_exact_per_epoch(
        seed in 0u64..1 << 32,
        clients in 6usize..16,
        tenants in 2usize..5,
        subscribers in 2usize..6,
        put_ratio in 0.3f64..0.7,
    ) {
        let fleet = FleetConfig {
            clients,
            tenants,
            subscribers: subscribers.min(clients),
            put_ratio,
            seed,
            ..FleetConfig::default()
        };
        let cfg = RunConfig {
            serve: ServeConfig {
                stripes: 2,
                ..ServeConfig::default()
            },
            client_net: NetConfig::calm(seed ^ 0xC1),
            replicas: 1,
            replica_net: NetConfig::calm(seed ^ 0x51),
            rounds: 140,
            drain_rounds: 500,
            ..RunConfig::default()
        };
        let report = run(&fleet, &cfg).unwrap();
        prop_assert!(report.drained, "fleet did not drain");
        prop_assert!(report.puts > 0, "no puts issued");
        prop_assert!(report.server.cuts > 0, "no cuts stamped");
        prop_assert!(report.bundles_processed > 0, "no notify bundles");
        prop_assert_eq!(report.watch_violations, 0, "watch exactness");
        prop_assert_eq!(report.chain_violations, 0, "cut chain order");
    }
}

/// Fixed-seed soak: a lossy, reordering client network (2 ms latency,
/// 15% drop) with a mid-run primary crash and promotion. Every
/// acknowledged write must survive the failover, every session must
/// re-home to the promoted node, and the notify chain must stay
/// monotone through retransmits and duplicate bundles.
#[test]
fn lossy_failover_soak_loses_nothing_and_rehomes_all() {
    let fleet = FleetConfig {
        clients: 10,
        tenants: 3,
        subscribers: 4,
        seed: 0x50_AC,
        request_timeout: Nanos::from_ms(12),
        max_retries: 10,
        ..FleetConfig::default()
    };
    let cfg = RunConfig {
        // Single-shard after promotion: keep tenants × stripes small
        // enough for the snapshot catalog (see ServeConfig docs).
        serve: ServeConfig {
            stripes: 2,
            ..ServeConfig::default()
        },
        client_net: NetConfig::lossy(0x000B_AD11),
        replicas: 2,
        replica_net: NetConfig::calm(0x0DD),
        rounds: 280,
        quantum: Nanos::from_us(100),
        failover_at: Some(140),
        drain_rounds: 1600,
    };
    let report = run(&fleet, &cfg).expect("soak run failed");
    let f = report.failover.as_ref().expect("failover did not happen");
    assert!(f.acked_before > 0, "no acked writes before the crash");
    assert_eq!(f.lost_acked_writes, 0, "acked writes lost: {f:?}");
    assert_eq!(f.rehomed_subscribers, 4, "subscribers re-homed: {f:?}");
    assert_eq!(f.reconnected_sessions, 10, "sessions re-homed: {f:?}");
    assert!(report.drained, "fleet did not drain after failover");
    assert_eq!(report.chain_violations, 0, "notify chain broke");
    assert!(report.post_lat.count() > 0, "no post-failover ops");
    assert!(report.reconnects > 0, "lossy run saw no reconnects");
}
