//! PgDB: the PostgreSQL case study (§7.3, Figure 6).
//!
//! A PostgreSQL-shaped multi-connection MVCC engine: heap tables of
//! **8 KiB blocks** (PostgreSQL's default block size) holding slotted,
//! append-only tuple versions — updates append a new version and mark the
//! old one dead, which is the MVCC behaviour that lets MemSnap flush
//! pages containing uncommitted appends safely (properties ② and ③ "are
//! satisfied due to MVCC semantics").
//!
//! All block IO flows through a [`BlockStore`], with the four storage
//! stacks Figure 6 compares:
//!
//! - [`StoreVariant::Baseline`]: buffer cache + WAL with full-page writes
//!   on FFS; a checkpointer flushes dirty buffers when the WAL fills.
//! - [`StoreVariant::FfsMmap`]: table data memory-mapped; reads are plain
//!   loads but writes fault and checkpoints must msync scattered pages —
//!   the classic "are you sure you want to use mmap in your DBMS"
//!   penalty.
//! - [`StoreVariant::FfsMmapBufdirect`]: additionally modifies mapped
//!   data in place, logging a full page image per modification — more
//!   write amplification, fewer batching opportunities.
//! - [`StoreVariant::MemSnap`]: table blocks live in MemSnap regions
//!   (one per table, mapped into every connection's address space);
//!   `full_page_writes` is off, the WAL is gone, and a commit is one
//!   `msnap_persist` covering the transaction's dirty pages across all
//!   regions.
//!
//! The TPC-C driver ([`tpcc`]) reports transactions/s, disk MiB/s and
//! IO/s for each variant — the three panels of Figure 6.

#![warn(missing_docs)]

mod engine;
mod store;
pub mod tpcc;

pub use engine::{PgDb, PgTable};
pub use store::{BlockStore, IoReport, StoreVariant, PG_BLOCK};
