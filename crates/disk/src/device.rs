//! The simulated block device.

use std::collections::HashMap;

use msnap_sim::{Category, ChannelPool, Nanos, Vt};

use crate::{DiskConfig, IoStats, BLOCK_SIZE};

/// Handle for an asynchronously submitted write.
///
/// Returned by the `*_at` submission methods; pass to [`Disk::wait`] (or
/// compare [`WriteToken::completes`] yourself) to model completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteToken {
    completes: Nanos,
    bytes: usize,
}

impl WriteToken {
    /// The virtual instant the write becomes durable.
    pub fn completes(&self) -> Nanos {
        self.completes
    }

    /// Number of payload bytes in the write.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// One rollback record: the pre-image of a block overwritten by a write
/// that completes at `completes`.
#[derive(Debug)]
struct UndoEntry {
    completes: Nanos,
    block: u64,
    prev: Option<Box<[u8]>>,
}

/// A simulated striped NVMe device.
///
/// Contents are real bytes (4 KiB blocks); time is virtual. Writes are
/// applied to the in-memory image immediately on submission and become
/// *durable* at their completion instant; [`Disk::crash`] rolls the image
/// back to exactly the durable prefix. See the crate docs for the latency
/// model.
#[derive(Debug)]
pub struct Disk {
    cfg: DiskConfig,
    blocks: HashMap<u64, Box<[u8]>>,
    undo: Vec<UndoEntry>,
    channels: ChannelPool,
    stats: IoStats,
}

impl Disk {
    /// Creates an empty device with the given configuration.
    pub fn new(cfg: DiskConfig) -> Self {
        let channels = ChannelPool::new(cfg.channels);
        Disk {
            cfg,
            blocks: HashMap::new(),
            undo: Vec::new(),
            channels,
            stats: IoStats::new(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Accumulated IO statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Resets IO statistics (e.g. after workload warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::new();
    }

    /// Submits a scatter/gather write of whole blocks at `now`.
    ///
    /// Every entry pairs a block number with exactly [`BLOCK_SIZE`] bytes.
    /// Data is visible to subsequent reads immediately (the caller holds it
    /// in memory anyway) and durable at the returned token's completion
    /// instant. Segments of up to the stripe size are dispatched across the
    /// device channels, so large vectored writes overlap.
    ///
    /// # Panics
    ///
    /// Panics if any entry is not exactly [`BLOCK_SIZE`] bytes.
    pub fn writev_at(&mut self, now: Nanos, iov: &[(u64, &[u8])]) -> WriteToken {
        let total: usize = iov.iter().map(|(_, d)| d.len()).sum();
        for (block, data) in iov {
            assert_eq!(
                data.len(),
                BLOCK_SIZE,
                "block {block}: write entries must be BLOCK_SIZE bytes"
            );
        }

        // Schedule segments across channels. Within one batch the device
        // pipelines: only the first segment per channel pays the fixed
        // setup cost; later segments stream at channel bandwidth. This is
        // what lets deep-queue scatter/gather writes saturate the striped
        // pair (paper Table 6: memsnap beats QD1 direct IO at large
        // sizes).
        let blocks_per_segment = (self.cfg.stripe_bytes / BLOCK_SIZE).max(1);
        let mut completes = now;
        let mut i = 0;
        let mut seg_index = 0;
        while i < iov.len() {
            let seg_blocks = blocks_per_segment.min(iov.len() - i);
            let seg_bytes = seg_blocks * BLOCK_SIZE;
            let latency = if seg_index < self.cfg.channels {
                self.cfg.segment_latency(seg_bytes)
            } else {
                self.cfg.segment_latency(seg_bytes) - self.cfg.setup
            };
            seg_index += 1;
            let done = self.channels.submit(now, latency);
            // Apply the segment's data and log undo records at the
            // *segment* completion time.
            for (block, data) in &iov[i..i + seg_blocks] {
                let prev = self
                    .blocks
                    .insert(*block, data.to_vec().into_boxed_slice());
                self.undo.push(UndoEntry {
                    completes: done,
                    block: *block,
                    prev,
                });
            }
            completes = completes.max(done);
            i += seg_blocks;
        }

        self.stats.record_write(total, completes.saturating_sub(now));
        WriteToken {
            completes,
            bytes: total,
        }
    }

    /// Submits a single-block write at `now`. See [`Disk::writev_at`].
    pub fn write_block_at(&mut self, now: Nanos, block: u64, data: &[u8]) -> WriteToken {
        self.writev_at(now, &[(block, data)])
    }

    /// Synchronous scatter/gather write: submits at the thread's current
    /// time and blocks it until completion (charged as IO wait).
    pub fn writev(&mut self, vt: &mut Vt, iov: &[(u64, &[u8])]) -> WriteToken {
        let token = self.writev_at(vt.now(), iov);
        Self::wait(vt, token);
        token
    }

    /// Synchronous single-block write. See [`Disk::writev`].
    pub fn write_block(&mut self, vt: &mut Vt, block: u64, data: &[u8]) -> WriteToken {
        self.writev(vt, &[(block, data)])
    }

    /// Blocks `vt` until `token` completes, charging the wait as
    /// [`Category::IoWait`].
    pub fn wait(vt: &mut Vt, token: WriteToken) {
        let wait = token.completes.saturating_sub(vt.now());
        if wait > Nanos::ZERO {
            vt.charge(Category::IoWait, wait);
        }
    }

    /// Reads one block at `now` without blocking a thread; returns the
    /// completion instant. Missing (never-written) blocks read as zeroes.
    pub fn read_block_at(&mut self, now: Nanos, block: u64, out: &mut [u8]) -> Nanos {
        assert_eq!(out.len(), BLOCK_SIZE, "reads are whole blocks");
        match self.blocks.get(&block) {
            Some(data) => out.copy_from_slice(data),
            None => out.fill(0),
        }
        let done = self.channels.submit(now, self.cfg.segment_latency(BLOCK_SIZE));
        self.stats.record_read(BLOCK_SIZE, done.saturating_sub(now));
        done
    }

    /// Synchronous single-block read.
    pub fn read_block(&mut self, vt: &mut Vt, block: u64, out: &mut [u8]) {
        let done = self.read_block_at(vt.now(), block, out);
        let wait = done.saturating_sub(vt.now());
        if wait > Nanos::ZERO {
            vt.charge(Category::IoWait, wait);
        }
    }

    /// Simulates a power failure at instant `at`: every write that had not
    /// completed by `at` is rolled back, leaving exactly the durable image.
    ///
    /// Writes that completed at or before `at` survive. The undo log is
    /// cleared; the device can keep being used (as a "rebooted" device).
    pub fn crash(&mut self, at: Nanos) {
        // Roll back in reverse submission order so stacked overwrites of
        // the same block restore correctly.
        for entry in self.undo.drain(..).rev().collect::<Vec<_>>() {
            if entry.completes > at {
                match entry.prev {
                    Some(prev) => {
                        self.blocks.insert(entry.block, prev);
                    }
                    None => {
                        self.blocks.remove(&entry.block);
                    }
                }
            }
        }
    }

    /// Declares all submitted writes durable and drops rollback state.
    ///
    /// Call between workload phases to bound undo-log memory when crash
    /// injection is not needed beyond this point.
    pub fn settle(&mut self) {
        self.undo.clear();
    }

    /// Direct access to a block's current contents (test/diagnostic aid).
    pub fn peek(&self, block: u64) -> Option<&[u8]> {
        self.blocks.get(&block).map(|b| &b[..])
    }

    /// Fault injection: flips one bit of a stored block, bypassing the
    /// timing model and the undo journal — models media corruption for
    /// recovery tests. No-op if the block was never written.
    pub fn corrupt_bit(&mut self, block: u64, byte: usize, bit: u8) {
        if let Some(data) = self.blocks.get_mut(&block) {
            data[byte % BLOCK_SIZE] ^= 1 << (bit % 8);
        }
    }

    /// Number of distinct blocks ever written (and not rolled back).
    pub fn blocks_in_use(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut vt = Vt::new(0);
        disk.write_block(&mut vt, 5, &block_of(0xAB));
        let mut out = vec![0u8; BLOCK_SIZE];
        disk.read_block(&mut vt, 5, &mut out);
        assert_eq!(out, block_of(0xAB));
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut out = vec![1u8; BLOCK_SIZE];
        disk.read_block_at(Nanos::ZERO, 999, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn sync_write_latency_matches_model() {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut vt = Vt::new(0);
        disk.write_block(&mut vt, 0, &block_of(1));
        let us = vt.now().as_us_f64();
        assert!((us - 17.0).abs() < 2.0, "4 KiB QD1 write took {us} us");
    }

    #[test]
    fn vectored_write_overlaps_channels() {
        // 32 blocks = 128 KiB = two 64 KiB segments; with two channels they
        // overlap, so the elapsed time is much less than 2x a segment.
        let mut disk = Disk::new(DiskConfig::paper());
        let data = block_of(3);
        let iov: Vec<(u64, &[u8])> = (0..32).map(|b| (b as u64, &data[..])).collect();
        let token = disk.writev_at(Nanos::ZERO, &iov);
        let seg = disk.config().segment_latency(64 * 1024);
        assert!(token.completes() < seg * 2, "segments did not overlap");
        assert!(token.completes() >= seg);
    }

    #[test]
    fn crash_rolls_back_incomplete_writes() {
        let mut disk = Disk::new(DiskConfig::paper());
        let t1 = disk.write_block_at(Nanos::ZERO, 7, &block_of(1));
        // Second write to the same block, submitted after the first
        // completes.
        let t2 = disk.write_block_at(t1.completes(), 7, &block_of(2));
        assert!(t2.completes() > t1.completes());

        // Crash between the two completions: only the first survives.
        disk.crash(t1.completes());
        assert_eq!(disk.peek(7).unwrap(), &block_of(1)[..]);
    }

    #[test]
    fn crash_before_any_completion_empties_block() {
        let mut disk = Disk::new(DiskConfig::paper());
        disk.write_block_at(Nanos::ZERO, 7, &block_of(9));
        disk.crash(Nanos::ZERO); // nothing completed by t=0
        assert!(disk.peek(7).is_none());
    }

    #[test]
    fn crash_preserves_completed_vectored_segments() {
        let mut disk = Disk::new(DiskConfig::paper());
        let data = block_of(5);
        // 64 blocks = 4 segments over 2 channels: two waves.
        let iov: Vec<(u64, &[u8])> = (0..64).map(|b| (b as u64, &data[..])).collect();
        let token = disk.writev_at(Nanos::ZERO, &iov);
        let first_wave = disk.config().segment_latency(64 * 1024) + Nanos::from_ns(100);
        disk.crash(first_wave);
        let survivors = (0..64).filter(|b| disk.peek(*b).is_some()).count();
        assert!(survivors >= 32, "first-wave segments must survive");
        assert!(survivors < 64, "second-wave segments must be rolled back");
        assert!(token.completes() > first_wave);
    }

    #[test]
    fn wait_charges_io_wait() {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut vt = Vt::new(0);
        let token = disk.write_block_at(vt.now(), 1, &block_of(1));
        Disk::wait(&mut vt, token);
        assert_eq!(vt.now(), token.completes());
        assert_eq!(vt.costs().get(Category::IoWait), token.completes());
    }

    #[test]
    fn stats_track_bytes_and_ios() {
        let mut disk = Disk::new(DiskConfig::fast());
        let mut vt = Vt::new(0);
        disk.write_block(&mut vt, 0, &block_of(1));
        disk.write_block(&mut vt, 1, &block_of(2));
        let mut out = vec![0u8; BLOCK_SIZE];
        disk.read_block(&mut vt, 0, &mut out);
        assert_eq!(disk.stats().writes(), 2);
        assert_eq!(disk.stats().bytes_written(), 2 * BLOCK_SIZE as u64);
        assert_eq!(disk.stats().reads(), 1);
    }

    #[test]
    #[should_panic(expected = "BLOCK_SIZE")]
    fn partial_block_writes_rejected() {
        let mut disk = Disk::new(DiskConfig::fast());
        disk.write_block_at(Nanos::ZERO, 0, &[1, 2, 3]);
    }

    #[test]
    fn settle_then_crash_keeps_everything() {
        let mut disk = Disk::new(DiskConfig::paper());
        disk.write_block_at(Nanos::ZERO, 3, &block_of(4));
        disk.settle();
        disk.crash(Nanos::ZERO);
        assert_eq!(disk.peek(3).unwrap(), &block_of(4)[..]);
    }
}
