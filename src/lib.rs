//! Umbrella crate for the MemSnap reproduction workspace.
//!
//! This crate hosts the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`), and re-exports the workspace crates so
//! examples can use a single dependency:
//!
//! - [`memsnap`] — the μCheckpoint API (the paper's core contribution)
//! - [`msnap_vm`] — the simulated virtual-memory subsystem
//! - [`msnap_store`] — the COW object store
//! - [`msnap_disk`] — the simulated NVMe block device
//! - [`msnap_fs`] / [`msnap_aurora`] — the baselines
//! - [`msnap_litedb`] / [`msnap_skipdb`] / [`msnap_pgdb`] — case studies
//! - [`msnap_workloads`] — workload generators
//! - [`msnap_sim`] — the virtual-time substrate

pub use memsnap;
pub use msnap_aurora;
pub use msnap_disk;
pub use msnap_fs;
pub use msnap_litedb;
pub use msnap_pgdb;
pub use msnap_sim;
pub use msnap_skipdb;
pub use msnap_store;
pub use msnap_vm;
pub use msnap_workloads;
