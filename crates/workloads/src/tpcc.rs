//! A TPC-C-style OLTP mix for the PostgreSQL case study (§7.3, Figure 6):
//! sysbench-tpcc's transaction blend (~50% of transactions write), scaled
//! by warehouse count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Districts per warehouse (TPC-C constant).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
/// Customers per district (TPC-C: 3000; scaled here).
pub const CUSTOMERS_PER_DISTRICT: u64 = 300;
/// Items in the catalog (TPC-C: 100 000; scaled here).
pub const ITEMS: u64 = 10_000;
/// Stock rows per warehouse (one per item).
pub const STOCK_PER_WAREHOUSE: u64 = ITEMS;

/// One TPC-C transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpccTxn {
    /// 45%: insert an order with 5–15 order lines; updates district and
    /// stock rows.
    NewOrder {
        /// Warehouse.
        warehouse: u64,
        /// District within the warehouse.
        district: u64,
        /// Customer placing the order.
        customer: u64,
        /// Ordered items.
        items: Vec<u64>,
    },
    /// 43%: update warehouse/district/customer balances, insert history.
    Payment {
        /// Warehouse.
        warehouse: u64,
        /// District.
        district: u64,
        /// Customer.
        customer: u64,
        /// Payment amount in cents.
        amount: u32,
    },
    /// 4%: read a customer's latest order.
    OrderStatus {
        /// Warehouse.
        warehouse: u64,
        /// District.
        district: u64,
        /// Customer.
        customer: u64,
    },
    /// 4%: deliver pending orders in every district of a warehouse.
    Delivery {
        /// Warehouse.
        warehouse: u64,
    },
    /// 4%: count low-stock items for a district.
    StockLevel {
        /// Warehouse.
        warehouse: u64,
        /// District.
        district: u64,
    },
}

impl TpccTxn {
    /// Whether the transaction writes.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            TpccTxn::NewOrder { .. } | TpccTxn::Payment { .. } | TpccTxn::Delivery { .. }
        )
    }
}

/// The TPC-C transaction generator.
#[derive(Debug)]
pub struct Tpcc {
    warehouses: u64,
    rng: StdRng,
}

impl Tpcc {
    /// Creates a generator over `warehouses` warehouses (the paper uses
    /// 150; scale down for CI).
    ///
    /// # Panics
    ///
    /// Panics if `warehouses == 0`.
    pub fn new(warehouses: u64, seed: u64) -> Self {
        assert!(warehouses > 0, "TPC-C needs warehouses");
        Tpcc {
            warehouses,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of warehouses.
    pub fn warehouses(&self) -> u64 {
        self.warehouses
    }

    /// Generates the next transaction in the standard mix.
    pub fn next_txn(&mut self) -> TpccTxn {
        let warehouse = self.rng.gen_range(0..self.warehouses);
        let district = self.rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
        let customer = self.rng.gen_range(0..CUSTOMERS_PER_DISTRICT);
        let roll: f64 = self.rng.gen();
        if roll < 0.45 {
            let n = self.rng.gen_range(5..=15);
            let items = (0..n).map(|_| self.rng.gen_range(0..ITEMS)).collect();
            TpccTxn::NewOrder {
                warehouse,
                district,
                customer,
                items,
            }
        } else if roll < 0.88 {
            TpccTxn::Payment {
                warehouse,
                district,
                customer,
                amount: self.rng.gen_range(100..500_000),
            }
        } else if roll < 0.92 {
            TpccTxn::OrderStatus {
                warehouse,
                district,
                customer,
            }
        } else if roll < 0.96 {
            TpccTxn::Delivery { warehouse }
        } else {
            TpccTxn::StockLevel {
                warehouse,
                district,
            }
        }
    }
}

impl Iterator for Tpcc {
    type Item = TpccTxn;

    fn next(&mut self) -> Option<TpccTxn> {
        Some(self.next_txn())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_roughly_half_writes() {
        let mut g = Tpcc::new(10, 3);
        let n = 20_000;
        let writes = (0..n).filter(|_| g.next_txn().is_write()).count();
        let pct = writes as f64 / n as f64 * 100.0;
        assert!(
            (pct - 92.0).abs() < 2.0,
            "NewOrder+Payment+Delivery {pct:.1}%"
        );
    }

    #[test]
    fn new_order_has_5_to_15_lines() {
        let mut g = Tpcc::new(5, 4);
        for _ in 0..5000 {
            if let TpccTxn::NewOrder { items, .. } = g.next_txn() {
                assert!((5..=15).contains(&items.len()));
                assert!(items.iter().all(|&i| i < ITEMS));
            }
        }
    }

    #[test]
    fn ids_stay_in_range() {
        let mut g = Tpcc::new(3, 5);
        for _ in 0..2000 {
            match g.next_txn() {
                TpccTxn::NewOrder {
                    warehouse,
                    district,
                    customer,
                    ..
                }
                | TpccTxn::Payment {
                    warehouse,
                    district,
                    customer,
                    ..
                }
                | TpccTxn::OrderStatus {
                    warehouse,
                    district,
                    customer,
                } => {
                    assert!(warehouse < 3);
                    assert!(district < DISTRICTS_PER_WAREHOUSE);
                    assert!(customer < CUSTOMERS_PER_DISTRICT);
                }
                TpccTxn::Delivery { warehouse } => assert!(warehouse < 3),
                TpccTxn::StockLevel {
                    warehouse,
                    district,
                } => {
                    assert!(warehouse < 3);
                    assert!(district < DISTRICTS_PER_WAREHOUSE);
                }
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a: Vec<TpccTxn> = Tpcc::new(8, 6).take(32).collect();
        let b: Vec<TpccTxn> = Tpcc::new(8, 6).take(32).collect();
        assert_eq!(a, b);
    }
}
