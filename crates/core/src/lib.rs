//! MemSnap μCheckpoints: a data single level store.
//!
//! This crate is the paper's primary contribution — the MemSnap API of
//! Table 4 — implemented over the simulated VM subsystem ([`msnap_vm`])
//! and the COW object store ([`msnap_store`]):
//!
//! | Paper call | Here |
//! |---|---|
//! | `int msnap_open(name, &addr, len, flags)` | [`MemSnap::msnap_open`] |
//! | `epoch_t msnap_persist(md, flags)` | [`MemSnap::msnap_persist`] |
//! | `int msnap_wait(md, epoch)` | [`MemSnap::msnap_wait`] |
//! | `epoch_t msnap_snapshot(md, name)` | [`MemSnap::msnap_snapshot`] |
//! | `int msnap_open_at(name, &addr)` | [`MemSnap::msnap_open_at`] |
//! | `epoch_t msnap_rollback(name)` | [`MemSnap::msnap_rollback`] |
//!
//! Semantics reproduced from §3–§4:
//!
//! - **Regions** are named, page-granular memory areas mapped at a unique
//!   fixed virtual address (pointers into a region stay valid across
//!   crash + restore).
//! - **`msnap_persist`** builds a μCheckpoint from the *calling thread's*
//!   dirty set (or all threads' with [`PersistFlags::global`]), for one
//!   region or all regions. It initiates one scatter/gather IO into the
//!   object store, marks the pages checkpoint-in-progress (concurrent
//!   writers COW instead of blocking), re-arms write tracking via the
//!   trace buffer, and either waits (`MS_SYNC`) or returns immediately
//!   (`MS_ASYNC`).
//! - **`msnap_wait`** blocks until a previously returned epoch is durable.
//! - **Crash + restore**: [`MemSnap::crash`] simulates a power failure at a
//!   chosen instant; [`MemSnap::restore`] reopens the store, and
//!   `msnap_open` of an existing region remaps it at its original address
//!   and pages the durable image back in.
//!
//! # Example
//!
//! ```
//! use memsnap::{MemSnap, PersistFlags, RegionSel};
//! use msnap_disk::{Disk, DiskConfig};
//! use msnap_sim::Vt;
//!
//! let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
//! let mut vt = Vt::new(0);
//! let space = ms.vm_mut().create_space();
//!
//! // Open a 16-page region and modify it in place.
//! let region = ms.msnap_open(&mut vt, space, "mydata", 16)?;
//! let thread = vt.id();
//! ms.write(&mut vt, space, thread, region.addr + 100, b"fearless")?;
//!
//! // One call persists the transaction; no WAL anywhere.
//! let epoch = ms.msnap_persist(&mut vt, thread,
//!                              RegionSel::Region(region.md), PersistFlags::sync())?;
//! ms.msnap_wait(&mut vt, RegionSel::Region(region.md), epoch)?;
//! # Ok::<(), memsnap::MsnapError>(())
//! ```

#![warn(missing_docs)]

mod api;
mod manifest;
mod types;

pub use api::MemSnap;
pub use types::{
    CommitTicket, IndexCarve, Md, MsnapError, PersistBreakdown, PersistFlags, RegionHandle,
    RegionSel, SnapshotView,
};

/// Region page size (4 KiB), re-exported from the VM.
pub use msnap_vm::PAGE_SIZE;

/// μCheckpoint epoch type (the paper's `epoch_t`).
pub use msnap_store::Epoch;

/// Per-slice integrity scrub report (see [`MemSnap::msnap_scrub`]),
/// re-exported from the store.
pub use msnap_store::ScrubStats;

/// Re-exported so callers can name and compare epoch-vector cuts
/// ([`MemSnap::msnap_cut`]).
pub use msnap_store::VectorCut;
