//! SkipDB over the lock-free persistent index (`msnap-pindex`).
//!
//! [`MemSnapKv`](crate::MemSnapKv) keeps the paper's per-node-lock
//! MemTable, which serializes every mutator behind one writer. This
//! backend swaps in [`msnap_pindex::PSkipList`]: N mutator threads
//! operate on the shared structure concurrently, each publishing
//! detectable descriptors to its private log page, and
//! [`PIndexKv::multi_put_concurrent`] overlaps their CPU work by
//! deterministic min-virtual-clock stepping before coalescing all their
//! μCheckpoints into one group commit. The single-writer [`Kv`] entry
//! points remain, so the MixGraph drivers and benches can compare this
//! backend directly against the locked baseline.

use memsnap::{MemSnap, PersistFlags, RegionSel};
use msnap_disk::Disk;
use msnap_pindex::{OpOutcome, PSkipList, PutOp, RecoveryReport, LOG_ENTRIES};
use msnap_sim::{Meters, Nanos, Vt};

use crate::kv::{Kv, KvError, KvStats};

/// The region name the index is carved from.
const REGION: &str = "pindex";

/// The lock-free-index store. See the module docs.
#[derive(Debug)]
pub struct PIndexKv {
    ms: MemSnap,
    sk: PSkipList,
    stats: KvStats,
}

impl PIndexKv {
    /// Creates a fresh store: `arena_pages` of node arena, log pages for
    /// `writers` concurrent mutators.
    ///
    /// # Panics
    ///
    /// Panics if the carve cannot be created on a fresh device.
    pub fn format(disk: Disk, arena_pages: u64, writers: u32, vt: &mut Vt) -> Self {
        let mut ms = MemSnap::format(disk);
        let space = ms.vm_mut().create_space();
        let sk = PSkipList::create(&mut ms, space, vt, REGION, arena_pages, writers)
            .expect("fresh store accepts the index carve");
        PIndexKv {
            ms,
            sk,
            stats: KvStats::default(),
        }
    }

    /// Restores after a crash, replaying every detectable in-flight
    /// operation exactly once; the report says what recovery found.
    ///
    /// # Panics
    ///
    /// Panics if `disk` holds no MemSnap store or no index carve.
    pub fn restore(disk: Disk, vt: &mut Vt) -> (Self, RecoveryReport) {
        Self::try_restore(disk, vt).expect("device holds a MemSnap store with an index carve")
    }

    /// Fallible [`PIndexKv::restore`]: crash sweeps hit instants before
    /// the store or the carve header is durable, where there is nothing
    /// to recover (and necessarily nothing was acknowledged).
    pub fn try_restore(disk: Disk, vt: &mut Vt) -> Result<(Self, RecoveryReport), KvError> {
        let mut ms = MemSnap::restore(vt, disk)?;
        let space = ms.vm_mut().create_space();
        let (sk, report) = PSkipList::recover(&mut ms, space, vt, REGION)?;
        Ok((
            PIndexKv {
                ms,
                sk,
                stats: KvStats::default(),
            },
            report,
        ))
    }

    /// Simulates a power failure; pass the device to
    /// [`PIndexKv::restore`].
    pub fn crash(self, at: Nanos) -> Disk {
        self.ms.crash(at)
    }

    /// Consumes the store, returning the device with its undo journal
    /// intact (`crash_at_every_io` sweeps).
    pub fn into_disk(self) -> Disk {
        self.ms.into_disk()
    }

    /// The underlying MemSnap instance.
    pub fn memsnap(&self) -> &MemSnap {
        &self.ms
    }

    /// Mutable access to the MemSnap instance.
    pub fn memsnap_mut(&mut self) -> &mut MemSnap {
        &mut self.ms
    }

    /// Writer slots of the index.
    pub fn writers(&self) -> u32 {
        self.sk.writers()
    }

    /// Durably applies one batch per writer thread, concurrently.
    ///
    /// Each writer's operations run as steppable state machines; the next
    /// step always goes to the writer with the smallest virtual clock, so
    /// the interleaving is deterministic and the writers' CPU phases
    /// genuinely overlap (no writer waits for another's whole batch, the
    /// thing the locked baseline cannot avoid). When a writer drains its
    /// batch it enqueues its μCheckpoint into the group-commit lane;
    /// every batch lands in one coalesced commit where the windows
    /// overlap.
    ///
    /// # Errors
    ///
    /// [`KvError`] if a group commit fails; the affected writers' batches
    /// abort as units.
    ///
    /// # Panics
    ///
    /// Panics if `vts` and `batches` disagree in length, exceed the
    /// carve's writer count, or a batch exceeds [`LOG_ENTRIES`] (the
    /// descriptor ring depth bounds undetectable history between
    /// μCheckpoints).
    pub fn multi_put_concurrent(
        &mut self,
        vts: &mut [Vt],
        batches: &[Vec<(u64, Vec<u8>)>],
    ) -> Result<(), KvError> {
        assert_eq!(vts.len(), batches.len(), "one Vt per writer batch");
        assert!(
            batches.len() <= self.sk.writers() as usize,
            "more batches than carved writers"
        );
        for b in batches {
            assert!(
                b.len() <= LOG_ENTRIES,
                "batch exceeds the {LOG_ENTRIES}-entry descriptor ring"
            );
        }
        struct Lane {
            writer: u32,
            op: Option<PutOp>,
            next: usize,
            ticket: Option<memsnap::CommitTicket>,
            done: bool,
        }
        let mut lanes: Vec<Lane> = (0..batches.len())
            .map(|w| Lane {
                writer: w as u32,
                op: None,
                next: 0,
                ticket: None,
                done: batches[w].is_empty(),
            })
            .collect();
        let mut first_err: Option<KvError> = None;
        while lanes.iter().any(|l| !l.done) {
            // Deterministic schedule: smallest clock runs next, writer id
            // breaks ties.
            let i = lanes
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.done)
                .min_by_key(|(idx, l)| (vts[l.writer as usize].now(), *idx))
                .map(|(idx, _)| idx)
                .expect("some lane is unfinished");
            let lane = &mut lanes[i];
            let vt = &mut vts[lane.writer as usize];
            if let Some(ticket) = lane.ticket {
                match self.ms.msnap_group_poll(vt, ticket) {
                    Ok(Some(_epoch)) => {
                        self.stats.commits += 1;
                        lane.done = true;
                    }
                    Ok(None) => vt.advance(Nanos::from_us(1)),
                    Err(e) => {
                        first_err.get_or_insert(KvError(e));
                        lane.done = true;
                    }
                }
                continue;
            }
            if let Some(op) = lane.op.as_mut() {
                if op.step(&mut self.sk, &mut self.ms, vt) == OpOutcome::Finished {
                    lane.op = None;
                }
                continue;
            }
            if lane.next < batches[i].len() {
                let (key, value) = &batches[i][lane.next];
                lane.next += 1;
                lane.op = Some(self.sk.begin_put(lane.writer, *key, value));
                continue;
            }
            // Batch drained: enqueue this writer's μCheckpoint.
            let thread = vt.id();
            match self.ms.msnap_persist_grouped(
                vt,
                thread,
                RegionSel::Region(self.sk.carve.region.md),
                PersistFlags::sync(),
            ) {
                Ok(t) => lane.ticket = Some(t),
                Err(e) => {
                    first_err.get_or_insert(KvError(e));
                    lane.done = true;
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Durably removes a key (tombstone).
    ///
    /// # Errors
    ///
    /// [`KvError`] when the persist fails; the remove aborts.
    pub fn remove(&mut self, vt: &mut Vt, key: u64) -> Result<(), KvError> {
        self.sk.remove(&mut self.ms, vt, 0, key);
        self.persist(vt)
    }

    fn persist(&mut self, vt: &mut Vt) -> Result<(), KvError> {
        let thread = vt.id();
        self.ms.msnap_persist(
            vt,
            thread,
            RegionSel::Region(self.sk.carve.region.md),
            PersistFlags::sync(),
        )?;
        self.stats.commits += 1;
        Ok(())
    }
}

impl Kv for PIndexKv {
    fn put(&mut self, vt: &mut Vt, key: u64, value: &[u8]) -> Result<(), KvError> {
        self.sk.put(&mut self.ms, vt, 0, key, value);
        self.persist(vt)
    }

    fn multi_put(&mut self, vt: &mut Vt, pairs: &[(u64, Vec<u8>)]) -> Result<(), KvError> {
        assert!(
            pairs.len() <= LOG_ENTRIES,
            "batch exceeds the {LOG_ENTRIES}-entry descriptor ring"
        );
        for (key, value) in pairs {
            self.sk.put(&mut self.ms, vt, 0, *key, value);
        }
        self.persist(vt)
    }

    fn get(&mut self, vt: &mut Vt, key: u64) -> Option<Vec<u8>> {
        self.sk.get(&mut self.ms, vt, key)
    }

    fn seek(&mut self, vt: &mut Vt, key: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        self.sk.seek(&mut self.ms, vt, key, limit)
    }

    fn len(&self) -> usize {
        self.sk.len()
    }

    fn stats(&self) -> KvStats {
        self.stats
    }

    fn meters(&self) -> Meters {
        self.ms.meters().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    fn fresh(writers: u32) -> (PIndexKv, Vt) {
        let mut vt = Vt::new(0);
        let kv = PIndexKv::format(Disk::new(DiskConfig::paper()), 512, writers, &mut vt);
        (kv, vt)
    }

    #[test]
    fn put_get_seek_round_trip() {
        let (mut kv, mut vt) = fresh(2);
        for k in [50u64, 10, 30, 20, 40] {
            kv.put(&mut vt, k, &k.to_le_bytes()).unwrap();
        }
        assert_eq!(kv.len(), 5);
        assert_eq!(kv.get(&mut vt, 30), Some(30u64.to_le_bytes().to_vec()));
        let keys: Vec<u64> = kv.seek(&mut vt, 15, 3).iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![20, 30, 40]);
        kv.remove(&mut vt, 30).unwrap();
        assert_eq!(kv.get(&mut vt, 30), None);
        assert_eq!(kv.len(), 4);
    }

    #[test]
    fn concurrent_batches_land_atomically_and_completely() {
        let writers = 4u32;
        let (mut kv, mut vt0) = fresh(writers);
        let mut vts: Vec<Vt> = (0..writers).map(Vt::new).collect();
        let batches: Vec<Vec<(u64, Vec<u8>)>> = (0..writers as u64)
            .map(|w| {
                (0..16u64)
                    .map(|i| (w * 1000 + i, (w * 1000 + i).to_le_bytes().to_vec()))
                    .collect()
            })
            .collect();
        kv.multi_put_concurrent(&mut vts, &batches).unwrap();
        assert_eq!(kv.len(), 64);
        for w in 0..writers as u64 {
            for i in 0..16u64 {
                let k = w * 1000 + i;
                assert_eq!(
                    kv.get(&mut vt0, k),
                    Some(k.to_le_bytes().to_vec()),
                    "key {k}"
                );
            }
        }
        // The concurrent path coalesces: fewer commits than writers'
        // individual persists would need is allowed, more is not.
        assert!(kv.stats().commits as usize <= writers as usize);
    }

    #[test]
    fn concurrent_writers_overlap_in_virtual_time() {
        let writers = 4u32;
        let (mut kv, _vt0) = fresh(writers);
        let mut vts: Vec<Vt> = (0..writers).map(Vt::new).collect();
        let batches: Vec<Vec<(u64, Vec<u8>)>> = (0..writers as u64)
            .map(|w| (0..32u64).map(|i| (w * 100 + i, vec![1u8; 8])).collect())
            .collect();
        kv.multi_put_concurrent(&mut vts, &batches).unwrap();
        // Concurrency, not turn-taking: the writers' finish times must be
        // close to each other, not stacked end to end.
        let finishes: Vec<Nanos> = vts.iter().map(|vt| vt.now()).collect();
        let min = *finishes.iter().min().unwrap();
        let max = *finishes.iter().max().unwrap();
        assert!(
            (max - min) < (max / 2),
            "writers serialized: spread {:?} of {:?}",
            max - min,
            max
        );
    }

    #[test]
    fn crash_restore_recovers_concurrent_batches() {
        let writers = 4u32;
        let (mut kv, _vt0) = fresh(writers);
        let mut vts: Vec<Vt> = (0..writers).map(Vt::new).collect();
        let batches: Vec<Vec<(u64, Vec<u8>)>> = (0..writers as u64)
            .map(|w| {
                (0..16u64)
                    .map(|i| (w * 100 + i, vec![w as u8; 8]))
                    .collect()
            })
            .collect();
        kv.multi_put_concurrent(&mut vts, &batches).unwrap();
        let disk = kv.crash(Nanos::MAX);
        let mut vt = Vt::new(9);
        let (mut kv, report) = PIndexKv::restore(disk, &mut vt);
        assert_eq!(kv.len(), 64);
        for w in 0..writers as u64 {
            for i in 0..16u64 {
                assert_eq!(kv.get(&mut vt, w * 100 + i), Some(vec![w as u8; 8]));
            }
        }
        // Acked ops all accounted for: 16 ops per writer.
        for w in 0..writers {
            for seq in 1..=16u32 {
                assert!(report.op_landed(w, seq), "writer {w} op {seq}");
            }
        }
    }
}
