//! System shadowing, region and application checkpoints.

use std::collections::{BTreeSet, HashMap};

use msnap_disk::Disk;
use msnap_sim::{Category, Meters, Nanos, Vt};
use msnap_store::{ObjectId as StoreObjId, ObjectStore, StoreError};
use msnap_vm::PAGE_SIZE;

/// Cost constants calibrated to Tables 2 and 10.
mod costs {
    use msnap_sim::Nanos;

    /// Fixed cost of the stop-the-world rendezvous.
    pub const STOP_BASE: Nanos = Nanos::from_ns(12_000);
    /// Per-running-thread cost of stopping and resuming it.
    pub const STOP_PER_THREAD: Nanos = Nanos::from_ns(1_200);
    /// Shadow-object creation per mapping page (applying COW).
    pub const SHADOW_PER_PAGE: Nanos = Nanos::from_ns(5);
    /// Shadow collapse per mapping page (removing COW).
    pub const COLLAPSE_PER_PAGE: Nanos = Nanos::from_ns(6);
    /// COW fault on the first write to a page after a checkpoint.
    pub const SHADOW_FAULT: Nanos = Nanos::from_ns(1_100);
    /// Serializing non-memory OS state for an application checkpoint.
    pub const APP_OS_STATE: Nanos = Nanos::from_us(600);
    /// Memory copy cost per KiB.
    pub const MEMCPY_PER_KIB: Nanos = Nanos::from_ns(50);

    pub fn memcpy(len: usize) -> Nanos {
        Nanos::from_ns((len as u64 * MEMCPY_PER_KIB.as_ns()) / 1024)
    }
}

/// Identifier of an Aurora region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuroraRegionId(pub u32);

/// Phase breakdown of one Aurora checkpoint (Table 2 / Table 10 rows).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// "Waiting for Calls": queueing behind an outstanding checkpoint of
    /// the same region.
    pub waiting_for_calls: Nanos,
    /// Stopping and resuming all application threads.
    pub stopping_threads: Nanos,
    /// "Applying COW": shadow-object creation, proportional to mapping
    /// size.
    pub applying_cow: Nanos,
    /// "Flush IO": writing the dirty data.
    pub flush_io: Nanos,
    /// "Removing COW": collapsing the shadow, proportional to mapping
    /// size.
    pub removing_cow: Nanos,
    /// Pages of dirty data persisted.
    pub dirty_pages: u64,
    /// Instant the checkpoint (including collapse) finished.
    pub completes: Nanos,
}

impl CheckpointReport {
    /// End-to-end latency of the synchronous call.
    pub fn total(&self) -> Nanos {
        self.waiting_for_calls
            + self.stopping_threads
            + self.applying_cow
            + self.flush_io
            + self.removing_cow
    }
}

#[derive(Debug)]
struct Region {
    store_obj: StoreObjId,
    pages: u64,
    data: Vec<u8>,
    dirty: BTreeSet<u64>,
    /// Pages currently write-protected by the shadow (COW re-fault on
    /// first write after a checkpoint).
    shadowed: BTreeSet<u64>,
    /// Only one outstanding checkpoint per region: the instant the region
    /// is free for the next one (after collapse).
    busy_until: Nanos,
    /// Threads are stopped while a checkpoint's stop+shadow phase runs.
    world_stopped_until: Nanos,
    /// Completion of the flat-combined "next" checkpoint, if one is
    /// already scheduled (see [`Aurora::checkpoint_region_combined`]).
    pending_combined: Nanos,
}

/// The Aurora baseline SLS. See the crate docs for the model.
pub struct Aurora {
    disk: Disk,
    store: ObjectStore,
    regions: Vec<Region>,
    by_name: HashMap<String, AuroraRegionId>,
    /// Pages of process memory outside the checkpointed region that an
    /// *application* checkpoint must also shadow and collapse (448 MiB by
    /// default).
    process_extra_pages: u64,
    meters: Meters,
}

impl std::fmt::Debug for Aurora {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aurora")
            .field("regions", &self.regions.len())
            .finish()
    }
}

impl Aurora {
    /// Formats `disk` and returns a fresh Aurora instance.
    pub fn format(mut disk: Disk) -> Self {
        let store = ObjectStore::format(&mut disk);
        Aurora {
            disk,
            store,
            regions: Vec::new(),
            by_name: HashMap::new(),
            process_extra_pages: 448 * 256, // 448 MiB
            meters: Meters::new(),
        }
    }

    /// Reopens Aurora after a crash; region contents are restored from the
    /// store.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFormatted`] if the device holds no store.
    pub fn restore(vt: &mut Vt, mut disk: Disk) -> Result<Self, StoreError> {
        let mut store = ObjectStore::open(vt, &mut disk)?;
        let mut regions = Vec::new();
        let mut by_name = HashMap::new();
        for name in store.object_names() {
            let store_obj = store.lookup(&name).expect("listed objects exist");
            let pages = store.len_pages(store_obj);
            let mut data = vec![0u8; (pages * PAGE_SIZE as u64) as usize];
            let mut buf = vec![0u8; PAGE_SIZE];
            for p in 0..pages {
                store.read_page(vt, &mut disk, store_obj, p, &mut buf)?;
                let off = (p as usize) * PAGE_SIZE;
                data[off..off + PAGE_SIZE].copy_from_slice(&buf);
            }
            by_name.insert(name, AuroraRegionId(regions.len() as u32));
            regions.push(Region {
                store_obj,
                pages,
                data,
                dirty: BTreeSet::new(),
                shadowed: BTreeSet::new(),
                busy_until: Nanos::ZERO,
                world_stopped_until: Nanos::ZERO,
                pending_combined: Nanos::ZERO,
            });
        }
        Ok(Aurora {
            disk,
            store,
            regions,
            by_name,
            process_extra_pages: 448 * 256,
            meters: Meters::new(),
        })
    }

    /// Simulates a power failure; pass the returned device to
    /// [`Aurora::restore`].
    pub fn crash(self, at: Nanos) -> Disk {
        let mut disk = self.disk;
        disk.crash(at);
        disk
    }

    /// Sets how much extra process memory an application checkpoint
    /// shadows (beyond the regions themselves).
    pub fn set_process_extra_pages(&mut self, pages: u64) {
        self.process_extra_pages = pages;
    }

    /// Per-call latency meters (`"checkpoint"`).
    pub fn meters(&self) -> &Meters {
        &self.meters
    }

    /// Creates a region of `pages` pages.
    ///
    /// # Errors
    ///
    /// Propagates store errors (duplicate name, full directory).
    pub fn create_region(
        &mut self,
        vt: &mut Vt,
        name: &str,
        pages: u64,
    ) -> Result<AuroraRegionId, StoreError> {
        let store_obj = self.store.create(vt, &mut self.disk, name)?;
        let id = AuroraRegionId(self.regions.len() as u32);
        self.regions.push(Region {
            store_obj,
            pages,
            data: vec![0u8; (pages * PAGE_SIZE as u64) as usize],
            dirty: BTreeSet::new(),
            shadowed: BTreeSet::new(),
            busy_until: Nanos::ZERO,
            world_stopped_until: Nanos::ZERO,
            pending_combined: Nanos::ZERO,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a region by name (used after [`Aurora::restore`]).
    pub fn region(&self, name: &str) -> Option<AuroraRegionId> {
        self.by_name.get(name).copied()
    }

    /// Region length in pages.
    pub fn region_pages(&self, region: AuroraRegionId) -> u64 {
        self.regions[region.0 as usize].pages
    }

    /// The instant until which application threads are stopped by an
    /// in-progress checkpoint; workload drivers stall their operations
    /// past it (the serialization point the paper criticizes).
    pub fn world_stopped_until(&self, region: AuroraRegionId) -> Nanos {
        self.regions[region.0 as usize].world_stopped_until
    }

    /// Writes into a region. First write to a page after a checkpoint
    /// takes a shadow COW fault.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn write(&mut self, vt: &mut Vt, region: AuroraRegionId, offset: u64, data: &[u8]) {
        let r = &mut self.regions[region.0 as usize];
        // Writes stall while the world is stopped.
        vt.wait_until(r.world_stopped_until);
        let end = offset as usize + data.len();
        assert!(end <= r.data.len(), "write beyond region end");
        r.data[offset as usize..end].copy_from_slice(data);
        let first = offset / PAGE_SIZE as u64;
        let last = (end as u64 - 1) / PAGE_SIZE as u64;
        for p in first..=last {
            if r.dirty.insert(p) && r.shadowed.remove(&p) {
                vt.charge(Category::PageFault, costs::SHADOW_FAULT);
            }
        }
        vt.charge(Category::TxMemory, costs::memcpy(data.len()));
    }

    /// Reads from a region.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn read(&mut self, vt: &mut Vt, region: AuroraRegionId, offset: u64, out: &mut [u8]) {
        let r = &self.regions[region.0 as usize];
        // System shadowing stops *all* threads, readers included.
        vt.wait_until(r.world_stopped_until);
        let end = offset as usize + out.len();
        assert!(end <= r.data.len(), "read beyond region end");
        out.copy_from_slice(&r.data[offset as usize..end]);
        vt.charge(Category::TxMemory, costs::memcpy(out.len()));
    }

    /// Checkpoints one region: stop the world, shadow the whole mapping,
    /// flush the dirty set, collapse. `threads_running` is the number of
    /// application threads that must be stopped. With `sync`, the caller
    /// blocks until the data is durable (as the paper's modified Aurora
    /// does, for guarantee parity with MemSnap).
    pub fn checkpoint_region(
        &mut self,
        vt: &mut Vt,
        region: AuroraRegionId,
        threads_running: u32,
        sync: bool,
    ) -> CheckpointReport {
        let start = vt.now();
        let (mapping_pages, extra) = (self.regions[region.0 as usize].pages, 0u64);
        let report = self.checkpoint_inner(
            vt,
            region,
            threads_running,
            sync,
            mapping_pages + extra,
            Nanos::ZERO,
            start,
        );
        self.meters.record("checkpoint", vt.now() - start);
        report
    }

    /// Flat-combined region checkpoint: if a checkpoint of this region is
    /// already in flight, the caller's writes board the *next* one
    /// instead of issuing their own — the optimization the paper credits
    /// RocksDB-on-Aurora with ("RocksDB avoids contention in Aurora by
    /// also taking advantage of flat-combining but still experiences an
    /// average of 26.7 μs in stall time per checkpoint"). Used by the
    /// throughput benchmarks; the latency-breakdown experiments use
    /// [`Aurora::checkpoint_region`] directly.
    pub fn checkpoint_region_combined(
        &mut self,
        vt: &mut Vt,
        region: AuroraRegionId,
        threads_running: u32,
    ) -> CheckpointReport {
        let r = &mut self.regions[region.0 as usize];
        let now = vt.now();
        if r.busy_until > now {
            if r.pending_combined > now {
                // Board the already-scheduled next checkpoint.
                let start = now;
                vt.wait_until(r.pending_combined);
                self.meters.record("checkpoint", vt.now() - start);
                return CheckpointReport {
                    waiting_for_calls: vt.now() - start,
                    completes: r.pending_combined,
                    ..CheckpointReport::default()
                };
            }
            // Lead the next checkpoint: it departs when the in-flight one
            // collapses.
            let report = self.checkpoint_region(vt, region, threads_running, true);
            self.regions[region.0 as usize].pending_combined = report.completes;
            return report;
        }
        self.checkpoint_region(vt, region, threads_running, true)
    }

    /// Checkpoints the application: every region plus the rest of the
    /// process address space and OS state. (We model the common case of
    /// one data region plus `process_extra_pages` of other memory.)
    pub fn checkpoint_app(
        &mut self,
        vt: &mut Vt,
        region: AuroraRegionId,
        threads_running: u32,
        sync: bool,
    ) -> CheckpointReport {
        let start = vt.now();
        let shadow_pages = self.regions[region.0 as usize].pages + self.process_extra_pages;
        let report = self.checkpoint_inner(
            vt,
            region,
            threads_running,
            sync,
            shadow_pages,
            costs::APP_OS_STATE,
            start,
        );
        self.meters.record("app_checkpoint", vt.now() - start);
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn checkpoint_inner(
        &mut self,
        vt: &mut Vt,
        region: AuroraRegionId,
        threads_running: u32,
        sync: bool,
        shadow_pages: u64,
        fixed_extra: Nanos,
        start: Nanos,
    ) -> CheckpointReport {
        // One outstanding checkpoint per region: queue behind collapse.
        let r = &mut self.regions[region.0 as usize];
        vt.wait_until(r.busy_until);
        let waiting = vt.now() - start;

        // Stop the world.
        let stop = costs::STOP_BASE + costs::STOP_PER_THREAD * threads_running as u64;
        vt.charge(Category::Other("aurora stop"), stop);

        // Apply COW: create the shadow object over the whole mapping.
        let shadow = costs::SHADOW_PER_PAGE * shadow_pages + fixed_extra;
        vt.charge(Category::Other("aurora shadow"), shadow);
        let world_resumes = vt.now();

        // Threads resume here; IO proceeds in parallel with execution.
        let r = &mut self.regions[region.0 as usize];
        r.world_stopped_until = world_resumes;
        let dirty: Vec<u64> = std::mem::take(&mut r.dirty).into_iter().collect();
        r.shadowed.extend(dirty.iter().copied());
        let dirty_pages = dirty.len() as u64;

        let io_start = vt.now();
        let store_obj = r.store_obj;
        let images: Vec<(u64, &[u8])> = dirty
            .iter()
            .map(|&p| {
                let off = (p as usize) * PAGE_SIZE;
                (
                    p,
                    &self.regions[region.0 as usize].data[off..off + PAGE_SIZE],
                )
            })
            .collect();
        let completes = if images.is_empty() {
            vt.now()
        } else {
            let token = self
                .store
                .persist(vt, &mut self.disk, store_obj, &images)
                .expect("the Aurora baseline does not run under fault injection");
            token.completes
        };
        let flush_io = (completes - io_start).max(Nanos::ZERO);

        // Collapse after the IO completes; the region stays busy until
        // then even for asynchronous use.
        let collapse = costs::COLLAPSE_PER_PAGE * shadow_pages;
        let collapse_done = completes + collapse;
        self.regions[region.0 as usize].busy_until = collapse_done;

        if sync {
            // The caller waits for IO + collapse.
            let wait = collapse_done.saturating_sub(vt.now());
            vt.charge(Category::IoWait, wait);
        }

        CheckpointReport {
            waiting_for_calls: waiting,
            stopping_threads: stop,
            applying_cow: shadow,
            flush_io,
            removing_cow: collapse,
            dirty_pages,
            completes: collapse_done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    /// 64 MiB MemTable-sized region, as in the Table 2 scenario.
    const REGION_PAGES: u64 = 16 * 1024;

    fn setup() -> (Aurora, Vt, AuroraRegionId) {
        let mut aurora = Aurora::format(Disk::new(DiskConfig::paper()));
        let mut vt = Vt::new(0);
        let region = aurora
            .create_region(&mut vt, "memtable", REGION_PAGES)
            .unwrap();
        (aurora, vt, region)
    }

    #[test]
    fn write_read_round_trip() {
        let (mut aurora, mut vt, region) = setup();
        aurora.write(&mut vt, region, 123, b"hello");
        let mut out = [0u8; 5];
        aurora.read(&mut vt, region, 123, &mut out);
        assert_eq!(&out, b"hello");
    }

    /// The checkpoint breakdown must reproduce Table 2 within 30%:
    /// stop ~26.7 us, shadow ~79.8 us, IO ~27.9 us, collapse ~91.7 us,
    /// total ~208 us for 64 KiB dirty in a 64 MiB region, 12 threads.
    #[test]
    fn region_checkpoint_matches_table2() {
        let (mut aurora, mut vt, region) = setup();
        for p in 0..16u64 {
            aurora.write(&mut vt, region, p * PAGE_SIZE as u64 * 7, &[1u8; PAGE_SIZE]);
        }
        let report = aurora.checkpoint_region(&mut vt, region, 12, true);
        assert_eq!(report.dirty_pages, 16);
        for (name, got, paper, tolerance) in [
            ("stop", report.stopping_threads.as_us_f64(), 26.7, 0.35),
            ("shadow", report.applying_cow.as_us_f64(), 79.8, 0.35),
            // Our store commits a checksummed root record per checkpoint,
            // which Aurora's shadow flush does not; its IO row runs ~2x
            // the paper's. The total stays within 35%.
            ("io", report.flush_io.as_us_f64(), 27.9, 1.5),
            ("collapse", report.removing_cow.as_us_f64(), 91.7, 0.35),
            ("total", report.total().as_us_f64(), 208.1, 0.35),
        ] {
            let err = (got - paper).abs() / paper;
            assert!(err < tolerance, "{name}: {got:.1} us vs paper {paper} us");
        }
    }

    #[test]
    fn app_checkpoint_is_order_of_magnitude_slower() {
        let (mut aurora, mut vt, region) = setup();
        aurora.write(&mut vt, region, 0, &[1u8; PAGE_SIZE]);
        let r1 = aurora.checkpoint_region(&mut vt, region, 12, true);
        aurora.write(&mut vt, region, 0, &[2u8; PAGE_SIZE]);
        let r2 = aurora.checkpoint_app(&mut vt, region, 12, true);
        assert!(
            r2.total().as_ns() > 6 * r1.total().as_ns(),
            "app {:.0} us vs region {:.0} us",
            r2.total().as_us_f64(),
            r1.total().as_us_f64()
        );
    }

    #[test]
    fn checkpoints_serialize_per_region() {
        let (mut aurora, mut vt, region) = setup();
        aurora.write(&mut vt, region, 0, &[1u8; PAGE_SIZE]);
        let r1 = aurora.checkpoint_region(&mut vt, region, 1, false);
        // Second checkpoint issued immediately: must wait for collapse.
        aurora.write(&mut vt, region, PAGE_SIZE as u64, &[2u8; PAGE_SIZE]);
        let r2 = aurora.checkpoint_region(&mut vt, region, 1, false);
        assert!(
            r2.waiting_for_calls > Nanos::ZERO,
            "second checkpoint queued behind the first: {:?}",
            r2.waiting_for_calls
        );
        assert!(r2.completes > r1.completes);
    }

    #[test]
    fn shadow_fault_charged_on_rewrite_after_checkpoint() {
        let (mut aurora, mut vt, region) = setup();
        aurora.write(&mut vt, region, 0, &[1u8; 8]);
        aurora.checkpoint_region(&mut vt, region, 1, true);
        let faults_cost_before = vt.costs().get(Category::PageFault);
        aurora.write(&mut vt, region, 0, &[2u8; 8]);
        assert!(vt.costs().get(Category::PageFault) > faults_cost_before);
    }

    #[test]
    fn crash_restore_recovers_checkpointed_data() {
        let (mut aurora, mut vt, region) = setup();
        aurora.write(&mut vt, region, 4096, b"persisted");
        aurora.checkpoint_region(&mut vt, region, 1, true);
        aurora.write(&mut vt, region, 0, b"lost");
        let disk = aurora.crash(vt.now());

        let mut vt2 = Vt::new(1);
        let mut aurora2 = Aurora::restore(&mut vt2, disk).unwrap();
        let region2 = aurora2.region("memtable").unwrap();
        let mut out = [0u8; 9];
        aurora2.read(&mut vt2, region2, 4096, &mut out);
        assert_eq!(&out, b"persisted");
        let mut lost = [0u8; 4];
        aurora2.read(&mut vt2, region2, 0, &mut lost);
        assert_eq!(lost, [0u8; 4]);
    }

    #[test]
    fn world_stop_stalls_writers() {
        let (mut aurora, mut vt, region) = setup();
        aurora.write(&mut vt, region, 0, &[1u8; PAGE_SIZE]);
        aurora.checkpoint_region(&mut vt, region, 12, false);
        let stopped_until = aurora.world_stopped_until(region);
        assert!(stopped_until > Nanos::ZERO);
        // A writer starting before the stop window ends is delayed.
        let mut other = Vt::new(1);
        aurora.write(&mut other, region, 0, &[3u8; 8]);
        assert!(other.now() >= stopped_until);
    }
}
