//! The storage-engine persistence boundary (SQLite's "VFS").

use msnap_sim::{Meters, Vt, VthreadId};

use crate::PAGE_SIZE;

/// Aggregate persistence statistics a backend exposes for the evaluation
/// tables.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BackendStats {
    /// Transaction commits.
    pub commits: u64,
    /// WAL checkpoints performed (file backend only).
    pub checkpoints: u64,
    /// Pages persisted across all commits.
    pub pages_persisted: u64,
}

/// The engine's page-persistence interface.
///
/// The B-tree and transaction layers above this trait are byte-identical
/// between the baseline and MemSnap builds — swapping the backend is the
/// whole integration, as in the paper ("the plugin … replaces the standard
/// Unix file module").
pub trait Backend {
    /// Reads page `page` into `out`.
    fn read_page(&mut self, vt: &mut Vt, page: u64, out: &mut [u8; PAGE_SIZE]);

    /// Writes page `page` on behalf of `thread`; buffered until
    /// [`Backend::commit`].
    fn write_page(&mut self, vt: &mut Vt, thread: VthreadId, page: u64, data: &[u8; PAGE_SIZE]);

    /// Durably commits everything `thread` has written since its previous
    /// commit.
    fn commit(&mut self, vt: &mut Vt, thread: VthreadId);

    /// Initiates a commit without waiting for durability; pair with
    /// [`Backend::sync`]. The paper's `MS_ASYNC` usage: "MemSnap's
    /// asynchronous mode lets a thread unlock the data in memory after
    /// msnap_persist to unblock other transactions". Backends without an
    /// asynchronous path (the WAL baseline) fall back to a synchronous
    /// commit.
    fn commit_async(&mut self, vt: &mut Vt, thread: VthreadId) {
        self.commit(vt, thread);
    }

    /// Blocks until every initiated commit is durable.
    fn sync(&mut self, _vt: &mut Vt) {}

    /// Number of pages the backend can hold.
    fn capacity_pages(&self) -> u64;

    /// Persistence statistics.
    fn stats(&self) -> BackendStats;

    /// Per-syscall latency meters (`"write"`, `"read"`, `"fsync"`,
    /// `"msnap_persist"`, …).
    fn meters(&self) -> Meters;

    /// Resets meters and counters (workload warm-up).
    fn reset_metrics(&mut self);

    /// Recovers the concrete backend type (crash-test plumbing).
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}
