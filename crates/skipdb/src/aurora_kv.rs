//! The Aurora variant: the persistent skip list over region checkpoints.
//!
//! "The Aurora system stores all MemTable data in a single mapping and
//! issues a checkpoint after each write" (§7.2). The node layout matches
//! [`MemSnapKv`](crate::MemSnapKv); only the persistence mechanism
//! differs: every commit stops the world, shadows the whole mapping,
//! flushes, and collapses — and checkpoints of the region serialize.

use msnap_aurora::{Aurora, AuroraRegionId};
use msnap_disk::Disk;
use msnap_sim::{Category, Meters, Nanos, Vt};

use crate::kv::{Kv, KvStats};
use crate::node::{decode_head, decode_node, encode_head, encode_node, PAGE};
use crate::skiplist::{Insert, SkipIndex};

/// Per-node spinlock cost (same as the MemSnap variant).
const NODE_LOCK: Nanos = Nanos::from_ns(25);

/// The Aurora-checkpointed skip-list store. See the module docs.
#[derive(Debug)]
pub struct AuroraKv {
    aurora: Aurora,
    region: AuroraRegionId,
    index: SkipIndex<u64>,
    next_page: u64,
    capacity_pages: u64,
    /// Application threads Aurora must stop per checkpoint (12 in the
    /// paper's MixGraph runs).
    threads_running: u32,
    stats: KvStats,
}

impl AuroraKv {
    /// Creates a fresh store whose MemTable region holds
    /// `capacity_pages` nodes.
    pub fn format(disk: Disk, capacity_pages: u64, threads_running: u32, vt: &mut Vt) -> Self {
        let mut aurora = Aurora::format(disk);
        let region = aurora
            .create_region(vt, "memtable", capacity_pages)
            .expect("fresh store accepts the memtable region");
        let mut kv = AuroraKv {
            aurora,
            region,
            index: SkipIndex::new(0),
            next_page: 1,
            capacity_pages,
            threads_running,
            stats: KvStats::default(),
        };
        let head = encode_head(0);
        kv.aurora.write(vt, kv.region, 0, &head);
        kv
    }

    /// Restores after a crash, rebuilding the volatile index by walking
    /// the persistent list.
    ///
    /// # Panics
    ///
    /// Panics if `disk` holds no Aurora store.
    pub fn restore(disk: Disk, threads_running: u32, vt: &mut Vt) -> Self {
        let aurora = Aurora::restore(vt, disk).expect("device holds an Aurora store");
        let region = aurora.region("memtable").expect("memtable region exists");
        let capacity_pages = aurora.region_pages(region);
        let mut kv = AuroraKv {
            aurora,
            region,
            index: SkipIndex::new(0),
            next_page: 1,
            capacity_pages,
            threads_running,
            stats: KvStats::default(),
        };
        let mut buf = [0u8; PAGE];
        kv.aurora.read(vt, kv.region, 0, &mut buf);
        let mut next = decode_head(&buf).unwrap_or(0);
        let mut max_page = 0;
        while next != 0 {
            kv.aurora.read(vt, kv.region, next * PAGE as u64, &mut buf);
            let node = decode_node(&buf).expect("linked list points at valid nodes");
            kv.index.insert(vt, node.key, next);
            max_page = max_page.max(next);
            next = node.next;
        }
        kv.next_page = max_page + 1;
        kv
    }

    /// Simulates a power failure; pass the device to
    /// [`AuroraKv::restore`].
    pub fn crash(self, at: Nanos) -> Disk {
        self.aurora.crash(at)
    }

    /// The underlying Aurora instance (checkpoint reports).
    pub fn aurora(&self) -> &Aurora {
        &self.aurora
    }

    fn insert_volatile(&mut self, vt: &mut Vt, key: u64, value: &[u8]) {
        match self.index.insert(vt, key, 0) {
            Insert::Replaced(page) => {
                self.index.insert(vt, key, page);
                vt.charge(Category::Locking, NODE_LOCK);
                let mut buf = [0u8; PAGE];
                self.aurora
                    .read(vt, self.region, page * PAGE as u64, &mut buf);
                let node = decode_node(&buf).expect("index points at valid nodes");
                let image = encode_node(key, value, node.next);
                self.aurora
                    .write(vt, self.region, page * PAGE as u64, &image);
            }
            Insert::New {
                pred_payload,
                succ_payload,
            } => {
                let page = self.next_page;
                assert!(page < self.capacity_pages, "memtable region full");
                self.next_page += 1;
                self.index.insert(vt, key, page);
                vt.charge(Category::Locking, NODE_LOCK * 2);
                let image = encode_node(key, value, succ_payload.unwrap_or(0));
                self.aurora
                    .write(vt, self.region, page * PAGE as u64, &image);
                let pred_page = pred_payload.unwrap_or(0);
                self.aurora.write(
                    vt,
                    self.region,
                    pred_page * PAGE as u64 + 16,
                    &page.to_le_bytes(),
                );
            }
        }
    }

    fn checkpoint(&mut self, vt: &mut Vt) {
        self.aurora
            .checkpoint_region_combined(vt, self.region, self.threads_running);
        self.stats.commits += 1;
    }
}

impl Kv for AuroraKv {
    fn put(&mut self, vt: &mut Vt, key: u64, value: &[u8]) -> Result<(), crate::KvError> {
        self.insert_volatile(vt, key, value);
        self.checkpoint(vt);
        Ok(())
    }

    fn multi_put(&mut self, vt: &mut Vt, pairs: &[(u64, Vec<u8>)]) -> Result<(), crate::KvError> {
        for (key, value) in pairs {
            self.insert_volatile(vt, *key, value);
        }
        self.checkpoint(vt);
        Ok(())
    }

    fn get(&mut self, vt: &mut Vt, key: u64) -> Option<Vec<u8>> {
        let page = *self.index.find(vt, key)?;
        let mut buf = [0u8; PAGE];
        self.aurora
            .read(vt, self.region, page * PAGE as u64, &mut buf);
        decode_node(&buf).map(|n| n.value)
    }

    fn seek(&mut self, vt: &mut Vt, key: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        let pages: Vec<(u64, u64)> = self
            .index
            .iter_from(vt, key)
            .take(limit)
            .map(|(k, p)| (k, *p))
            .collect();
        pages
            .into_iter()
            .map(|(k, page)| {
                let mut buf = [0u8; PAGE];
                self.aurora
                    .read(vt, self.region, page * PAGE as u64, &mut buf);
                (
                    k,
                    decode_node(&buf)
                        .expect("index points at valid nodes")
                        .value,
                )
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn stats(&self) -> KvStats {
        self.stats
    }

    fn meters(&self) -> Meters {
        self.aurora.meters().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    fn fresh() -> (AuroraKv, Vt) {
        let mut vt = Vt::new(0);
        let kv = AuroraKv::format(Disk::new(DiskConfig::paper()), 4096, 12, &mut vt);
        (kv, vt)
    }

    #[test]
    fn put_get_round_trip() {
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 5, b"five").unwrap();
        kv.put(&mut vt, 3, b"three").unwrap();
        assert_eq!(kv.get(&mut vt, 5), Some(b"five".to_vec()));
        assert_eq!(kv.get(&mut vt, 3), Some(b"three".to_vec()));
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn crash_restore_round_trips() {
        let (mut kv, mut vt) = fresh();
        for k in 0..50u64 {
            kv.put(&mut vt, k, &k.to_le_bytes()).unwrap();
        }
        let disk = kv.crash(vt.now());
        let mut vt2 = Vt::new(1);
        let mut kv2 = AuroraKv::restore(disk, 12, &mut vt2);
        assert_eq!(kv2.len(), 50);
        for k in 0..50u64 {
            assert_eq!(kv2.get(&mut vt2, k), Some(k.to_le_bytes().to_vec()));
        }
    }

    #[test]
    fn aurora_put_is_much_slower_than_memsnap_put() {
        // The §7.2 comparison: region checkpointing's fixed costs dwarf
        // the 2-page dirty set.
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 1, b"warm").unwrap();
        let t0 = vt.now();
        kv.put(&mut vt, 2, b"x").unwrap();
        let aurora_lat = (vt.now() - t0).as_us_f64();

        let mut vt2 = Vt::new(0);
        let mut ms = crate::MemSnapKv::format(Disk::new(DiskConfig::paper()), 4096, &mut vt2);
        ms.put(&mut vt2, 1, b"warm").unwrap();
        let t0 = vt2.now();
        ms.put(&mut vt2, 2, b"x").unwrap();
        let ms_lat = (vt2.now() - t0).as_us_f64();

        let ratio = aurora_lat / ms_lat;
        assert!(
            ratio > 2.0,
            "aurora {aurora_lat:.0} us vs memsnap {ms_lat:.0} us ({ratio:.1}x)"
        );
    }

    #[test]
    fn checkpoints_report_breakdown() {
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 1, b"v").unwrap();
        assert_eq!(kv.stats().commits, 1);
        assert_eq!(kv.meters().get("checkpoint").unwrap().count(), 1);
    }
}
