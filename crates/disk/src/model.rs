//! Disk latency model.

use msnap_sim::Nanos;

/// Latency and topology parameters of the simulated device.
///
/// [`DiskConfig::paper`] is calibrated so that one-outstanding-IO writes
/// reproduce the "Disk" column of the paper's Table 6, and so that deep
/// queues saturate at roughly twice the single-IO stream bandwidth (two
/// striped devices).
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    /// Fixed per-IO cost (submission, PCIe round trip, controller).
    pub setup: Nanos,
    /// Streaming cost per byte within one channel.
    pub ns_per_byte: f64,
    /// Number of independent channels (striped devices).
    pub channels: usize,
    /// Stripe size: IOs are split into segments of at most this many bytes,
    /// each dispatched to the earliest-free channel.
    pub stripe_bytes: usize,
    /// Device capacity in blocks; writes at or beyond this address fail
    /// with `IoError::NoSpace`. `None` models an unbounded device.
    pub capacity_blocks: Option<u64>,
}

impl DiskConfig {
    /// The paper's testbed: two Intel 900P SSDs striped at 64 KiB.
    ///
    /// Calibration targets (Table 6, "Disk" column, QD1):
    /// 4 KiB → 17 μs, 8 KiB → 18 μs, 16 KiB → 22 μs, 32 KiB → 31 μs,
    /// 64 KiB → 44 μs.
    pub fn paper() -> Self {
        DiskConfig {
            setup: Nanos::from_ns(15_200),
            ns_per_byte: 0.45,
            channels: 2,
            // Vectored writes split at 32 KiB so the store's internal IO
            // uses both devices; a single QD1 direct IO (the "Disk" column
            // of Table 6) is priced by `segment_latency` un-split.
            stripe_bytes: 32 * 1024,
            capacity_blocks: None,
        }
    }

    /// A fast, low-variance configuration for functional tests where IO
    /// latency is irrelevant.
    pub fn fast() -> Self {
        DiskConfig {
            setup: Nanos::from_ns(100),
            ns_per_byte: 0.01,
            channels: 4,
            stripe_bytes: 64 * 1024,
            capacity_blocks: None,
        }
    }

    /// Returns the configuration with a capacity ceiling of `blocks`.
    pub fn with_capacity_blocks(mut self, blocks: u64) -> Self {
        self.capacity_blocks = Some(blocks);
        self
    }

    /// Service time of a single segment of `bytes` on one channel.
    pub fn segment_latency(&self, bytes: usize) -> Nanos {
        self.setup + Nanos::from_ns((bytes as f64 * self.ns_per_byte).round() as u64)
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The QD1 latency model must land on the paper's Table 6 numbers
    /// within 10%.
    #[test]
    fn qd1_matches_paper_table6() {
        let cfg = DiskConfig::paper();
        for (kib, paper_us) in [
            (4usize, 17.0f64),
            (8, 18.0),
            (16, 22.0),
            (32, 31.0),
            (64, 44.0),
        ] {
            let model = cfg.segment_latency(kib * 1024).as_us_f64();
            let err = (model - paper_us).abs() / paper_us;
            assert!(
                err < 0.10,
                "{kib} KiB: model {model:.1} us vs paper {paper_us} us"
            );
        }
    }

    #[test]
    fn segment_latency_is_monotone() {
        let cfg = DiskConfig::paper();
        assert!(cfg.segment_latency(8192) > cfg.segment_latency(4096));
    }
}
