//! Multi-process regions: the PostgreSQL pattern (§7.3).
//!
//! Two simulated processes map the same MemSnap region (like PostgreSQL
//! backends sharing a buffer cache). Writes by one are visible to the
//! other; per-thread μCheckpoints persist each backend's transaction
//! independently; protection resets reach every process's page tables
//! through the reverse map.
//!
//! Run with: `cargo run --example multi_process`

use memsnap::{MemSnap, PersistFlags, RegionSel, PAGE_SIZE};
use msnap_disk::{Disk, DiskConfig};
use msnap_sim::{Vt, VthreadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let mut vt = Vt::new(0);

    // Two "processes" (address spaces), one shared table region.
    let backend_a = ms.vm_mut().create_space();
    let backend_b = ms.vm_mut().create_space();
    let region = ms.msnap_open(&mut vt, backend_a, "shared-table", 64)?;
    ms.msnap_open(&mut vt, backend_b, "shared-table", 64)?;

    let thread_a = VthreadId(1);
    let thread_b = VthreadId(2);

    // Backend A appends a tuple and commits its transaction.
    ms.write(&mut vt, backend_a, thread_a, region.addr, b"tuple-1 from A")?;
    ms.msnap_persist(
        &mut vt,
        thread_a,
        RegionSel::Region(region.md),
        PersistFlags::sync(),
    )?;

    // Backend B sees it immediately through shared memory...
    let mut seen = [0u8; 14];
    ms.read(&mut vt, backend_b, region.addr, &mut seen)?;
    println!("backend B reads: {:?}", std::str::from_utf8(&seen)?);

    // ...and writes its own tuple on a different page; its μCheckpoint
    // contains only its own dirty set (per-thread tracking).
    ms.write(
        &mut vt,
        backend_b,
        thread_b,
        region.addr + PAGE_SIZE as u64,
        b"tuple-2 from B",
    )?;
    ms.msnap_persist(
        &mut vt,
        thread_b,
        RegionSel::Region(region.md),
        PersistFlags::sync(),
    )?;
    println!(
        "backend B's μCheckpoint carried {} page(s) — only its own work",
        ms.last_persist_breakdown().pages
    );

    // Fault statistics show the mechanism at work: minor write faults
    // tracked the dirty sets; the reverse map re-armed both processes'
    // page tables after each persist.
    let stats = ms.vm().stats();
    println!(
        "VM: {} minor faults, {} PTE resets, {} TLB shootdowns",
        stats.minor_faults, stats.pte_resets, stats.shootdowns
    );

    // Crash and restore: both tuples are durable, at the same address,
    // visible to a fresh "process".
    let disk = ms.crash(vt.now());
    let mut vt2 = Vt::new(9);
    let mut ms2 = MemSnap::restore(&mut vt2, disk)?;
    let backend_c = ms2.vm_mut().create_space();
    let restored = ms2.msnap_open(&mut vt2, backend_c, "shared-table", 0)?;
    assert_eq!(restored.addr, region.addr);
    let mut t1 = [0u8; 14];
    let mut t2 = [0u8; 14];
    ms2.read(&mut vt2, backend_c, restored.addr, &mut t1)?;
    ms2.read(
        &mut vt2,
        backend_c,
        restored.addr + PAGE_SIZE as u64,
        &mut t2,
    )?;
    println!(
        "after reboot: {:?} + {:?}",
        std::str::from_utf8(&t1)?,
        std::str::from_utf8(&t2)?
    );
    assert_eq!(&t1, b"tuple-1 from A");
    assert_eq!(&t2, b"tuple-2 from B");
    println!("both backends' transactions survived ✓");
    Ok(())
}
