//! The §7.2 consistency torture test at integration scale: concurrent
//! increment transactions, a crash, and the acknowledged-work invariant —
//! across several seeds and crash points.
//!
//! Paper: "Each thread creates a transaction that randomly selects 100
//! keys and increments each of their values ... We load the on-disk data
//! to a new instance and verify that the values sum up to the correct
//! amount."

use msnap_skipdb::drivers::torture_memsnap;

#[test]
fn torture_many_seeds_and_crash_points() {
    for seed in [1u64, 17, 99] {
        for crash_fraction in [0.1, 0.5, 0.95] {
            let outcome = torture_memsnap(400, 8, 12, 10, crash_fraction, seed);
            assert!(
                outcome.is_consistent(),
                "seed {seed}, crash at {crash_fraction}: {outcome:?}"
            );
        }
    }
}

#[test]
fn torture_large_transactions() {
    // Wider transactions (50 keys) stress multi-page atomic commits.
    let outcome = torture_memsnap(600, 6, 8, 50, 0.6, 31);
    assert!(outcome.is_consistent(), "{outcome:?}");
    assert!(outcome.acked_txns > 0);
}

#[test]
fn torture_no_crash_preserves_everything() {
    let outcome = torture_memsnap(300, 4, 10, 10, 1.0, 7);
    assert!(outcome.is_consistent(), "{outcome:?}");
    assert_eq!(
        outcome.acked_txns, 40,
        "a crash after the run acknowledges every transaction"
    );
}
