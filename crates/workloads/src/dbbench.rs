//! The SQLite `dbbench` microbenchmark (§7.1).
//!
//! "dbbench generates up to 1 M keys with 128 byte values. Key/value pairs
//! are batched sequentially or randomly into write transactions ranging
//! from 4 KiB to 1 MiB in size until 2 million total key value pair writes
//! have been performed."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Value size: 128 bytes, as in the paper.
pub const VALUE_SIZE: usize = 128;

/// Key ordering within and across transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyOrder {
    /// Monotonically increasing keys (the paper's "sequential IO" rows).
    Sequential,
    /// Uniformly random keys (the "random IO" rows).
    Random,
}

/// One write transaction: a batch of key/value pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBatch {
    /// Keys written by the transaction.
    pub keys: Vec<u64>,
}

impl WriteBatch {
    /// The value bytes for `key` (deterministic, key-derived).
    pub fn value_for(key: u64) -> [u8; VALUE_SIZE] {
        let mut v = [0u8; VALUE_SIZE];
        let bytes = key.to_le_bytes();
        for (i, b) in v.iter_mut().enumerate() {
            *b = bytes[i % 8] ^ (i as u8);
        }
        v
    }
}

/// The dbbench generator. Iterates over write transactions until the
/// configured number of key/value writes has been produced.
#[derive(Debug)]
pub struct DbBench {
    key_space: u64,
    kvs_per_txn: usize,
    remaining_kvs: u64,
    order: KeyOrder,
    next_seq: u64,
    rng: StdRng,
}

impl DbBench {
    /// Creates a generator.
    ///
    /// * `txn_bytes` — target transaction size (4 KiB … 1 MiB in the
    ///   paper); the batch holds `txn_bytes / VALUE_SIZE` pairs.
    /// * `total_kvs` — total key/value writes to produce (2 M in the
    ///   paper; scale down for CI).
    /// * `key_space` — number of distinct keys (1 M in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `txn_bytes < VALUE_SIZE` or `key_space == 0`.
    pub fn new(
        txn_bytes: usize,
        total_kvs: u64,
        key_space: u64,
        order: KeyOrder,
        seed: u64,
    ) -> Self {
        assert!(
            txn_bytes >= VALUE_SIZE,
            "transaction smaller than one value"
        );
        assert!(key_space > 0, "empty key space");
        DbBench {
            key_space,
            kvs_per_txn: txn_bytes / VALUE_SIZE,
            remaining_kvs: total_kvs,
            order,
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Key/value pairs per transaction.
    pub fn kvs_per_txn(&self) -> usize {
        self.kvs_per_txn
    }
}

impl Iterator for DbBench {
    type Item = WriteBatch;

    fn next(&mut self) -> Option<WriteBatch> {
        if self.remaining_kvs == 0 {
            return None;
        }
        let n = (self.kvs_per_txn as u64).min(self.remaining_kvs);
        self.remaining_kvs -= n;
        let keys = (0..n)
            .map(|_| match self.order {
                KeyOrder::Sequential => {
                    let k = self.next_seq % self.key_space;
                    self.next_seq += 1;
                    k
                }
                KeyOrder::Random => self.rng.gen_range(0..self.key_space),
            })
            .collect();
        Some(WriteBatch { keys })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exact_total() {
        let bench = DbBench::new(4096, 1000, 1 << 20, KeyOrder::Sequential, 1);
        let total: usize = bench.map(|b| b.keys.len()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn batch_size_matches_txn_bytes() {
        let bench = DbBench::new(64 * 1024, 10_000, 1 << 20, KeyOrder::Random, 1);
        assert_eq!(bench.kvs_per_txn(), 512);
        let first = DbBench::new(64 * 1024, 10_000, 1 << 20, KeyOrder::Random, 1)
            .next()
            .unwrap();
        assert_eq!(first.keys.len(), 512);
    }

    #[test]
    fn sequential_keys_are_monotone_and_wrap() {
        let mut bench = DbBench::new(4096, 100, 10, KeyOrder::Sequential, 1);
        let b = bench.next().unwrap();
        assert_eq!(&b.keys[..12], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1]);
    }

    #[test]
    fn random_keys_stay_in_space() {
        let bench = DbBench::new(4096, 5000, 100, KeyOrder::Random, 9);
        for batch in bench {
            assert!(batch.keys.iter().all(|&k| k < 100));
        }
    }

    #[test]
    fn values_are_key_derived() {
        assert_eq!(WriteBatch::value_for(5), WriteBatch::value_for(5));
        assert_ne!(WriteBatch::value_for(5), WriteBatch::value_for(6));
    }

    #[test]
    fn deterministic_by_seed() {
        let a: Vec<WriteBatch> = DbBench::new(4096, 320, 1000, KeyOrder::Random, 3).collect();
        let b: Vec<WriteBatch> = DbBench::new(4096, 320, 1000, KeyOrder::Random, 3).collect();
        assert_eq!(a, b);
    }
}
