//! MixGraph driver and the §7.2 consistency torture test.

use std::cell::RefCell;
use std::rc::Rc;

use msnap_sim::{CostTracker, LatencyStats, Nanos, Scheduler, StepOutcome, Vt};
use msnap_workloads::mixgraph::{MixGraph, MixOp};

use crate::Kv;

/// MixGraph run parameters (paper: 20 M keys, 12 threads; scale down for
/// CI).
#[derive(Debug, Clone)]
pub struct MixGraphConfig {
    /// Distinct keys (the store is pre-filled with all of them).
    pub keys: u64,
    /// Requests each virtual thread executes.
    pub ops_per_thread: u64,
    /// Number of virtual threads.
    pub threads: u32,
    /// RNG seed.
    pub seed: u64,
}

/// Results of a MixGraph run.
#[derive(Debug, Clone)]
pub struct MixGraphReport {
    /// Total requests executed.
    pub ops: u64,
    /// Virtual wall-clock time (latest thread finish).
    pub wall: Nanos,
    /// Throughput in thousands of requests per virtual second.
    pub kops: f64,
    /// Per-request latency distribution.
    pub latency: LatencyStats,
    /// Merged CPU attribution across all threads (Table 1 rows).
    pub costs: CostTracker,
}

/// Pre-fills the store with every key (batched MultiPuts).
pub fn fill<K: Kv>(kv: &mut K, vt: &mut Vt, keys: u64, batch: usize) {
    let mut pairs = Vec::with_capacity(batch);
    for key in 0..keys {
        pairs.push((key, MixOp::value_bytes(key).to_vec()));
        if pairs.len() == batch {
            kv.multi_put(vt, &pairs)
                .expect("the fill workload runs without fault injection");
            pairs.clear();
        }
    }
    if !pairs.is_empty() {
        kv.multi_put(vt, &pairs)
            .expect("the fill workload runs without fault injection");
    }
}

/// Runs MixGraph over `cfg.threads` virtual threads sharing `kv`.
/// `start` is the instant the benchmark begins (pass the fill thread's
/// clock so requests do not race the fill phase's device backlog).
pub fn run_mixgraph<K: Kv + 'static>(
    kv: Rc<RefCell<K>>,
    cfg: &MixGraphConfig,
    start: Nanos,
) -> MixGraphReport {
    let latency = Rc::new(RefCell::new(LatencyStats::new()));
    let mut sched = Scheduler::new();
    for t in 0..cfg.threads {
        let kv = Rc::clone(&kv);
        let latency = Rc::clone(&latency);
        let mut gen = MixGraph::new(cfg.keys, cfg.seed.wrapping_add(t as u64));
        let mut remaining = cfg.ops_per_thread;
        sched.spawn(move |vt: &mut Vt| {
            vt.wait_until(start);
            let t0 = vt.now();
            // Request handling outside the storage paths (RocksDB's
            // dispatch, comparators, statistics).
            vt.charge(msnap_sim::Category::OtherUserspace, Nanos::from_ns(1_200));
            match gen.next_op() {
                MixOp::Get(key) => {
                    let _ = kv.borrow_mut().get(vt, key);
                }
                MixOp::Put(key) => {
                    kv.borrow_mut()
                        .put(vt, key, &MixOp::value_bytes(key))
                        .expect("the MixGraph workload runs without fault injection");
                }
                MixOp::Seek(key, len) => {
                    let _ = kv.borrow_mut().seek(vt, key, len);
                }
            }
            latency.borrow_mut().record(vt.now() - t0);
            remaining -= 1;
            if remaining == 0 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        });
    }
    let threads = sched.run_to_completion();
    let end = threads
        .iter()
        .map(|vt| vt.now())
        .max()
        .unwrap_or(Nanos::ZERO);
    let wall = end.saturating_sub(start);
    let mut costs = CostTracker::new();
    for vt in &threads {
        costs.merge(vt.costs());
    }
    let ops = cfg.ops_per_thread * cfg.threads as u64;
    MixGraphReport {
        ops,
        wall,
        kops: ops as f64 / wall.as_secs_f64() / 1_000.0,
        latency: Rc::try_unwrap(latency)
            .expect("driver holds the only reference")
            .into_inner(),
        costs,
    }
}

/// Outcome of the §7.2 torture test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TortureOutcome {
    /// Increment transactions whose commit completed by the crash point.
    pub acked_txns: u64,
    /// Increments applied per transaction.
    pub increments_per_txn: u64,
    /// Sum of all counters recovered after the crash.
    pub recovered_sum: u64,
}

impl TortureOutcome {
    /// The invariant the paper verifies: the recovered counter sum equals
    /// the increments implied by acknowledged transactions.
    pub fn is_consistent(&self) -> bool {
        self.recovered_sum == self.acked_txns * self.increments_per_txn
    }
}

/// The consistency torture test of §7.2 on the MemSnap variant:
/// initialize `keys` zeroed counters, run `threads` virtual threads each
/// committing `txns_per_thread` transactions that increment
/// `keys_per_txn` random counters, crash at `crash_fraction` of the run,
/// restore, and compare the recovered sum with acknowledged work.
pub fn torture_memsnap(
    keys: u64,
    threads: u32,
    txns_per_thread: u64,
    keys_per_txn: u64,
    crash_fraction: f64,
    seed: u64,
) -> TortureOutcome {
    use crate::MemSnapKv;
    use msnap_disk::{Disk, DiskConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut boot = Vt::new(u32::MAX);
    let mut kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), keys * 4 + 64, &mut boot);
    // Initialize all counters to zero, committed before the benchmark.
    let pairs: Vec<(u64, Vec<u8>)> = (0..keys)
        .map(|k| (k, 0u64.to_le_bytes().to_vec()))
        .collect();
    for chunk in pairs.chunks(256) {
        kv.multi_put(&mut boot, chunk)
            .expect("the fill workload runs without fault injection");
    }
    let fill_done = boot.now();

    let kv = Rc::new(RefCell::new(kv));
    let commits: Rc<RefCell<Vec<Nanos>>> = Rc::new(RefCell::new(Vec::new()));
    let mut sched = Scheduler::new();
    for t in 0..threads {
        let kv = Rc::clone(&kv);
        let commits = Rc::clone(&commits);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
        let mut remaining = txns_per_thread;
        sched.spawn(move |vt: &mut Vt| {
            vt.wait_until(fill_done);
            let mut kv = kv.borrow_mut();
            let mut batch = Vec::with_capacity(keys_per_txn as usize);
            let mut picked = std::collections::HashSet::new();
            while picked.len() < keys_per_txn as usize {
                picked.insert(rng.gen_range(0..keys));
            }
            for key in picked {
                let current = kv
                    .get(vt, key)
                    .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                    .unwrap_or(0);
                batch.push((key, (current + 1).to_le_bytes().to_vec()));
            }
            kv.multi_put(vt, &batch)
                .expect("the counter workload runs without fault injection");
            commits.borrow_mut().push(vt.now());
            remaining -= 1;
            if remaining == 0 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        });
    }
    let finished = sched.run_to_completion();
    let end = finished.iter().map(|vt| vt.now()).max().unwrap();

    // Crash somewhere inside the run (the device's rollback journal
    // reconstructs the exact durable image at that instant).
    let span = end.saturating_sub(fill_done).as_ns() as f64;
    let crash_at = fill_done + Nanos::from_ns((span * crash_fraction) as u64);
    let acked_txns = commits.borrow().iter().filter(|&&c| c <= crash_at).count() as u64;

    let kv = Rc::try_unwrap(kv)
        .expect("driver holds the only reference")
        .into_inner();
    let disk = kv.crash(crash_at);

    let mut vt2 = Vt::new(u32::MAX - 1);
    let mut restored = MemSnapKv::restore(disk, &mut vt2);
    let all = restored.seek(&mut vt2, 0, keys as usize + 8);
    let recovered_sum: u64 = all
        .iter()
        .map(|(_, v)| u64::from_le_bytes(v[..8].try_into().unwrap()))
        .sum();

    TortureOutcome {
        acked_txns,
        increments_per_txn: keys_per_txn,
        recovered_sum,
    }
}

/// Cross-thread group-commit driver parameters (KV variant of the LiteDB
/// ablation: same sweep axes, MultiPut transactions instead of B-tree
/// transactions).
#[derive(Debug, Clone)]
pub struct KvGroupConfig {
    /// Writer threads.
    pub threads: u32,
    /// MultiPut transactions each thread commits.
    pub txns_per_thread: u64,
    /// Keys per MultiPut.
    pub keys_per_txn: u64,
    /// Coalescing window to configure on the store.
    pub window: Nanos,
    /// `true` routes commits through the group-commit path; `false` runs
    /// the uncoalesced per-thread `multi_put` baseline.
    pub coalesced: bool,
}

/// Results of a [`run_kv_group_commit`] run.
#[derive(Debug, Clone)]
pub struct KvGroupReport {
    /// MultiPut transactions committed.
    pub txns: u64,
    /// Virtual wall-clock time (latest thread finish).
    pub wall: Nanos,
    /// Enqueue-to-durable latency per transaction.
    pub commit_latency: LatencyStats,
    /// Device write submissions.
    pub disk_writes: u64,
    /// Merged submissions the coalescer reported to the device.
    pub merged_submissions: u64,
    /// Commits carried by those merged submissions.
    pub merged_parts: u64,
    /// Mean device write-queue occupancy at submission.
    pub avg_queue_depth: f64,
}

/// Runs `cfg.threads` writer threads over one shared
/// [`MemSnapKv`](crate::MemSnapKv),
/// committing through the cross-thread group-commit path (or uncoalesced
/// MultiPuts for the ablation baseline). Thread `t` writes keys
/// `t*1_000_000 + i` so transactions never collide.
///
/// All threads share the skiplist region, so a coalesced batch is one
/// delta μCheckpoint carrying several MultiPuts; the eager page copy at
/// enqueue is what lets the next thread keep inserting into the same
/// region while the window is open.
pub fn run_kv_group_commit(cfg: &KvGroupConfig) -> KvGroupReport {
    use crate::MemSnapKv;
    use msnap_disk::{Disk, DiskConfig};

    let mut vt0 = Vt::new(u32::MAX); // setup thread
    let mut kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), 1 << 15, &mut vt0);
    kv.memsnap_mut().set_coalesce_window(cfg.window);
    // Dirty pages belong to their first writer: persist the setup
    // thread's pages (the skiplist head) so the workers' per-thread
    // enqueues start from a clean slate.
    kv.multi_put(&mut vt0, &[])
        .expect("setup runs without fault injection");
    kv.memsnap_mut().reset_disk_stats();

    let kv = Rc::new(RefCell::new(kv));
    let latency = Rc::new(RefCell::new(LatencyStats::new()));
    let mut sched = Scheduler::new();
    for t in 0..cfg.threads {
        let kv = Rc::clone(&kv);
        let latency = Rc::clone(&latency);
        let cfg = cfg.clone();
        // One transaction phase per atomic step — the inserts and enqueue
        // together, then each poll on its own — so other threads' enqueues
        // land inside the open window.
        let mut txn = 0u64;
        let mut pending: Option<(memsnap::CommitTicket, Nanos)> = None;
        sched.spawn(move |vt: &mut Vt| {
            let mut kv = kv.borrow_mut();
            if let Some((ticket, t0)) = pending {
                match kv
                    .persist_poll(vt, ticket)
                    .expect("driver runs without fault injection")
                {
                    true => {
                        latency.borrow_mut().record(vt.now() - t0);
                        pending = None;
                        txn += 1;
                    }
                    false => return StepOutcome::Continue,
                }
            }
            if txn >= cfg.txns_per_thread {
                return StepOutcome::Done;
            }
            let t0 = vt.now();
            let base = t as u64 * 1_000_000 + txn * cfg.keys_per_txn;
            let pairs: Vec<(u64, Vec<u8>)> = (0..cfg.keys_per_txn)
                .map(|k| (base + k, MixOp::value_bytes(base + k).to_vec()))
                .collect();
            if cfg.coalesced {
                let ticket = kv
                    .multi_put_enqueue(vt, &pairs)
                    .expect("driver runs without fault injection");
                pending = Some((ticket, t0));
            } else {
                kv.multi_put(vt, &pairs)
                    .expect("driver runs without fault injection");
                latency.borrow_mut().record(vt.now() - t0);
                txn += 1;
            }
            StepOutcome::Continue
        });
    }
    let vts = sched.run_to_completion();
    let wall = vts.iter().map(|vt| vt.now()).max().unwrap_or(Nanos::ZERO);

    let kv = Rc::try_unwrap(kv).expect("all threads done").into_inner();
    let disk = kv.memsnap().disk().stats();
    let commit_latency = latency.borrow().clone();
    KvGroupReport {
        txns: cfg.threads as u64 * cfg.txns_per_thread,
        wall,
        commit_latency,
        disk_writes: disk.writes(),
        merged_submissions: disk.merged_submissions(),
        merged_parts: disk.merged_parts(),
        avg_queue_depth: disk.avg_queue_depth(),
    }
}

/// Results of the snapshot-scan experiment ([`run_snapshot_scan`]).
#[derive(Debug, Clone)]
pub struct SnapshotScanReport {
    /// Keys committed before the snapshot was pinned.
    pub keys_at_snapshot: u64,
    /// Keys inserted or overwritten after the snapshot.
    pub churn_keys: u64,
    /// Entries the snapshot scan returned.
    pub scanned: u64,
    /// Whether the scan saw exactly the pre-snapshot state: every old
    /// key with its original value, none of the churn.
    pub point_in_time: bool,
}

/// The snapshot-scan experiment: fill a
/// [`MemSnapKv`](crate::MemSnapKv), pin a retained
/// snapshot, keep writing (new keys *and* overwrites of old ones), then
/// scan the snapshot. The scan must see the exact pre-churn state —
/// RocksDB's long-running-iterator use case, but against a durable
/// retained epoch instead of an in-memory sequence number.
pub fn run_snapshot_scan(keys: u64, churn: u64) -> SnapshotScanReport {
    use crate::MemSnapKv;
    use msnap_disk::{Disk, DiskConfig};

    let mut vt = Vt::new(u32::MAX);
    let mut kv = MemSnapKv::format(
        Disk::new(DiskConfig::paper()),
        (keys + churn) * 2 + 64,
        &mut vt,
    );
    fill(&mut kv, &mut vt, keys, 256);
    kv.snapshot(&mut vt, "scan")
        .expect("fresh catalog has room");

    // Churn: overwrite the first half of the old keys with poison values
    // and insert brand-new keys past the old range.
    for k in 0..churn {
        let (key, val) = if k % 2 == 0 && k / 2 < keys {
            (k / 2, vec![0xAA; 24])
        } else {
            (keys + k, MixOp::value_bytes(keys + k).to_vec())
        };
        kv.put(&mut vt, key, &val)
            .expect("the churn workload runs without fault injection");
    }

    let scanned = kv
        .snapshot_scan(&mut vt, "scan")
        .expect("the snapshot is retained");
    let point_in_time = scanned.len() as u64 == keys
        && scanned
            .iter()
            .enumerate()
            .all(|(i, (k, v))| *k == i as u64 && v[..] == MixOp::value_bytes(*k)[..]);
    SnapshotScanReport {
        keys_at_snapshot: keys,
        churn_keys: churn,
        scanned: scanned.len() as u64,
        point_in_time,
    }
}

/// Parameters of the replicated-KV failover experiment
/// ([`run_replicated_kv`]).
#[derive(Debug, Clone)]
pub struct KvReplConfig {
    /// MultiPut batches committed (and replicated) before the primary is
    /// killed.
    pub batches_before_crash: u64,
    /// Batches the *promoted* primary commits afterwards, with the old
    /// primary re-attached as a replica under this load.
    pub extra_batches: u64,
    /// Keys per MultiPut batch.
    pub keys_per_batch: u64,
    /// Network model of the replication links.
    pub net: msnap_sim::NetConfig,
    /// Replication engine tuning.
    pub repl: msnap_repl::ReplConfig,
}

/// Results of one [`run_replicated_kv`] run.
#[derive(Debug, Clone)]
pub struct KvReplReport {
    /// Batches the old primary committed before it was killed (one more
    /// was committed behind the partition and must not survive failover).
    pub committed_batches: u64,
    /// Whole batches visible on the promoted primary.
    pub visible_batches: u64,
    /// Whether the promoted store is an exact batch prefix: every key of
    /// the visible batches present with the right value, no key of any
    /// later batch, and no torn batch.
    pub prefix_consistent: bool,
    /// Promotion-to-first-read latency on the promoted node's clock.
    pub failover_latency: Nanos,
    /// Full-image ships needed to re-sync the re-attached old primary.
    pub reattach_full_syncs: u64,
    /// Delta ships to the re-attached old primary.
    pub reattach_delta_syncs: u64,
    /// Whether the old primary converged byte for byte with the promoted
    /// primary (its divergent unacknowledged batch fenced away).
    pub reattach_converged: bool,
    /// Live keys on the promoted primary at the end.
    pub final_len: u64,
}

/// One replicated MultiPut batch; throttles on the engine's lag budget.
fn replicated_batch(
    kv: &mut crate::MemSnapKv,
    vt: &mut Vt,
    eng: &mut msnap_repl::ReplEngine,
    batch: u64,
    keys_per_batch: u64,
) {
    let pairs: Vec<(u64, Vec<u8>)> = (0..keys_per_batch)
        .map(|k| {
            let key = batch * keys_per_batch + k;
            (key, MixOp::value_bytes(key).to_vec())
        })
        .collect();
    kv.multi_put(vt, &pairs)
        .expect("the replication workload runs without fault injection");
    let step = eng.config().retransmit_timeout / 2;
    let mut tick = eng
        .tick(vt, kv.memsnap_mut())
        .expect("the replication workload runs without fault injection");
    while tick.throttled {
        vt.advance(step);
        tick = eng
            .tick(vt, kv.memsnap_mut())
            .expect("the replication workload runs without fault injection");
    }
}

/// The KV failover experiment: a [`MemSnapKv`](crate::MemSnapKv) primary
/// replicates MultiPut batches to a standby, the primary is killed with
/// one batch committed locally but unacknowledged behind a partition,
/// and the standby is promoted. The promoted store must be an exact
/// batch prefix of the primary's history (crash-consistent failover: a
/// promoted replica equals some committed primary epoch, and the
/// partitioned batch is gone). The old primary's crashed device then
/// re-attaches as a replica and must converge with the new primary while
/// it keeps committing batches.
pub fn run_replicated_kv(cfg: &KvReplConfig) -> KvReplReport {
    use crate::MemSnapKv;
    use msnap_disk::{Disk, DiskConfig};

    let mut vt = Vt::new(0);
    let capacity = (cfg.batches_before_crash + cfg.extra_batches + 2) * cfg.keys_per_batch * 2 + 64;
    let mut kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), capacity, &mut vt);
    let mut eng = msnap_repl::ReplEngine::new(cfg.repl);
    eng.add_replica("standby", cfg.net)
        .expect("the engine is fresh");
    eng.settle(&mut vt, kv.memsnap_mut(), Nanos::from_secs(120))
        .expect("the replication workload runs without fault injection");

    for batch in 0..cfg.batches_before_crash {
        replicated_batch(&mut kv, &mut vt, &mut eng, batch, cfg.keys_per_batch);
    }
    eng.settle(&mut vt, kv.memsnap_mut(), Nanos::from_secs(120))
        .expect("the replication workload runs without fault injection");

    // Kill the primary mid-stream: one more batch commits locally but its
    // delta never crosses the partitioned link.
    eng.set_partitioned("standby", true)
        .expect("the standby is attached");
    replicated_batch(
        &mut kv,
        &mut vt,
        &mut eng,
        cfg.batches_before_crash,
        cfg.keys_per_batch,
    );
    let old_disk = kv.crash(vt.now());

    // Failover: promote the standby and boot a new primary from its
    // fenced device.
    let promo = eng.promote("standby").expect("the standby is attached");
    let mut vt2 = promo.vt;
    let promoted_at = vt2.now();
    let mut kv2 = MemSnapKv::restore(promo.disk, &mut vt2);
    let probe = cfg.keys_per_batch.saturating_sub(1);
    let first_read = kv2.get(&mut vt2, probe);
    let failover_latency = vt2.now().saturating_sub(promoted_at);

    // Prefix consistency: the promoted store holds exactly the first N
    // batches for some N ≤ committed — never a torn batch, never the
    // partitioned one.
    let len = kv2.len() as u64;
    let visible_batches = len / cfg.keys_per_batch;
    let mut prefix_consistent = len.is_multiple_of(cfg.keys_per_batch)
        && visible_batches <= cfg.batches_before_crash
        && first_read.as_deref() == Some(&MixOp::value_bytes(probe)[..]);
    for key in 0..visible_batches * cfg.keys_per_batch {
        prefix_consistent &=
            kv2.get(&mut vt2, key).as_deref() == Some(&MixOp::value_bytes(key)[..]);
    }
    prefix_consistent &= kv2
        .get(&mut vt2, visible_batches * cfg.keys_per_batch)
        .is_none();

    // Re-attach the old primary's crashed device as a replica of the new
    // primary; its unacknowledged batch is divergent history the engine
    // must fence away before deltas resume.
    let mut eng2 = msnap_repl::ReplEngine::new(cfg.repl);
    let net2 = msnap_sim::NetConfig {
        seed: cfg.net.seed.wrapping_add(1),
        ..cfg.net
    };
    eng2.attach_replica("old-primary", net2, old_disk)
        .expect("the engine is fresh");

    // The promoted primary keeps taking writes while the old one
    // re-syncs under load.
    for extra in 0..cfg.extra_batches {
        replicated_batch(
            &mut kv2,
            &mut vt2,
            &mut eng2,
            cfg.batches_before_crash + 1 + extra,
            cfg.keys_per_batch,
        );
    }
    let settled = eng2
        .settle(&mut vt2, kv2.memsnap_mut(), Nanos::from_secs(120))
        .expect("the replication workload runs without fault injection");

    // Byte-for-byte comparison of the re-attached replica against the
    // new primary's final committed image.
    let ms = kv2.memsnap_mut();
    let md = ms.region("memtable").expect("the region exists");
    let object = ms
        .region_object_name(md)
        .expect("the region exists")
        .to_string();
    let live = ms.object_epoch(&object).expect("the object exists");
    ms.msnap_snapshot_object(&mut vt2, &object, "kfinal")
        .expect("the replication workload runs without fault injection");
    let pages = {
        let (store, pdisk) = ms.replication_parts();
        store
            .snapshot_diff(&mut vt2, pdisk, None, "kfinal")
            .expect("the snapshot is retained")
    };
    let mut converged = settled
        && eng2
            .replica("old-primary")
            .expect("attached")
            .epoch(&object)
            == live;
    let mut want = vec![0u8; memsnap::PAGE_SIZE];
    let mut got = vec![0u8; memsnap::PAGE_SIZE];
    for &page in &pages {
        {
            let (store, pdisk) = kv2.memsnap_mut().replication_parts();
            store
                .read_page_at(&mut vt2, pdisk, "kfinal", page, &mut want)
                .expect("the snapshot is retained");
        }
        eng2.replica_mut("old-primary")
            .expect("attached")
            .read_page(&object, page, &mut got)
            .expect("the replica was synced");
        converged &= want == got;
    }
    kv2.memsnap_mut()
        .msnap_snapshot_delete(&mut vt2, "kfinal")
        .expect("the snapshot is retained");
    let m = eng2.link_metrics("old-primary").expect("attached");

    KvReplReport {
        committed_batches: cfg.batches_before_crash,
        visible_batches,
        prefix_consistent,
        failover_latency,
        reattach_full_syncs: m.full_syncs,
        reattach_delta_syncs: m.delta_syncs,
        reattach_converged: converged,
        final_len: kv2.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuroraKv, BaselineKv, MemSnapKv};
    use msnap_disk::{Disk, DiskConfig};

    fn small_cfg() -> MixGraphConfig {
        MixGraphConfig {
            keys: 2_000,
            ops_per_thread: 150,
            threads: 4,
            seed: 42,
        }
    }

    #[test]
    fn mixgraph_runs_on_memsnap() {
        let mut vt = Vt::new(u32::MAX);
        let mut kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), 16_384, &mut vt);
        fill(&mut kv, &mut vt, 2_000, 256);
        let report = run_mixgraph(Rc::new(RefCell::new(kv)), &small_cfg(), vt.now());
        assert_eq!(report.ops, 600);
        assert!(report.kops > 0.0);
        assert_eq!(report.latency.count(), 600);
    }

    #[test]
    fn snapshot_scan_sees_the_pinned_state_through_churn() {
        let report = run_snapshot_scan(64, 48);
        assert_eq!(report.scanned, 64);
        assert!(
            report.point_in_time,
            "the retained snapshot must show exactly the pre-churn image"
        );
    }

    #[test]
    fn snapshot_scan_coexists_with_live_reads() {
        let mut vt = Vt::new(u32::MAX);
        let mut kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), 512, &mut vt);
        fill(&mut kv, &mut vt, 16, 8);
        kv.snapshot(&mut vt, "s").unwrap();
        kv.put(&mut vt, 3, &[0xEE; 8]).unwrap();
        // The live store shows the overwrite; the snapshot the original.
        assert_eq!(kv.get(&mut vt, 3).unwrap(), vec![0xEE; 8]);
        let snap = kv.snapshot_scan(&mut vt, "s").unwrap();
        assert_eq!(snap[3].1[..], MixOp::value_bytes(3)[..]);
        kv.snapshot_delete(&mut vt, "s").unwrap();
        assert!(kv.snapshot_scan(&mut vt, "s").is_err());
    }

    /// The headline Table 9 ordering: memsnap > baseline > aurora
    /// throughput.
    #[test]
    fn table9_throughput_ordering() {
        let cfg = small_cfg();

        let mut vt = Vt::new(u32::MAX);
        let mut kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), 16_384, &mut vt);
        fill(&mut kv, &mut vt, cfg.keys, 256);
        let memsnap = run_mixgraph(Rc::new(RefCell::new(kv)), &cfg, vt.now());

        let mut vt = Vt::new(u32::MAX);
        let mut kv = BaselineKv::format(Disk::new(DiskConfig::paper()), 8 << 20, &mut vt);
        fill(&mut kv, &mut vt, cfg.keys, 256);
        let baseline = run_mixgraph(Rc::new(RefCell::new(kv)), &cfg, vt.now());

        let mut vt = Vt::new(u32::MAX);
        let mut kv = AuroraKv::format(Disk::new(DiskConfig::paper()), 16_384, cfg.threads, &mut vt);
        fill(&mut kv, &mut vt, cfg.keys, 256);
        let aurora = run_mixgraph(Rc::new(RefCell::new(kv)), &cfg, vt.now());

        assert!(
            memsnap.kops > baseline.kops,
            "memsnap {:.1} kops vs baseline {:.1} kops",
            memsnap.kops,
            baseline.kops
        );
        assert!(
            baseline.kops > aurora.kops,
            "baseline {:.1} kops vs aurora {:.1} kops",
            baseline.kops,
            aurora.kops
        );
        // Aurora's gap should be large (paper: 4x vs memsnap).
        assert!(
            memsnap.kops / aurora.kops > 2.0,
            "memsnap/aurora ratio {:.1}",
            memsnap.kops / aurora.kops
        );
    }

    #[test]
    fn kv_group_commit_coalesces_multi_thread_multiputs() {
        let base = KvGroupConfig {
            threads: 4,
            txns_per_thread: 8,
            keys_per_txn: 4,
            window: Nanos::from_us(32),
            coalesced: true,
        };
        let grouped = run_kv_group_commit(&base);
        let solo = run_kv_group_commit(&KvGroupConfig {
            coalesced: false,
            ..base.clone()
        });

        assert_eq!(grouped.txns, 32);
        assert_eq!(grouped.commit_latency.count(), 32);
        // All threads share one skiplist region, so a shared batch is one
        // delta μCheckpoint carrying several MultiPuts — the coalescer
        // reports the merge to the device.
        assert!(
            grouped.merged_submissions > 0 && grouped.merged_parts > grouped.merged_submissions,
            "threads actually shared batches: {} batches, {} parts",
            grouped.merged_submissions,
            grouped.merged_parts
        );
        assert!(
            grouped.disk_writes < solo.disk_writes,
            "coalescing reduces device submissions: {} grouped vs {} solo",
            grouped.disk_writes,
            solo.disk_writes
        );
    }

    #[test]
    fn replicated_kv_promotes_a_prefix_and_resyncs_the_old_primary() {
        let report = run_replicated_kv(&KvReplConfig {
            batches_before_crash: 6,
            extra_batches: 4,
            keys_per_batch: 8,
            net: msnap_sim::NetConfig::calm(23),
            repl: msnap_repl::ReplConfig::default(),
        });
        assert_eq!(report.visible_batches, 6, "settled batches all survive");
        assert!(
            report.prefix_consistent,
            "failover must surface an exact committed batch prefix: {report:?}"
        );
        assert!(report.failover_latency > Nanos::ZERO);
        assert!(
            report.reattach_converged,
            "the old primary must converge with the promoted one: {report:?}"
        );
        assert!(report.reattach_delta_syncs > 0, "{report:?}");
        assert_eq!(report.final_len, (6 + 4) * 8);
    }

    #[test]
    fn replicated_kv_survives_a_lossy_link() {
        let report = run_replicated_kv(&KvReplConfig {
            batches_before_crash: 4,
            extra_batches: 2,
            keys_per_batch: 4,
            net: msnap_sim::NetConfig::lossy(31),
            repl: msnap_repl::ReplConfig::default(),
        });
        assert!(report.prefix_consistent, "{report:?}");
        assert!(report.reattach_converged, "{report:?}");
    }

    #[test]
    fn torture_test_is_consistent_at_various_crash_points() {
        for crash_fraction in [0.25, 0.5, 0.9] {
            let outcome = torture_memsnap(200, 4, 10, 5, crash_fraction, 7);
            assert!(
                outcome.is_consistent(),
                "crash at {crash_fraction}: {outcome:?}"
            );
            assert!(outcome.acked_txns > 0, "crash too early to be interesting");
        }
    }
}
