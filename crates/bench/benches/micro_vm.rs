//! Criterion microbenchmarks (real wall-clock) for the VM subsystem:
//! fault dispatch, tracked writes, and trace-buffer protection resets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use msnap_sim::Vt;
use msnap_vm::{ResetStrategy, TrackMode, Vm, PAGE_SIZE};

const VA: u64 = 0x7000_0000_0000;

fn tracked_vm(pages: u64) -> (Vm, msnap_vm::AsId) {
    let mut vm = Vm::new();
    let space = vm.create_space();
    let obj = vm.create_object(pages);
    vm.map(space, obj, VA, TrackMode::Tracked).unwrap();
    (vm, space)
}

fn bench_faults(c: &mut Criterion) {
    c.bench_function("vm_first_write_fault_256", |b| {
        b.iter_batched(
            || tracked_vm(256),
            |(mut vm, space)| {
                let mut vt = Vt::new(0);
                let t = vt.id();
                for p in 0..256u64 {
                    vm.write(&mut vt, space, t, VA + p * PAGE_SIZE as u64, &[1]);
                }
                vm
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("vm_warm_write_256", |b| {
        b.iter_batched(
            || {
                let (mut vm, space) = tracked_vm(256);
                let mut vt = Vt::new(0);
                let t = vt.id();
                for p in 0..256u64 {
                    vm.write(&mut vt, space, t, VA + p * PAGE_SIZE as u64, &[1]);
                }
                (vm, space)
            },
            |(mut vm, space)| {
                let mut vt = Vt::new(1);
                let t = vt.id();
                for p in 0..256u64 {
                    vm.write(&mut vt, space, t, VA + p * PAGE_SIZE as u64, &[2]);
                }
                vm
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_reset(c: &mut Criterion) {
    c.bench_function("vm_trace_buffer_reset_256", |b| {
        b.iter_batched(
            || {
                let (mut vm, space) = tracked_vm(256);
                let mut vt = Vt::new(0);
                let t = vt.id();
                for p in 0..256u64 {
                    vm.write(&mut vt, space, t, VA + p * PAGE_SIZE as u64, &[1]);
                }
                let dirty = vm.take_dirty(t, None);
                (vm, dirty)
            },
            |(mut vm, dirty)| {
                let mut vt = Vt::new(1);
                vm.reset_protection(&mut vt, &dirty, ResetStrategy::TraceBuffer);
                vm
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_faults, bench_reset);
criterion_main!(benches);
