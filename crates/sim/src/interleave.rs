//! Seeded pseudo-random interleaving of virtual threads.
//!
//! The conservative [`Scheduler`](crate::Scheduler) always steps the thread
//! with the earliest clock, which makes timings composable but explores
//! exactly *one* interleaving per workload. Concurrency proofs need the
//! opposite: many different thread schedules, each reproducible. The
//! [`InterleaveSched`] picks the next runnable thread with a seeded
//! xorshift generator, so a single `u64` seed names a complete schedule —
//! a failing linearizability or recovery check can be replayed exactly by
//! re-running its seed.
//!
//! Virtual clocks are *not* used for scheduling here: a thread whose clock
//! is far ahead may still be stepped before one that is behind. That is
//! deliberate — the scheduler explores logical interleavings of shared
//! in-memory state (lock-free index operations), where the adversary may
//! delay any thread arbitrarily between its atomic steps. Workloads that
//! submit disk IO should keep using the conservative scheduler, whose
//! clock ordering the device model relies on.
//!
//! # Example
//!
//! ```
//! use msnap_sim::{InterleaveSched, StepOutcome, Vt};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let trace = Rc::new(RefCell::new(Vec::new()));
//! let mut sched = InterleaveSched::new(42);
//! for t in 0..3u32 {
//!     let trace = Rc::clone(&trace);
//!     let mut left = 4;
//!     sched.spawn(move |_vt: &mut Vt| {
//!         trace.borrow_mut().push(t);
//!         left -= 1;
//!         if left == 0 { StepOutcome::Done } else { StepOutcome::Continue }
//!     });
//! }
//! sched.run_to_completion();
//! assert_eq!(trace.borrow().len(), 12); // every step ran, in seed order
//! ```

use crate::{Process, StepOutcome, Vt};

/// A seeded pseudo-random interleaving scheduler. See the module docs.
pub struct InterleaveSched {
    slots: Vec<Slot>,
    state: u64,
    schedule: Vec<u32>,
}

struct Slot {
    vt: Vt,
    process: Box<dyn Process>,
    done: bool,
}

impl InterleaveSched {
    /// Creates an empty scheduler whose schedule is a pure function of
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        // Splitmix the seed so adjacent seeds give unrelated schedules,
        // and so seed 0 is usable (xorshift state must be non-zero).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        InterleaveSched {
            slots: Vec::new(),
            state: z | 1,
            schedule: Vec::new(),
        }
    }

    /// Adds a virtual thread running `process`; ids are assigned in spawn
    /// order starting at zero.
    pub fn spawn<P: Process + 'static>(&mut self, process: P) {
        let id = self.slots.len() as u32;
        self.slots.push(Slot {
            vt: Vt::new(id),
            process: Box::new(process),
            done: false,
        });
    }

    /// One xorshift64* draw.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Runs until every process reports [`StepOutcome::Done`]; returns the
    /// final per-thread states. The schedule trace is discarded — callers
    /// that need it (replaying a failing proof by seed) use
    /// [`InterleaveSched::run_traced`] instead.
    pub fn run_to_completion(mut self) -> Vec<Vt> {
        self.run();
        self.slots.into_iter().map(|s| s.vt).collect()
    }

    /// Like [`InterleaveSched::run_to_completion`], but also returns the
    /// schedule trace: the thread id stepped at each scheduling decision.
    /// Two runs with the same seed and spawn sequence produce identical
    /// traces.
    pub fn run_traced(mut self) -> (Vec<Vt>, Vec<u32>) {
        self.run();
        let schedule = std::mem::take(&mut self.schedule);
        (self.slots.into_iter().map(|s| s.vt).collect(), schedule)
    }

    fn run(&mut self) {
        loop {
            let live: Vec<usize> = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.done)
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                break;
            }
            let pick = live[(self.next_u64() % live.len() as u64) as usize];
            self.schedule.push(pick as u32);
            let slot = &mut self.slots[pick];
            if slot.process.step(&mut slot.vt) == StepOutcome::Done {
                slot.done = true;
            }
        }
    }
}

impl std::fmt::Debug for InterleaveSched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterleaveSched")
            .field("threads", &self.slots.len())
            .field("decisions", &self.schedule.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn trace_of(seed: u64, threads: u32, steps: u32) -> Vec<u32> {
        let mut sched = InterleaveSched::new(seed);
        for _ in 0..threads {
            let mut left = steps;
            sched.spawn(move |_vt: &mut Vt| {
                left -= 1;
                if left == 0 {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            });
        }
        let (_, schedule) = sched.run_traced();
        schedule
    }

    #[test]
    fn schedule_is_deterministic_by_seed() {
        assert_eq!(trace_of(7, 4, 16), trace_of(7, 4, 16));
        assert_ne!(trace_of(7, 4, 16), trace_of(8, 4, 16));
    }

    #[test]
    fn every_thread_gets_all_its_steps() {
        let schedule = trace_of(3, 5, 9);
        assert_eq!(schedule.len(), 45);
        for t in 0..5u32 {
            assert_eq!(schedule.iter().filter(|&&x| x == t).count(), 9);
        }
    }

    #[test]
    fn done_threads_are_not_stepped_again() {
        // One long and one short thread: the short one must never appear
        // after its final step.
        let counts = Rc::new(RefCell::new([0u32; 2]));
        let mut sched = InterleaveSched::new(11);
        for (t, steps) in [(0usize, 40u32), (1, 2)] {
            let counts = Rc::clone(&counts);
            let mut left = steps;
            sched.spawn(move |_vt: &mut Vt| {
                counts.borrow_mut()[t] += 1;
                left -= 1;
                if left == 0 {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            });
        }
        sched.run_to_completion();
        assert_eq!(*counts.borrow(), [40, 2]);
    }

    #[test]
    fn seeds_explore_different_interleavings() {
        // Across a handful of seeds, at least two distinct schedules
        // appear (the space has 12!/(4!)^3 ≫ 5 members).
        let traces: Vec<Vec<u32>> = (0..5).map(|s| trace_of(s, 3, 4)).collect();
        assert!(traces.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn seed_zero_is_usable() {
        let schedule = trace_of(0, 2, 3);
        assert_eq!(schedule.len(), 6);
    }
}
