//! Figure 4: SQLite transaction latency (average and 99th percentile)
//! vs transaction size, MemSnap vs the WAL+checkpoint baseline.

use msnap_bench::{header, table, us};
use msnap_disk::{Disk, DiskConfig};
use msnap_fs::FsKind;
use msnap_litedb::drivers::{run_dbbench, DbbenchConfig, DbbenchReport};
use msnap_litedb::{FileBackend, LiteDb, MemSnapBackend};
use msnap_sim::Vt;
use msnap_workloads::dbbench::KeyOrder;

const KEY_SPACE: u64 = 65_536;

fn run(memsnap: bool, txn_bytes: usize, order: KeyOrder) -> DbbenchReport {
    let total_kvs = ((txn_bytes / 128) as u64 * 64).max(20_000);
    let mut vt = Vt::new(0);
    let mut db = if memsnap {
        let be = MemSnapBackend::format_with_capacity(
            Disk::new(DiskConfig::paper()),
            "bench.db",
            1 << 17,
            &mut vt,
        );
        LiteDb::new(Box::new(be), &mut vt)
    } else {
        let be = FileBackend::format(
            Disk::new(DiskConfig::paper()),
            FsKind::Ffs,
            "bench.db",
            &mut vt,
        );
        LiteDb::new(Box::new(be), &mut vt)
    };
    run_dbbench(
        &mut db,
        &mut vt,
        &DbbenchConfig {
            txn_bytes,
            total_kvs,
            key_space: KEY_SPACE,
            order,
            seed: 1,
        },
    )
}

fn main() {
    header(
        "Figure 4: SQLite transaction latency vs size (measured, us)",
        "dbbench over 64K keys; average and p99 per committed \
         transaction.",
    );
    for order in [KeyOrder::Sequential, KeyOrder::Random] {
        println!("\n-- {order:?} IO --");
        let mut rows = Vec::new();
        for txn_kib in [4usize, 16, 64, 256, 1024] {
            let ms = run(true, txn_kib * 1024, order);
            let fb = run(false, txn_kib * 1024, order);
            rows.push(vec![
                format!("{txn_kib} KiB"),
                us(ms.txn_latency.mean().as_us_f64()),
                us(ms.txn_latency.percentile(99.0).as_us_f64()),
                us(fb.txn_latency.mean().as_us_f64()),
                us(fb.txn_latency.percentile(99.0).as_us_f64()),
                format!(
                    "{:.1}x",
                    fb.txn_latency.mean().as_ns() as f64 / ms.txn_latency.mean().as_ns() as f64
                ),
            ]);
        }
        table(
            &[
                "txn size",
                "msnap avg",
                "msnap p99",
                "wal avg",
                "wal p99",
                "avg ratio",
            ],
            &rows,
        );
    }
    println!();
    println!(
        "Shape checks (paper): MemSnap is faster at every size with low \
         variance; the baseline's p99 is dominated by checkpoint stalls; \
         the gap is larger for random transactions."
    );
}
