//! Figure 1: cost of the three page read-protection strategies over
//! dirty sets of 4 KiB – 4 MiB inside a 1 GiB mapping.
//!
//! The baseline traverses the whole mapping's page tables; the per-page
//! variant walks the table once per dirty page; MemSnap's trace buffer
//! rewrites recorded PTEs directly.

use msnap_bench::{header, table, us};
use msnap_sim::Vt;
use msnap_vm::{ResetStrategy, TrackMode, Vm, PAGE_SIZE};

const VA: u64 = 0x7000_0000_0000;
const MAPPING_PAGES: u64 = 262_144; // 1 GiB

fn main() {
    header(
        "Figure 1: read-protection strategy cost (measured, us)",
        "1 GiB mapping; dirty pages scattered. Paper reports the trace \
         buffer 'reduces the cost of page protection to almost nothing'.",
    );

    let mut vm = Vm::new();
    let space = vm.create_space();
    let obj = vm.create_object(MAPPING_PAGES);
    vm.map(space, obj, VA, TrackMode::Tracked).unwrap();

    // Pre-fault the resident set so the page tables are fully built.
    let mut warm = Vt::new(9);
    let twarm = warm.id();
    for p in 0..MAPPING_PAGES {
        vm.write(&mut warm, space, twarm, VA + p * PAGE_SIZE as u64, &[1]);
    }
    let warm_dirty = vm.take_dirty(twarm, None);
    vm.reset_protection(&mut warm, &warm_dirty, ResetStrategy::TraceBuffer);

    let mut rows = Vec::new();
    for kib in [4usize, 16, 64, 256, 1024, 4096] {
        let pages = (kib * 1024 / PAGE_SIZE) as u64;
        let mut cells = vec![format!("{kib}")];
        for strategy in [
            ResetStrategy::FullTableScan,
            ResetStrategy::PerPageWalk,
            ResetStrategy::TraceBuffer,
        ] {
            let mut vt = Vt::new(1);
            let t = vt.id();
            for i in 0..pages {
                let page = (i * 7919 + 3) % MAPPING_PAGES;
                vm.write(&mut vt, space, t, VA + page * PAGE_SIZE as u64, &[1]);
            }
            let dirty = vm.take_dirty(t, None);
            let cost = vm.reset_protection(&mut vt, &dirty, strategy);
            cells.push(us(cost.as_us_f64()));
        }
        rows.push(cells);
    }
    table(
        &[
            "dirty KiB",
            "full-table scan",
            "per-page walk",
            "trace buffer",
        ],
        &rows,
    );
    println!();
    println!(
        "Shape checks: the scan is flat and expensive regardless of dirty \
         size; the walk scales with the dirty set at a high slope; the \
         trace buffer is cheapest everywhere."
    );
}
