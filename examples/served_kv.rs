//! A served key-value store: the msnap-serve front-end driven first at
//! the wire level, then at fleet scale with a mid-run failover.
//!
//! Act one speaks the datagram protocol by hand: one writer and one
//! subscriber connect to a replicated [`ServeNode`], the subscriber
//! watches a tenant's key range, and every committed μCheckpoint epoch
//! pushes an exact changed-key invalidation bundle — fed by snapshot
//! diffs, never by scanning the store.
//!
//! Act two runs the seeded oracle fleet from [`msnap_serve::harness`]:
//! 64 Zipfian clients, a primary crash mid-run, a replica promoted at a
//! cut boundary, and the oracle's verdict that no acknowledged write
//! was lost and every session re-homed.
//!
//! Run with: `cargo run --example served_kv`

use msnap_serve::harness::run;
use msnap_serve::wire::{decode_responses, encode_request};
use msnap_serve::{FleetConfig, Request, Response, RunConfig, ServeConfig, ServeNode};
use msnap_sim::{Nanos, NetConfig};

/// Advances the node `rounds` quanta, collecting every response each
/// port receives along the way.
fn pump(node: &mut ServeNode, now: &mut Nanos, rounds: u64) -> Vec<(usize, Response)> {
    let mut out = Vec::new();
    for _ in 0..rounds {
        *now += Nanos::from_us(100);
        node.step(*now).expect("node round");
        for port in 0..node.ports() {
            while let Some((_, dg)) = node.client_poll(port, *now) {
                for r in decode_responses(&dg).expect("valid datagram") {
                    out.push((port, r));
                }
            }
        }
    }
    out
}

fn main() {
    println!("== act one: the wire protocol, by hand ==");
    let cfg = ServeConfig {
        stripes: 2,
        ..ServeConfig::default()
    };
    let capacity = cfg.capacity();
    let mut node = ServeNode::format(cfg, 2, NetConfig::calm(42));
    node.add_replica("standby", NetConfig::calm(7))
        .expect("attach standby");
    let mut now = Nanos::ZERO;

    // Both connections say Hello; the writer is port 0, the watcher 1.
    for port in 0..2 {
        let dg = encode_request(&Request::Hello { staleness: 2 });
        node.client_send(port, now, dg);
    }
    let mut sessions = [0u64; 2];
    for (port, resp) in pump(&mut node, &mut now, 40) {
        if let Response::HelloOk { session, .. } = resp {
            sessions[port] = session;
        }
    }
    assert!(sessions[0] != 0 && sessions[1] != 0, "sessions granted");
    println!("two sessions open; tenant capacity is {capacity} keys");

    // The watcher subscribes to the low half of tenant "inventory".
    node.client_send(
        1,
        now,
        encode_request(&Request::Subscribe {
            session: sessions[1],
            req: 1,
            tenant: "inventory".into(),
            lo: 0,
            hi: capacity / 2,
        }),
    );
    pump(&mut node, &mut now, 40);

    // The writer puts three keys: two inside the watch window, one out.
    for (req, key) in [(1u64, 3u64), (2, 9), (3, capacity - 1)] {
        node.client_send(
            0,
            now,
            encode_request(&Request::Put {
                session: sessions[0],
                req,
                tenant: "inventory".into(),
                key,
                value: format!("item-{key}").into_bytes(),
            }),
        );
    }
    let mut acked = 0;
    let mut events = Vec::new();
    let mut seen_cuts = std::collections::BTreeSet::new();
    for (port, resp) in pump(&mut node, &mut now, 400) {
        match resp {
            Response::PutOk { epoch, .. } if port == 0 => {
                acked += 1;
                println!("  put acked in epoch {epoch} (durable + replica-applied)");
            }
            Response::Notify {
                cut_seq,
                events: ev,
                ..
            } if port == 1 => {
                // Bundles are retransmitted until acked (at-least-once
                // on the wire); a client dedups by cut sequence and
                // acks cumulatively.
                node.client_send(
                    1,
                    now,
                    encode_request(&Request::NotifyAck {
                        session: sessions[1],
                        cut_seq,
                    }),
                );
                if seen_cuts.insert(cut_seq) {
                    events.extend(ev);
                }
            }
            _ => {}
        }
    }
    assert_eq!(acked, 3, "all puts acknowledged");
    let invalidated: Vec<(u64, u64)> = events.iter().flat_map(|e| e.ranges.clone()).collect();
    println!("watch events: {events:?}");
    assert!(
        invalidated.iter().any(|&(lo, hi)| lo <= 3 && 3 < hi),
        "key 3 invalidated"
    );
    assert!(
        invalidated.iter().any(|&(lo, hi)| lo <= 9 && 9 < hi),
        "key 9 invalidated"
    );
    assert!(
        invalidated.iter().all(|&(_, hi)| hi <= capacity / 2),
        "nothing outside the watch window leaks in"
    );
    println!(
        "subscriber saw {} invalidation event(s), clipped to its window, \
         pushed at cut boundaries ✓",
        events.len()
    );

    // A read after the invalidation: the value is there, and bounded
    // staleness lets the standby serve it.
    node.client_send(
        1,
        now,
        encode_request(&Request::Get {
            session: sessions[1],
            req: 2,
            tenant: "inventory".into(),
            key: 3,
        }),
    );
    let mut got = None;
    for (port, resp) in pump(&mut node, &mut now, 100) {
        if let Response::GetOk {
            value,
            from_replica,
            ..
        } = resp
        {
            if port == 1 {
                got = Some((value, from_replica));
            }
        }
    }
    let (value, replica) = got.expect("get answered");
    assert_eq!(value.as_deref(), Some(&b"item-3"[..]));
    println!(
        "read of key 3 → {:?} (served by {}) ✓",
        String::from_utf8_lossy(value.as_deref().unwrap_or_default()),
        if replica { "a replica" } else { "the primary" },
    );

    println!("\n== act two: a 64-client fleet with a mid-run failover ==");
    // Post-promotion the store is single-shard: 2 tenants x 2 stripes
    // keeps the watch baselines plus both rejoining links' delta bases
    // inside its snapshot catalog budget (see the ServeConfig docs).
    let fleet = FleetConfig {
        clients: 64,
        tenants: 2,
        subscribers: 8,
        seed: 0xEA7,
        ..FleetConfig::default()
    };
    let run_cfg = RunConfig {
        serve: ServeConfig {
            stripes: 2,
            ..ServeConfig::default()
        },
        client_net: NetConfig::calm(3),
        replicas: 2,
        replica_net: NetConfig::calm(5),
        rounds: 300,
        quantum: Nanos::from_us(100),
        failover_at: Some(150),
        drain_rounds: 900,
    };
    let report = run(&fleet, &run_cfg).expect("fleet run");
    let f = report.failover.as_ref().expect("failover injected");
    println!(
        "{} ops ({} puts / {} gets / {} scans) over {} of virtual time",
        report.ops, report.puts, report.gets, report.scans, report.virtual_time,
    );
    println!(
        "crash at {}: promoted {}, {} acked puts before it, {} lost",
        f.at, f.promoted, f.acked_before, f.lost_acked_writes,
    );
    println!(
        "{}/{} sessions re-homed, {}/{} watches re-established",
        f.reconnected_sessions, fleet.clients, f.rehomed_subscribers, fleet.subscribers,
    );
    assert_eq!(f.lost_acked_writes, 0, "replicated acks survive failover");
    assert_eq!(f.reconnected_sessions, fleet.clients);
    assert_eq!(f.rehomed_subscribers, fleet.subscribers);
    assert!(report.drained);
    println!("no acknowledged write lost; every client found the new primary ✓");
}
