//! Block allocation.

use std::collections::BTreeSet;

/// A bump block allocator with a free list and an optional capacity
/// ceiling.
///
/// Sequential allocation is a load-bearing design point: the store turns a
/// *random* set of dirty object pages into *sequential* device writes
/// (paper §6: "MemSnap's … COW object store … translates random object
/// updates into sequential writes on disk"). Blocks replaced by a committed
/// μCheckpoint are recycled through the free list; contiguous extents
/// prefer a run of recycled blocks before growing the bump frontier, so
/// long-running workloads reach a steady-state footprint instead of
/// growing the block map forever.
///
/// After a crash the free list is not recovered; the allocator restarts
/// bumping past the highest block reachable from any durable root (the
/// same minimal-GC stance as the paper's "minimum viable" store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAllocator {
    next: u64,
    free: BTreeSet<u64>,
    /// First block past the end of the device, if bounded.
    capacity: Option<u64>,
}

impl BlockAllocator {
    /// Creates an unbounded allocator whose first fresh block is
    /// `first_block`.
    pub fn new(first_block: u64) -> Self {
        Self::with_capacity(first_block, None)
    }

    /// Creates an allocator bounded by `capacity` (first invalid block
    /// number; `None` for unbounded).
    pub fn with_capacity(first_block: u64, capacity: Option<u64>) -> Self {
        BlockAllocator {
            next: first_block,
            free: BTreeSet::new(),
            capacity,
        }
    }

    /// Allocates one block, preferring recycled blocks. Returns `None`
    /// when the device is full.
    #[must_use = "allocation fails when the device is full"]
    pub fn alloc(&mut self) -> Option<u64> {
        if let Some(&block) = self.free.iter().next() {
            self.free.remove(&block);
            return Some(block);
        }
        if self.capacity.is_some_and(|cap| self.next >= cap) {
            return None;
        }
        let block = self.next;
        self.next += 1;
        Some(block)
    }

    /// Allocates `n` *contiguous* blocks and returns the first, or `None`
    /// when no run of `n` blocks is available.
    ///
    /// μCheckpoint data blocks are allocated contiguously so one commit is
    /// one sequential extent. A run from the free list is preferred (the
    /// steady-state path once the device has wrapped once); otherwise the
    /// bump frontier grows.
    #[must_use = "allocation fails when the device is full"]
    pub fn alloc_contiguous(&mut self, n: u64) -> Option<u64> {
        if n == 0 {
            return Some(self.next);
        }
        // Look for n consecutive recycled blocks.
        let mut run_start = None;
        let mut run_len = 0u64;
        let mut prev = None;
        for &b in &self.free {
            match prev {
                Some(p) if b == p + 1 => run_len += 1,
                _ => {
                    run_start = Some(b);
                    run_len = 1;
                }
            }
            prev = Some(b);
            if run_len == n {
                let first = run_start.unwrap();
                for blk in first..first + n {
                    self.free.remove(&blk);
                }
                return Some(first);
            }
        }
        // Fresh extent from the bump frontier.
        if self.capacity.is_some_and(|cap| self.next + n > cap) {
            return None;
        }
        let first = self.next;
        self.next += n;
        Some(first)
    }

    /// Whether an extent of `contiguous` blocks plus `singles` more
    /// blocks can be allocated right now. Used by callers to pre-flight a
    /// multi-allocation operation so it cannot fail halfway through.
    pub fn can_alloc(&self, contiguous: u64, singles: u64) -> bool {
        let mut probe = self.clone();
        if probe.alloc_contiguous(contiguous).is_none() {
            return false;
        }
        for _ in 0..singles {
            if probe.alloc().is_none() {
                return false;
            }
        }
        true
    }

    /// Returns a block to the free list.
    pub fn free(&mut self, block: u64) {
        debug_assert!(
            block < self.next,
            "freeing a block that was never allocated"
        );
        self.free.insert(block);
    }

    /// The next fresh (never-allocated) block.
    pub fn high_water(&self) -> u64 {
        self.next
    }

    /// Number of blocks currently on the free list.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// The capacity ceiling (first invalid block), if bounded.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_sequential() {
        let mut a = BlockAllocator::new(10);
        assert_eq!(a.alloc(), Some(10));
        assert_eq!(a.alloc(), Some(11));
        assert_eq!(a.high_water(), 12);
    }

    #[test]
    fn free_list_recycles() {
        let mut a = BlockAllocator::new(0);
        let b = a.alloc().unwrap();
        a.free(b);
        assert_eq!(a.free_blocks(), 1);
        assert_eq!(a.alloc(), Some(b));
        assert_eq!(a.free_blocks(), 0);
    }

    #[test]
    fn contiguous_prefers_recycled_runs() {
        let mut a = BlockAllocator::new(0);
        let first = a.alloc_contiguous(8).unwrap();
        assert_eq!(first, 0);
        // Free a 4-run in the middle plus a stray block.
        for b in 2..6 {
            a.free(b);
        }
        a.free(7);
        let reused = a.alloc_contiguous(4).unwrap();
        assert_eq!(reused, 2, "must reuse the freed run, not bump");
        assert_eq!(a.high_water(), 8, "frontier must not grow");
        // No 3-run left (only block 7): next request bumps.
        let fresh = a.alloc_contiguous(3).unwrap();
        assert_eq!(fresh, 8);
    }

    #[test]
    fn capacity_ceiling_is_enforced() {
        let mut a = BlockAllocator::with_capacity(0, Some(4));
        assert_eq!(a.alloc_contiguous(3), Some(0));
        assert_eq!(a.alloc_contiguous(2), None, "only one block left");
        assert_eq!(a.alloc(), Some(3));
        assert_eq!(a.alloc(), None, "device full");
        // Freeing makes room again.
        a.free(1);
        assert_eq!(a.alloc(), Some(1));
    }

    #[test]
    fn can_alloc_preflights_without_mutating() {
        let mut a = BlockAllocator::with_capacity(0, Some(10));
        assert!(a.can_alloc(8, 2));
        assert!(!a.can_alloc(8, 3));
        assert_eq!(a.high_water(), 0, "preflight must not allocate");
        assert_eq!(a.alloc_contiguous(8), Some(0));
        assert!(!a.can_alloc(4, 0));
        for b in 2..6 {
            a.free(b);
        }
        assert!(a.can_alloc(4, 0), "freed run counts");
    }

    #[test]
    fn steady_state_footprint_is_bounded() {
        // Allocate/free extents in a loop: the frontier must stop growing
        // once recycling kicks in.
        let mut a = BlockAllocator::new(0);
        let mut last_high_water = 0;
        for round in 0..100 {
            let first = a.alloc_contiguous(16).unwrap();
            for b in first..first + 16 {
                a.free(b);
            }
            if round > 0 {
                assert_eq!(a.high_water(), last_high_water, "round {round} grew");
            }
            last_high_water = a.high_water();
        }
        assert_eq!(last_high_water, 16);
    }
}
