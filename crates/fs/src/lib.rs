//! File-API persistence baselines.
//!
//! The paper compares MemSnap against `write`+`fsync` on two FreeBSD file
//! systems — FFS (soft updates + journaling) and ZFS (copy-on-write) —
//! and against WAL-and-checkpoint database architectures built on them.
//! This crate provides those baselines over the simulated device:
//!
//! - [`FileSystem`]: an in-memory buffer cache over real disk blocks, with
//!   `write`/`read`/`fsync` whose latencies follow cost models calibrated
//!   to the paper's Table 6 (e.g. FFS random 4 KiB fsync ≈ 156 μs,
//!   sequential ≈ 70 μs). Sequential (appending) and random (in-place)
//!   flush runs are priced differently, which is exactly the asymmetry
//!   that makes WALs attractive on file systems.
//! - [`WriteAheadLog`]: the length-prefixed, checksummed append log the
//!   baseline databases layer on top of the file API.
//!
//! CPU time is attributed to the paper's kernel categories (buffer cache,
//! VFS, range locks, syscall) so the Table 1 / Table 8 breakdowns can be
//! regenerated.
//!
//! # Example
//!
//! ```
//! use msnap_disk::{Disk, DiskConfig};
//! use msnap_fs::{FileSystem, FsKind};
//! use msnap_sim::Vt;
//!
//! let mut disk = Disk::new(DiskConfig::paper());
//! let mut fs = FileSystem::new(FsKind::Ffs);
//! let mut vt = Vt::new(0);
//! let fd = fs.create(&mut vt, "wal");
//! fs.write(&mut vt, &mut disk, fd, 0, b"record");
//! fs.fsync(&mut vt, &mut disk, fd);
//! let mut out = [0u8; 6];
//! fs.read(&mut vt, &mut disk, fd, 0, &mut out);
//! assert_eq!(&out, b"record");
//! ```

#![warn(missing_docs)]

mod filesystem;
mod wal;

pub use filesystem::{Fd, FileSystem, FsKind};
pub use wal::{WalRecord, WriteAheadLog};
