//! Snapshot shipping: checksummed, resumable delta streams between a
//! primary [`ObjectStore`] and a replica.
//!
//! The store layer retains named epoch snapshots
//! ([`ObjectStore::snapshot_create`]) and can structurally diff two
//! retained epochs in time proportional to what changed
//! ([`ObjectStore::snapshot_diff`]). This crate turns that diff into a
//! **delta stream** — a self-describing framed byte sequence — and
//! applies it on a replica as **one crash-atomic commit**:
//!
//! - [`DeltaStream::build`] reads the changed pages of a retained target
//!   snapshot (relative to a retained base, or the empty image for a
//!   full sync) and frames them: a checksummed header, one checksummed
//!   frame per page, and a trailer binding the whole stream.
//! - [`ApplySession`] consumes frames one at a time on the replica side,
//!   validating sequence numbers and checksums as it goes. A truncated
//!   transfer resumes from [`ApplySession::next_seq`] — already-fed
//!   frames are not re-shipped.
//! - [`ApplySession::finish`] verifies the trailer and lands every
//!   staged page through [`ObjectStore::apply_image`] at the stream's
//!   target epoch. The root-record write is the single commit point, so
//!   a crash mid-apply leaves the replica at exactly its previous epoch
//!   or exactly the target epoch — never between.
//! - [`sync_to`] is the one-call driver: incremental when the replica's
//!   epoch matches a retained base snapshot on the primary, full-sync
//!   fallback when that base is gone.
//!
//! Version-2 streams ([`DeltaStream::build_v2`]) make the wire bytes
//! proportional to the bytes that changed: [`SubPageFrame`]s carry only
//! the changed 64-byte lines of a page (compressed per frame, with an
//! incompressible bypass), and a per-link [`DedupTable`] lets pages
//! whose content was already shipped travel as ~40-byte [`RefFrame`]s.
//! Version-1 streams remain fully decodable — [`DeltaStream::build`]
//! still emits them byte-identically to prior releases.
//!
//! Every wire structure also encodes and decodes **piecewise**
//! ([`StreamHeader::encode`], [`PageFrame::encode`],
//! [`StreamTrailer::encode`]), so a replication transport can ship each
//! frame as its own datagram over a lossy link and resume from
//! [`ApplySession::next_seq`] after drops. The decode path never
//! panics on malformed bytes — an arbitrary byte string from the
//! network produces [`SnapError::Malformed`], not a crashed replica.
//!
//! For failover, [`ApplySession::begin`] also accepts a **rebase**: if
//! the stream's base epoch does not match the replica's live epoch but
//! the replica retains a snapshot at exactly that epoch (a failed
//! primary rejoining always does — the last shipped-and-acked base),
//! the session lands through [`ObjectStore::apply_image_at_base`],
//! atomically abandoning the replica's divergent history.
//!
//! The stream's frame checksums protect bytes **in flight**; at-rest
//! integrity on the replica is the store's own: `apply_image`
//! recomputes the Merkle-chained page digests as it commits the staged
//! pages, so a landed stream is immediately covered by the replica's
//! scrub and read-path verification with no trust carried over from
//! the wire (DESIGN.md §6g).

#![warn(missing_docs)]

mod compress;

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

use msnap_disk::{Disk, BLOCK_SIZE};
use msnap_sim::Vt;
use msnap_store::{
    fnv1a, fnv1a_extend, CommitToken, Epoch, ObjectId, ObjectStore, StoreError, VectorCut,
};

/// Magic number opening a version-1 (full-page frames only) header.
const STREAM_MAGIC: u64 = 0x4d534e_41504453; // "MSN APDS"
/// Magic number opening a version-2 (sub-page capable) header.
const STREAM_MAGIC_V2: u64 = 0x4d534e_41504532; // "MSN APE2"
/// Magic number opening each full-page frame.
const FRAME_MAGIC: u64 = 0x4d534e_41504446; // "MSN APDF"
/// Magic number opening each sub-page frame.
const SUB_FRAME_MAGIC: u64 = 0x4d534e_41505346; // "MSN APSF"
/// Magic number opening each dedup-reference frame.
const REF_FRAME_MAGIC: u64 = 0x4d534e_41505246; // "MSN APRF"
/// Magic number opening the stream trailer.
const TRAILER_MAGIC: u64 = 0x4d534e_41504454 ^ 0xFF; // distinct from records

/// Encoded header size before the object-name and cut-epoch bytes.
const HEADER_FIXED: usize = 80;
/// Streams refuse to name a cut wider than the store's shard ceiling —
/// an attacker-controlled epoch count must not drive an allocation.
const MAX_CUT_EPOCHS: u64 = msnap_store::MAX_SHARDS as u64;
/// Encoded size of one full-page frame.
const FRAME_LEN: usize = 32 + BLOCK_SIZE;
/// Encoded size of a sub-page frame before its runs and payload.
const SUB_FIXED: usize = 52;
/// Encoded size of a dedup-reference frame.
const REF_FRAME_LEN: usize = 40;
/// Encoded trailer size.
const TRAILER_LEN: usize = 32;
/// Sub-page diff granularity: one cache line.
const LINE_SIZE: usize = 64;
/// Lines per page (`BLOCK_SIZE / LINE_SIZE` — one `u64` bitmap).
const LINES_PER_PAGE: usize = BLOCK_SIZE / LINE_SIZE;
/// Above this many dirty lines (~50% of the page) a sub-page frame
/// stops paying for itself; ship the whole page instead.
const SUBPAGE_CUTOFF: u32 = (LINES_PER_PAGE / 2) as u32;
/// Ceiling on sub-page runs per frame (a 64-line bitmap can produce at
/// most 32 alternating runs; anything claiming more is malformed).
const MAX_SUB_RUNS: usize = LINES_PER_PAGE;
/// Default dedup-table capacity: recently-shipped page images retained
/// per stream direction (~1 MiB at 4 KiB pages).
const DEDUP_CAP: usize = 256;

/// Errors raised while building, decoding, or applying a delta stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// An error surfaced by the underlying object store.
    Store(StoreError),
    /// The stream's base epoch does not match the replica's current
    /// epoch — the delta does not apply; the caller falls back to a full
    /// sync.
    BaseMismatch {
        /// Base epoch the stream was diffed against.
        stream_base: Epoch,
        /// The replica object's current epoch.
        replica: Epoch,
    },
    /// The replica is already at (or past) the stream's target epoch.
    AlreadyCurrent,
    /// A frame arrived out of order: resumable streams must be fed in
    /// sequence.
    SequenceGap {
        /// The next sequence number the session expects.
        expected: u64,
        /// The sequence number that arrived.
        got: u64,
    },
    /// A frame's checksum does not cover its content: the frame was
    /// corrupted in flight.
    FrameCorrupt {
        /// Sequence number of the corrupt frame.
        seq: u64,
    },
    /// The trailer is missing frames or its stream checksum mismatches.
    TrailerMismatch,
    /// A sub-page or reference frame could not be resolved against the
    /// replica's base content: the patched page missed its digest, a
    /// dedup reference named a digest the receiver does not hold, or the
    /// pre-image read failed. The replica's base diverges from what the
    /// sender diffed against — the caller falls back to a full resync.
    BaseContentMismatch {
        /// Page index that failed to resolve.
        page: u64,
    },
    /// The byte stream is truncated or structurally invalid.
    Malformed,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Store(e) => write!(f, "object store: {e}"),
            SnapError::BaseMismatch {
                stream_base,
                replica,
            } => write!(
                f,
                "delta base epoch {stream_base} does not match replica epoch {replica}"
            ),
            SnapError::AlreadyCurrent => f.write_str("replica is already at the target epoch"),
            SnapError::SequenceGap { expected, got } => {
                write!(f, "frame sequence gap: expected {expected}, got {got}")
            }
            SnapError::FrameCorrupt { seq } => write!(f, "frame {seq} failed its checksum"),
            SnapError::TrailerMismatch => f.write_str("stream trailer does not bind the frames"),
            SnapError::BaseContentMismatch { page } => write!(
                f,
                "page {page} could not be resolved against the replica's base content"
            ),
            SnapError::Malformed => f.write_str("malformed delta stream"),
        }
    }
}

impl Error for SnapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for SnapError {
    fn from(e: StoreError) -> Self {
        SnapError::Store(e)
    }
}

/// The self-describing head of a delta stream: which object it updates,
/// the epoch span it covers, and how many frames follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHeader {
    /// Name of the object the stream updates (store-directory name).
    pub object: String,
    /// Epoch the delta was diffed against; `None` for a full image.
    pub base_epoch: Option<Epoch>,
    /// Epoch the replica lands at when the stream is applied.
    pub target_epoch: Epoch,
    /// Object length in pages at the target epoch.
    pub len_pages: u64,
    /// Number of page frames in the stream.
    pub frame_count: u64,
    /// The primary's newest durable epoch-vector cut at build time, when
    /// the primary is sharded and has stamped one. Replication uses it to
    /// promote replicas only at manifest-wide consistent cuts; a
    /// single-shard stream carries `None` and decodes unchanged.
    pub cut: Option<VectorCut>,
    /// Stream format version, carried as the header magic: `1` streams
    /// hold only full-page frames (what every prior build emits and any
    /// prior decoder accepts); `2` streams may also carry sub-page and
    /// dedup-reference frames. Decoders here accept both.
    pub version: u16,
}

/// One shipped page: its index, its 4 KiB image, and a checksum binding
/// both to the frame's position in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageFrame {
    /// 0-based position in the stream.
    pub seq: u64,
    /// Page index within the object.
    pub page: u64,
    /// The page image ([`BLOCK_SIZE`] bytes).
    pub data: Vec<u8>,
    /// FNV-1a over `seq || page || data`.
    pub checksum: u64,
}

/// Reads a little-endian `u64` at `off`, failing with
/// [`SnapError::Malformed`] instead of panicking on short input —
/// network bytes are untrusted.
fn read_u64(buf: &[u8], off: usize) -> Result<u64, SnapError> {
    let end = off.checked_add(8).ok_or(SnapError::Malformed)?;
    let bytes = buf.get(off..end).ok_or(SnapError::Malformed)?;
    let mut v = [0u8; 8];
    v.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(v))
}

fn write_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

impl StreamHeader {
    /// Wire size of this header: the fixed part, the object name, and
    /// one `u64` per cut epoch when a cut rides along.
    pub fn encoded_len(&self) -> usize {
        HEADER_FIXED + self.object.len() + self.cut.as_ref().map_or(0, |c| c.epochs.len() * 8)
    }

    /// Serializes the header to its checksummed, self-delimiting wire
    /// form (the first piece of [`DeltaStream::encode`]). The cut, when
    /// present, is framed as `cut_seq` and `cut_len` in the fixed part
    /// (`cut_len = 0` means no cut) followed by the epoch vector after
    /// the name bytes; the checksum binds all of it.
    pub fn encode(&self) -> Vec<u8> {
        let mut head = [0u8; HEADER_FIXED];
        let magic = if self.version >= 2 {
            STREAM_MAGIC_V2
        } else {
            STREAM_MAGIC
        };
        write_u64(&mut head, 0, magic);
        write_u64(&mut head, 8, self.object.len() as u64);
        write_u64(&mut head, 16, u64::from(self.base_epoch.is_some()));
        write_u64(&mut head, 24, self.base_epoch.unwrap_or(0));
        write_u64(&mut head, 32, self.target_epoch);
        write_u64(&mut head, 40, self.len_pages);
        write_u64(&mut head, 48, self.frame_count);
        write_u64(&mut head, 56, self.cut.as_ref().map_or(0, |c| c.seq));
        write_u64(
            &mut head,
            64,
            self.cut.as_ref().map_or(0, |c| c.epochs.len() as u64),
        );
        let mut tail = self.object.as_bytes().to_vec();
        if let Some(cut) = &self.cut {
            for e in &cut.epochs {
                tail.extend_from_slice(&e.to_le_bytes());
            }
        }
        let sum = fnv1a_extend(fnv1a(&head[0..72]), &tail);
        write_u64(&mut head, 72, sum);
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&head);
        out.extend_from_slice(&tail);
        out
    }

    /// Parses a header from the front of `bytes`, returning it and the
    /// number of bytes consumed. Never panics on malformed input.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation, a bad magic, or a
    /// checksum that does not cover the bytes.
    pub fn decode(bytes: &[u8]) -> Result<(StreamHeader, usize), SnapError> {
        let version = match read_u64(bytes, 0)? {
            STREAM_MAGIC => 1,
            STREAM_MAGIC_V2 => 2,
            _ => return Err(SnapError::Malformed),
        };
        let name_len = read_u64(bytes, 8)? as usize;
        let cut_len = read_u64(bytes, 64)?;
        if cut_len > MAX_CUT_EPOCHS {
            return Err(SnapError::Malformed);
        }
        let name_end = HEADER_FIXED
            .checked_add(name_len)
            .ok_or(SnapError::Malformed)?;
        let total = name_end
            .checked_add(cut_len as usize * 8)
            .ok_or(SnapError::Malformed)?;
        let name_bytes = bytes
            .get(HEADER_FIXED..name_end)
            .ok_or(SnapError::Malformed)?;
        let tail = bytes.get(HEADER_FIXED..total).ok_or(SnapError::Malformed)?;
        let fixed = bytes.get(0..72).ok_or(SnapError::Malformed)?;
        if fnv1a_extend(fnv1a(fixed), tail) != read_u64(bytes, 72)? {
            return Err(SnapError::Malformed);
        }
        let cut = if cut_len == 0 {
            None
        } else {
            let epochs = (0..cut_len)
                .map(|i| read_u64(bytes, name_end + i as usize * 8))
                .collect::<Result<Vec<_>, _>>()?;
            Some(VectorCut {
                seq: read_u64(bytes, 56)?,
                epochs,
            })
        };
        let header = StreamHeader {
            object: String::from_utf8(name_bytes.to_vec()).map_err(|_| SnapError::Malformed)?,
            base_epoch: (read_u64(bytes, 16)? != 0)
                .then(|| read_u64(bytes, 24))
                .transpose()?,
            target_epoch: read_u64(bytes, 32)?,
            len_pages: read_u64(bytes, 40)?,
            frame_count: read_u64(bytes, 48)?,
            cut,
            version,
        };
        Ok((header, total))
    }
}

impl PageFrame {
    fn compute_checksum(seq: u64, page: u64, data: &[u8]) -> u64 {
        let mut sum = fnv1a(&seq.to_le_bytes());
        sum = fnv1a_extend(sum, &page.to_le_bytes());
        fnv1a_extend(sum, data)
    }

    /// Whether the frame's checksum covers its content.
    pub fn verify(&self) -> bool {
        self.data.len() == BLOCK_SIZE
            && self.checksum == Self::compute_checksum(self.seq, self.page, &self.data)
    }

    /// Wire size of one frame.
    pub const fn encoded_len() -> usize {
        FRAME_LEN
    }

    /// Serializes the frame — one datagram's worth of stream.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not [`BLOCK_SIZE`] bytes (frames built by
    /// this crate always are).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_LEN);
        let mut fh = [0u8; 32];
        write_u64(&mut fh, 0, FRAME_MAGIC);
        write_u64(&mut fh, 8, self.seq);
        write_u64(&mut fh, 16, self.page);
        write_u64(&mut fh, 24, self.checksum);
        out.extend_from_slice(&fh);
        assert_eq!(self.data.len(), BLOCK_SIZE, "page frames carry one block");
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a frame from the front of `bytes`, returning it and the
    /// bytes consumed. Structural only — the content checksum is checked
    /// by [`PageFrame::verify`] / [`ApplySession::feed`], so a transport
    /// can report [`SnapError::FrameCorrupt`] with the right sequence
    /// number.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation or a bad magic.
    pub fn decode(bytes: &[u8]) -> Result<(PageFrame, usize), SnapError> {
        if read_u64(bytes, 0)? != FRAME_MAGIC {
            return Err(SnapError::Malformed);
        }
        let data = bytes.get(32..FRAME_LEN).ok_or(SnapError::Malformed)?;
        let frame = PageFrame {
            seq: read_u64(bytes, 8)?,
            page: read_u64(bytes, 16)?,
            checksum: read_u64(bytes, 24)?,
            data: data.to_vec(),
        };
        Ok((frame, FRAME_LEN))
    }
}

/// One shipped sub-page delta: sorted non-overlapping byte-range runs
/// within a single page, their (optionally compressed) payload, and the
/// digest of the fully-patched page so the receiver can prove its base
/// content matched the sender's before committing.
///
/// Wire form: `magic seq page page_digest checksum` (five `u64`s),
/// then `run_count method` (two `u16`s) and `raw_len payload_len` (two
/// `u32`s), then `run_count` runs of `(offset: u16, len: u16)` bytes
/// within the page, then the payload (`method` 0 = stored raw run
/// bytes, 1 = `compress`-encoded — the incompressible bypass keeps
/// method 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubPageFrame {
    /// 0-based position in the stream.
    pub seq: u64,
    /// Page index within the object.
    pub page: u64,
    /// FNV-1a of the complete patched target page — the receiver
    /// verifies it after applying the runs to its base content.
    pub page_digest: u64,
    /// Sorted, non-overlapping `(offset, len)` byte runs within the
    /// page. A single `(0, BLOCK_SIZE)` run is a whole-page frame that
    /// needs no base read; an empty list means the page content is
    /// byte-identical to the base (epoch-only change).
    pub runs: Vec<(u16, u16)>,
    /// Payload encoding: 0 = stored, 1 = compressed.
    pub method: u16,
    /// Concatenated run bytes before compression.
    pub raw_len: u32,
    /// The payload: the concatenated run bytes, compressed when
    /// `method == 1`.
    pub payload: Vec<u8>,
    /// FNV-1a over the frame's fields (everything but the magic).
    pub checksum: u64,
}

impl SubPageFrame {
    fn compute_checksum(&self) -> u64 {
        let mut sum = fnv1a(&self.seq.to_le_bytes());
        sum = fnv1a_extend(sum, &self.page.to_le_bytes());
        sum = fnv1a_extend(sum, &self.page_digest.to_le_bytes());
        sum = fnv1a_extend(sum, &(self.runs.len() as u16).to_le_bytes());
        sum = fnv1a_extend(sum, &self.method.to_le_bytes());
        sum = fnv1a_extend(sum, &self.raw_len.to_le_bytes());
        for (off, len) in &self.runs {
            sum = fnv1a_extend(sum, &off.to_le_bytes());
            sum = fnv1a_extend(sum, &len.to_le_bytes());
        }
        fnv1a_extend(sum, &self.payload)
    }

    fn new(seq: u64, page: u64, page_digest: u64, runs: Vec<(u16, u16)>, raw: Vec<u8>) -> Self {
        let (method, payload) = match compress::compress(&raw) {
            Some(z) => (1, z),
            None => (0, raw.clone()),
        };
        let mut frame = SubPageFrame {
            seq,
            page,
            page_digest,
            runs,
            method,
            raw_len: raw.len() as u32,
            payload,
            checksum: 0,
        };
        frame.checksum = frame.compute_checksum();
        frame
    }

    /// Whether the frame rewrites the entire page (no base read needed).
    pub fn covers_whole(&self) -> bool {
        self.runs == [(0u16, BLOCK_SIZE as u16)]
    }

    /// Whether the frame's checksum covers its content and its structure
    /// is self-consistent: runs sorted, non-overlapping, inside the
    /// page, and summing to `raw_len`; the payload length matches the
    /// declared method.
    pub fn verify(&self) -> bool {
        if self.checksum != self.compute_checksum() {
            return false;
        }
        if self.runs.len() > MAX_SUB_RUNS || self.raw_len as usize > BLOCK_SIZE {
            return false;
        }
        let mut cursor = 0usize;
        let mut total = 0usize;
        for (i, (off, len)) in self.runs.iter().enumerate() {
            let (off, len) = (*off as usize, *len as usize);
            if len == 0 || (i > 0 && off < cursor) || off + len > BLOCK_SIZE {
                return false;
            }
            cursor = off + len;
            total += len;
        }
        if total != self.raw_len as usize {
            return false;
        }
        match self.method {
            0 => self.payload.len() == self.raw_len as usize,
            1 => self.payload.len() < self.raw_len as usize,
            _ => false,
        }
    }

    /// Decodes the payload and scatters the runs into `page`, which must
    /// hold the base content (or zeros for a whole-page frame). `None`
    /// if the payload does not decompress to `raw_len` bytes.
    fn resolve_into(&self, page: &mut [u8]) -> Option<()> {
        let raw = match self.method {
            0 => self.payload.clone(),
            _ => compress::decompress(&self.payload, self.raw_len as usize)?,
        };
        let mut at = 0usize;
        for (off, len) in &self.runs {
            let (off, len) = (*off as usize, *len as usize);
            page.get_mut(off..off + len)?
                .copy_from_slice(raw.get(at..at + len)?);
            at += len;
        }
        Some(())
    }

    /// Wire size of this frame.
    pub fn encoded_len(&self) -> usize {
        SUB_FIXED + self.runs.len() * 4 + self.payload.len()
    }

    /// Serializes the frame — one datagram's worth of stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        let mut fh = [0u8; SUB_FIXED];
        write_u64(&mut fh, 0, SUB_FRAME_MAGIC);
        write_u64(&mut fh, 8, self.seq);
        write_u64(&mut fh, 16, self.page);
        write_u64(&mut fh, 24, self.page_digest);
        write_u64(&mut fh, 32, self.checksum);
        fh[40..42].copy_from_slice(&(self.runs.len() as u16).to_le_bytes());
        fh[42..44].copy_from_slice(&self.method.to_le_bytes());
        fh[44..48].copy_from_slice(&self.raw_len.to_le_bytes());
        fh[48..52].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fh);
        for (off, len) in &self.runs {
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a frame from the front of `bytes`, returning it and the
    /// bytes consumed. Structural only — content integrity is checked by
    /// [`SubPageFrame::verify`]. Never panics or over-allocates on
    /// malformed input.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation, a bad magic, or lying
    /// run/payload counts.
    pub fn decode(bytes: &[u8]) -> Result<(SubPageFrame, usize), SnapError> {
        if read_u64(bytes, 0)? != SUB_FRAME_MAGIC {
            return Err(SnapError::Malformed);
        }
        let fixed = bytes.get(..SUB_FIXED).ok_or(SnapError::Malformed)?;
        let run_count = u16::from_le_bytes([fixed[40], fixed[41]]) as usize;
        let method = u16::from_le_bytes([fixed[42], fixed[43]]);
        let raw_len = u32::from_le_bytes([fixed[44], fixed[45], fixed[46], fixed[47]]);
        let payload_len = u32::from_le_bytes([fixed[48], fixed[49], fixed[50], fixed[51]]) as usize;
        if run_count > MAX_SUB_RUNS || payload_len > BLOCK_SIZE || raw_len as usize > BLOCK_SIZE {
            return Err(SnapError::Malformed);
        }
        let runs_end = SUB_FIXED + run_count * 4;
        let total = runs_end + payload_len;
        let run_bytes = bytes.get(SUB_FIXED..runs_end).ok_or(SnapError::Malformed)?;
        let payload = bytes.get(runs_end..total).ok_or(SnapError::Malformed)?;
        let runs = run_bytes
            .chunks_exact(4)
            .map(|c| {
                (
                    u16::from_le_bytes([c[0], c[1]]),
                    u16::from_le_bytes([c[2], c[3]]),
                )
            })
            .collect();
        let frame = SubPageFrame {
            seq: read_u64(bytes, 8)?,
            page: read_u64(bytes, 16)?,
            page_digest: read_u64(bytes, 24)?,
            checksum: read_u64(bytes, 32)?,
            runs,
            method,
            raw_len,
            payload: payload.to_vec(),
        };
        Ok((frame, total))
    }
}

/// A dedup reference: "this page's content is the image whose digest
/// you already hold" — ~40 wire bytes in place of a 4 KiB payload.
/// Emitted only for digests the *sender's* table holds with
/// byte-identical content (see [`DedupTable::matches`]); sender and
/// receiver tables advance in lockstep (stage at build, commit on ack),
/// so the receiver resolves the digest to the same bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefFrame {
    /// 0-based position in the stream.
    pub seq: u64,
    /// Page index within the object.
    pub page: u64,
    /// Digest of the page content in the receiver's dedup table.
    pub digest: u64,
    /// FNV-1a over `seq || page || digest`.
    pub checksum: u64,
}

impl RefFrame {
    fn compute_checksum(seq: u64, page: u64, digest: u64) -> u64 {
        let mut sum = fnv1a(&seq.to_le_bytes());
        sum = fnv1a_extend(sum, &page.to_le_bytes());
        fnv1a_extend(sum, &digest.to_le_bytes())
    }

    fn new(seq: u64, page: u64, digest: u64) -> Self {
        RefFrame {
            seq,
            page,
            digest,
            checksum: Self::compute_checksum(seq, page, digest),
        }
    }

    /// Whether the frame's checksum covers its content.
    pub fn verify(&self) -> bool {
        self.checksum == Self::compute_checksum(self.seq, self.page, self.digest)
    }

    /// Wire size of one reference frame.
    pub const fn encoded_len() -> usize {
        REF_FRAME_LEN
    }

    /// Serializes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut fh = [0u8; REF_FRAME_LEN];
        write_u64(&mut fh, 0, REF_FRAME_MAGIC);
        write_u64(&mut fh, 8, self.seq);
        write_u64(&mut fh, 16, self.page);
        write_u64(&mut fh, 24, self.digest);
        write_u64(&mut fh, 32, self.checksum);
        fh.to_vec()
    }

    /// Parses a frame from the front of `bytes`, returning it and the
    /// bytes consumed.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation or a bad magic.
    pub fn decode(bytes: &[u8]) -> Result<(RefFrame, usize), SnapError> {
        if read_u64(bytes, 0)? != REF_FRAME_MAGIC {
            return Err(SnapError::Malformed);
        }
        if bytes.len() < REF_FRAME_LEN {
            return Err(SnapError::Malformed);
        }
        let frame = RefFrame {
            seq: read_u64(bytes, 8)?,
            page: read_u64(bytes, 16)?,
            digest: read_u64(bytes, 24)?,
            checksum: read_u64(bytes, 32)?,
        };
        Ok((frame, REF_FRAME_LEN))
    }
}

/// One stream frame: a full page image (the only kind version-1 streams
/// carry), a sub-page run delta, or a dedup reference. The wire forms
/// are distinguished by magic, so a mixed stream decodes frame by frame
/// and a v1 byte stream decodes as all-`Full`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A full 4 KiB page image (version-1 compatible).
    Full(PageFrame),
    /// A sub-page byte-range delta.
    Sub(SubPageFrame),
    /// A content-hash reference to an already-shipped page image.
    Ref(RefFrame),
}

impl Frame {
    /// The frame's 0-based position in the stream.
    pub fn seq(&self) -> u64 {
        match self {
            Frame::Full(f) => f.seq,
            Frame::Sub(f) => f.seq,
            Frame::Ref(f) => f.seq,
        }
    }

    /// The page index the frame updates.
    pub fn page(&self) -> u64 {
        match self {
            Frame::Full(f) => f.page,
            Frame::Sub(f) => f.page,
            Frame::Ref(f) => f.page,
        }
    }

    /// The frame's content checksum (what the trailer chains).
    pub fn checksum(&self) -> u64 {
        match self {
            Frame::Full(f) => f.checksum,
            Frame::Sub(f) => f.checksum,
            Frame::Ref(f) => f.checksum,
        }
    }

    /// Whether the frame's checksum covers its content.
    pub fn verify(&self) -> bool {
        match self {
            Frame::Full(f) => f.verify(),
            Frame::Sub(f) => f.verify(),
            Frame::Ref(f) => f.verify(),
        }
    }

    /// Wire size of this frame.
    pub fn encoded_len(&self) -> usize {
        match self {
            Frame::Full(_) => FRAME_LEN,
            Frame::Sub(f) => f.encoded_len(),
            Frame::Ref(_) => REF_FRAME_LEN,
        }
    }

    /// Serializes the frame — one datagram's worth of stream.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Full(f) => f.encode(),
            Frame::Sub(f) => f.encode(),
            Frame::Ref(f) => f.encode(),
        }
    }

    /// Parses whichever frame kind opens `bytes` (dispatch on magic),
    /// returning it and the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation or an unknown magic.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), SnapError> {
        match read_u64(bytes, 0)? {
            FRAME_MAGIC => PageFrame::decode(bytes).map(|(f, n)| (Frame::Full(f), n)),
            SUB_FRAME_MAGIC => SubPageFrame::decode(bytes).map(|(f, n)| (Frame::Sub(f), n)),
            REF_FRAME_MAGIC => RefFrame::decode(bytes).map(|(f, n)| (Frame::Ref(f), n)),
            _ => Err(SnapError::Malformed),
        }
    }
}

/// A bounded FIFO table of recently-shipped page images keyed by
/// content digest, kept in lockstep on both ends of a replication link
/// so repeated content ships as [`RefFrame`]s.
///
/// Protocol discipline (what keeps a reference always resolvable to the
/// *right* bytes):
///
/// - The sender consults only **committed** entries when emitting a
///   reference, and byte-verifies the stored image against the page it
///   is about to ship ([`DedupTable::matches`]) — a digest collision
///   ships as payload, never as a stale reference.
/// - Pages shipped as payload are **staged** at build time and
///   committed only when the receiver acknowledges the stream; the
///   receiver inserts the same images, in the same order, when it
///   commits the stream. Both tables therefore hold identical
///   digest→bytes maps at every acknowledged point.
/// - A session reset (hello / full resync) clears both sides.
#[derive(Debug, Clone)]
pub struct DedupTable {
    cap: usize,
    hasher: fn(&[u8]) -> u64,
    /// Committed digest→image entries, oldest first.
    entries: VecDeque<(u64, Vec<u8>)>,
    /// Images shipped as payload in not-yet-acknowledged streams.
    pending: Vec<(u64, Vec<u8>)>,
}

impl Default for DedupTable {
    fn default() -> Self {
        DedupTable::new(DEDUP_CAP)
    }
}

impl DedupTable {
    /// A table retaining up to `cap` page images, digested with FNV-1a.
    pub fn new(cap: usize) -> Self {
        DedupTable::with_hasher(cap, fnv1a)
    }

    /// A table with a caller-chosen digest function — test hook for
    /// forcing collisions; production uses [`DedupTable::new`].
    pub fn with_hasher(cap: usize, hasher: fn(&[u8]) -> u64) -> Self {
        DedupTable {
            cap: cap.max(1),
            hasher,
            entries: VecDeque::new(),
            pending: Vec::new(),
        }
    }

    /// Digest of `bytes` under this table's hash function.
    pub fn digest(&self, bytes: &[u8]) -> u64 {
        (self.hasher)(bytes)
    }

    /// Whether a committed entry holds `digest` with content
    /// byte-identical to `bytes` — the only condition under which a
    /// sender may emit a reference. A colliding digest over different
    /// bytes returns `false`.
    pub fn matches(&self, digest: u64, bytes: &[u8]) -> bool {
        self.entries
            .iter()
            .any(|(d, img)| *d == digest && img == bytes)
    }

    /// The committed image stored under `digest`, if any (receiver-side
    /// reference resolution).
    pub fn get(&self, digest: u64) -> Option<&[u8]> {
        self.entries
            .iter()
            .rev()
            .find(|(d, _)| *d == digest)
            .map(|(_, img)| &img[..])
    }

    /// Stages an image shipped as payload in a stream that is not yet
    /// acknowledged. [`DedupTable::commit`] moves it into the table.
    pub fn stage(&mut self, digest: u64, bytes: Vec<u8>) {
        self.pending.push((digest, bytes));
    }

    /// Commits every staged image (the stream they rode was
    /// acknowledged), in staging order, evicting oldest entries beyond
    /// capacity. A re-staged digest replaces the older image.
    pub fn commit(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for (digest, bytes) in pending {
            self.insert(digest, bytes);
        }
    }

    /// Inserts one committed image directly (the receiver path: images
    /// resolved from an applied stream are committed facts).
    pub fn insert(&mut self, digest: u64, bytes: Vec<u8>) {
        self.entries.retain(|(d, _)| *d != digest);
        self.entries.push_back((digest, bytes));
        while self.entries.len() > self.cap {
            self.entries.pop_front();
        }
    }

    /// Drops every entry, committed and staged — a session reset.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.pending.clear();
    }

    /// Number of committed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no committed entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl StreamTrailer {
    /// Wire size of the trailer.
    pub const fn encoded_len() -> usize {
        TRAILER_LEN
    }

    /// Serializes the trailer (checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut t = [0u8; TRAILER_LEN];
        write_u64(&mut t, 0, TRAILER_MAGIC);
        write_u64(&mut t, 8, self.frames);
        write_u64(&mut t, 16, self.stream_sum);
        let sum = fnv1a(&t[0..24]);
        write_u64(&mut t, 24, sum);
        t.to_vec()
    }

    /// Parses a trailer from the front of `bytes`, returning it and the
    /// bytes consumed. Never panics on malformed input.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for truncation, a bad magic, or a
    /// self-checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Result<(StreamTrailer, usize), SnapError> {
        if read_u64(bytes, 0)? != TRAILER_MAGIC {
            return Err(SnapError::Malformed);
        }
        let fixed = bytes.get(0..24).ok_or(SnapError::Malformed)?;
        if fnv1a(fixed) != read_u64(bytes, 24)? {
            return Err(SnapError::Malformed);
        }
        Ok((
            StreamTrailer {
                frames: read_u64(bytes, 8)?,
                stream_sum: read_u64(bytes, 16)?,
            },
            TRAILER_LEN,
        ))
    }
}

/// The stream's end marker: the frame count and a checksum chaining
/// every frame checksum, so a truncated or reordered stream cannot pass
/// as complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTrailer {
    /// Total frames the stream carries.
    pub frames: u64,
    /// FNV-1a over the concatenated frame checksums, in order.
    pub stream_sum: u64,
}

/// A complete delta stream: header, page frames, trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaStream {
    /// The stream head.
    pub header: StreamHeader,
    /// The frames, in sequence order.
    pub frames: Vec<Frame>,
    /// The end marker.
    pub trailer: StreamTrailer,
}

/// Merges a dirty-line bitmap into sorted byte-range runs (adjacent
/// dirty lines coalesce into one run).
fn line_runs(bits: u64) -> Vec<(u16, u16)> {
    let mut runs: Vec<(u16, u16)> = Vec::new();
    for line in 0..LINES_PER_PAGE {
        if bits & (1 << line) == 0 {
            continue;
        }
        let off = (line * LINE_SIZE) as u16;
        match runs.last_mut() {
            Some((o, l)) if *o + *l == off => *l += LINE_SIZE as u16,
            _ => runs.push((off, LINE_SIZE as u16)),
        }
    }
    runs
}

fn chain_sum(frames: &[Frame]) -> u64 {
    frames.iter().fold(msnap_store::FNV_OFFSET, |h, f| {
        fnv1a_extend(h, &f.checksum().to_le_bytes())
    })
}

/// Wire-efficiency summary of a built stream: what sub-page framing,
/// dedup, and compression saved relative to shipping full-page frames
/// (the numbers `LinkMetrics` aggregates per replication link).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireSavings {
    /// Frames shipped as sub-page run deltas.
    pub subpage_frames: u64,
    /// Bytes saved by dedup references (full-page frame size minus the
    /// reference frame size, per reference).
    pub dedup_saved: u64,
    /// Bytes saved by payload compression (raw minus compressed, per
    /// compressed frame).
    pub compress_saved: u64,
}

impl DeltaStream {
    /// Builds the stream shipping `target` (a retained snapshot on the
    /// primary) as a delta against `base` (another retained snapshot of
    /// the same object), or as a full image when `base` is `None`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Store`] wrapping [`StoreError::SnapshotNotFound`] /
    /// [`StoreError::SnapshotMismatch`] for bad snapshot pairs.
    pub fn build(
        vt: &mut Vt,
        disk: &mut Disk,
        store: &mut ObjectStore,
        base: Option<&str>,
        target: &str,
    ) -> Result<DeltaStream, SnapError> {
        let entry = store
            .snapshot_lookup(target)
            .ok_or(StoreError::SnapshotNotFound)?
            .clone();
        let base_epoch = match base {
            None => None,
            Some(name) => Some(
                store
                    .snapshot_lookup(name)
                    .ok_or(StoreError::SnapshotNotFound)?
                    .epoch,
            ),
        };
        let pages = store.snapshot_diff(vt, disk, base, target)?;
        let object = store
            .object_name(entry.object)
            .ok_or(StoreError::NotFound)?;
        let mut frames = Vec::with_capacity(pages.len());
        let mut buf = vec![0u8; BLOCK_SIZE];
        for (seq, page) in pages.into_iter().enumerate() {
            store.read_page_at(vt, disk, target, page, &mut buf)?;
            frames.push(Frame::Full(PageFrame {
                seq: seq as u64,
                page,
                data: buf.clone(),
                checksum: PageFrame::compute_checksum(seq as u64, page, &buf),
            }));
        }
        let trailer = StreamTrailer {
            frames: frames.len() as u64,
            stream_sum: chain_sum(&frames),
        };
        Ok(DeltaStream {
            header: StreamHeader {
                object,
                base_epoch,
                target_epoch: entry.epoch,
                len_pages: entry.len_pages,
                frame_count: frames.len() as u64,
                // A sharded primary names its newest durable vector cut
                // so the consumer can promote only complete cuts.
                cut: store.last_cut().cloned(),
                version: 1,
            },
            frames,
            trailer,
        })
    }

    /// Builds a version-2 stream whose wire bytes are proportional to
    /// the bytes that actually changed: per diffed page it emits, in
    /// order of preference, a [`RefFrame`] (the content is already in
    /// the committed `dedup` table, byte-verified), a partial
    /// [`SubPageFrame`] covering only the changed 64-byte lines, a
    /// compressed whole-page [`SubPageFrame`], or a legacy
    /// [`PageFrame`] when the content is incompressible.
    ///
    /// Changed lines come from `extents` (the tracker's per-page dirty
    /// line bitmaps — a conservative superset from fine-grain write
    /// tracking) when provided, else from an exact 64-byte-line diff
    /// against the retained `base` snapshot. Pages whose changed lines
    /// exceed ~50% of the page — or whose lines cannot be established —
    /// fall back to whole-page treatment. Pages shipped as payload are
    /// *staged* into `dedup`; the caller commits them when the stream
    /// is acknowledged ([`DedupTable::commit`]).
    ///
    /// # Errors
    ///
    /// As [`DeltaStream::build`].
    pub fn build_v2(
        vt: &mut Vt,
        disk: &mut Disk,
        store: &mut ObjectStore,
        base: Option<&str>,
        target: &str,
        extents: Option<&BTreeMap<u64, u64>>,
        mut dedup: Option<&mut DedupTable>,
    ) -> Result<DeltaStream, SnapError> {
        let entry = store
            .snapshot_lookup(target)
            .ok_or(StoreError::SnapshotNotFound)?
            .clone();
        let (base_epoch, base_len) = match base {
            None => (None, 0),
            Some(name) => {
                let b = store
                    .snapshot_lookup(name)
                    .ok_or(StoreError::SnapshotNotFound)?;
                (Some(b.epoch), b.len_pages)
            }
        };
        let pages = store.snapshot_diff(vt, disk, base, target)?;
        let object = store
            .object_name(entry.object)
            .ok_or(StoreError::NotFound)?;
        let mut frames = Vec::with_capacity(pages.len());
        let mut tbuf = vec![0u8; BLOCK_SIZE];
        let mut bbuf = vec![0u8; BLOCK_SIZE];
        for (seq, page) in pages.into_iter().enumerate() {
            let seq = seq as u64;
            store.read_page_at(vt, disk, target, page, &mut tbuf)?;
            let digest = dedup.as_ref().map(|t| t.digest(&tbuf));
            if let (Some(table), Some(d)) = (dedup.as_ref(), digest) {
                if table.matches(d, &tbuf) {
                    // Byte-verified against the committed image — a
                    // colliding digest over different bytes ships as
                    // payload below, never as a stale reference.
                    frames.push(Frame::Ref(RefFrame::new(seq, page, d)));
                    continue;
                }
            }
            // Changed-line bitmap: tracker hints when available, exact
            // diff against the retained base otherwise. Partial frames
            // need the receiver to hold the base content of this page,
            // so they are only emitted for pages inside the base image.
            let in_base = base.is_some() && page < base_len;
            let lines: Option<u64> = match extents.and_then(|m| m.get(&page).copied()) {
                // A zero hint on a structurally-changed page means the
                // tracker lost the lines — treat as unknown.
                Some(0) | None => {
                    if in_base {
                        store.read_page_at(vt, disk, base.unwrap_or_default(), page, &mut bbuf)?;
                        let mut bits = 0u64;
                        for line in 0..LINES_PER_PAGE {
                            let span = line * LINE_SIZE..(line + 1) * LINE_SIZE;
                            if tbuf[span.clone()] != bbuf[span] {
                                bits |= 1 << line;
                            }
                        }
                        Some(bits)
                    } else {
                        None
                    }
                }
                Some(bits) => in_base.then_some(bits),
            };
            let frame = match lines {
                Some(bits) if bits.count_ones() <= SUBPAGE_CUTOFF => {
                    // An exact diff of 0 lines is a provably content-
                    // identical page (epoch-only change): empty runs.
                    let runs = line_runs(bits);
                    let mut raw = Vec::with_capacity(bits.count_ones() as usize * LINE_SIZE);
                    for (off, len) in &runs {
                        raw.extend_from_slice(&tbuf[*off as usize..(*off + *len) as usize]);
                    }
                    Frame::Sub(SubPageFrame::new(seq, page, fnv1a(&tbuf), runs, raw))
                }
                _ => {
                    // Whole-page: compressed sub-page frame when that
                    // pays, legacy full frame when incompressible.
                    let whole = SubPageFrame::new(
                        seq,
                        page,
                        fnv1a(&tbuf),
                        vec![(0, BLOCK_SIZE as u16)],
                        tbuf.clone(),
                    );
                    if whole.encoded_len() < FRAME_LEN {
                        Frame::Sub(whole)
                    } else {
                        Frame::Full(PageFrame {
                            seq,
                            page,
                            data: tbuf.clone(),
                            checksum: PageFrame::compute_checksum(seq, page, &tbuf),
                        })
                    }
                }
            };
            frames.push(frame);
            if let (Some(table), Some(d)) = (dedup.as_deref_mut(), digest) {
                table.stage(d, tbuf.clone());
            }
        }
        let trailer = StreamTrailer {
            frames: frames.len() as u64,
            stream_sum: chain_sum(&frames),
        };
        Ok(DeltaStream {
            header: StreamHeader {
                object,
                base_epoch,
                target_epoch: entry.epoch,
                len_pages: entry.len_pages,
                frame_count: frames.len() as u64,
                cut: store.last_cut().cloned(),
                version: 2,
            },
            frames,
            trailer,
        })
    }

    /// What this stream saved relative to shipping every frame as a
    /// full-page frame.
    pub fn wire_savings(&self) -> WireSavings {
        let mut s = WireSavings::default();
        for f in &self.frames {
            match f {
                Frame::Full(_) => {}
                Frame::Sub(sf) => {
                    s.subpage_frames += 1;
                    if sf.method == 1 {
                        s.compress_saved += sf.raw_len as u64 - sf.payload.len() as u64;
                    }
                }
                Frame::Ref(_) => {
                    s.dedup_saved += (FRAME_LEN - REF_FRAME_LEN) as u64;
                }
            }
        }
        s
    }

    /// Payload bytes the stream ships (the replication cost a full image
    /// is compared against).
    pub fn encoded_len(&self) -> usize {
        self.header.encoded_len()
            + self.frames.iter().map(Frame::encoded_len).sum::<usize>()
            + TRAILER_LEN
    }

    /// Serializes the stream to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.header.encode());
        for f in &self.frames {
            out.extend_from_slice(&f.encode());
        }
        out.extend_from_slice(&self.trailer.encode());
        out
    }

    /// Parses and fully validates a wire-form stream: header checksum,
    /// every frame checksum, and the trailer binding. Never panics (or
    /// over-allocates) on malformed input.
    ///
    /// # Errors
    ///
    /// [`SnapError::Malformed`] for structural damage,
    /// [`SnapError::FrameCorrupt`] / [`SnapError::TrailerMismatch`] for
    /// checksum failures.
    pub fn decode(bytes: &[u8]) -> Result<DeltaStream, SnapError> {
        let (header, mut off) = StreamHeader::decode(bytes)?;
        // An attacker-controlled frame count must not drive the
        // allocation — cap the reserve by what the bytes could hold
        // (the smallest frame is a reference frame).
        let cap = (header.frame_count as usize).min(bytes.len() / REF_FRAME_LEN + 1);
        let mut frames = Vec::with_capacity(cap);
        for seq in 0..header.frame_count {
            let rest = bytes.get(off..).ok_or(SnapError::Malformed)?;
            let (frame, used) = Frame::decode(rest)?;
            if frame.seq() != seq {
                return Err(SnapError::Malformed);
            }
            if !frame.verify() {
                return Err(SnapError::FrameCorrupt { seq });
            }
            frames.push(frame);
            off += used;
        }
        let rest = bytes.get(off..).ok_or(SnapError::Malformed)?;
        let (trailer, _) = StreamTrailer::decode(rest)?;
        if trailer.frames != frames.len() as u64 || trailer.stream_sum != chain_sum(&frames) {
            return Err(SnapError::TrailerMismatch);
        }
        Ok(DeltaStream {
            header,
            frames,
            trailer,
        })
    }
}

/// Replica-side application of one delta stream: feed frames in order
/// (resuming from [`ApplySession::next_seq`] after an interruption),
/// then [`ApplySession::finish`] to land the whole stream as one
/// crash-atomic commit.
#[derive(Debug)]
pub struct ApplySession {
    object: ObjectId,
    target_epoch: Epoch,
    expected_frames: u64,
    staged: Vec<Frame>,
    next_seq: u64,
    running_sum: u64,
    /// A retained snapshot on the replica at exactly the stream's base
    /// epoch, when the replica's *live* epoch has diverged past it: the
    /// failover rebase path ([`ObjectStore::apply_image_at_base`]).
    rebase_from: Option<String>,
}

impl ApplySession {
    /// Opens an apply session against the replica for `header`.
    ///
    /// A delta stream (`base_epoch = Some`) requires the replica to sit
    /// exactly at the base epoch — **or** to retain a snapshot at
    /// exactly that epoch, in which case the session becomes a *rebase*:
    /// [`ApplySession::finish`] applies the delta on top of the retained
    /// snapshot, atomically abandoning everything the replica committed
    /// past it (how a failed primary rejoins after promotion elsewhere).
    /// A full stream applies from any epoch behind the target. The
    /// replica object is created if missing.
    ///
    /// # Errors
    ///
    /// [`SnapError::BaseMismatch`] (caller falls back to a full sync),
    /// [`SnapError::AlreadyCurrent`], or [`SnapError::Store`].
    pub fn begin(
        vt: &mut Vt,
        disk: &mut Disk,
        replica: &mut ObjectStore,
        header: &StreamHeader,
    ) -> Result<ApplySession, SnapError> {
        let object = match replica.lookup(&header.object) {
            Some(id) => id,
            None => replica.create(vt, disk, &header.object)?,
        };
        let at = replica.epoch(object);
        if at >= header.target_epoch {
            return Err(SnapError::AlreadyCurrent);
        }
        let mut rebase_from = None;
        if let Some(base) = header.base_epoch {
            if base != at {
                rebase_from = replica
                    .snapshots()
                    .into_iter()
                    .find(|s| s.object == object && s.epoch == base)
                    .map(|s| s.name);
                if rebase_from.is_none() {
                    return Err(SnapError::BaseMismatch {
                        stream_base: base,
                        replica: at,
                    });
                }
            }
        }
        Ok(ApplySession {
            object,
            target_epoch: header.target_epoch,
            expected_frames: header.frame_count,
            // An untrusted frame count must not drive the allocation;
            // the staging vector grows as frames actually arrive.
            staged: Vec::new(),
            next_seq: 0,
            running_sum: msnap_store::FNV_OFFSET,
            rebase_from,
        })
    }

    /// Whether this session will rebase onto a retained snapshot,
    /// abandoning the replica's divergent history at
    /// [`ApplySession::finish`].
    pub fn is_rebase(&self) -> bool {
        self.rebase_from.is_some()
    }

    /// The sequence number the session expects next — the resume point
    /// after an interrupted transfer.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Stages one frame. Frames must arrive in sequence order and verify
    /// their checksum; a rejected frame leaves the session unchanged, so
    /// the sender may retransmit it.
    ///
    /// # Errors
    ///
    /// [`SnapError::SequenceGap`] or [`SnapError::FrameCorrupt`].
    pub fn feed(&mut self, frame: &Frame) -> Result<(), SnapError> {
        if frame.seq() != self.next_seq {
            return Err(SnapError::SequenceGap {
                expected: self.next_seq,
                got: frame.seq(),
            });
        }
        if !frame.verify() {
            return Err(SnapError::FrameCorrupt { seq: frame.seq() });
        }
        self.staged.push(frame.clone());
        self.running_sum = fnv1a_extend(self.running_sum, &frame.checksum().to_le_bytes());
        self.next_seq += 1;
        Ok(())
    }

    /// Reads the replica's pre-image of `page` — its live content, or
    /// the retained rebase snapshot's content for a rebase session.
    fn read_preimage(
        &self,
        vt: &mut Vt,
        disk: &mut Disk,
        replica: &mut ObjectStore,
        page: u64,
        buf: &mut [u8],
    ) -> Result<(), StoreError> {
        match &self.rebase_from {
            None => replica.read_page(vt, disk, self.object, page, buf),
            Some(snap) => replica.read_page_at(vt, disk, snap, page, buf),
        }
    }

    /// Verifies the trailer against everything staged and commits the
    /// stream through [`ObjectStore::apply_image`] (or
    /// [`ObjectStore::apply_image_at_base`] for a rebase session) — one
    /// crash-atomic root switch landing the replica exactly at the
    /// target epoch.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailerMismatch`] if frames are missing or the
    /// stream checksum disagrees (nothing is written), or
    /// [`SnapError::Store`] if the commit itself fails (the replica
    /// stays at its previous epoch).
    pub fn finish(
        self,
        vt: &mut Vt,
        disk: &mut Disk,
        replica: &mut ObjectStore,
        trailer: &StreamTrailer,
    ) -> Result<CommitToken, SnapError> {
        self.finish_with(vt, disk, replica, trailer, None)
    }

    /// [`ApplySession::finish`] with a receiver-side dedup table:
    /// [`Frame::Ref`] frames resolve against it, and every page that
    /// arrived as payload is inserted into it after the commit succeeds
    /// (mirroring the sender's stage-then-commit, so both tables hold
    /// the same images at every acknowledged point). Version-2 streams
    /// shipped over a deduplicating link must be finished through this
    /// entry point; plain streams work with `None`.
    ///
    /// # Errors
    ///
    /// As [`ApplySession::finish`], plus
    /// [`SnapError::BaseContentMismatch`] when a sub-page frame's
    /// patched page misses its digest (the replica's base content is
    /// not what the sender diffed against) or a reference cannot be
    /// resolved — the caller falls back to a full resync. Nothing is
    /// written in either case.
    pub fn finish_with(
        self,
        vt: &mut Vt,
        disk: &mut Disk,
        replica: &mut ObjectStore,
        trailer: &StreamTrailer,
        dedup: Option<&mut DedupTable>,
    ) -> Result<CommitToken, SnapError> {
        if self.next_seq != self.expected_frames
            || trailer.frames != self.expected_frames
            || trailer.stream_sum != self.running_sum
        {
            return Err(SnapError::TrailerMismatch);
        }
        // Resolve every frame to a full page image in memory before
        // touching the store: the commit below stays a single
        // crash-atomic root switch over whole pages.
        let mut resolved: Vec<(u64, Vec<u8>, bool)> = Vec::with_capacity(self.staged.len());
        for frame in &self.staged {
            let page = frame.page();
            let mismatch = SnapError::BaseContentMismatch { page };
            let (bytes, was_ref) = match frame {
                Frame::Full(pf) => (pf.data.clone(), false),
                Frame::Sub(sf) => {
                    let mut pb = vec![0u8; BLOCK_SIZE];
                    if !sf.covers_whole() {
                        self.read_preimage(vt, disk, replica, page, &mut pb)
                            .map_err(|_| mismatch.clone())?;
                    }
                    sf.resolve_into(&mut pb).ok_or(mismatch.clone())?;
                    if fnv1a(&pb) != sf.page_digest {
                        return Err(mismatch);
                    }
                    (pb, false)
                }
                Frame::Ref(rf) => {
                    let img = dedup
                        .as_ref()
                        .and_then(|t| t.get(rf.digest))
                        .ok_or(mismatch)?;
                    (img.to_vec(), true)
                }
            };
            resolved.push((page, bytes, was_ref));
        }
        let iov: Vec<(u64, &[u8])> = resolved.iter().map(|(p, d, _)| (*p, &d[..])).collect();
        let token = match &self.rebase_from {
            None => replica.apply_image(vt, disk, self.object, &iov, self.target_epoch)?,
            Some(base) => {
                replica.apply_image_at_base(vt, disk, self.object, base, &iov, self.target_epoch)?
            }
        };
        // The stream landed: remember every payload image, in stream
        // order, exactly as the sender staged them.
        if let Some(table) = dedup {
            for (_, bytes, was_ref) in &resolved {
                if !*was_ref {
                    let d = table.digest(bytes);
                    table.insert(d, bytes.clone());
                }
            }
        }
        Ok(token)
    }
}

/// Outcome of one [`sync_to`] catch-up round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Epoch the replica landed at.
    pub target_epoch: Epoch,
    /// Pages shipped.
    pub pages: u64,
    /// Wire bytes of the stream.
    pub bytes: u64,
    /// Whether the round fell back to a full image (no usable base).
    pub full_sync: bool,
}

/// Ships the retained snapshot `target` from the primary to the replica:
/// incrementally when the primary still retains a snapshot at exactly
/// the replica's epoch (the delta base), as a full image otherwise —
/// the base-epoch-gone fallback. The stream round-trips through its
/// wire encoding, so every checksum in the framing is exercised on
/// every sync.
///
/// # Errors
///
/// [`SnapError::AlreadyCurrent`] if the replica is at or past the
/// target, or any build/decode/apply error. A failed apply leaves the
/// replica at its previous epoch; the call may simply be retried.
#[allow(clippy::too_many_arguments)]
pub fn sync_to(
    vt: &mut Vt,
    primary: &mut ObjectStore,
    primary_disk: &mut Disk,
    replica: &mut ObjectStore,
    replica_disk: &mut Disk,
    target: &str,
) -> Result<SyncReport, SnapError> {
    let entry = primary
        .snapshot_lookup(target)
        .ok_or(StoreError::SnapshotNotFound)?
        .clone();
    let object_name = primary
        .object_name(entry.object)
        .ok_or(StoreError::NotFound)?;
    let replica_epoch = replica
        .lookup(&object_name)
        .map_or(0, |id| replica.epoch(id));
    if replica_epoch >= entry.epoch {
        return Err(SnapError::AlreadyCurrent);
    }
    // A delta needs a retained base at exactly the replica's epoch; when
    // reclamation (snapshot_delete) has dropped it, fall back to full.
    let base = primary
        .snapshots()
        .into_iter()
        .find(|s| s.object == entry.object && s.epoch == replica_epoch)
        .map(|s| s.name);
    let stream = DeltaStream::build_v2(
        vt,
        primary_disk,
        primary,
        base.as_deref(),
        target,
        None,
        None,
    )?;
    let wire = stream.encode();
    let bytes = wire.len() as u64;
    let stream = DeltaStream::decode(&wire)?;
    let mut session = ApplySession::begin(vt, replica_disk, replica, &stream.header)?;
    for frame in &stream.frames {
        session.feed(frame)?;
    }
    let token = session.finish(vt, replica_disk, replica, &stream.trailer)?;
    ObjectStore::wait(vt, token);
    Ok(SyncReport {
        target_epoch: token.epoch,
        pages: stream.trailer.frames,
        bytes,
        full_sync: base.is_none(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    fn primary_with_two_snapshots() -> (Disk, ObjectStore, Vt, ObjectId) {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut store = ObjectStore::format(&mut disk);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        for i in 0..5u64 {
            let p = page_of(0x10 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        store.snapshot_create(&mut vt, &mut disk, obj, "a").unwrap();
        for i in [1u64, 3] {
            let p = page_of(0x90 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        store.snapshot_create(&mut vt, &mut disk, obj, "b").unwrap();
        (disk, store, vt, obj)
    }

    #[test]
    fn stream_round_trips_through_wire_form() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        assert_eq!(stream.frames.len(), 2);
        assert_eq!(
            stream.frames.iter().map(|f| f.page()).collect::<Vec<_>>(),
            vec![1, 3]
        );
        let wire = stream.encode();
        assert_eq!(wire.len(), stream.encoded_len());
        assert_eq!(DeltaStream::decode(&wire).unwrap(), stream);
    }

    #[test]
    fn corrupted_wire_bytes_are_rejected() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        let wire = stream.encode();

        // Header damage.
        let mut bad = wire.clone();
        bad[40] ^= 1;
        assert_eq!(DeltaStream::decode(&bad), Err(SnapError::Malformed));
        // Frame payload damage.
        let mut bad = wire.clone();
        let frame0_data = stream.header.encoded_len() + 32;
        bad[frame0_data + 17] ^= 0x20;
        assert_eq!(
            DeltaStream::decode(&bad),
            Err(SnapError::FrameCorrupt { seq: 0 })
        );
        // Truncation.
        assert_eq!(
            DeltaStream::decode(&wire[..wire.len() - 1]),
            Err(SnapError::Malformed)
        );
    }

    #[test]
    fn apply_session_enforces_order_and_resumes() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let full = DeltaStream::build(&mut vt, &mut disk, &mut store, None, "a").unwrap();

        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &full.header).unwrap();
        // Out-of-order feed is rejected and does not advance the session.
        assert_eq!(
            session.feed(&full.frames[1]),
            Err(SnapError::SequenceGap {
                expected: 0,
                got: 1
            })
        );
        // A corrupted frame is rejected; the retransmitted original lands.
        let Frame::Full(pf0) = &full.frames[0] else {
            panic!("v1 streams carry full frames");
        };
        let mut torn = pf0.clone();
        torn.data[9] ^= 1;
        assert_eq!(
            session.feed(&Frame::Full(torn)),
            Err(SnapError::FrameCorrupt { seq: 0 })
        );
        session.feed(&full.frames[0]).unwrap();
        assert_eq!(session.next_seq(), 1);
        // "Crash" of the transfer: a fresh session resumes from 0 — the
        // staging is in memory; durability comes only from finish().
        for f in &full.frames[1..] {
            session.feed(f).unwrap();
        }
        // Premature finish with a wrong trailer is refused.
        assert!(matches!(
            session.finish(
                &mut vt,
                &mut rdisk,
                &mut replica,
                &StreamTrailer {
                    frames: full.trailer.frames + 1,
                    stream_sum: 0
                }
            ),
            Err(SnapError::TrailerMismatch)
        ));
    }

    #[test]
    fn sync_to_uses_delta_when_base_is_retained_and_full_otherwise() {
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);

        // First round: replica at epoch 0, no base retained → full sync.
        let r1 = sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "a",
        )
        .unwrap();
        assert!(r1.full_sync);
        assert_eq!(r1.pages, 5);

        // Second round: replica sits exactly at snapshot "a" → delta.
        let r2 = sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "b",
        )
        .unwrap();
        assert!(!r2.full_sync);
        assert_eq!(r2.pages, 2, "only the changed pages ship");
        assert!(r2.bytes < r1.bytes);

        // Replica image now equals the target snapshot byte-for-byte.
        let robj = replica.lookup("db").unwrap();
        assert_eq!(
            replica.epoch(robj),
            store.snapshot_lookup("b").unwrap().epoch
        );
        let mut want = page_of(0);
        let mut got = page_of(0);
        for page in 0..5u64 {
            store
                .read_page_at(&mut vt, &mut disk, "b", page, &mut want)
                .unwrap();
            replica
                .read_page(&mut vt, &mut rdisk, robj, page, &mut got)
                .unwrap();
            assert_eq!(got, want, "replica page {page} diverges");
        }

        // Already-current replica refuses the round.
        assert_eq!(
            sync_to(
                &mut vt,
                &mut store,
                &mut disk,
                &mut replica,
                &mut rdisk,
                "b"
            )
            .unwrap_err(),
            SnapError::AlreadyCurrent
        );

        // Base gone (snapshot deleted on the primary): advance the
        // primary, snapshot again, delete "b" — the replica at "b" must
        // fall back to a full image for "c".
        let p = page_of(0xEE);
        let t = store.persist(&mut vt, &mut disk, obj, &[(0, &p)]).unwrap();
        ObjectStore::wait(&mut vt, t);
        store.snapshot_create(&mut vt, &mut disk, obj, "c").unwrap();
        store.snapshot_delete(&mut vt, &mut disk, "b").unwrap();
        let r3 = sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "c",
        )
        .unwrap();
        assert!(r3.full_sync, "missing base epoch must fall back to full");
        assert_eq!(
            replica.epoch(robj),
            store.snapshot_lookup("c").unwrap().epoch
        );
    }

    #[test]
    fn piecewise_codec_matches_the_stream_form() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        // header ++ frames ++ trailer, each encoded alone, is the wire form.
        let mut wire = stream.header.encode();
        for f in &stream.frames {
            wire.extend_from_slice(&f.encode());
        }
        wire.extend_from_slice(&stream.trailer.encode());
        assert_eq!(wire, stream.encode());

        let (h, used) = StreamHeader::decode(&wire).unwrap();
        assert_eq!(h, stream.header);
        let (f0, fused) = Frame::decode(&wire[used..]).unwrap();
        assert_eq!(f0, stream.frames[0]);
        assert!(f0.verify());
        assert_eq!(fused, PageFrame::encoded_len());
        let (t, _) = StreamTrailer::decode(&wire[used + 2 * fused..]).unwrap();
        assert_eq!(t, stream.trailer);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders() {
        // A replica faces untrusted network bytes: every decoder must
        // fail cleanly on garbage, truncations, and bit flips.
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let wire = DeltaStream::build(&mut vt, &mut disk, &mut store, None, "b")
            .unwrap()
            .encode();
        for len in 0..wire.len() {
            assert!(DeltaStream::decode(&wire[..len]).is_err());
            let _ = StreamHeader::decode(&wire[..len]);
            let _ = PageFrame::decode(&wire[..len]);
            let _ = StreamTrailer::decode(&wire[..len]);
        }
        for stride in [1usize, 7, 13] {
            let mut bad = wire.clone();
            for i in (0..bad.len()).step_by(stride) {
                bad[i] ^= 0x5A;
            }
            assert!(DeltaStream::decode(&bad).is_err());
        }
        // A header lying about its frame count must not over-allocate
        // or panic.
        let mut lying = wire.clone();
        lying[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(DeltaStream::decode(&lying).is_err());
    }

    #[test]
    fn vector_cut_rides_the_stream_header() {
        // A sharded primary stamps a cut; the stream header carries it
        // through the wire byte-for-byte. The legacy streams above all
        // carry `cut: None` (cut_len = 0 on the wire) and round-trip
        // unchanged — this covers the Some side.
        let mut disk = Disk::new(DiskConfig::paper());
        let mut store = ObjectStore::format_sharded(&mut disk, 4);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        for i in 0..3u64 {
            let p = page_of(0x40 + i as u8);
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        let cut = store.cut(&mut vt, &mut disk).unwrap();
        assert_eq!(cut.epochs.len(), 4);
        store.snapshot_create(&mut vt, &mut disk, obj, "s").unwrap();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, None, "s").unwrap();
        assert_eq!(stream.header.cut.as_ref(), Some(&cut));
        let wire = stream.encode();
        assert_eq!(wire.len(), stream.encoded_len());
        let decoded = DeltaStream::decode(&wire).unwrap();
        assert_eq!(decoded, stream);
        assert_eq!(decoded.header.cut.unwrap(), cut);
        // A header claiming an absurd epoch count is malformed, not an
        // allocation.
        let mut lying = wire.clone();
        lying[64..72].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(DeltaStream::decode(&lying), Err(SnapError::Malformed));
    }

    #[test]
    fn rebase_session_abandons_divergent_replica_history() {
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        // "Replica" is an old primary: it holds snapshot "a" and then
        // diverged past it on its own.
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "a",
        )
        .unwrap();
        let robj = replica.lookup("db").unwrap();
        replica
            .snapshot_create(&mut vt, &mut rdisk, robj, "acked")
            .unwrap();
        for i in 0..6u64 {
            let p = page_of(0xC0 + i as u8);
            let t = replica
                .persist(&mut vt, &mut rdisk, robj, &[(i % 5, &p)])
                .unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        let diverged = replica.epoch(robj);
        assert!(diverged > store.snapshot_lookup("a").unwrap().epoch);

        // New primary fences past the divergence, snapshots, and ships
        // the delta a → fence. The replica's live epoch mismatches the
        // base, but it retains "acked" at exactly the base epoch: rebase.
        let t = store
            .fence_epoch(&mut vt, &mut disk, obj, diverged + 10)
            .unwrap();
        ObjectStore::wait(&mut vt, t);
        store.snapshot_create(&mut vt, &mut disk, obj, "f").unwrap();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "f").unwrap();
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &stream.header).unwrap();
        assert!(session.is_rebase());
        for f in &stream.frames {
            session.feed(f).unwrap();
        }
        let token = session
            .finish(&mut vt, &mut rdisk, &mut replica, &stream.trailer)
            .unwrap();
        ObjectStore::wait(&mut vt, token);
        assert_eq!(replica.epoch(robj), diverged + 10);

        // Byte-for-byte the rejoined replica equals the fence snapshot;
        // the divergent writes are gone.
        let mut want = page_of(0);
        let mut got = page_of(0);
        for page in 0..5u64 {
            store
                .read_page_at(&mut vt, &mut disk, "f", page, &mut want)
                .unwrap();
            replica
                .read_page(&mut vt, &mut rdisk, robj, page, &mut got)
                .unwrap();
            assert_eq!(got, want, "rejoined page {page} diverges");
        }
    }

    /// Reads a page of the live primary image, patches `edits` into it,
    /// and persists it back — a scattered small write at store level.
    fn patch_page(
        vt: &mut Vt,
        disk: &mut Disk,
        store: &mut ObjectStore,
        obj: ObjectId,
        page: u64,
        edits: &[(usize, u8)],
    ) {
        let mut buf = page_of(0);
        store.read_page(vt, disk, obj, page, &mut buf).unwrap();
        for (at, b) in edits {
            buf[*at] = *b;
        }
        let t = store.persist(vt, disk, obj, &[(page, &buf)]).unwrap();
        ObjectStore::wait(vt, t);
    }

    fn assert_replica_matches(
        vt: &mut Vt,
        disk: &mut Disk,
        store: &mut ObjectStore,
        snap: &str,
        rdisk: &mut Disk,
        replica: &mut ObjectStore,
        pages: u64,
    ) {
        let robj = replica.lookup("db").unwrap();
        let mut want = page_of(0);
        let mut got = page_of(0);
        for page in 0..pages {
            store.read_page_at(vt, disk, snap, page, &mut want).unwrap();
            replica.read_page(vt, rdisk, robj, page, &mut got).unwrap();
            assert_eq!(got, want, "replica page {page} diverges");
        }
    }

    #[test]
    fn subpage_frames_ship_only_changed_lines_and_apply_byte_identically() {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut store = ObjectStore::format(&mut disk);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        for i in 0..8u64 {
            let p: Vec<u8> = (0..BLOCK_SIZE)
                .map(|j| (i as usize * 37 + j * 7) as u8)
                .collect();
            let t = store.persist(&mut vt, &mut disk, obj, &[(i, &p)]).unwrap();
            ObjectStore::wait(&mut vt, t);
        }
        store.snapshot_create(&mut vt, &mut disk, obj, "a").unwrap();
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "a",
        )
        .unwrap();

        // Scattered small writes: a few bytes in two pages.
        patch_page(
            &mut vt,
            &mut disk,
            &mut store,
            obj,
            2,
            &[(100, 0xAA), (108, 0xAB)],
        );
        patch_page(
            &mut vt,
            &mut disk,
            &mut store,
            obj,
            5,
            &[(20 * 64, 0x01), (20 * 64 + 2, 0x02), (40 * 64 + 63, 0x03)],
        );
        store.snapshot_create(&mut vt, &mut disk, obj, "b").unwrap();

        let full = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        let sub = DeltaStream::build_v2(&mut vt, &mut disk, &mut store, Some("a"), "b", None, None)
            .unwrap();
        assert_eq!(sub.header.version, 2);
        assert_eq!(sub.frames.len(), full.frames.len());
        // Page 2 changed one 64-byte line, page 5 two lines: every frame
        // is a partial sub-page frame and the wire shrinks by >10×.
        for f in &sub.frames {
            let Frame::Sub(sf) = f else {
                panic!("expected sub-page frames, got {f:?}");
            };
            assert!(!sf.covers_whole());
        }
        assert!(
            sub.encoded_len() * 10 < full.encoded_len(),
            "sub-page stream {} vs full {}",
            sub.encoded_len(),
            full.encoded_len()
        );
        assert_eq!(sub.wire_savings().subpage_frames, 2);

        // Wire round trip + apply lands byte-identical to the target.
        let decoded = DeltaStream::decode(&sub.encode()).unwrap();
        assert_eq!(decoded, sub);
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &decoded.header).unwrap();
        for f in &decoded.frames {
            session.feed(f).unwrap();
        }
        let token = session
            .finish(&mut vt, &mut rdisk, &mut replica, &decoded.trailer)
            .unwrap();
        ObjectStore::wait(&mut vt, token);
        assert_replica_matches(
            &mut vt,
            &mut disk,
            &mut store,
            "b",
            &mut rdisk,
            &mut replica,
            8,
        );
    }

    #[test]
    fn subpage_apply_against_diverged_base_content_is_refused() {
        // The page digest proves the receiver's base content matched the
        // sender's diff base; a diverged replica must be detected, not
        // silently patched into garbage.
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        patch_page(&mut vt, &mut disk, &mut store, obj, 1, &[(64, 0x77)]);
        store.snapshot_create(&mut vt, &mut disk, obj, "s").unwrap();
        let sub = DeltaStream::build_v2(&mut vt, &mut disk, &mut store, Some("b"), "s", None, None)
            .unwrap();
        assert!(matches!(&sub.frames[0], Frame::Sub(sf) if !sf.covers_whole()));

        // Corrupt the replica's base content for page 1 out-of-band by
        // re-applying different bytes at the same base epoch lineage:
        // rebuild a replica whose page 1 differs.
        let mut rdisk2 = Disk::new(DiskConfig::paper());
        let mut replica2 = ObjectStore::format(&mut rdisk2);
        let r2obj = replica2.create(&mut vt, &mut rdisk2, "db").unwrap();
        let base_epoch = sub.header.base_epoch.unwrap();
        let mut pages: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut buf = page_of(0);
        for page in 0..5u64 {
            store
                .read_page_at(&mut vt, &mut disk, "b", page, &mut buf)
                .unwrap();
            if page == 1 {
                // Diverged base content in a line the frame does not
                // patch — only the digest check can catch it.
                buf[700] ^= 0xFF;
            }
            pages.push((page, buf.clone()));
        }
        let iov: Vec<(u64, &[u8])> = pages.iter().map(|(p, d)| (*p, &d[..])).collect();
        let t = replica2
            .apply_image(&mut vt, &mut rdisk2, r2obj, &iov, base_epoch)
            .unwrap();
        ObjectStore::wait(&mut vt, t);

        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk2, &mut replica2, &sub.header).unwrap();
        for f in &sub.frames {
            session.feed(f).unwrap();
        }
        assert_eq!(
            session
                .finish(&mut vt, &mut rdisk2, &mut replica2, &sub.trailer)
                .unwrap_err(),
            SnapError::BaseContentMismatch { page: 1 }
        );
        // Nothing landed: the diverged replica stays at its base epoch.
        assert_eq!(replica2.epoch(r2obj), base_epoch);
    }

    #[test]
    fn dedup_references_ship_for_repeated_content() {
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        let mut sender = DedupTable::default();
        let mut receiver = DedupTable::default();

        // Round 1: full sync of "b", payload images staged on the
        // sender and inserted on the receiver at commit.
        let s1 = DeltaStream::build_v2(
            &mut vt,
            &mut disk,
            &mut store,
            None,
            "b",
            None,
            Some(&mut sender),
        )
        .unwrap();
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &s1.header).unwrap();
        for f in &s1.frames {
            session.feed(f).unwrap();
        }
        let token = session
            .finish_with(
                &mut vt,
                &mut rdisk,
                &mut replica,
                &s1.trailer,
                Some(&mut receiver),
            )
            .unwrap();
        ObjectStore::wait(&mut vt, token);
        assert!(sender.is_empty(), "nothing committed before the ack");
        sender.commit(); // the ack
        assert_eq!(sender.len(), receiver.len());

        // Round 2: rewrite page 1 with page 0's exact content — a
        // B-tree-node-shuffle-style move. Content is in both tables.
        let mut p0 = page_of(0);
        store
            .read_page_at(&mut vt, &mut disk, "b", 0, &mut p0)
            .unwrap();
        let t = store.persist(&mut vt, &mut disk, obj, &[(1, &p0)]).unwrap();
        ObjectStore::wait(&mut vt, t);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "moved")
            .unwrap();
        let s2 = DeltaStream::build_v2(
            &mut vt,
            &mut disk,
            &mut store,
            Some("b"),
            "moved",
            None,
            Some(&mut sender),
        )
        .unwrap();
        assert_eq!(s2.frames.len(), 1);
        assert!(
            matches!(&s2.frames[0], Frame::Ref(_)),
            "repeated content must ship as a reference, got {:?}",
            s2.frames[0]
        );
        assert!(s2.wire_savings().dedup_saved > 0);
        assert!(s2.encoded_len() < 200, "a reference stream is tiny");

        let decoded = DeltaStream::decode(&s2.encode()).unwrap();
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &decoded.header).unwrap();
        for f in &decoded.frames {
            session.feed(f).unwrap();
        }
        let token = session
            .finish_with(
                &mut vt,
                &mut rdisk,
                &mut replica,
                &decoded.trailer,
                Some(&mut receiver),
            )
            .unwrap();
        ObjectStore::wait(&mut vt, token);
        sender.commit();
        assert_replica_matches(
            &mut vt,
            &mut disk,
            &mut store,
            "moved",
            &mut rdisk,
            &mut replica,
            5,
        );

        // A reference against a receiver that lost its table is refused
        // (full-resync fallback), never silently misapplied.
        let mut rdisk2 = Disk::new(DiskConfig::paper());
        let mut replica2 = ObjectStore::format(&mut rdisk2);
        sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica2,
            &mut rdisk2,
            "b",
        )
        .unwrap();
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk2, &mut replica2, &s2.header).unwrap();
        for f in &s2.frames {
            session.feed(f).unwrap();
        }
        assert_eq!(
            session
                .finish_with(&mut vt, &mut rdisk2, &mut replica2, &s2.trailer, None)
                .unwrap_err(),
            SnapError::BaseContentMismatch { page: 1 }
        );
    }

    #[test]
    fn colliding_digests_byte_verify_and_ship_payload() {
        // A truncating hasher forces collisions: different content under
        // an equal digest must never come back as a reference.
        let mut table = DedupTable::with_hasher(8, |b| b.first().copied().unwrap_or(0) as u64);
        let a = vec![1u8; BLOCK_SIZE];
        let mut b = vec![1u8; BLOCK_SIZE];
        b[BLOCK_SIZE - 1] = 9; // same digest (first byte), different bytes
        let d = table.digest(&a);
        assert_eq!(d, table.digest(&b));
        table.insert(d, a.clone());
        assert!(table.matches(d, &a));
        assert!(!table.matches(d, &b), "collision must fail byte-verify");
        // The builder consults matches(): with `b` the table says no,
        // so the page ships as payload and the table re-stages `b`.
    }

    #[test]
    fn identical_content_rewrite_ships_empty_runs() {
        // Persisting a page with byte-identical content bumps the epoch
        // and shows up in the structural diff; the exact line diff finds
        // zero changed lines and ships a frame with no payload at all.
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "b",
        )
        .unwrap();
        patch_page(&mut vt, &mut disk, &mut store, obj, 2, &[]); // no-op rewrite
        store
            .snapshot_create(&mut vt, &mut disk, obj, "same")
            .unwrap();
        let s = DeltaStream::build_v2(
            &mut vt,
            &mut disk,
            &mut store,
            Some("b"),
            "same",
            None,
            None,
        )
        .unwrap();
        assert_eq!(s.frames.len(), 1);
        let Frame::Sub(sf) = &s.frames[0] else {
            panic!("expected a sub-page frame");
        };
        assert!(sf.runs.is_empty());
        assert_eq!(sf.raw_len, 0);
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &s.header).unwrap();
        for f in &s.frames {
            session.feed(f).unwrap();
        }
        let token = session
            .finish(&mut vt, &mut rdisk, &mut replica, &s.trailer)
            .unwrap();
        ObjectStore::wait(&mut vt, token);
        assert_replica_matches(
            &mut vt,
            &mut disk,
            &mut store,
            "same",
            &mut rdisk,
            &mut replica,
            5,
        );
    }

    #[test]
    fn resumed_subpage_stream_never_reapplies_an_applied_frame() {
        // Retransmit overlap: after a resume, frames the session already
        // staged are rejected with SequenceGap and change nothing — the
        // stream still lands byte-identically, each page applied once.
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            "b",
        )
        .unwrap();
        patch_page(&mut vt, &mut disk, &mut store, obj, 0, &[(7, 0x70)]);
        patch_page(&mut vt, &mut disk, &mut store, obj, 3, &[(200, 0x71)]);
        patch_page(&mut vt, &mut disk, &mut store, obj, 4, &[(4000, 0x72)]);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "tip")
            .unwrap();
        let s = DeltaStream::build_v2(&mut vt, &mut disk, &mut store, Some("b"), "tip", None, None)
            .unwrap();
        assert_eq!(s.frames.len(), 3);

        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &s.header).unwrap();
        session.feed(&s.frames[0]).unwrap();
        session.feed(&s.frames[1]).unwrap();
        // The sender resumes from an older point and replays everything:
        // already-staged frames are refused without advancing the session.
        for f in &s.frames[..2] {
            assert!(matches!(
                session.feed(f),
                Err(SnapError::SequenceGap { expected: 2, .. })
            ));
            assert_eq!(session.next_seq(), 2);
        }
        session.feed(&s.frames[2]).unwrap();
        let token = session
            .finish(&mut vt, &mut rdisk, &mut replica, &s.trailer)
            .unwrap();
        ObjectStore::wait(&mut vt, token);
        assert_replica_matches(
            &mut vt,
            &mut disk,
            &mut store,
            "tip",
            &mut rdisk,
            &mut replica,
            5,
        );
        // A full redelivery of the landed stream is refused up front.
        assert_eq!(
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &s.header).unwrap_err(),
            SnapError::AlreadyCurrent
        );
    }

    #[test]
    fn legacy_v1_streams_still_decode_and_apply() {
        // Cross-version: build() emits the version-1 wire form
        // byte-identically to prior releases (v1 magic, full-page
        // frames), and the v2-aware decoder accepts it.
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let stream = DeltaStream::build(&mut vt, &mut disk, &mut store, None, "b").unwrap();
        assert_eq!(stream.header.version, 1);
        let wire = stream.encode();
        assert_eq!(wire[0..8], STREAM_MAGIC.to_le_bytes());
        assert_eq!(
            read_u64(&wire, stream.header.encoded_len()).unwrap(),
            FRAME_MAGIC,
            "v1 frames keep the legacy frame magic"
        );
        let decoded = DeltaStream::decode(&wire).unwrap();
        assert!(decoded.frames.iter().all(|f| matches!(f, Frame::Full(_))));
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        let mut session =
            ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &decoded.header).unwrap();
        for f in &decoded.frames {
            session.feed(f).unwrap();
        }
        let token = session
            .finish(&mut vt, &mut rdisk, &mut replica, &decoded.trailer)
            .unwrap();
        ObjectStore::wait(&mut vt, token);
        assert_replica_matches(
            &mut vt,
            &mut disk,
            &mut store,
            "b",
            &mut rdisk,
            &mut replica,
            5,
        );
    }

    #[test]
    fn subpage_wire_forms_survive_adversarial_bytes() {
        // The v2 decoders face the same untrusted network as v1: every
        // truncation and bit-flip of a sub-page stream fails cleanly.
        let (mut disk, mut store, mut vt, obj) = primary_with_two_snapshots();
        patch_page(&mut vt, &mut disk, &mut store, obj, 1, &[(130, 0x5C)]);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "s2")
            .unwrap();
        let mut dedup = DedupTable::default();
        let wire = DeltaStream::build_v2(
            &mut vt,
            &mut disk,
            &mut store,
            Some("b"),
            "s2",
            None,
            Some(&mut dedup),
        )
        .unwrap()
        .encode();
        for len in 0..wire.len() {
            assert!(DeltaStream::decode(&wire[..len]).is_err());
            let _ = Frame::decode(&wire[..len]);
            let _ = SubPageFrame::decode(&wire[..len]);
            let _ = RefFrame::decode(&wire[..len]);
        }
        for stride in [1usize, 5, 11] {
            let mut bad = wire.clone();
            for i in (0..bad.len()).step_by(stride) {
                bad[i] ^= 0xA5;
            }
            assert!(DeltaStream::decode(&bad).is_err());
        }
    }

    #[test]
    fn delta_against_wrong_replica_epoch_reports_base_mismatch() {
        let (mut disk, mut store, mut vt, _) = primary_with_two_snapshots();
        let delta = DeltaStream::build(&mut vt, &mut disk, &mut store, Some("a"), "b").unwrap();
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        // Fresh replica (epoch 0) cannot take a delta based at "a".
        let err = ApplySession::begin(&mut vt, &mut rdisk, &mut replica, &delta.header)
            .err()
            .unwrap();
        assert!(matches!(err, SnapError::BaseMismatch { replica: 0, .. }));
    }
}
