//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] maps write-submission indices (the 0-based sequence
//! number the [`Disk`](crate::Disk) assigns to every `writev_at` /
//! `write_block_at` call) to [`Fault`]s. Install it with
//! [`Disk::set_fault_plan`](crate::Disk::set_fault_plan); the device
//! consults the plan on every submission and injects the scheduled fault.
//! Plans are plain data — two runs of a deterministic workload with the
//! same plan observe byte-identical behaviour, which is what makes fault
//! scenarios replayable in tests.
//!
//! The fault model (DESIGN.md "Fault model & error semantics"):
//!
//! - **Torn writes** ([`Fault::Torn`]): the device acknowledges the whole
//!   submission but only a prefix of its blocks ever becomes durable. The
//!   lie is invisible until a crash — reads against the live device still
//!   see all the data (it sits in the device cache), and the returned
//!   [`WriteToken`](crate::WriteToken) completes normally. Only
//!   [`Disk::crash`](crate::Disk::crash) reveals the loss.
//! - **Silent corruption** ([`Fault::BitFlip`]): one bit of one written
//!   block is flipped on the media. No error is reported; detection is the
//!   job of checksums in the layers above.
//! - **Dropped writes** ([`Fault::Drop`]): the submission fails with
//!   [`IoError::Failed`] and no bytes are applied. `transient: true`
//!   models a retryable condition (the retry is a fresh submission with a
//!   fresh index, which the plan may or may not fault again).
//! - **Latency spikes** ([`Fault::LatencySpike`]): the submission succeeds
//!   but takes `extra` longer — exercising timeout/overlap behaviour
//!   without data loss.
//!
//! Capacity exhaustion is *not* an injected fault: it is a property of the
//! device (`DiskConfig::capacity_blocks`) and surfaces as
//! [`IoError::NoSpace`] on any write beyond the last block.

use std::collections::BTreeMap;

use msnap_sim::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error returned by a failed write submission.
///
/// Carries enough context for the caller to decide between retrying
/// (transient faults), aborting the commit, or surfacing the error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoError {
    /// The device rejected or lost the submission; nothing was written.
    Failed {
        /// First block of the failed submission.
        block: u64,
        /// Whether an immediate retry may succeed.
        transient: bool,
    },
    /// A block address lies beyond the device capacity.
    NoSpace {
        /// The offending block address.
        block: u64,
        /// The device capacity, in blocks.
        capacity_blocks: u64,
    },
}

impl IoError {
    /// Whether retrying the same submission may succeed.
    ///
    /// Capacity exhaustion is never transient; a dropped write is if the
    /// injected fault said so.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            IoError::Failed {
                transient: true,
                ..
            }
        )
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Failed { block, transient } => {
                let kind = if *transient { "transient" } else { "hard" };
                write!(f, "{kind} write failure at block {block}")
            }
            IoError::NoSpace {
                block,
                capacity_blocks,
            } => {
                write!(
                    f,
                    "block {block} beyond device capacity ({capacity_blocks} blocks)"
                )
            }
        }
    }
}

impl std::error::Error for IoError {}

/// One scheduled fault, applied to a single write submission.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Acknowledge the write but make only the first `prefix_blocks`
    /// blocks durable; the tail is lost on the next crash.
    Torn {
        /// Number of leading iov entries that actually persist.
        prefix_blocks: usize,
    },
    /// Flip one bit of the `entry`-th block of the submission after it is
    /// written (silent media corruption).
    BitFlip {
        /// Index into the submission's iov (wrapped into range).
        entry: usize,
        /// Byte offset within the block (wrapped into range).
        byte: usize,
        /// Bit position within the byte (wrapped into range).
        bit: u8,
    },
    /// Fail the submission with [`IoError::Failed`]; nothing is written.
    Drop {
        /// Whether a retry (a later submission) should be allowed to
        /// succeed — reported through [`IoError::is_transient`].
        transient: bool,
    },
    /// Complete the write `extra` later than the latency model says.
    LatencySpike {
        /// Additional service time for the submission.
        extra: Nanos,
    },
}

/// Relative frequencies for randomly generated fault plans.
///
/// Each field is the per-submission probability of that fault; at most one
/// fault is chosen per submission. See [`FaultPlan::seeded`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Probability of a torn write.
    pub torn: f64,
    /// Probability of a silent bit flip.
    pub bit_flip: f64,
    /// Probability of a dropped write.
    pub drop: f64,
    /// Fraction of dropped writes that are transient (retryable).
    pub transient_fraction: f64,
    /// Probability of a latency spike.
    pub latency_spike: f64,
}

impl FaultProfile {
    /// A light mix of all fault kinds — a few percent per submission.
    pub fn light() -> Self {
        FaultProfile {
            torn: 0.02,
            bit_flip: 0.02,
            drop: 0.03,
            transient_fraction: 0.7,
            latency_spike: 0.03,
        }
    }

    /// Transient drops and latency spikes only — every fault is
    /// recoverable by retrying, so workloads should complete.
    pub fn transient_only() -> Self {
        FaultProfile {
            torn: 0.0,
            bit_flip: 0.0,
            drop: 0.05,
            transient_fraction: 1.0,
            latency_spike: 0.05,
        }
    }
}

/// A deterministic schedule of faults, keyed by write-submission index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `fault` for the `io`-th write submission (0-based),
    /// replacing any fault already scheduled there.
    pub fn at(mut self, io: u64, fault: Fault) -> Self {
        self.faults.insert(io, fault);
        self
    }

    /// Generates a random plan for the first `horizon` submissions.
    ///
    /// The plan is a pure function of `(seed, horizon, profile)` — the
    /// same arguments always yield the same plan, so property tests can
    /// shrink on the seed alone.
    pub fn seeded(seed: u64, horizon: u64, profile: &FaultProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for io in 0..horizon {
            let roll: f64 = rng.gen();
            let fault = if roll < profile.torn {
                // The prefix length is wrapped into range at injection
                // time, when the submission size is known.
                Some(Fault::Torn {
                    prefix_blocks: rng.gen_range(0usize..64),
                })
            } else if roll < profile.torn + profile.bit_flip {
                Some(Fault::BitFlip {
                    entry: rng.gen_range(0usize..64),
                    byte: rng.gen_range(0usize..crate::BLOCK_SIZE),
                    bit: rng.gen_range(0u8..8),
                })
            } else if roll < profile.torn + profile.bit_flip + profile.drop {
                Some(Fault::Drop {
                    transient: rng.gen_bool(profile.transient_fraction),
                })
            } else if roll < profile.torn + profile.bit_flip + profile.drop + profile.latency_spike
            {
                Some(Fault::LatencySpike {
                    extra: Nanos::from_us(rng.gen_range(10u64..500)),
                })
            } else {
                None
            };
            if let Some(f) = fault {
                plan.faults.insert(io, f);
            }
        }
        plan
    }

    /// The fault scheduled for submission `io`, if any.
    pub fn fault_for(&self, io: u64) -> Option<&Fault> {
        self.faults.get(&io)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A fault scheduled against one fallible read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadFault {
    /// Fail the read with [`IoError::Failed`]; no bytes are transferred.
    Fail {
        /// Whether a retry may succeed, via [`IoError::is_transient`].
        transient: bool,
    },
    /// Silent bit rot: flip one bit of the target block *on the media*
    /// before serving the read. The read itself succeeds — corrupted
    /// bytes come back with `Ok` and the rot persists for every later
    /// read of the block. No error is reported; detection is the job of
    /// the digest layers above.
    BitRot {
        /// Byte offset within the block (wrapped into range).
        byte: usize,
        /// Bit position within the byte (wrapped into range).
        bit: u8,
    },
}

/// A deterministic schedule of *read* faults, keyed by fallible-read
/// index.
///
/// The device numbers every fallible read submission
/// ([`Disk::try_read_block_at`](crate::Disk::try_read_block_at) /
/// [`Disk::try_read_block`](crate::Disk::try_read_block)) with a 0-based
/// sequence counter, separate from the write `io_seq`. A scheduled
/// [`ReadFault::Fail`] makes that read fail with [`IoError::Failed`] — no
/// bytes are transferred and no time is charged; a [`ReadFault::BitRot`]
/// silently corrupts the media and serves the rotted bytes with `Ok`. The
/// legacy infallible read paths (`read_block_at` / `read_block`) neither
/// consume sequence numbers nor consult the plan, so recovery code that
/// predates fallible reads is unaffected.
///
/// Like [`FaultPlan`], read plans are plain data: the same plan against
/// the same deterministic workload injects the same faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadFaultPlan {
    faults: BTreeMap<u64, ReadFault>,
}

impl ReadFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the `read`-th fallible read (0-based) to fail;
    /// `transient` is reported through [`IoError::is_transient`].
    pub fn at(mut self, read: u64, transient: bool) -> Self {
        self.faults.insert(read, ReadFault::Fail { transient });
        self
    }

    /// Schedules silent bit rot on the `read`-th fallible read: the
    /// target block's media is corrupted in place and the read succeeds
    /// with the rotted bytes.
    pub fn rot_at(mut self, read: u64, byte: usize, bit: u8) -> Self {
        self.faults.insert(read, ReadFault::BitRot { byte, bit });
        self
    }

    /// The fault scheduled for the `read`-th fallible read, if any.
    pub fn fault_for(&self, read: u64) -> Option<ReadFault> {
        self.faults.get(&read).copied()
    }

    /// Number of scheduled read faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A fault injected into a completed (or failed) submission — the
/// injector's audit log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    /// The write-submission index the fault hit.
    pub io: u64,
    /// The fault that was applied.
    pub fault: Fault,
}

/// Runtime state of fault injection on a device: the plan plus an audit
/// log of faults actually applied.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    log: Vec<InjectedFault>,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            log: Vec::new(),
        }
    }

    /// Looks up the fault for submission `io`, recording it in the audit
    /// log if present.
    pub(crate) fn consult(&mut self, io: u64) -> Option<Fault> {
        let fault = self.plan.fault_for(io).cloned()?;
        self.log.push(InjectedFault {
            io,
            fault: fault.clone(),
        });
        Some(fault)
    }

    /// The faults applied so far, in submission order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.log
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let p = FaultProfile::light();
        let a = FaultPlan::seeded(99, 500, &p);
        let b = FaultPlan::seeded(99, 500, &p);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(100, 500, &p);
        assert_ne!(a, c, "different seeds should differ (500 rolls at ~10%)");
    }

    #[test]
    fn seeded_rates_are_roughly_honoured() {
        let p = FaultProfile::light();
        let plan = FaultPlan::seeded(7, 10_000, &p);
        let total_rate = p.torn + p.bit_flip + p.drop + p.latency_spike;
        let expected = (10_000.0 * total_rate) as usize;
        assert!(
            plan.len() > expected / 2 && plan.len() < expected * 2,
            "{} faults vs ~{expected} expected",
            plan.len()
        );
    }

    #[test]
    fn injector_logs_only_applied_faults() {
        let plan = FaultPlan::new()
            .at(3, Fault::Drop { transient: false })
            .at(5, Fault::Torn { prefix_blocks: 1 });
        let mut inj = FaultInjector::new(plan);
        assert!(inj.consult(0).is_none());
        assert!(inj.consult(3).is_some());
        assert!(inj.consult(4).is_none());
        assert!(inj.consult(5).is_some());
        let ios: Vec<u64> = inj.injected().iter().map(|f| f.io).collect();
        assert_eq!(ios, vec![3, 5]);
    }

    #[test]
    fn transient_only_profile_never_loses_data() {
        let plan = FaultPlan::seeded(1, 2_000, &FaultProfile::transient_only());
        for io in 0..2_000 {
            match plan.fault_for(io) {
                None | Some(Fault::LatencySpike { .. }) | Some(Fault::Drop { transient: true }) => {
                }
                other => panic!("unexpected fault in transient-only plan: {other:?}"),
            }
        }
    }

    #[test]
    fn io_error_display_and_transience() {
        let hard = IoError::Failed {
            block: 9,
            transient: false,
        };
        let soft = IoError::Failed {
            block: 9,
            transient: true,
        };
        let full = IoError::NoSpace {
            block: 100,
            capacity_blocks: 64,
        };
        assert!(!hard.is_transient());
        assert!(soft.is_transient());
        assert!(!full.is_transient());
        assert!(hard.to_string().contains("hard"));
        assert!(soft.to_string().contains("transient"));
        assert!(full.to_string().contains("capacity"));
    }
}
