//! Block allocation.

/// A bump block allocator with a free list.
///
/// Sequential allocation is a load-bearing design point: the store turns a
/// *random* set of dirty object pages into *sequential* device writes
/// (paper §6: "MemSnap's … COW object store … translates random object
/// updates into sequential writes on disk"). Blocks replaced by a committed
/// μCheckpoint are recycled through the free list.
///
/// After a crash the free list is not recovered; the allocator restarts
/// bumping past the highest block reachable from any durable root (the
/// same minimal-GC stance as the paper's "minimum viable" store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAllocator {
    next: u64,
    free: Vec<u64>,
}

impl BlockAllocator {
    /// Creates an allocator whose first fresh block is `first_block`.
    pub fn new(first_block: u64) -> Self {
        BlockAllocator {
            next: first_block,
            free: Vec::new(),
        }
    }

    /// Allocates one block, preferring recycled blocks.
    pub fn alloc(&mut self) -> u64 {
        if let Some(block) = self.free.pop() {
            block
        } else {
            let block = self.next;
            self.next += 1;
            block
        }
    }

    /// Allocates `n` *contiguous* fresh blocks and returns the first.
    ///
    /// μCheckpoint data blocks are allocated contiguously so one commit is
    /// one sequential extent.
    pub fn alloc_contiguous(&mut self, n: u64) -> u64 {
        let first = self.next;
        self.next += n;
        first
    }

    /// Returns a block to the free list.
    pub fn free(&mut self, block: u64) {
        debug_assert!(block < self.next, "freeing a block that was never allocated");
        self.free.push(block);
    }

    /// The next fresh (never-allocated) block.
    pub fn high_water(&self) -> u64 {
        self.next
    }

    /// Number of blocks currently on the free list.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_sequential() {
        let mut a = BlockAllocator::new(10);
        assert_eq!(a.alloc(), 10);
        assert_eq!(a.alloc(), 11);
        assert_eq!(a.high_water(), 12);
    }

    #[test]
    fn free_list_recycles() {
        let mut a = BlockAllocator::new(0);
        let b = a.alloc();
        a.free(b);
        assert_eq!(a.free_blocks(), 1);
        assert_eq!(a.alloc(), b);
        assert_eq!(a.free_blocks(), 0);
    }

    #[test]
    fn contiguous_ignores_free_list() {
        let mut a = BlockAllocator::new(0);
        let b = a.alloc();
        a.free(b);
        let first = a.alloc_contiguous(4);
        assert_eq!(first, 1, "contiguous ranges must be fresh");
        assert_eq!(a.high_water(), 5);
    }
}
