//! A unified CLOCK (second-chance) block cache for store reads.
//!
//! The paper's store "does direct IO" for *writes* — commits reach the
//! device before they are acknowledged — but repeated *reads* of hot
//! blocks (radix nodes on the demand-load path, data pages under skewed
//! workloads) need not hit the device every time. This module provides a
//! small fixed-capacity cache shared by `read_page`, `read_page_at`, and
//! node hydration.
//!
//! Policy is CLOCK / second-chance: each slot carries a referenced bit,
//! set on hit; the eviction hand sweeps the slots, clearing referenced
//! bits, and reclaims the first slot whose bit is already clear. CLOCK is
//! deterministic (no timestamps, no randomness), which keeps the
//! simulation's replay guarantees intact.
//!
//! Consistency: the cache is **invalidated on write, never populated by
//! writes**. A freshly written block must be re-read from the device at
//! least once before it can be served from memory — so injected faults
//! that corrupt device contents (bit flips, torn writes) are still
//! observed by the first read, exactly as with direct IO. The cache is
//! also discarded across `ObjectStore::open`, so recovery never trusts
//! pre-crash cached state.

use msnap_disk::BLOCK_SIZE;
use std::collections::HashMap;

/// Sentinel block number marking a slot invalidated in place.
///
/// Slots are addressed by index from the map, so invalidation cannot
/// remove them from the `slots` vector without shifting every other
/// index; tombstoned slots are instead reused eagerly on insert.
const TOMBSTONE: u64 = u64::MAX;

/// One cache slot: a block number, its 4 KiB payload, and the CLOCK
/// referenced bit.
struct Slot {
    block: u64,
    referenced: bool,
    data: Box<[u8]>,
}

/// A fixed-capacity CLOCK block cache.
///
/// Capacity is measured in blocks (4 KiB each). A capacity of zero
/// disables caching entirely: `get` always misses and `insert` is a
/// no-op, which degrades to the previous direct-IO behaviour.
pub struct BlockCache {
    capacity: usize,
    /// block number -> index into `slots`.
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    /// CLOCK hand: index of the next slot the eviction sweep inspects.
    hand: usize,
}

impl BlockCache {
    /// Creates an empty cache holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
        }
    }

    /// The maximum number of blocks this cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of blocks currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Copies the cached contents of `block` into `out` and sets the
    /// slot's referenced bit. Returns `false` on a miss.
    ///
    /// `out` must be exactly [`BLOCK_SIZE`] bytes.
    pub fn get(&mut self, block: u64, out: &mut [u8]) -> bool {
        assert_eq!(out.len(), BLOCK_SIZE, "cache reads are whole blocks");
        match self.map.get(&block) {
            Some(&idx) => {
                let slot = &mut self.slots[idx];
                slot.referenced = true;
                out.copy_from_slice(&slot.data);
                true
            }
            None => false,
        }
    }

    /// Inserts (or refreshes) `block` with `data`, evicting via CLOCK if
    /// the cache is full. Returns `true` when a resident block was
    /// evicted to make room.
    ///
    /// `data` must be exactly [`BLOCK_SIZE`] bytes.
    pub fn insert(&mut self, block: u64, data: &[u8]) -> bool {
        assert_eq!(data.len(), BLOCK_SIZE, "cache stores whole blocks");
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&block) {
            let slot = &mut self.slots[idx];
            slot.referenced = true;
            slot.data.copy_from_slice(data);
            return false;
        }
        // Reuse a tombstoned slot if one exists.
        if let Some(idx) = self.slots.iter().position(|s| s.block == TOMBSTONE) {
            let slot = &mut self.slots[idx];
            slot.block = block;
            slot.referenced = true;
            slot.data.copy_from_slice(data);
            self.map.insert(block, idx);
            return false;
        }
        if self.slots.len() < self.capacity {
            let idx = self.slots.len();
            self.slots.push(Slot {
                block,
                referenced: true,
                data: data.to_vec().into_boxed_slice(),
            });
            self.map.insert(block, idx);
            return false;
        }
        // CLOCK sweep: clear referenced bits until a victim is found.
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = &mut self.slots[idx];
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            self.map.remove(&slot.block);
            slot.block = block;
            slot.referenced = true;
            slot.data.copy_from_slice(data);
            self.map.insert(block, idx);
            return true;
        }
    }

    /// Drops `block` from the cache if resident. Called on every write so
    /// stale pre-write contents can never be served.
    pub fn invalidate(&mut self, block: u64) {
        if let Some(idx) = self.map.remove(&block) {
            let slot = &mut self.slots[idx];
            slot.block = TOMBSTONE;
            slot.referenced = false;
        }
    }

    /// Drops every resident block (used across recovery and by corruption
    /// tests that mutate the device behind the store's back).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(byte: u8) -> Vec<u8> {
        vec![byte; BLOCK_SIZE]
    }

    #[test]
    fn hit_returns_inserted_contents() {
        let mut c = BlockCache::new(4);
        assert!(!c.insert(7, &blk(0xAB)));
        let mut out = blk(0);
        assert!(c.get(7, &mut out));
        assert_eq!(out, blk(0xAB));
        assert!(!c.get(8, &mut out));
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        let mut c = BlockCache::new(2);
        c.insert(1, &blk(1));
        c.insert(2, &blk(2));
        // Touch block 1 so it has a second chance; block 2 does not.
        let mut out = blk(0);
        // Fresh inserts start referenced; sweep clears both, then evicts
        // the first unreferenced slot. Re-reference block 1 explicitly.
        assert!(c.get(1, &mut out));
        assert!(c.insert(3, &blk(3)));
        assert_eq!(c.len(), 2);
        // Block 3 must be resident; exactly one of {1, 2} survived.
        assert!(c.get(3, &mut out));
        let survivors = [1u64, 2].iter().filter(|&&b| c.get(b, &mut out)).count();
        assert_eq!(survivors, 1);
    }

    #[test]
    fn invalidate_prevents_stale_hits_and_slot_is_reused() {
        let mut c = BlockCache::new(2);
        c.insert(1, &blk(1));
        c.insert(2, &blk(2));
        c.invalidate(1);
        let mut out = blk(0);
        assert!(!c.get(1, &mut out));
        assert_eq!(c.len(), 1);
        // The tombstoned slot is reused without evicting block 2.
        assert!(!c.insert(3, &blk(3)));
        assert!(c.get(2, &mut out));
        assert!(c.get(3, &mut out));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = BlockCache::new(0);
        assert!(!c.insert(1, &blk(1)));
        let mut out = blk(0);
        assert!(!c.get(1, &mut out));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_refreshes_contents_in_place() {
        let mut c = BlockCache::new(2);
        c.insert(1, &blk(1));
        assert!(!c.insert(1, &blk(9)));
        let mut out = blk(0);
        assert!(c.get(1, &mut out));
        assert_eq!(out, blk(9));
        assert_eq!(c.len(), 1);
    }
}
