//! A crash-safe bank ledger on the SQLite case study (§7.1).
//!
//! Money moves between accounts in transactions; the invariant (total
//! balance) must hold through an arbitrary power failure, with no WAL
//! anywhere in the stack.
//!
//! Run with: `cargo run --example sql_ledger`

use msnap_disk::{Disk, DiskConfig};
use msnap_litedb::{LiteDb, MemSnapBackend};
use msnap_sim::{Nanos, Vt};

const ACCOUNTS: u64 = 64;
const OPENING_BALANCE: u64 = 1_000;

fn balance(db: &mut LiteDb, vt: &mut Vt, table: msnap_litedb::TableId, account: u64) -> u64 {
    db.get(vt, table, account)
        .and_then(|v| {
            v.get(..8)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes)
        })
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut vt = Vt::new(0);
    let backend = MemSnapBackend::format_with_capacity(
        Disk::new(DiskConfig::paper()),
        "ledger.db",
        4096,
        &mut vt,
    );
    let mut db = LiteDb::new(Box::new(backend), &mut vt);
    let accounts = db.create_table(&mut vt, "accounts");
    let thread = vt.id();

    // Seed the ledger.
    db.begin(&mut vt, thread);
    for a in 0..ACCOUNTS {
        db.put(&mut vt, thread, accounts, a, &OPENING_BALANCE.to_le_bytes());
    }
    db.commit(&mut vt, thread)?;
    println!("opened {ACCOUNTS} accounts with {OPENING_BALANCE} each");

    // Shuffle money around; every transfer is a durable transaction.
    let mut committed_transfers = 0;
    let mut crash_at = Nanos::ZERO;
    for i in 0..200u64 {
        let from = (i * 17) % ACCOUNTS;
        let to = (i * 31 + 7) % ACCOUNTS;
        if from == to {
            continue;
        }
        let amount = 1 + i % 50;
        db.begin(&mut vt, thread);
        let from_balance = balance(&mut db, &mut vt, accounts, from);
        let to_balance = balance(&mut db, &mut vt, accounts, to);
        if from_balance >= amount {
            db.put(
                &mut vt,
                thread,
                accounts,
                from,
                &(from_balance - amount).to_le_bytes(),
            );
            db.put(
                &mut vt,
                thread,
                accounts,
                to,
                &(to_balance + amount).to_le_bytes(),
            );
        }
        db.commit(&mut vt, thread)?;
        committed_transfers += 1;
        if i == 149 {
            crash_at = vt.now(); // we'll pull the plug right here
        }
    }
    println!("committed {committed_transfers} transfers; pulling the plug mid-history...");

    // Crash at a point in the middle of the run: the device rolls back to
    // exactly what was durable at that instant.
    let backend = db
        .into_backend()
        .into_any()
        .downcast::<MemSnapBackend>()
        .map_err(|_| "the ledger runs on the MemSnap backend")?;
    let disk = backend.crash(crash_at);

    // Recover and audit.
    let mut vt2 = Vt::new(1);
    let restored = MemSnapBackend::restore(disk, "ledger.db", &mut vt2);
    let mut db2 = LiteDb::new(Box::new(restored), &mut vt2);
    let accounts2 = db2.create_table(&mut vt2, "accounts");
    let total: u64 = (0..ACCOUNTS)
        .map(|a| balance(&mut db2, &mut vt2, accounts2, a))
        .sum();
    println!("recovered ledger total: {total}");
    assert_eq!(
        total,
        ACCOUNTS * OPENING_BALANCE,
        "money must be conserved through the crash"
    );
    println!("invariant holds: no money created or destroyed ✓");
    Ok(())
}
