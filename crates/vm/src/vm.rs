//! The VM subsystem: objects, address spaces, faults, dirty tracking.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use msnap_sim::{Category, Nanos, Vt, VthreadId};

use crate::pagetable::{PageTable, PteLoc};
use crate::PAGE_SIZE;

/// Hardware-priced cost constants (see DESIGN.md §2 for calibration).
pub mod costs {
    use msnap_sim::Nanos;

    /// Trap + handler + trace-buffer append for a minor write fault.
    /// "The minor write fault has a lower cost than a regular COW fault
    /// because no page copy is necessary" (§3).
    pub const MINOR_FAULT: Nanos = Nanos::from_ns(800);
    /// COW fault on a checkpoint-in-progress page: trap + page copy +
    /// reverse-map update.
    pub const COW_FAULT: Nanos = Nanos::from_ns(2_200);
    /// First-touch zero-fill fault.
    pub const ZERO_FILL: Nanos = Nanos::from_ns(1_000);
    /// Direct PTE write through the trace buffer.
    pub const PTE_DIRECT: Nanos = Nanos::from_ns(60);
    /// Visiting one page-table node during a walk.
    pub const PT_NODE_VISIT: Nanos = Nanos::from_ns(30);
    /// Scanning one PTE during a full-table scan.
    pub const PTE_SCAN: Nanos = Nanos::from_ns(2);
    /// Fixed cost of a TLB shootdown IPI round.
    pub const TLB_SHOOTDOWN_BASE: Nanos = Nanos::from_ns(4_500);
    /// Per-page TLB invalidation.
    pub const TLB_INVLPG: Nanos = Nanos::from_ns(40);
    /// Memory copy cost per byte (~20 GB/s).
    pub const MEMCPY_PER_KIB: Nanos = Nanos::from_ns(50);

    /// Cost of copying `len` bytes.
    pub fn memcpy(len: usize) -> Nanos {
        Nanos::from_ns((len as u64 * MEMCPY_PER_KIB.as_ns()) / 1024)
    }
}

/// Granularity of sub-page dirty tracking: one x86 cache line.
/// `PAGE_SIZE / LINE_SIZE == 64`, so a page's line set fits one `u64`.
pub const LINE_SIZE: usize = 64;

/// Bitmask covering lines `first..=last` (inclusive, both < 64).
fn line_span(first: u32, last: u32) -> u64 {
    debug_assert!(first <= last && (last as usize) < PAGE_SIZE / LINE_SIZE);
    let span = last - first + 1;
    if span >= 64 {
        u64::MAX
    } else {
        ((1u64 << span) - 1) << first
    }
}

/// Identifier of an address space (a simulated process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsId(pub u32);

/// Identifier of a memory object (the pageable backing of a mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemObjectId(pub u32);

/// Whether a mapping participates in MemSnap dirty tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackMode {
    /// MemSnap region: pages start read-only; writes fault and are tracked
    /// per thread.
    Tracked,
    /// Ordinary mapping: writable, untracked.
    Untracked,
}

/// The protection-reset strategies compared in the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResetStrategy {
    /// Scan the mapping's entire page table for dirty PTEs (the baseline:
    /// "traverses the page tables of a 1 GiB memory mapping").
    FullTableScan,
    /// Walk the table from the root once per dirty page.
    PerPageWalk,
    /// MemSnap: rewrite the PTEs recorded in the per-thread trace buffer
    /// directly, no traversal.
    TraceBuffer,
}

/// One entry of a thread's dirty list / trace buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyPage {
    /// Object the page belongs to.
    pub object: MemObjectId,
    /// Page index within the object.
    pub obj_page: u64,
    /// Physical page currently backing it.
    pub phys: u32,
    /// Address space the faulting access went through.
    pub space: AsId,
    /// Virtual page number of the access (for the per-page-walk strategy).
    pub vpn: u64,
    /// Stable PTE location (the trace-buffer record).
    pub pte: PteLoc,
    /// Dirty 64-byte cache lines of the page, one bit per line (bit `i`
    /// covers bytes `i*64..(i+1)*64`). Accumulated from the physical
    /// page's line log when the entry is drained by [`Vm::take_dirty`];
    /// zero until then. Survives `untake_dirty`/re-take cycles by union,
    /// so a retried μCheckpoint still knows every line touched since the
    /// last successful one.
    pub lines: u64,
}

/// Fault and maintenance counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VmStats {
    /// Minor write faults (dirty-set tracking).
    pub minor_faults: u64,
    /// COW faults on checkpoint-in-progress pages.
    pub cow_faults: u64,
    /// First-touch zero-fill faults.
    pub zero_fill_faults: u64,
    /// TLB shootdown rounds issued.
    pub shootdowns: u64,
    /// PTEs returned to read-only by protection resets.
    pub pte_resets: u64,
}

/// Errors from mapping management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// The requested virtual address is not page-aligned.
    UnalignedVa,
    /// The requested range overlaps an existing mapping.
    Overlap,
    /// Unknown object or space.
    BadId,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            VmError::UnalignedVa => "virtual address is not page-aligned",
            VmError::Overlap => "mapping overlaps an existing mapping",
            VmError::BadId => "unknown object or address space",
        };
        f.write_str(msg)
    }
}

impl Error for VmError {}

#[derive(Debug)]
struct PhysPage {
    data: Box<[u8]>,
    /// The page is part of an in-flight μCheckpoint until this instant
    /// (the paper's "checkpoint in progress" flag, time-resolved).
    cip_until: Nanos,
    owner: (MemObjectId, u64),
    /// Reverse map: every PTE mapping this page, across address spaces.
    rmap: Vec<(AsId, PteLoc)>,
    /// Thread that holds this page in its dirty set, for optional
    /// isolation checking (paper property ③).
    dirty_owner: Option<VthreadId>,
    /// Write log at 64-byte cache-line granularity: bit `i` set means
    /// line `i` was written through a tracked mapping since the log was
    /// last harvested by [`Vm::take_dirty`]. `PAGE_SIZE / 64 == 64`
    /// lines, so one word covers the page exactly.
    dirty_lines: u64,
}

#[derive(Debug)]
struct MemObject {
    pages: Vec<Option<u32>>,
}

#[derive(Debug, Clone, Copy)]
struct Mapping {
    va_start: u64,
    pages: u64,
    object: MemObjectId,
    tracked: bool,
}

struct Space {
    table: PageTable,
    mappings: Vec<Mapping>, // sorted by va_start
}

/// The simulated VM subsystem. See the crate docs for the model.
pub struct Vm {
    phys: Vec<PhysPage>,
    free_phys: Vec<u32>,
    objects: Vec<MemObject>,
    spaces: Vec<Space>,
    /// Per-thread dirty sets. Ordered so that MS_GLOBAL persists and
    /// seeded fault-plan replays iterate threads deterministically.
    threads: BTreeMap<VthreadId, Vec<DirtyPage>>,
    stats: VmStats,
    strict_isolation: bool,
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("phys_pages", &self.phys.len())
            .field("objects", &self.objects.len())
            .field("spaces", &self.spaces.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Vm {
    /// Creates an empty VM.
    pub fn new() -> Self {
        Vm {
            phys: Vec::new(),
            free_phys: Vec::new(),
            objects: Vec::new(),
            spaces: Vec::new(),
            threads: BTreeMap::new(),
            stats: VmStats::default(),
            strict_isolation: false,
        }
    }

    /// Enables isolation checking: a write to a page already dirtied by a
    /// *different* thread (and not yet flushed) panics. Used by tests to
    /// verify the paper's property ③ in the database integrations.
    pub fn set_strict_isolation(&mut self, strict: bool) {
        self.strict_isolation = strict;
    }

    /// Fault and maintenance counters.
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Creates a new address space.
    pub fn create_space(&mut self) -> AsId {
        self.spaces.push(Space {
            table: PageTable::new(),
            mappings: Vec::new(),
        });
        AsId(self.spaces.len() as u32 - 1)
    }

    /// Creates a memory object of `pages` zero pages.
    pub fn create_object(&mut self, pages: u64) -> MemObjectId {
        self.objects.push(MemObject {
            pages: vec![None; pages as usize],
        });
        MemObjectId(self.objects.len() as u32 - 1)
    }

    /// Number of pages in `object`.
    pub fn object_pages(&self, object: MemObjectId) -> u64 {
        self.objects[object.0 as usize].pages.len() as u64
    }

    /// Maps `object` at `va` in `space`.
    ///
    /// # Errors
    ///
    /// [`VmError::UnalignedVa`] or [`VmError::Overlap`].
    pub fn map(
        &mut self,
        space: AsId,
        object: MemObjectId,
        va: u64,
        mode: TrackMode,
    ) -> Result<(), VmError> {
        if !va.is_multiple_of(PAGE_SIZE as u64) {
            return Err(VmError::UnalignedVa);
        }
        if space.0 as usize >= self.spaces.len() || object.0 as usize >= self.objects.len() {
            return Err(VmError::BadId);
        }
        let pages = self.objects[object.0 as usize].pages.len() as u64;
        let end = va + pages * PAGE_SIZE as u64;
        let sp = &mut self.spaces[space.0 as usize];
        for m in &sp.mappings {
            let m_end = m.va_start + m.pages * PAGE_SIZE as u64;
            if va < m_end && m.va_start < end {
                return Err(VmError::Overlap);
            }
        }
        sp.mappings.push(Mapping {
            va_start: va,
            pages,
            object,
            tracked: mode == TrackMode::Tracked,
        });
        sp.mappings.sort_by_key(|m| m.va_start);
        Ok(())
    }

    fn resolve(&self, space: AsId, va: u64) -> Option<Mapping> {
        let sp = &self.spaces[space.0 as usize];
        let idx = sp
            .mappings
            .partition_point(|m| m.va_start + m.pages * PAGE_SIZE as u64 <= va);
        let m = sp.mappings.get(idx)?;
        (m.va_start <= va).then_some(*m)
    }

    fn alloc_phys(&mut self, owner: (MemObjectId, u64)) -> u32 {
        if let Some(id) = self.free_phys.pop() {
            let p = &mut self.phys[id as usize];
            p.data.fill(0);
            p.cip_until = Nanos::ZERO;
            p.owner = owner;
            p.rmap.clear();
            p.dirty_owner = None;
            p.dirty_lines = 0;
            id
        } else {
            self.phys.push(PhysPage {
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                cip_until: Nanos::ZERO,
                owner,
                rmap: Vec::new(),
                dirty_owner: None,
                dirty_lines: 0,
            });
            (self.phys.len() - 1) as u32
        }
    }

    /// Ensures a physical page and PTE exist for (`space`, `va`); returns
    /// (phys, pte-loc, vpn). Charges zero-fill fault cost on first touch.
    fn ensure_present(
        &mut self,
        vt: &mut Vt,
        space: AsId,
        m: Mapping,
        va: u64,
    ) -> (u32, PteLoc, u64) {
        let vpn = va / PAGE_SIZE as u64;
        let obj_page = (va - m.va_start) / PAGE_SIZE as u64;

        let phys = match self.objects[m.object.0 as usize].pages[obj_page as usize] {
            Some(p) => p,
            None => {
                let p = self.alloc_phys((m.object, obj_page));
                self.objects[m.object.0 as usize].pages[obj_page as usize] = Some(p);
                p
            }
        };

        let sp = &mut self.spaces[space.0 as usize];
        let (loc, visited) = sp.table.walk_alloc(vpn);
        let pte = sp.table.pte_mut(loc);
        if pte.phys.is_none() {
            pte.phys = Some(phys);
            // Tracked mappings install pages read-only so the first write
            // takes the tracking fault; untracked mappings are writable.
            pte.writable = !m.tracked;
            vt.charge(
                Category::PageFault,
                costs::ZERO_FILL + costs::PT_NODE_VISIT * visited as u64,
            );
            self.stats.zero_fill_faults += 1;
            self.phys[phys as usize].rmap.push((space, loc));
        } else if pte.phys != Some(phys) {
            // The object page was COW-replaced through another space;
            // repoint (rmap updates normally keep these in sync).
            pte.phys = Some(phys);
        }
        (phys, loc, vpn)
    }

    /// Writes `data` at (`space`, `va`) on behalf of `thread`, faulting as
    /// needed: zero-fill on first touch, a minor tracking fault on first
    /// write to a clean tracked page, a COW fault on a write to a
    /// checkpoint-in-progress page.
    ///
    /// The copy itself is charged to [`Category::TxMemory`].
    ///
    /// # Panics
    ///
    /// Panics if the range is unmapped (the simulation's SIGSEGV), or — in
    /// strict-isolation mode — if the write dirties a page another thread
    /// dirtied and has not yet flushed (paper property ③).
    pub fn write(&mut self, vt: &mut Vt, space: AsId, thread: VthreadId, va: u64, data: &[u8]) {
        let mut va = va;
        let mut data = data;
        while !data.is_empty() {
            let m = self
                .resolve(space, va)
                .unwrap_or_else(|| panic!("segfault: write to unmapped va {va:#x}"));
            let page_off = (va % PAGE_SIZE as u64) as usize;
            let chunk = data.len().min(PAGE_SIZE - page_off);

            let (mut phys, loc, vpn) = self.ensure_present(vt, space, m, va);
            let obj_page = (va - m.va_start) / PAGE_SIZE as u64;

            let pte = self.spaces[space.0 as usize].table.pte(loc);
            if m.tracked && !pte.writable {
                if self.phys[phys as usize].cip_until > vt.now() {
                    // Unified COW: duplicate the busy page, repoint every
                    // mapping, and track the new copy. The frozen original
                    // keeps servicing the in-flight IO (our disk model
                    // captured its bytes at submission, so it is returned
                    // to the free list immediately).
                    phys = self.cow_replace(vt, phys, (m.object, obj_page));
                    self.stats.cow_faults += 1;
                    vt.charge(Category::PageFault, costs::COW_FAULT);
                } else {
                    vt.charge(Category::PageFault, costs::MINOR_FAULT);
                }
                self.stats.minor_faults += 1;
                let page = &mut self.phys[phys as usize];
                if self.strict_isolation {
                    if let Some(owner) = page.dirty_owner {
                        assert_eq!(
                            owner, thread,
                            "isolation violation: page {obj_page} of {:?} dirtied by \
                             {owner} is being written by {thread} before flush",
                            m.object
                        );
                    }
                }
                page.dirty_owner = Some(thread);
                self.spaces[space.0 as usize].table.pte_mut(loc).writable = true;
                self.threads.entry(thread).or_default().push(DirtyPage {
                    object: m.object,
                    obj_page,
                    phys,
                    space,
                    vpn,
                    pte: loc,
                    lines: 0,
                });
            } else if m.tracked && self.strict_isolation {
                // Writable already: verify the writer is the tracking owner.
                if let Some(owner) = self.phys[phys as usize].dirty_owner {
                    assert_eq!(
                        owner, thread,
                        "isolation violation: page {obj_page} of {:?} dirtied by {owner} \
                         is being written by {thread} before flush",
                        m.object
                    );
                }
            }

            let page = &mut self.phys[phys as usize];
            page.data[page_off..page_off + chunk].copy_from_slice(&data[..chunk]);
            if m.tracked {
                // Log the touched 64-byte lines; sub-page delta shipping
                // reads this as a conservative superset of changed bytes.
                let first = (page_off / LINE_SIZE) as u32;
                let last = ((page_off + chunk - 1) / LINE_SIZE) as u32;
                page.dirty_lines |= line_span(first, last);
            }
            vt.charge(Category::TxMemory, costs::memcpy(chunk));

            va += chunk as u64;
            data = &data[chunk..];
        }
    }

    /// COW-duplicates `old_phys`, repointing every PTE in its reverse map.
    /// Returns the new physical page.
    fn cow_replace(&mut self, _vt: &mut Vt, old_phys: u32, owner: (MemObjectId, u64)) -> u32 {
        let new_phys = self.alloc_phys(owner);
        let (old_data, rmap, old_lines) = {
            let old = &mut self.phys[old_phys as usize];
            (
                old.data.clone(),
                std::mem::take(&mut old.rmap),
                std::mem::take(&mut old.dirty_lines),
            )
        };
        for &(as_id, loc) in &rmap {
            let pte = self.spaces[as_id.0 as usize].table.pte_mut(loc);
            pte.phys = Some(new_phys);
            pte.writable = false; // the fault path re-enables for the writer
        }
        {
            let new = &mut self.phys[new_phys as usize];
            new.data = old_data;
            new.rmap = rmap;
            // Any unharvested line log moves with the content it describes.
            new.dirty_lines = old_lines;
        }
        self.objects[owner.0 .0 as usize].pages[owner.1 as usize] = Some(new_phys);
        // The frozen original's bytes were captured by the IO at
        // submission; recycle it.
        self.free_phys.push(old_phys);
        new_phys
    }

    /// Reads `out.len()` bytes at (`space`, `va`). Untouched pages read as
    /// zeroes without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the range is unmapped.
    pub fn read(&mut self, vt: &mut Vt, space: AsId, va: u64, out: &mut [u8]) {
        let mut va = va;
        let mut out = &mut out[..];
        while !out.is_empty() {
            let m = self
                .resolve(space, va)
                .unwrap_or_else(|| panic!("segfault: read from unmapped va {va:#x}"));
            let page_off = (va % PAGE_SIZE as u64) as usize;
            let chunk = out.len().min(PAGE_SIZE - page_off);
            let obj_page = (va - m.va_start) / PAGE_SIZE as u64;
            match self.objects[m.object.0 as usize].pages[obj_page as usize] {
                Some(phys) => out[..chunk]
                    .copy_from_slice(&self.phys[phys as usize].data[page_off..page_off + chunk]),
                None => out[..chunk].fill(0),
            }
            vt.charge(Category::TxMemory, costs::memcpy(chunk));
            va += chunk as u64;
            out = &mut out[chunk..];
        }
    }

    /// Installs `data` into an object page directly, bypassing dirty
    /// tracking — used to page persisted data back in after a restore
    /// (the data is clean by definition).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `data` exceeds a page.
    pub fn populate_page(&mut self, object: MemObjectId, page: u64, data: &[u8]) {
        assert!(data.len() <= PAGE_SIZE, "populate_page data exceeds a page");
        let phys = match self.objects[object.0 as usize].pages[page as usize] {
            Some(p) => p,
            None => {
                let p = self.alloc_phys((object, page));
                self.objects[object.0 as usize].pages[page as usize] = Some(p);
                p
            }
        };
        self.phys[phys as usize].data[..data.len()].copy_from_slice(data);
    }

    /// Number of pages currently in `thread`'s dirty set.
    pub fn dirty_count(&self, thread: VthreadId) -> usize {
        self.threads.get(&thread).map_or(0, |v| v.len())
    }

    /// Threads that currently have non-empty dirty sets.
    pub fn threads_with_dirty(&self) -> Vec<VthreadId> {
        let mut ids: Vec<VthreadId> = self
            .threads
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(t, _)| *t)
            .collect();
        ids.sort();
        ids
    }

    /// Drains `thread`'s dirty set, optionally restricted to one object
    /// (μCheckpoints persist per-region unless the whole set is
    /// requested). Entries for other objects remain tracked.
    pub fn take_dirty(&mut self, thread: VthreadId, object: Option<MemObjectId>) -> Vec<DirtyPage> {
        let Some(entries) = self.threads.get_mut(&thread) else {
            return Vec::new();
        };
        let mut taken = match object {
            None => std::mem::take(entries),
            Some(obj) => {
                let (taken, kept): (Vec<_>, Vec<_>) =
                    entries.drain(..).partition(|e| e.object == obj);
                *entries = kept;
                taken
            }
        };
        // Harvest the per-phys-page line logs into the drained entries.
        // Union rather than assign: an entry returned by `untake_dirty`
        // already carries lines from the failed attempt.
        for e in &mut taken {
            e.lines |= std::mem::take(&mut self.phys[e.phys as usize].dirty_lines);
        }
        taken
    }

    /// Returns entries drained by [`Vm::take_dirty`] to `thread`'s dirty
    /// set. A failed μCheckpoint must not silently drop the pages it was
    /// persisting: they stay dirty so a retry (after the error is
    /// acknowledged) includes them again.
    pub fn untake_dirty(&mut self, thread: VthreadId, entries: Vec<DirtyPage>) {
        self.threads.entry(thread).or_default().extend(entries);
    }

    /// A page's current bytes (for assembling μCheckpoint IO).
    pub fn page_bytes(&self, entry: &DirtyPage) -> &[u8] {
        &self.phys[entry.phys as usize].data
    }

    /// Reads one whole object page directly (zero if untouched); used by
    /// checkpointing baselines that scan entire objects.
    pub fn object_page_bytes(&self, object: MemObjectId, page: u64) -> Option<&[u8]> {
        self.objects[object.0 as usize].pages[page as usize]
            .map(|p| &self.phys[p as usize].data[..])
    }

    /// Marks the pages of a μCheckpoint busy until `until` (sets the
    /// checkpoint-in-progress mark). Writes to these pages before `until`
    /// take the COW path instead of blocking.
    pub fn freeze(&mut self, entries: &[DirtyPage], until: Nanos) {
        for e in entries {
            let p = &mut self.phys[e.phys as usize];
            p.cip_until = p.cip_until.max(until);
            p.dirty_owner = None;
        }
    }

    /// Reapplies read protection to the μCheckpoint's pages using
    /// `strategy`, then issues a TLB shootdown. Returns the virtual time
    /// the reset cost (the paper's "Resetting Tracking" row in Table 5 and
    /// the async latency column of Table 6).
    pub fn reset_protection(
        &mut self,
        vt: &mut Vt,
        entries: &[DirtyPage],
        strategy: ResetStrategy,
    ) -> Nanos {
        let start = vt.now();
        match strategy {
            ResetStrategy::TraceBuffer => {
                // Direct PTE writes through the recorded locations, plus
                // reverse-map copies for other address spaces.
                for e in entries {
                    let rmap = self.phys[e.phys as usize].rmap.clone();
                    for (as_id, loc) in rmap {
                        self.spaces[as_id.0 as usize].table.pte_mut(loc).writable = false;
                        vt.charge(Category::Memsnap, costs::PTE_DIRECT);
                        self.stats.pte_resets += 1;
                    }
                }
            }
            ResetStrategy::PerPageWalk => {
                for e in entries {
                    let sp = &mut self.spaces[e.space.0 as usize];
                    let (loc, visited) = sp.table.walk(e.vpn);
                    vt.charge(
                        Category::Memsnap,
                        costs::PT_NODE_VISIT * visited as u64 + costs::PTE_DIRECT,
                    );
                    if let Some(loc) = loc {
                        sp.table.pte_mut(loc).writable = false;
                        self.stats.pte_resets += 1;
                    }
                    // Other spaces via rmap, still walked per page.
                    let rmap = self.phys[e.phys as usize].rmap.clone();
                    for (as_id, loc) in rmap {
                        if as_id != e.space {
                            let sp = &mut self.spaces[as_id.0 as usize];
                            sp.table.pte_mut(loc).writable = false;
                            vt.charge(
                                Category::Memsnap,
                                costs::PT_NODE_VISIT * 4 + costs::PTE_DIRECT,
                            );
                            self.stats.pte_resets += 1;
                        }
                    }
                }
            }
            ResetStrategy::FullTableScan => {
                // Scan every PTE of every address space that maps a dirty
                // page, clearing write permission on the dirty ones.
                let mut spaces: Vec<AsId> = entries.iter().map(|e| e.space).collect();
                spaces.sort();
                spaces.dedup();
                let dirty_phys: std::collections::HashSet<u32> =
                    entries.iter().map(|e| e.phys).collect();
                let mut resets = 0u64;
                for as_id in spaces {
                    let sp = &mut self.spaces[as_id.0 as usize];
                    let (nodes, scanned) = sp.table.scan_leaves(|pte| {
                        if let Some(p) = pte.phys {
                            if dirty_phys.contains(&p) && pte.writable {
                                pte.writable = false;
                                resets += 1;
                            }
                        }
                    });
                    vt.charge(
                        Category::Memsnap,
                        costs::PT_NODE_VISIT * nodes as u64 + costs::PTE_SCAN * scanned as u64,
                    );
                }
                self.stats.pte_resets += resets;
            }
        }

        // TLB shootdown for the reset pages.
        vt.charge(
            Category::Memsnap,
            costs::TLB_SHOOTDOWN_BASE + costs::TLB_INVLPG * entries.len() as u64,
        );
        self.stats.shootdowns += 1;

        vt.now() - start
    }
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VA: u64 = 0x7000_0000_0000;

    fn setup(pages: u64) -> (Vm, Vt, AsId, MemObjectId) {
        let mut vm = Vm::new();
        let space = vm.create_space();
        let obj = vm.create_object(pages);
        vm.map(space, obj, VA, TrackMode::Tracked).unwrap();
        (vm, Vt::new(0), space, obj)
    }

    #[test]
    fn first_write_faults_once_per_page() {
        let (mut vm, mut vt, space, _) = setup(8);
        let t = vt.id();
        vm.write(&mut vt, space, t, VA, &[1; 10]);
        vm.write(&mut vt, space, t, VA + 100, &[2; 10]);
        vm.write(&mut vt, space, t, VA + PAGE_SIZE as u64, &[3; 10]);
        assert_eq!(vm.stats().minor_faults, 2);
        assert_eq!(vm.dirty_count(t), 2);
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut vm, mut vt, space, _) = setup(4);
        let t = vt.id();
        let data = [0xAB; 100];
        vm.write(&mut vt, space, t, VA + 4000, &data); // spans two pages
        let mut out = [0u8; 100];
        vm.read(&mut vt, space, VA + 4000, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn untouched_pages_read_zero() {
        let (mut vm, mut vt, space, _) = setup(4);
        let mut out = [7u8; 32];
        vm.read(&mut vt, space, VA + 2 * PAGE_SIZE as u64, &mut out);
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(vm.stats().zero_fill_faults, 0, "reads must not allocate");
    }

    #[test]
    fn dirty_sets_are_per_thread() {
        let (mut vm, mut vt, space, _) = setup(8);
        let t0 = VthreadId(0);
        let t1 = VthreadId(1);
        vm.write(&mut vt, space, t0, VA, &[1]);
        vm.write(&mut vt, space, t1, VA + PAGE_SIZE as u64, &[2]);
        assert_eq!(vm.dirty_count(t0), 1);
        assert_eq!(vm.dirty_count(t1), 1);
        let d0 = vm.take_dirty(t0, None);
        assert_eq!(d0.len(), 1);
        assert_eq!(d0[0].obj_page, 0);
        assert_eq!(vm.dirty_count(t0), 0);
        assert_eq!(vm.dirty_count(t1), 1, "other thread's set is untouched");
    }

    #[test]
    fn take_dirty_filters_by_object() {
        let mut vm = Vm::new();
        let space = vm.create_space();
        let a = vm.create_object(4);
        let b = vm.create_object(4);
        vm.map(space, a, VA, TrackMode::Tracked).unwrap();
        vm.map(space, b, VA + 0x100000, TrackMode::Tracked).unwrap();
        let mut vt = Vt::new(0);
        let t = vt.id();
        vm.write(&mut vt, space, t, VA, &[1]);
        vm.write(&mut vt, space, t, VA + 0x100000, &[2]);
        let only_a = vm.take_dirty(t, Some(a));
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a[0].object, a);
        assert_eq!(vm.dirty_count(t), 1, "object b's page stays tracked");
    }

    #[test]
    fn dirty_lines_track_touched_cache_lines() {
        let (mut vm, mut vt, space, _) = setup(4);
        let t = vt.id();
        // Three scattered 64-byte stores: lines 0, 5, and 63.
        vm.write(&mut vt, space, t, VA, &[1; 64]);
        vm.write(&mut vt, space, t, VA + 5 * 64, &[2; 64]);
        vm.write(&mut vt, space, t, VA + 63 * 64, &[3; 64]);
        // An unaligned store spanning lines 10..=11.
        vm.write(&mut vt, space, t, VA + 10 * 64 + 32, &[4; 64]);
        let dirty = vm.take_dirty(t, None);
        assert_eq!(dirty.len(), 1);
        let want = 1u64 | (1 << 5) | (1 << 63) | (1 << 10) | (1 << 11);
        assert_eq!(dirty[0].lines, want);

        // A page-filling write reports every line.
        vm.write(&mut vt, space, t, VA + PAGE_SIZE as u64, &[5; PAGE_SIZE]);
        let dirty = vm.take_dirty(t, None);
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].lines, u64::MAX);
        assert!(
            dirty[0].lines.count_ones() > 32,
            "heavy churn exceeds cutoff"
        );
    }

    #[test]
    fn untaken_lines_survive_untake_and_union_on_retake() {
        let (mut vm, mut vt, space, _) = setup(4);
        let t = vt.id();
        vm.write(&mut vt, space, t, VA, &[1; 64]);
        let dirty = vm.take_dirty(t, None);
        assert_eq!(dirty[0].lines, 1);
        // Failed μCheckpoint: the entries go back, then a new line is
        // written before the retry. The retake must report both lines.
        vm.untake_dirty(t, dirty);
        vm.write(&mut vt, space, t, VA + 7 * 64, &[2; 64]);
        let dirty = vm.take_dirty(t, None);
        let lines = dirty.iter().fold(0u64, |acc, e| acc | e.lines);
        assert_eq!(lines, 1 | (1 << 7));
    }

    #[test]
    fn untracked_mappings_do_not_fault_writes() {
        let mut vm = Vm::new();
        let space = vm.create_space();
        let obj = vm.create_object(4);
        vm.map(space, obj, VA, TrackMode::Untracked).unwrap();
        let mut vt = Vt::new(0);
        let t = vt.id();
        vm.write(&mut vt, space, t, VA, &[1; 64]);
        assert_eq!(vm.stats().minor_faults, 0);
        assert_eq!(vm.dirty_count(vt.id()), 0);
    }

    #[test]
    fn reset_protection_rearms_tracking() {
        let (mut vm, mut vt, space, _) = setup(4);
        let t = vt.id();
        vm.write(&mut vt, space, t, VA, &[1]);
        let dirty = vm.take_dirty(t, None);
        vm.reset_protection(&mut vt, &dirty, ResetStrategy::TraceBuffer);
        // Next write faults again and lands in a fresh dirty set.
        let faults_before = vm.stats().minor_faults;
        vm.write(&mut vt, space, t, VA, &[2]);
        assert_eq!(vm.stats().minor_faults, faults_before + 1);
        assert_eq!(vm.dirty_count(t), 1);
    }

    #[test]
    fn cip_write_takes_cow_path() {
        let (mut vm, mut vt, space, _) = setup(4);
        let t = vt.id();
        vm.write(&mut vt, space, t, VA, &[1; PAGE_SIZE]);
        let dirty = vm.take_dirty(t, None);
        let old_phys = dirty[0].phys;
        vm.reset_protection(&mut vt, &dirty, ResetStrategy::TraceBuffer);
        vm.freeze(&dirty, vt.now() + Nanos::from_us(50));

        // Write while the checkpoint is in flight: COW, not block.
        vm.write(&mut vt, space, t, VA + 8, &[9]);
        assert_eq!(vm.stats().cow_faults, 1);
        let new_dirty = vm.take_dirty(t, None);
        assert_ne!(new_dirty[0].phys, old_phys, "page was duplicated");
        // The new page carries the old contents plus the new write.
        let mut out = [0u8; 9];
        vm.read(&mut vt, space, VA, &mut out);
        assert_eq!(out, [1, 1, 1, 1, 1, 1, 1, 1, 9]);
    }

    #[test]
    fn write_after_cip_expires_is_minor_fault() {
        let (mut vm, mut vt, space, _) = setup(4);
        let t = vt.id();
        vm.write(&mut vt, space, t, VA, &[1]);
        let dirty = vm.take_dirty(t, None);
        vm.reset_protection(&mut vt, &dirty, ResetStrategy::TraceBuffer);
        vm.freeze(&dirty, vt.now()); // already expired
        vt.advance(Nanos::from_us(1));
        vm.write(&mut vt, space, t, VA, &[2]);
        assert_eq!(vm.stats().cow_faults, 0);
    }

    #[test]
    fn strict_isolation_catches_cross_thread_dirty() {
        let (mut vm, mut vt, space, _) = setup(4);
        vm.set_strict_isolation(true);
        vm.write(&mut vt, space, VthreadId(0), VA, &[1]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            vm.write(&mut vt, space, VthreadId(1), VA, &[2]);
        }));
        assert!(result.is_err(), "property (3) violation must be caught");
    }

    #[test]
    fn multiprocess_reset_reaches_all_spaces() {
        // Two address spaces mapping the same object (PostgreSQL's shared
        // buffer cache); resetting protection must re-arm both.
        let mut vm = Vm::new();
        let s1 = vm.create_space();
        let s2 = vm.create_space();
        let obj = vm.create_object(4);
        vm.map(s1, obj, VA, TrackMode::Tracked).unwrap();
        vm.map(s2, obj, VA, TrackMode::Tracked).unwrap();
        let mut vt = Vt::new(0);
        let t = vt.id();
        // Touch through both spaces so both have PTEs.
        vm.write(&mut vt, s1, t, VA, &[1]);
        let d1 = vm.take_dirty(t, None);
        vm.reset_protection(&mut vt, &d1, ResetStrategy::TraceBuffer);
        let mut out = [0u8; 1];
        vm.read(&mut vt, s2, VA, &mut out);
        assert_eq!(out[0], 1, "both spaces see the same object page");
        // A write through space 2 must fault (its PTE was never writable).
        vm.write(&mut vt, s2, t, VA, &[2]);
        assert!(vm.stats().minor_faults >= 2);
        let mut out1 = [0u8; 1];
        vm.read(&mut vt, s1, VA, &mut out1);
        assert_eq!(out1[0], 2, "write through s2 is visible through s1");
    }

    #[test]
    fn figure1_strategy_cost_ordering() {
        // 1 GiB mapping, small dirty set: trace buffer << per-page walk
        // << full-table scan — the shape of Figure 1.
        let pages = 262_144; // 1 GiB
        let (mut vm, _, space, obj) = setup(pages);
        // Pre-fault the whole mapping so the page table is fully built
        // (the scan baseline pays for the resident set, as in the paper).
        let mut warm = Vt::new(9);
        let twarm = warm.id();
        for p in 0..pages {
            vm.write(&mut warm, space, twarm, VA + p * PAGE_SIZE as u64, &[1]);
        }
        let warm_dirty = vm.take_dirty(twarm, None);
        // Re-arm tracking so each strategy run takes a real fault.
        vm.reset_protection(&mut warm, &warm_dirty, ResetStrategy::TraceBuffer);

        let mut costs_us = Vec::new();
        for strategy in [
            ResetStrategy::TraceBuffer,
            ResetStrategy::PerPageWalk,
            ResetStrategy::FullTableScan,
        ] {
            let mut vt = Vt::new(1);
            let t = vt.id();
            // Dirty one page.
            vm.write(&mut vt, space, t, VA, &[1]);
            let dirty = vm.take_dirty(t, None);
            let cost = vm.reset_protection(&mut vt, &dirty, strategy);
            costs_us.push(cost.as_us_f64());
            let _ = obj;
        }
        assert!(costs_us[0] < costs_us[1], "trace < per-page: {costs_us:?}");
        assert!(costs_us[1] < costs_us[2], "per-page < scan: {costs_us:?}");
        assert!(
            costs_us[2] > 100.0,
            "full scan of 1 GiB table must be expensive: {costs_us:?}"
        );
    }

    #[test]
    fn reset_cost_matches_table5() {
        // Table 5: resetting tracking for 16 pages costs ~5.1 us.
        let (mut vm, mut vt, space, _) = setup(64);
        let t = vt.id();
        for p in 0..16u64 {
            vm.write(&mut vt, space, t, VA + p * PAGE_SIZE as u64, &[1]);
        }
        let dirty = vm.take_dirty(t, None);
        let cost = vm
            .reset_protection(&mut vt, &dirty, ResetStrategy::TraceBuffer)
            .as_us_f64();
        assert!(
            (cost - 5.1).abs() < 2.0,
            "reset cost {cost:.1} us vs paper 5.1 us"
        );
    }

    #[test]
    fn mapping_overlap_rejected() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let a = vm.create_object(4);
        let b = vm.create_object(4);
        vm.map(s, a, VA, TrackMode::Tracked).unwrap();
        assert_eq!(
            vm.map(s, b, VA + PAGE_SIZE as u64, TrackMode::Tracked),
            Err(VmError::Overlap)
        );
        assert_eq!(
            vm.map(s, b, VA + 1, TrackMode::Tracked),
            Err(VmError::UnalignedVa)
        );
    }

    #[test]
    #[should_panic(expected = "segfault")]
    fn unmapped_write_segfaults() {
        let mut vm = Vm::new();
        let s = vm.create_space();
        let mut vt = Vt::new(0);
        let t = vt.id();
        vm.write(&mut vt, s, t, 0x1000, &[1]);
    }
}
