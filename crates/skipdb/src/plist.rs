//! A persistent skip list living in one MemSnap region: the shared
//! machinery of [`MemSnapKv`](crate::MemSnapKv) (single MemTable) and
//! [`RotatingMemSnapKv`](crate::RotatingMemSnapKv) (tiered MemTables).

use memsnap::{MemSnap, RegionHandle};
use msnap_sim::{Category, Nanos, Vt};
use msnap_vm::AsId;

use crate::node::{decode_head, decode_node, encode_head, encode_node, PAGE};
use crate::skiplist::{Insert, SkipIndex};

/// Cost of one per-node spinlock acquire/release pair — the paper's
/// replacement for the lock-free CAS, "in the order of a few dozen
/// cycles".
const NODE_LOCK: Nanos = Nanos::from_ns(25);

/// A page-aligned persistent skip list in a MemSnap region, with a
/// volatile skip-pointer index.
#[derive(Debug)]
pub(crate) struct PersistentSkipList {
    pub region: RegionHandle,
    /// Volatile index: key → region page of its node.
    pub index: SkipIndex<u64>,
    next_page: u64,
}

impl PersistentSkipList {
    /// Wraps a freshly opened region: installs the head sentinel.
    pub fn format(ms: &mut MemSnap, space: AsId, region: RegionHandle, vt: &mut Vt) -> Self {
        let list = PersistentSkipList {
            region,
            index: SkipIndex::new(0),
            next_page: 1,
        };
        let head = encode_head(0);
        let thread = vt.id();
        ms.write(vt, space, thread, region.addr, &head)
            .expect("region writes are infallible");
        list
    }

    /// Rebuilds from a restored region by walking the persistent linked
    /// list and recomputing skip pointers.
    pub fn restore(ms: &mut MemSnap, space: AsId, region: RegionHandle, vt: &mut Vt) -> Self {
        let mut list = PersistentSkipList {
            region,
            index: SkipIndex::new(0),
            next_page: 1,
        };
        let mut buf = [0u8; PAGE];
        ms.read(vt, space, region.addr, &mut buf)
            .expect("region reads are infallible");
        let mut next = decode_head(&buf).unwrap_or(0);
        let mut max_page = 0;
        while next != 0 {
            ms.read(vt, space, region.addr + next * PAGE as u64, &mut buf)
                .expect("region reads are infallible");
            let node = decode_node(&buf).expect("linked list points at valid nodes");
            list.index.insert(vt, node.key, next);
            max_page = max_page.max(next);
            next = node.next;
        }
        list.next_page = max_page + 1;
        list
    }

    /// Node pages in use (including the head sentinel).
    pub fn pages_used(&self) -> u64 {
        self.next_page
    }

    /// Whether another node still fits.
    pub fn has_room(&self) -> bool {
        self.next_page < self.region.pages
    }

    /// Inserts or rewrites a key without persisting; the caller issues
    /// the μCheckpoint.
    ///
    /// # Panics
    ///
    /// Panics if the region is full (check [`PersistentSkipList::has_room`]).
    pub fn insert_volatile(
        &mut self,
        ms: &mut MemSnap,
        space: AsId,
        vt: &mut Vt,
        key: u64,
        value: &[u8],
    ) {
        let thread = vt.id();
        match self.index.insert(vt, key, 0) {
            Insert::Replaced(page) => {
                // Same key: rewrite the node's value in place.
                self.index.insert(vt, key, page); // restore payload
                vt.charge(Category::Locking, NODE_LOCK);
                let mut buf = [0u8; PAGE];
                ms.read(vt, space, self.region.addr + page * PAGE as u64, &mut buf)
                    .expect("region reads are infallible");
                let node = decode_node(&buf).expect("index points at valid nodes");
                let image = encode_node(key, value, node.next);
                ms.write(
                    vt,
                    space,
                    thread,
                    self.region.addr + page * PAGE as u64,
                    &image,
                )
                .expect("region writes are infallible");
            }
            Insert::New {
                pred_payload,
                succ_payload,
            } => {
                let page = self.next_page;
                assert!(
                    page < self.region.pages,
                    "memtable region full ({} pages)",
                    self.region.pages
                );
                self.next_page += 1;
                self.index.insert(vt, key, page); // set real payload
                                                  // Lock pred + new node (per-node spinlocks, property ③).
                vt.charge(Category::Locking, NODE_LOCK * 2);
                // New node first (points at the successor), then splice
                // the predecessor — crash-safe publication order.
                let image = encode_node(key, value, succ_payload.unwrap_or(0));
                ms.write(
                    vt,
                    space,
                    thread,
                    self.region.addr + page * PAGE as u64,
                    &image,
                )
                .expect("region writes are infallible");
                let pred = pred_payload.unwrap_or(0);
                ms.write(
                    vt,
                    space,
                    thread,
                    self.region.addr + pred * PAGE as u64 + 16,
                    &page.to_le_bytes(),
                )
                .expect("region writes are infallible");
            }
        }
    }

    /// Reads a key's value through the index.
    pub fn get(&self, ms: &mut MemSnap, space: AsId, vt: &mut Vt, key: u64) -> Option<Vec<u8>> {
        let page = *self.index.find(vt, key)?;
        let mut buf = [0u8; PAGE];
        ms.read(vt, space, self.region.addr + page * PAGE as u64, &mut buf)
            .expect("region reads are infallible");
        decode_node(&buf).map(|n| n.value)
    }

    /// Ordered scan of up to `limit` entries with keys ≥ `key`.
    pub fn seek(
        &self,
        ms: &mut MemSnap,
        space: AsId,
        vt: &mut Vt,
        key: u64,
        limit: usize,
    ) -> Vec<(u64, Vec<u8>)> {
        let pages: Vec<(u64, u64)> = self
            .index
            .iter_from(vt, key)
            .take(limit)
            .map(|(k, p)| (k, *p))
            .collect();
        pages
            .into_iter()
            .map(|(k, page)| {
                let mut buf = [0u8; PAGE];
                ms.read(vt, space, self.region.addr + page * PAGE as u64, &mut buf)
                    .expect("region reads are infallible");
                (
                    k,
                    decode_node(&buf)
                        .expect("index points at valid nodes")
                        .value,
                )
            })
            .collect()
    }
}
