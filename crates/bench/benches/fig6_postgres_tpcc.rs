//! Figure 6: PostgreSQL TPC-C across four storage stacks — transactions
//! per second, device write throughput, and IO/s.

use msnap_bench::{header, table};
use msnap_pgdb::tpcc::{run, setup, TpccConfig};
use msnap_pgdb::StoreVariant;
use msnap_sim::{Nanos, Vt};

fn main() {
    header(
        "Figure 6: PostgreSQL TPC-C storage-stack comparison (measured)",
        "2 warehouses, 8 connections, 500 ms virtual run (paper: 150 \
         warehouses, 24 connections, 2 min).",
    );
    let cfg = TpccConfig {
        warehouses: 2,
        connections: 8,
        duration: Nanos::from_ms(500),
        ckpt_wal_bytes: 1 << 20,
        ckpt_interval: Nanos::from_ms(20),
        seed: 11,
    };

    let mut rows = Vec::new();
    let mut baseline_tps = 0.0;
    for (variant, label) in [
        (StoreVariant::Baseline, "ffs (baseline)"),
        (StoreVariant::FfsMmap, "ffs-mmap"),
        (StoreVariant::FfsMmapBufdirect, "ffs-mmap-bd"),
        (StoreVariant::MemSnap, "memsnap"),
    ] {
        let mut vt = Vt::new(u32::MAX);
        let db = setup(variant, cfg.warehouses, cfg.connections, &mut vt);
        let (report, _) = run(db, &cfg, vt.now());
        if variant == StoreVariant::Baseline {
            baseline_tps = report.tps;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", report.tps),
            format!("{:+.1}%", (report.tps / baseline_tps - 1.0) * 100.0),
            format!("{:.1}", report.io.write_mib_s),
            format!(
                "{:.0}",
                report.io.bytes_written as f64 / report.txns as f64 / 1024.0
            ),
            format!("{:.0}", report.io.iops),
            format!("{}", report.checkpoints),
        ]);
    }
    table(
        &[
            "variant",
            "tps",
            "vs baseline",
            "write MiB/s",
            "KiB/txn",
            "IO/s",
            "ckpts",
        ],
        &rows,
    );
    println!();
    println!(
        "Shape checks (paper): mmap variants lose throughput vs the \
         baseline (bufdirect worst, ~-25%); MemSnap matches or beats the \
         baseline (+1.5%) while writing far fewer bytes (-80%) with more \
         individual IOs (+26%)."
    );
}
