//! Table 10: MemSnap vs Aurora persistence-cost breakdown for the same
//! 64 KiB RocksDB write.

use memsnap::{MemSnap, PersistFlags, RegionSel, PAGE_SIZE};
use msnap_aurora::Aurora;
use msnap_bench::{header, table, us};
use msnap_disk::{Disk, DiskConfig};
use msnap_sim::Vt;

fn main() {
    header(
        "Table 10: MemSnap vs Aurora persistence cost (us)",
        "One 64 KiB persist from the RocksDB scenario. Paper values in \
         parentheses.",
    );

    // MemSnap side.
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let mut vt = Vt::new(0);
    let space = ms.vm_mut().create_space();
    let r = ms
        .msnap_open(&mut vt, space, "memtable", 16 * 1024)
        .unwrap();
    let thread = vt.id();
    for i in 0..16u64 {
        ms.write(
            &mut vt,
            space,
            thread,
            r.addr + i * 11 * PAGE_SIZE as u64,
            &[1u8; PAGE_SIZE],
        )
        .unwrap();
    }
    ms.msnap_persist(
        &mut vt,
        thread,
        RegionSel::Region(r.md),
        PersistFlags::sync(),
    )
    .unwrap();
    let b = ms.last_persist_breakdown();

    // Aurora side.
    let mut aurora = Aurora::format(Disk::new(DiskConfig::paper()));
    let mut avt = Vt::new(0);
    let region = aurora
        .create_region(&mut avt, "memtable", 16 * 1024)
        .unwrap();
    for i in 0..16u64 {
        aurora.write(
            &mut avt,
            region,
            i * 11 * PAGE_SIZE as u64,
            &[2u8; PAGE_SIZE],
        );
    }
    let rep = aurora.checkpoint_region(&mut avt, region, 12, true);

    table(
        &["operation", "memsnap (paper)", "aurora (paper)"],
        &[
            vec![
                "Waiting for Calls".into(),
                "N/A".into(),
                format!(
                    "{} (26.7)",
                    us((rep.waiting_for_calls + rep.stopping_threads).as_us_f64())
                ),
            ],
            vec![
                "Applying COW".into(),
                format!("{} (5.1)", us(b.resetting_tracking.as_us_f64())),
                format!("{} (79.8)", us(rep.applying_cow.as_us_f64())),
            ],
            vec![
                "Flush IO".into(),
                format!(
                    "{} (46.3)",
                    us((b.initiating_writes + b.waiting_on_io).as_us_f64())
                ),
                format!("{} (27.9)", us(rep.flush_io.as_us_f64())),
            ],
            vec![
                "Removing COW".into(),
                "N/A".into(),
                format!("{} (91.7)", us(rep.removing_cow.as_us_f64())),
            ],
            vec![
                "Total".into(),
                format!("{} (51.4)", us(b.total().as_us_f64())),
                format!("{} (208.1)", us(rep.total().as_us_f64())),
            ],
        ],
    );
    println!();
    println!(
        "Shape check: Aurora's region COW tracking (stop + shadow + \
         collapse) is ~80% of its latency; MemSnap pays none of it."
    );
}
