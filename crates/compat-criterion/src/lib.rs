//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion's API its microbenchmarks use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It measures and
//! reports a median wall-clock time per iteration — no statistical
//! regression analysis, plotting, or HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much setup output to batch per timing run. All variants behave
/// identically here (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input of unknown size.
    PerIteration,
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    fn new(target: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(target),
            target,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Benchmark driver; create with [`Criterion::default`].
pub struct Criterion {
    iterations: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: these benches exist as smoke tests and rough
        // numbers, not publication-grade statistics.
        let iterations = std::env::var("CRITERION_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30);
        Criterion { iterations }
    }
}

impl Criterion {
    /// Runs `body` with a [`Bencher`] and prints the median iteration
    /// time under `name`.
    pub fn bench_function(&mut self, name: &str, body: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut body = body;
        let mut b = Bencher::new(self.iterations);
        body(&mut b);
        let med = b.median();
        println!("{name:<40} median {med:>12.3?} ({} iters)", self.iterations);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { iterations: 5 };
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 5);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher::new(4);
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
        assert_eq!(b.samples.len(), 4);
    }
}
