//! Snapshot retention and replication: what a retained epoch costs and
//! what incremental shipping saves.
//!
//! Two sweeps on the raw object store, and one end-to-end online-backup
//! run through LiteDB:
//!
//! - snapshot-create cost vs dirty-set size (the create flushes a full
//!   root, so its cost is O(pages dirtied since the last flush), plus a
//!   constant dual-slot catalog write);
//! - delta bytes shipped vs the full image at the same instant, as the
//!   churn between consecutive snapshots grows;
//! - LiteDB online backup: full-image bootstrap, then delta rounds.
//!
//! Emits the machine-readable `BENCH_snapshot.json` at the workspace
//! root.

use msnap_bench::{header, table, us};
use msnap_disk::{Disk, DiskConfig, BLOCK_SIZE};
use msnap_litedb::drivers::{run_online_backup, OnlineBackupConfig};
use msnap_sim::{Nanos, Vt};
use msnap_snap::sync_to;
use msnap_store::ObjectStore;

const OBJECT_PAGES: u64 = 1024;
const DIRTY_SIZES: [u64; 4] = [16, 64, 256, 1024];
const CHURN_SIZES: [u64; 4] = [8, 32, 128, 512];

fn page_image(tag: u64, page: u64) -> Vec<u8> {
    let mut img = vec![0u8; BLOCK_SIZE];
    img[0..8].copy_from_slice(&tag.to_le_bytes());
    img[8..16].copy_from_slice(&page.to_le_bytes());
    img
}

/// Persists `pages` sequential page images in one μCheckpoint.
fn churn(
    vt: &mut Vt,
    disk: &mut Disk,
    store: &mut ObjectStore,
    obj: msnap_store::ObjectId,
    tag: u64,
    pages: u64,
) {
    let images: Vec<Vec<u8>> = (0..pages).map(|p| page_image(tag, p)).collect();
    let iov: Vec<(u64, &[u8])> = images
        .iter()
        .enumerate()
        .map(|(p, img)| (p as u64, &img[..]))
        .collect();
    let t = store.persist(vt, disk, obj, &iov).unwrap();
    ObjectStore::wait(vt, t);
}

struct CreatePoint {
    dirty_pages: u64,
    create: Nanos,
    pinned_blocks: usize,
}

/// Snapshot-create cost as a function of the dirty set it must flush.
fn sweep_create() -> Vec<CreatePoint> {
    header(
        "Snapshot create cost vs dirty-set size",
        &format!(
            "{OBJECT_PAGES}-page object; each point dirties N pages, then \
             retains the epoch. Create = full-root flush + catalog write."
        ),
    );
    let mut points = Vec::new();
    for dirty in DIRTY_SIZES {
        let mut disk = Disk::new(DiskConfig::paper());
        let mut store = ObjectStore::format(&mut disk);
        let mut vt = Vt::new(0);
        let obj = store.create(&mut vt, &mut disk, "db").unwrap();
        churn(&mut vt, &mut disk, &mut store, obj, 0, OBJECT_PAGES);
        store
            .snapshot_create(&mut vt, &mut disk, obj, "warm")
            .unwrap();
        churn(&mut vt, &mut disk, &mut store, obj, 1, dirty);
        let t0 = vt.now();
        store
            .snapshot_create(&mut vt, &mut disk, obj, "bench")
            .unwrap();
        points.push(CreatePoint {
            dirty_pages: dirty,
            create: vt.now() - t0,
            pinned_blocks: store.pinned_blocks(),
        });
    }
    table(
        &["dirty pages", "create us", "pinned blocks"],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.dirty_pages),
                    us(p.create.as_us_f64()),
                    format!("{}", p.pinned_blocks),
                ]
            })
            .collect::<Vec<_>>(),
    );
    points
}

struct DeltaPoint {
    churned_pages: u64,
    delta_pages: u64,
    delta_bytes: u64,
    full_bytes: u64,
    sync: Nanos,
}

/// Delta bytes shipped vs the full image at the same instant.
fn sweep_delta() -> Vec<DeltaPoint> {
    header(
        "Delta shipping vs full image",
        &format!(
            "{OBJECT_PAGES}-page object replicated once in full; each round \
             churns N pages and ships the structural diff."
        ),
    );
    let mut disk = Disk::new(DiskConfig::paper());
    let mut store = ObjectStore::format(&mut disk);
    let mut vt = Vt::new(0);
    let obj = store.create(&mut vt, &mut disk, "db").unwrap();
    churn(&mut vt, &mut disk, &mut store, obj, 0, OBJECT_PAGES);
    store
        .snapshot_create(&mut vt, &mut disk, obj, "s0")
        .unwrap();

    let mut rdisk = Disk::new(DiskConfig::paper());
    let mut replica = ObjectStore::format(&mut rdisk);
    sync_to(
        &mut vt,
        &mut store,
        &mut disk,
        &mut replica,
        &mut rdisk,
        "s0",
    )
    .unwrap();

    let mut points = Vec::new();
    let mut base = "s0".to_string();
    for (round, churned) in CHURN_SIZES.into_iter().enumerate() {
        churn(
            &mut vt,
            &mut disk,
            &mut store,
            obj,
            round as u64 + 1,
            churned,
        );
        let name = format!("s{}", round + 1);
        store
            .snapshot_create(&mut vt, &mut disk, obj, &name)
            .unwrap();
        // What a non-incremental backup would ship at this instant.
        let full_bytes = msnap_snap::DeltaStream::build(&mut vt, &mut disk, &mut store, None, &name)
            .unwrap()
            .encoded_len() as u64;
        let t0 = vt.now();
        let report = sync_to(
            &mut vt,
            &mut store,
            &mut disk,
            &mut replica,
            &mut rdisk,
            &name,
        )
        .unwrap();
        assert!(!report.full_sync, "base is retained: rounds must be deltas");
        points.push(DeltaPoint {
            churned_pages: churned,
            delta_pages: report.pages,
            delta_bytes: report.bytes,
            full_bytes,
            sync: vt.now() - t0,
        });
        store.snapshot_delete(&mut vt, &mut disk, &base).unwrap();
        base = name;
    }
    table(
        &[
            "churned",
            "delta pages",
            "delta KiB",
            "full KiB",
            "saved",
            "sync us",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.churned_pages),
                    format!("{}", p.delta_pages),
                    format!("{:.1}", p.delta_bytes as f64 / 1024.0),
                    format!("{:.1}", p.full_bytes as f64 / 1024.0),
                    format!("{:.1}x", p.full_bytes as f64 / p.delta_bytes as f64),
                    us(p.sync.as_us_f64()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    points
}

fn main() {
    let create = sweep_create();
    let delta = sweep_delta();

    header(
        "LiteDB online backup",
        "12 transactions, backup every 4: one full bootstrap, then deltas.",
    );
    let backup = run_online_backup(&OnlineBackupConfig {
        txns: 12,
        keys_per_txn: 8,
        backup_every: 4,
    });
    assert!(backup.consistent, "replica must match the last snapshot");
    table(
        &[
            "backups",
            "full",
            "delta",
            "delta pages",
            "full-equiv pages",
            "bytes shipped",
        ],
        &[vec![
            format!("{}", backup.backups),
            format!("{}", backup.full_syncs),
            format!("{}", backup.delta_syncs),
            format!("{}", backup.delta_pages),
            format!("{}", backup.full_equivalent_pages),
            format!("{}", backup.bytes_shipped),
        ]],
    );

    let create_json = create
        .iter()
        .map(|p| {
            format!(
                "{{\"dirty_pages\":{},\"create_us\":{:.3},\"pinned_blocks\":{}}}",
                p.dirty_pages,
                p.create.as_us_f64(),
                p.pinned_blocks
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let delta_json = delta
        .iter()
        .map(|p| {
            format!(
                "{{\"churned_pages\":{},\"delta_pages\":{},\"delta_bytes\":{},\
                 \"full_bytes\":{},\"sync_us\":{:.3}}}",
                p.churned_pages,
                p.delta_pages,
                p.delta_bytes,
                p.full_bytes,
                p.sync.as_us_f64()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"snapshot\",\n  \"object_pages\": {OBJECT_PAGES},\n  \
         \"create\": [\n    {create_json}\n  ],\n  \"delta\": [\n    {delta_json}\n  ],\n  \
         \"online_backup\": {{\"backups\":{},\"full_syncs\":{},\"delta_syncs\":{},\
         \"delta_pages\":{},\"full_equivalent_pages\":{},\"bytes_shipped\":{}}}\n}}\n",
        backup.backups,
        backup.full_syncs,
        backup.delta_syncs,
        backup.delta_pages,
        backup.full_equivalent_pages,
        backup.bytes_shipped,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    std::fs::write(path, &json).expect("workspace root is writable");
    println!();
    println!(
        "wrote {} create + {} delta points to BENCH_snapshot.json",
        create.len(),
        delta.len()
    );
}
