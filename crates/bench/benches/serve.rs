//! msnap-serve at fleet scale: ≥1000 simulated connections multiplexed
//! onto one replicated, sharded MemSnap node under two-level Zipfian
//! tenant×key skew.
//!
//! Two runs:
//!
//! - **steady**: 1024 connections, no faults — serving throughput,
//!   put/get p50/p99 round-trip latency, replica read share, and the
//!   μCheckpoint-fed notify stream volume;
//! - **failover**: the same fleet with the primary crashed mid-run and
//!   a replica promoted — pre- vs post-failover latency, sessions
//!   re-homed, and the oracle count of lost acknowledged writes (must
//!   be 0 under replicated acks).
//!
//! Emits the machine-readable `BENCH_serve.json` at the workspace root.

use msnap_bench::{header, table, us};
use msnap_serve::harness::run;
use msnap_serve::{FleetConfig, RunConfig, RunReport, ServeConfig};
use msnap_sim::{Nanos, NetConfig};

const CONNECTIONS: usize = 1024;

fn steady_fleet() -> FleetConfig {
    FleetConfig {
        clients: CONNECTIONS,
        tenants: 8,
        subscribers: 64,
        seed: 0xBE7C,
        ..FleetConfig::default()
    }
}

fn steady() -> RunReport {
    let cfg = RunConfig {
        serve: ServeConfig::default(),
        client_net: NetConfig::calm(11),
        replicas: 2,
        replica_net: NetConfig::calm(13),
        rounds: 400,
        quantum: Nanos::from_us(100),
        failover_at: None,
        drain_rounds: 400,
    };
    run(&steady_fleet(), &cfg).expect("steady serve run")
}

fn failover() -> RunReport {
    // Post-promotion the store is single-shard: the failover topology
    // keeps tenants × stripes inside its snapshot catalog budget (see
    // ServeConfig docs), and runs a primary+standby pair so only the
    // rejoining old primary consumes per-object delta bases afterwards.
    let fleet = FleetConfig {
        clients: CONNECTIONS,
        tenants: 3,
        subscribers: 32,
        seed: 0xFA17,
        ..FleetConfig::default()
    };
    let cfg = RunConfig {
        serve: ServeConfig {
            stripes: 2,
            ..ServeConfig::default()
        },
        client_net: NetConfig::calm(17),
        replicas: 1,
        replica_net: NetConfig::calm(19),
        rounds: 400,
        quantum: Nanos::from_us(100),
        failover_at: Some(200),
        drain_rounds: 800,
    };
    run(&fleet, &cfg).expect("failover serve run")
}

fn kops_per_sec(ops: u64, vt: Nanos) -> f64 {
    ops as f64 / (vt.as_ns() as f64 / 1e9) / 1e3
}

fn main() {
    header(
        "msnap-serve: 1024-connection service",
        "watch streams fed by snapshot diffs; puts acked after every replica applies",
    );

    let s = steady();
    let f = failover();
    let ff = f.failover.clone().expect("failover injected");

    table(
        &[
            "run", "ops", "kops/s", "put p50", "put p99", "get p50", "get p99",
        ],
        &[
            vec![
                "steady".into(),
                s.ops.to_string(),
                format!("{:.1}", kops_per_sec(s.ops, s.virtual_time)),
                us(s.put_lat.percentile(50.0).as_us_f64()),
                us(s.put_lat.percentile(99.0).as_us_f64()),
                us(s.get_lat.percentile(50.0).as_us_f64()),
                us(s.get_lat.percentile(99.0).as_us_f64()),
            ],
            vec![
                "failover".into(),
                f.ops.to_string(),
                format!("{:.1}", kops_per_sec(f.ops, f.virtual_time)),
                us(f.put_lat.percentile(50.0).as_us_f64()),
                us(f.put_lat.percentile(99.0).as_us_f64()),
                us(f.get_lat.percentile(50.0).as_us_f64()),
                us(f.get_lat.percentile(99.0).as_us_f64()),
            ],
        ],
    );
    table(
        &["failover era", "p50", "p99", "note"],
        &[
            vec![
                "pre-crash".into(),
                us(f.pre_lat.percentile(50.0).as_us_f64()),
                us(f.pre_lat.percentile(99.0).as_us_f64()),
                String::new(),
            ],
            vec![
                "post-promotion".into(),
                us(f.post_lat.percentile(50.0).as_us_f64()),
                us(f.post_lat.percentile(99.0).as_us_f64()),
                format!(
                    "{} lost acked writes, {}/{} sessions re-homed",
                    ff.lost_acked_writes, ff.reconnected_sessions, CONNECTIONS
                ),
            ],
        ],
    );
    println!(
        "  steady: {} notify bundles ({} events) over {} cuts, replica read share {:.1}%",
        s.server.notify_bundles,
        s.server.notify_events,
        s.server.cuts,
        100.0 * s.replica_reads as f64 / (s.replica_reads + s.primary_reads).max(1) as f64,
    );

    assert_eq!(ff.lost_acked_writes, 0, "acked writes lost in failover");
    assert!(f.drained, "failover fleet failed to drain");
    assert!(s.drained, "steady fleet failed to drain");

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"connections\": {CONNECTIONS},\n  \
         \"steady\": {{\"ops\":{},\"puts\":{},\"gets\":{},\"scans\":{},\
         \"kops_per_sec\":{:.3},\"put_p50_us\":{:.3},\"put_p99_us\":{:.3},\
         \"get_p50_us\":{:.3},\"get_p99_us\":{:.3},\"notify_bundles\":{},\
         \"notify_events\":{},\"cuts\":{},\"replica_reads\":{},\"primary_reads\":{}}},\n  \
         \"failover\": {{\"ops\":{},\"kops_per_sec\":{:.3},\
         \"pre_p50_us\":{:.3},\"pre_p99_us\":{:.3},\
         \"post_p50_us\":{:.3},\"post_p99_us\":{:.3},\
         \"lost_acked_writes\":{},\"acked_before\":{},\
         \"rehomed_subscribers\":{},\"reconnected_sessions\":{},\
         \"reconnects\":{},\"promoted\":\"{}\"}}\n}}\n",
        s.ops,
        s.puts,
        s.gets,
        s.scans,
        kops_per_sec(s.ops, s.virtual_time),
        s.put_lat.percentile(50.0).as_us_f64(),
        s.put_lat.percentile(99.0).as_us_f64(),
        s.get_lat.percentile(50.0).as_us_f64(),
        s.get_lat.percentile(99.0).as_us_f64(),
        s.server.notify_bundles,
        s.server.notify_events,
        s.server.cuts,
        s.replica_reads,
        s.primary_reads,
        f.ops,
        kops_per_sec(f.ops, f.virtual_time),
        f.pre_lat.percentile(50.0).as_us_f64(),
        f.pre_lat.percentile(99.0).as_us_f64(),
        f.post_lat.percentile(50.0).as_us_f64(),
        f.post_lat.percentile(99.0).as_us_f64(),
        ff.lost_acked_writes,
        ff.acked_before,
        ff.rehomed_subscribers,
        ff.reconnected_sessions,
        f.reconnects,
        ff.promoted,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("workspace root is writable");
    println!();
    println!("wrote BENCH_serve.json");
}
