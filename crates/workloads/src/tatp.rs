//! The TATP telecom benchmark (§7.1, Figure 5): an 80% read / 20% write
//! transaction mix over four tables keyed by subscriber id.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The TATP tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TatpTable {
    /// SUBSCRIBER: one row per subscriber.
    Subscriber,
    /// ACCESS_INFO: 1–4 rows per subscriber.
    AccessInfo,
    /// SPECIAL_FACILITY: 1–4 rows per subscriber.
    SpecialFacility,
    /// CALL_FORWARDING: 0–3 rows per special facility.
    CallForwarding,
}

/// One TATP transaction, in the standard mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TatpTxn {
    /// 35%: read a subscriber row.
    GetSubscriberData {
        /// Subscriber id.
        sid: u64,
    },
    /// 10%: read special facility + call forwarding.
    GetNewDestination {
        /// Subscriber id.
        sid: u64,
    },
    /// 35%: read access info.
    GetAccessData {
        /// Subscriber id.
        sid: u64,
    },
    /// 2%: update subscriber + special facility rows.
    UpdateSubscriberData {
        /// Subscriber id.
        sid: u64,
        /// New bit field value.
        bit: u8,
    },
    /// 14%: update the subscriber's location field.
    UpdateLocation {
        /// Subscriber id.
        sid: u64,
        /// New location value.
        location: u32,
    },
    /// 2%: insert a call-forwarding row.
    InsertCallForwarding {
        /// Subscriber id.
        sid: u64,
        /// Start time slot (0, 8, 16).
        start: u8,
    },
    /// 2%: delete a call-forwarding row.
    DeleteCallForwarding {
        /// Subscriber id.
        sid: u64,
        /// Start time slot.
        start: u8,
    },
}

impl TatpTxn {
    /// Whether the transaction writes (must commit durably).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            TatpTxn::UpdateSubscriberData { .. }
                | TatpTxn::UpdateLocation { .. }
                | TatpTxn::InsertCallForwarding { .. }
                | TatpTxn::DeleteCallForwarding { .. }
        )
    }

    /// The subscriber the transaction touches.
    pub fn sid(&self) -> u64 {
        match self {
            TatpTxn::GetSubscriberData { sid }
            | TatpTxn::GetNewDestination { sid }
            | TatpTxn::GetAccessData { sid }
            | TatpTxn::UpdateSubscriberData { sid, .. }
            | TatpTxn::UpdateLocation { sid, .. }
            | TatpTxn::InsertCallForwarding { sid, .. }
            | TatpTxn::DeleteCallForwarding { sid, .. } => *sid,
        }
    }
}

/// The TATP transaction generator over `subscribers` rows.
#[derive(Debug)]
pub struct Tatp {
    subscribers: u64,
    rng: StdRng,
}

impl Tatp {
    /// Creates a generator (1 K – 1 M subscribers in the paper's sweep).
    ///
    /// # Panics
    ///
    /// Panics if `subscribers == 0`.
    pub fn new(subscribers: u64, seed: u64) -> Self {
        assert!(subscribers > 0, "TATP needs subscribers");
        Tatp {
            subscribers,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of subscriber rows.
    pub fn subscribers(&self) -> u64 {
        self.subscribers
    }

    /// Generates the next transaction in the standard mix.
    pub fn next_txn(&mut self) -> TatpTxn {
        let sid = self.rng.gen_range(0..self.subscribers);
        let roll: f64 = self.rng.gen();
        if roll < 0.35 {
            TatpTxn::GetSubscriberData { sid }
        } else if roll < 0.45 {
            TatpTxn::GetNewDestination { sid }
        } else if roll < 0.80 {
            TatpTxn::GetAccessData { sid }
        } else if roll < 0.82 {
            TatpTxn::UpdateSubscriberData {
                sid,
                bit: self.rng.gen_range(0..=1),
            }
        } else if roll < 0.96 {
            TatpTxn::UpdateLocation {
                sid,
                location: self.rng.gen(),
            }
        } else if roll < 0.98 {
            TatpTxn::InsertCallForwarding {
                sid,
                start: self.rng.gen_range(0u8..3) * 8,
            }
        } else {
            TatpTxn::DeleteCallForwarding {
                sid,
                start: self.rng.gen_range(0u8..3) * 8,
            }
        }
    }
}

impl Iterator for Tatp {
    type Item = TatpTxn;

    fn next(&mut self) -> Option<TatpTxn> {
        Some(self.next_txn())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_80_20() {
        let mut g = Tatp::new(100_000, 11);
        let n = 50_000;
        let writes = (0..n).filter(|_| g.next_txn().is_write()).count();
        let pct = writes as f64 / n as f64 * 100.0;
        assert!((pct - 20.0).abs() < 1.5, "write mix {pct:.1}%");
    }

    #[test]
    fn sids_stay_in_range() {
        let mut g = Tatp::new(50, 2);
        for _ in 0..1000 {
            assert!(g.next_txn().sid() < 50);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a: Vec<TatpTxn> = Tatp::new(1000, 8).take(32).collect();
        let b: Vec<TatpTxn> = Tatp::new(1000, 8).take(32).collect();
        assert_eq!(a, b);
    }
}
