//! Detectably-recoverable lock-free persistent indexes over MemSnap
//! regions.
//!
//! SkipDB's writer path serializes every mutator behind `&mut self`; the
//! group-commit and shard lanes underneath are therefore bounded by writer
//! serialization, not by the device. This crate removes the global writer
//! lock: many mutator threads operate on one shared persistent structure
//! with per-thread *detectable descriptors* instead of a lock, the idiom
//! of per-thread persistent logs in "Persistent Memory Transactions"
//! (Marathe et al.) and fine-grain in-line logging (Cohen et al.).
//!
//! Two structures are provided, both laid out directly in a region carved
//! by [`memsnap::MemSnap::msnap_open_index`]:
//!
//! - [`PSkipList`]: a lock-free skiplist. Keys and payloads live in fixed
//!   128-byte arena slots allocated from writer-private pages; levels are
//!   CAS-linked. Nodes are permanent once linked — updates and removes
//!   write in place (remove = tombstone flag), so tower pointers never
//!   dangle.
//! - [`PHash`]: a Clevel-style resizable hash table — two bucket levels,
//!   writes always target the newest level, and a full bucket triggers a
//!   doubled level with cooperative migration paid a few buckets per
//!   operation.
//!
//! # Detectable operations
//!
//! Every mutation writes a descriptor — op id, kind, target slot, the
//! superseded op id, and the *inline value* — to the writer's private log
//! page **before** its linearizing CAS/write. A μCheckpoint of the region
//! therefore always captures a mutually consistent (descriptor, node)
//! pair for each writer: recovery can decide, for every in-flight
//! operation, whether its linearizing step landed, and replay or complete
//! it exactly once ([`RecoveryReport`]). Payloads are capped at
//! [`MAX_VALUE`] bytes so the descriptor alone suffices to replay an
//! operation whose structural writes landed on a page another thread
//! owned (the cross-thread dirty-set tear that per-thread μCheckpoints
//! make possible).
//!
//! Operations are steppable state machines ([`PutOp`]): each
//! [`PutOp::step`] performs one atomic action (log write, node write,
//! linearizing CAS), so [`msnap_sim::InterleaveSched`] can drive
//! seed-reproducible thread schedules between the atomic steps for
//! linearizability and recovery proofs.
//!
//! # Example
//!
//! ```
//! use memsnap::MemSnap;
//! use msnap_disk::{Disk, DiskConfig};
//! use msnap_pindex::PSkipList;
//! use msnap_sim::Vt;
//!
//! let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
//! let mut vt = Vt::new(0);
//! let space = ms.vm_mut().create_space();
//! let mut sk = PSkipList::create(&mut ms, space, &mut vt, "index", 64, 4).unwrap();
//! sk.put(&mut ms, &mut vt, 0, 42, b"answer");
//! assert_eq!(sk.get(&mut ms, &mut vt, 42), Some(b"answer".to_vec()));
//! ```

#![warn(missing_docs)]

mod clevel;
mod desc;
mod recover;
mod skiplist;

pub use clevel::PHash;
pub use desc::{OpDesc, OpKind, LOG_ENTRIES};
pub use recover::RecoveryReport;
pub use skiplist::{OpOutcome, PSkipList, PutOp, MAX_LEVELS};

/// Sentinel "no slot" value.
pub const NIL: u32 = u32::MAX;

/// Maximum payload length: small enough that the value rides inline in
/// the 64-byte descriptor, which is what makes every operation replayable
/// from the writer's log alone.
pub const MAX_VALUE: usize = 24;

/// Encodes an operation id: writer in the high half, per-writer sequence
/// number (starting at 1) in the low half. `0` means "none".
pub fn op_id(writer: u32, seq: u32) -> u64 {
    (u64::from(writer) << 32) | u64::from(seq)
}

/// Splits an op id into `(writer, seq)`.
pub fn op_parts(op: u64) -> (u32, u32) {
    ((op >> 32) as u32, op as u32)
}

/// 32-bit FNV-1a over `bytes`, the checksum used by descriptors and
/// nodes.
pub(crate) fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Splitmix64 scramble, for deterministic per-key hashing (tower levels,
/// bucket selection).
pub(crate) fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_round_trips() {
        assert_eq!(op_parts(op_id(7, 12)), (7, 12));
        assert_eq!(op_id(0, 0), 0);
    }

    #[test]
    fn scramble_spreads_adjacent_keys() {
        let a = scramble(1);
        let b = scramble(2);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }
}
