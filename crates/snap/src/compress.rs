//! Per-frame wire compression for delta payloads: a dependency-free
//! LZ77 variant (greedy, 3-byte-prefix hash heads, 4 KiB window) whose
//! match-at-distance-1 case doubles as run-length encoding.
//!
//! Token stream: a control byte `c` either introduces a literal run
//! (`c < 0x80`: the next `c + 1` bytes are copied verbatim, 1..=128) or
//! a back-reference (`c >= 0x80`: copy `(c & 0x7F) + 3` bytes from
//! `distance` back in the output, where `distance` is the `u16` LE that
//! follows; overlapping copies are byte-serial, so distance 1 repeats
//! the previous byte). [`compress`] returns `None` when the encoded
//! form would not be strictly smaller — the incompressible bypass; the
//! caller then ships the raw bytes with method `0` (stored).
//!
//! [`decompress`] is fully bounds-checked and never panics or
//! over-allocates on adversarial input: output is capped at the
//! caller-declared raw length and any structural violation returns
//! `None`.

/// Shortest back-reference worth a 3-byte token.
const MIN_MATCH: usize = 3;
/// Longest match one token encodes (`0x7F + MIN_MATCH`).
const MAX_MATCH: usize = 0x7F + MIN_MATCH;
/// Longest literal run one token encodes.
const MAX_LITERAL: usize = 128;
/// Back-reference window (one page).
const WINDOW: usize = 4096;
/// 3-byte prefix hash table size.
const HASH_SIZE: usize = 1 << 12;

fn hash3(b0: u8, b1: u8, b2: u8) -> usize {
    let v = u32::from(b0) | u32::from(b1) << 8 | u32::from(b2) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> 20) as usize & (HASH_SIZE - 1)
}

fn flush_literals(out: &mut Vec<u8>, raw: &[u8], mut start: usize, end: usize) {
    while start < end {
        let run = (end - start).min(MAX_LITERAL);
        out.push((run - 1) as u8);
        out.extend_from_slice(&raw[start..start + run]);
        start += run;
    }
}

/// Compresses `raw`, or `None` when the result would not be strictly
/// smaller (the caller ships the bytes stored).
pub(crate) fn compress(raw: &[u8]) -> Option<Vec<u8>> {
    if raw.len() < MIN_MATCH + 1 {
        return None;
    }
    let mut heads = [u32::MAX; HASH_SIZE];
    let mut out = Vec::with_capacity(raw.len());
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= raw.len() {
        let h = hash3(raw[i], raw[i + 1], raw[i + 2]);
        let cand = heads[h];
        heads[h] = i as u32;
        let mut match_len = 0usize;
        let mut distance = 0usize;
        if cand != u32::MAX {
            let pos = cand as usize;
            let d = i - pos;
            if d <= WINDOW {
                let limit = (raw.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && raw[pos + l] == raw[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    match_len = l;
                    distance = d;
                }
            }
        }
        if match_len >= MIN_MATCH {
            flush_literals(&mut out, raw, lit_start, i);
            out.push(0x80 | (match_len - MIN_MATCH) as u8);
            out.extend_from_slice(&(distance as u16).to_le_bytes());
            // Seed hash heads inside the match so runs chain (skipping
            // every position keeps this O(n) while distance-1 RLE still
            // finds the next run start).
            let end = i + match_len;
            i += 1;
            while i < end && i + MIN_MATCH <= raw.len() {
                heads[hash3(raw[i], raw[i + 1], raw[i + 2])] = i as u32;
                i += 1;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, raw, lit_start, raw.len());
    (out.len() < raw.len()).then_some(out)
}

/// Decodes a [`compress`] token stream back to exactly `raw_len` bytes,
/// or `None` on any structural violation. Never panics on adversarial
/// input; the output allocation is bounded by `raw_len`.
pub(crate) fn decompress(payload: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < payload.len() {
        let c = payload[i];
        i += 1;
        if c < 0x80 {
            let run = c as usize + 1;
            let lit = payload.get(i..i + run)?;
            if out.len() + run > raw_len {
                return None;
            }
            out.extend_from_slice(lit);
            i += run;
        } else {
            let len = (c & 0x7F) as usize + MIN_MATCH;
            let d = payload.get(i..i + 2)?;
            let distance = u16::from_le_bytes([d[0], d[1]]) as usize;
            i += 2;
            if distance == 0 || distance > out.len() || out.len() + len > raw_len {
                return None;
            }
            let start = out.len() - distance;
            // Byte-serial so overlapping (RLE-style) copies work.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    (out.len() == raw_len).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structured_and_repetitive_data() {
        let cases: Vec<Vec<u8>> = vec![
            vec![0u8; 4096],
            vec![0xAB; 4096],
            (0..4096).map(|i| (i / 64) as u8).collect(),
            (0..4096)
                .map(|i| if i % 71 == 0 { 7 } else { (i % 9) as u8 })
                .collect(),
            b"abcabcabcabcabcabc".to_vec(),
            vec![1, 2, 3, 4],
        ];
        for raw in cases {
            if let Some(z) = compress(&raw) {
                assert!(z.len() < raw.len());
                assert_eq!(decompress(&z, raw.len()).unwrap(), raw);
            }
        }
    }

    #[test]
    fn incompressible_data_is_bypassed() {
        // A xorshift byte stream has no 3-byte repeats worth taking.
        let mut x = 0x12345678u32;
        let raw: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        if let Some(z) = compress(&raw) {
            // If it squeaks under, the round trip must still hold.
            assert_eq!(decompress(&z, raw.len()).unwrap(), raw);
        }
        // Tiny inputs always bypass.
        assert_eq!(compress(&[1, 2, 3]), None);
        assert_eq!(compress(&[]), None);
    }

    #[test]
    fn adversarial_payloads_never_panic_or_overallocate() {
        // Truncations of a valid stream.
        let raw: Vec<u8> = (0..512).map(|i| (i % 5) as u8).collect();
        let z = compress(&raw).unwrap();
        for len in 0..z.len() {
            let _ = decompress(&z[..len], raw.len());
        }
        // Garbage with lying distances and lengths.
        for seed in 0..64u8 {
            let junk: Vec<u8> = (0..97)
                .map(|i| (i as u8).wrapping_mul(seed) ^ 0x80)
                .collect();
            let _ = decompress(&junk, 4096);
        }
        // A match token pointing before the start of output.
        assert_eq!(decompress(&[0x85, 9, 0], 64), None);
        // Output overrun claims.
        assert_eq!(decompress(&[0x7F, 0], 8), None);
    }
}
