//! The unmodified-RocksDB baseline: WAL + MemTable + SSTables.
//!
//! `Put` logs to the WAL and fsyncs, then inserts into a volatile skip
//! list; a full MemTable is serialized into an SSTable (sequential IO),
//! and accumulating SSTables are merged by compaction — the "additional
//! IO because of background compaction" of §2. Compaction runs inline on
//! the committing thread here, which charges its IO to the workload just
//! as RocksDB's background threads consume the same device bandwidth.

use msnap_disk::Disk;
use msnap_fs::{Fd, FileSystem, FsKind, WriteAheadLog};
use msnap_sim::{Category, Meters, Nanos, Vt};

use crate::kv::{Kv, KvStats};
use crate::skiplist::SkipIndex;

/// Serialization cost per record when building WAL/SSTable images.
const SERIALIZE_RECORD: Nanos = Nanos::from_ns(600);
/// IO-vector assembly cost per SSTable chunk.
const IO_GEN_CHUNK: Nanos = Nanos::from_ns(900);
/// SSTable write chunk size.
const CHUNK: usize = 32 * 1024;

#[derive(Debug)]
struct SsTable {
    fd: Fd,
    /// Sorted keys and their (offset, vlen) in the file.
    index: Vec<(u64, u64, u16)>,
}

impl SsTable {
    fn find(&self, key: u64) -> Option<(u64, u16)> {
        self.index
            .binary_search_by_key(&key, |&(k, _, _)| k)
            .ok()
            .map(|i| (self.index[i].1, self.index[i].2))
    }
}

/// The WAL-and-LSM baseline store. See the module docs.
#[derive(Debug)]
pub struct BaselineKv {
    disk: Disk,
    fs: FileSystem,
    wal: WriteAheadLog,
    memtable: SkipIndex<Vec<u8>>,
    memtable_bytes: u64,
    /// MemTable flush threshold (64 MiB in the paper; scaled in tests).
    flush_bytes: u64,
    /// Compact when this many SSTables accumulate.
    compact_fanin: usize,
    sstables: Vec<SsTable>,
    next_sst: u32,
    stats: KvStats,
}

impl BaselineKv {
    /// Creates a fresh store on `disk` over an FFS-flavoured file system.
    pub fn format(disk: Disk, flush_bytes: u64, vt: &mut Vt) -> Self {
        let mut fs = FileSystem::new(FsKind::Ffs);
        let wal = WriteAheadLog::create(vt, &mut fs, "kv.wal");
        BaselineKv {
            disk,
            fs,
            wal,
            memtable: SkipIndex::new(Vec::new()),
            memtable_bytes: 0,
            flush_bytes,
            compact_fanin: 4,
            sstables: Vec::new(),
            next_sst: 0,
            stats: KvStats::default(),
        }
    }

    /// Simulates a crash at `at` and recovers: SSTable indexes are
    /// rebuilt from durable file contents and the MemTable is replayed
    /// from the WAL.
    pub fn crash_and_recover(&mut self, vt: &mut Vt, at: Nanos) {
        self.disk.crash(at);
        self.fs.discard_cache(&self.disk);

        // Rebuild SSTable indexes from the (durable) files.
        for sst in &mut self.sstables {
            sst.index = read_sst_index(vt, &mut self.fs, &mut self.disk, sst.fd);
        }

        // Replay the WAL into a fresh MemTable.
        self.memtable = SkipIndex::new(Vec::new());
        self.memtable_bytes = 0;
        for record in self.wal.replay(vt, &mut self.disk, &mut self.fs) {
            let key = u64::from_le_bytes(record.payload[0..8].try_into().unwrap());
            let value = record.payload[8..].to_vec();
            self.memtable_bytes += 8 + value.len() as u64;
            self.memtable.insert(vt, key, value);
        }
    }

    /// The underlying device (IO statistics).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    fn log_one(&mut self, vt: &mut Vt, key: u64, value: &[u8]) {
        vt.charge(Category::Log, SERIALIZE_RECORD);
        let mut record = Vec::with_capacity(8 + value.len());
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(value);
        self.wal.append(vt, &mut self.disk, &mut self.fs, &record);
    }

    fn insert_memtable(&mut self, vt: &mut Vt, key: u64, value: &[u8]) {
        self.memtable_bytes += 8 + value.len() as u64;
        self.memtable.insert(vt, key, value.to_vec());
    }

    fn maybe_flush(&mut self, vt: &mut Vt) {
        if self.memtable_bytes < self.flush_bytes {
            return;
        }
        // Serialize the MemTable, sorted, into a new SSTable file.
        let name = format!("sst-{:06}", self.next_sst);
        self.next_sst += 1;
        let fd = self.fs.create(vt, &name);
        let entries: Vec<(u64, Vec<u8>)> = self
            .memtable
            .iter_from(vt, 0)
            .map(|(k, v)| (k, v.clone()))
            .collect();
        vt.charge(Category::TxDisk, SERIALIZE_RECORD * entries.len() as u64);
        write_sst(vt, &mut self.fs, &mut self.disk, fd, &entries);
        let index = build_index(&entries);
        self.sstables.push(SsTable { fd, index });

        self.memtable = SkipIndex::new(Vec::new());
        self.memtable_bytes = 0;
        self.wal.reset(vt, &mut self.fs);
        self.stats.flushes += 1;

        if self.sstables.len() >= self.compact_fanin {
            self.compact(vt);
        }
    }

    /// Merges all SSTables into one (single-level compaction), newest
    /// version of each key winning.
    fn compact(&mut self, vt: &mut Vt) {
        let mut merged: std::collections::BTreeMap<u64, Vec<u8>> =
            std::collections::BTreeMap::new();
        let tables = std::mem::take(&mut self.sstables);
        for sst in &tables {
            // Newest tables are later in the vec, so later inserts win.
            for &(key, offset, vlen) in &sst.index {
                let mut value = vec![0u8; vlen as usize];
                self.fs.read(vt, &mut self.disk, sst.fd, offset, &mut value);
                merged.insert(key, value);
            }
        }
        let name = format!("sst-{:06}", self.next_sst);
        self.next_sst += 1;
        let fd = self.fs.create(vt, &name);
        let entries: Vec<(u64, Vec<u8>)> = merged.into_iter().collect();
        vt.charge(Category::TxDisk, SERIALIZE_RECORD * entries.len() as u64);
        write_sst(vt, &mut self.fs, &mut self.disk, fd, &entries);
        let index = build_index(&entries);
        self.sstables = vec![SsTable { fd, index }];
        self.stats.compactions += 1;
    }
}

fn build_index(entries: &[(u64, Vec<u8>)]) -> Vec<(u64, u64, u16)> {
    let mut index = Vec::with_capacity(entries.len());
    let mut offset = 8u64; // count header
    for (key, value) in entries {
        index.push((*key, offset + 10, value.len() as u16));
        offset += 10 + value.len() as u64;
    }
    index
}

fn write_sst(
    vt: &mut Vt,
    fs: &mut FileSystem,
    disk: &mut Disk,
    fd: Fd,
    entries: &[(u64, Vec<u8>)],
) {
    let mut image = Vec::with_capacity(entries.len() * 120 + 8);
    image.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, value) in entries {
        image.extend_from_slice(&key.to_le_bytes());
        image.extend_from_slice(&(value.len() as u16).to_le_bytes());
        image.extend_from_slice(value);
    }
    let mut offset = 0u64;
    for chunk in image.chunks(CHUNK) {
        vt.charge(Category::IoGeneration, IO_GEN_CHUNK);
        fs.write(vt, disk, fd, offset, chunk);
        offset += chunk.len() as u64;
    }
    fs.fsync(vt, disk, fd);
}

fn read_sst_index(
    vt: &mut Vt,
    fs: &mut FileSystem,
    disk: &mut Disk,
    fd: Fd,
) -> Vec<(u64, u64, u16)> {
    let mut header = [0u8; 8];
    fs.read(vt, disk, fd, 0, &mut header);
    let count = u64::from_le_bytes(header);
    let mut index = Vec::with_capacity(count as usize);
    let mut offset = 8u64;
    for _ in 0..count {
        let mut entry_header = [0u8; 10];
        fs.read(vt, disk, fd, offset, &mut entry_header);
        let key = u64::from_le_bytes(entry_header[0..8].try_into().unwrap());
        let vlen = u16::from_le_bytes(entry_header[8..10].try_into().unwrap());
        index.push((key, offset + 10, vlen));
        offset += 10 + vlen as u64;
    }
    index
}

impl Kv for BaselineKv {
    fn put(&mut self, vt: &mut Vt, key: u64, value: &[u8]) -> Result<(), crate::KvError> {
        self.log_one(vt, key, value);
        self.wal.sync(vt, &mut self.disk, &mut self.fs);
        self.insert_memtable(vt, key, value);
        self.stats.commits += 1;
        self.maybe_flush(vt);
        Ok(())
    }

    fn multi_put(&mut self, vt: &mut Vt, pairs: &[(u64, Vec<u8>)]) -> Result<(), crate::KvError> {
        for (key, value) in pairs {
            self.log_one(vt, *key, value);
        }
        self.wal.sync(vt, &mut self.disk, &mut self.fs);
        for (key, value) in pairs {
            self.insert_memtable(vt, *key, value);
        }
        self.stats.commits += 1;
        self.maybe_flush(vt);
        Ok(())
    }

    fn get(&mut self, vt: &mut Vt, key: u64) -> Option<Vec<u8>> {
        if let Some(v) = self.memtable.find(vt, key) {
            return Some(v.clone());
        }
        for sst in self.sstables.iter().rev() {
            vt.charge(Category::OtherUserspace, Nanos::from_ns(250)); // index probe
            if let Some((offset, vlen)) = sst.find(key) {
                let mut value = vec![0u8; vlen as usize];
                let fd = sst.fd;
                self.fs.read(vt, &mut self.disk, fd, offset, &mut value);
                return Some(value);
            }
        }
        None
    }

    fn seek(&mut self, vt: &mut Vt, key: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        // Merge the MemTable with every SSTable (newest wins).
        let mut merged: std::collections::BTreeMap<u64, Vec<u8>> =
            std::collections::BTreeMap::new();
        for sst_i in 0..self.sstables.len() {
            let probes: Vec<(u64, u64, u16)> = {
                let sst = &self.sstables[sst_i];
                let start = sst.index.partition_point(|&(k, _, _)| k < key);
                sst.index[start..start + limit.min(sst.index.len() - start)].to_vec()
            };
            let fd = self.sstables[sst_i].fd;
            for (k, offset, vlen) in probes {
                let mut value = vec![0u8; vlen as usize];
                self.fs.read(vt, &mut self.disk, fd, offset, &mut value);
                merged.insert(k, value);
            }
        }
        for (k, v) in self.memtable.iter_from(vt, key).take(limit) {
            merged.insert(k, v.clone());
        }
        merged.into_iter().take(limit).collect()
    }

    fn len(&self) -> usize {
        // Approximate: keys shadowed between levels double-count until
        // the next compaction.
        self.memtable.len() + self.sstables.iter().map(|s| s.index.len()).sum::<usize>()
    }

    fn stats(&self) -> KvStats {
        self.stats
    }

    fn meters(&self) -> Meters {
        self.fs.meters().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    fn fresh(flush_bytes: u64) -> (BaselineKv, Vt) {
        let mut vt = Vt::new(0);
        let kv = BaselineKv::format(Disk::new(DiskConfig::paper()), flush_bytes, &mut vt);
        (kv, vt)
    }

    #[test]
    fn put_get_round_trip() {
        let (mut kv, mut vt) = fresh(1 << 20);
        kv.put(&mut vt, 5, b"five").unwrap();
        kv.put(&mut vt, 3, b"three").unwrap();
        assert_eq!(kv.get(&mut vt, 5), Some(b"five".to_vec()));
        assert_eq!(kv.get(&mut vt, 3), Some(b"three".to_vec()));
        assert_eq!(kv.get(&mut vt, 4), None);
    }

    #[test]
    fn flush_moves_memtable_to_sstable() {
        let (mut kv, mut vt) = fresh(2_000);
        for k in 0..40u64 {
            kv.put(&mut vt, k, &[7u8; 100]).unwrap();
        }
        assert!(kv.stats().flushes >= 1);
        // Keys written before the flush are served from SSTables.
        assert_eq!(kv.get(&mut vt, 0), Some(vec![7u8; 100]));
        assert_eq!(kv.get(&mut vt, 39), Some(vec![7u8; 100]));
    }

    #[test]
    fn compaction_merges_tables() {
        let (mut kv, mut vt) = fresh(1_000);
        for k in 0..400u64 {
            kv.put(&mut vt, k % 50, &k.to_le_bytes()).unwrap(); // rewrites
        }
        assert!(kv.stats().compactions >= 1);
        // Latest version wins after compaction.
        for k in 0..50u64 {
            let got = kv.get(&mut vt, k).unwrap();
            let version = u64::from_le_bytes(got.try_into().unwrap());
            assert_eq!(version % 50, k);
            assert!(version >= 150, "key {k} has stale version {version}");
        }
    }

    #[test]
    fn crash_recovers_wal_and_sstables() {
        let (mut kv, mut vt) = fresh(2_000);
        for k in 0..30u64 {
            kv.put(&mut vt, k, &k.to_le_bytes()).unwrap();
        }
        let now = vt.now();
        kv.crash_and_recover(&mut vt, now);
        for k in 0..30u64 {
            assert_eq!(
                kv.get(&mut vt, k),
                Some(k.to_le_bytes().to_vec()),
                "key {k} lost"
            );
        }
    }

    #[test]
    fn unsynced_put_lost_on_crash() {
        let (mut kv, mut vt) = fresh(1 << 20);
        kv.put(&mut vt, 1, b"durable").unwrap();
        let after_first = vt.now();
        kv.put(&mut vt, 2, b"later").unwrap();
        kv.crash_and_recover(&mut vt, after_first);
        assert_eq!(kv.get(&mut vt, 1), Some(b"durable".to_vec()));
        assert_eq!(kv.get(&mut vt, 2), None);
    }

    #[test]
    fn seek_merges_memtable_and_sstables() {
        let (mut kv, mut vt) = fresh(1_500);
        for k in (0..60u64).step_by(2) {
            kv.put(&mut vt, k, b"even").unwrap();
        }
        // Some of these are in SSTables now; add odd keys to the
        // memtable.
        for k in (1..20u64).step_by(2) {
            kv.put(&mut vt, k, b"odd").unwrap();
        }
        let got = kv.seek(&mut vt, 5, 6);
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn wal_fsync_dominates_put_latency() {
        let (mut kv, mut vt) = fresh(1 << 30);
        let t0 = vt.now();
        kv.put(&mut vt, 1, &[0u8; 100]).unwrap();
        let lat = (vt.now() - t0).as_us_f64();
        // One record + fsync: ~70-90 us on the FFS model (vs ~35 us for
        // the MemSnap variant's single-page μCheckpoint... plus its pred).
        assert!(lat > 50.0 && lat < 200.0, "put latency {lat:.1} us");
    }
}
