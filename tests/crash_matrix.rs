//! Crash-point matrix: power-fail a LiteDB/MemSnap workload at many
//! instants and verify that recovery always yields exactly the prefix of
//! committed transactions (persistence serializability, paper §4).
//!
//! Two granularities: a coarse 12-point matrix over the full 120-txn
//! workload, and an exhaustive [`crash_at_every_io`] sweep that crashes
//! on both sides of *every* write-completion boundary of a shorter run.

use msnap_disk::{crash_at_every_io, Disk, DiskConfig, Fault, FaultPlan};
use msnap_litedb::{LiteDb, MemSnapBackend};
use msnap_sim::{Nanos, Vt};

const KEYS: u64 = 64;
const TXNS: u64 = 120;

/// Runs `txns` deterministic transactions, returning the instant each
/// commit call returned (durability upper bound) and the final clock.
fn run_workload(db: &mut LiteDb, vt: &mut Vt, txns: u64) -> Vec<Nanos> {
    let table = db.create_table(vt, "kv");
    let thread = vt.id();
    let mut commits = Vec::new();
    for i in 0..txns {
        db.begin(vt, thread);
        // Each transaction stamps three keys with its own index.
        for j in 0..3u64 {
            let key = (i * 7 + j * 13) % KEYS;
            db.put(vt, thread, table, key, &i.to_le_bytes());
        }
        db.commit(vt, thread)
            .expect("workload runs without fault injection");
        commits.push(vt.now());
    }
    commits
}

/// Replays the workload's effects up to transaction `upto` on a plain map.
fn expected_state(upto: u64) -> std::collections::HashMap<u64, u64> {
    let mut state = std::collections::HashMap::new();
    for i in 0..upto {
        for j in 0..3u64 {
            state.insert((i * 7 + j * 13) % KEYS, i);
        }
    }
    state
}

/// Restores from `disk` and asserts the database holds exactly the state
/// of the first `committed` transactions.
fn assert_recovers_prefix(disk: Disk, committed: u64, context: &str) {
    let mut vt2 = Vt::new(1);
    let restored = match MemSnapBackend::try_restore(disk, "m", &mut vt2) {
        Ok(b) => b,
        Err(e) => {
            // A crash can land during setup, before the store (or the
            // database region) is durable. Nothing was committed then.
            assert_eq!(
                committed, 0,
                "restore failed ({e}) {context} despite committed transactions"
            );
            return;
        }
    };
    let mut db2 = LiteDb::new(Box::new(restored), &mut vt2);
    let table = db2.create_table(&mut vt2, "kv");

    let expected = expected_state(committed);
    for key in 0..KEYS {
        let got = db2
            .get(&mut vt2, table, key)
            .map(|v| u64::from_le_bytes(v[..8].try_into().expect("8-byte values")));
        assert_eq!(
            got,
            expected.get(&key).copied(),
            "key {key} {context} ({committed} committed txns)"
        );
    }
}

fn fresh_db(vt: &mut Vt) -> LiteDb {
    let backend =
        MemSnapBackend::format_with_capacity(Disk::new(DiskConfig::paper()), "m", 4096, vt);
    LiteDb::new(Box::new(backend), vt)
}

fn into_disk(db: LiteDb) -> Disk {
    db.into_backend()
        .into_any()
        .downcast::<MemSnapBackend>()
        .expect("memsnap backend")
        .into_disk()
}

#[test]
fn recovery_is_a_committed_prefix_at_every_crash_point() {
    // First, one run to learn the commit timeline.
    let mut vt = Vt::new(0);
    let mut db = fresh_db(&mut vt);
    let commits = run_workload(&mut db, &mut vt, TXNS);
    let end = vt.now();
    drop(db);

    // Crash at 12 points spread over the run (plus exactly-at-commit
    // boundaries), re-running the deterministic workload each time.
    let mut crash_points: Vec<Nanos> = (1..=10)
        .map(|i| Nanos::from_ns(end.as_ns() * i / 10))
        .collect();
    crash_points.push(commits[TXNS as usize / 2]); // exactly at a commit
    crash_points.push(commits[TXNS as usize / 2] + Nanos::from_ns(1));

    for crash_at in crash_points {
        let mut vt = Vt::new(0);
        let mut db = fresh_db(&mut vt);
        let commits = run_workload(&mut db, &mut vt, TXNS);

        let committed = commits.iter().filter(|&&c| c <= crash_at).count() as u64;
        let mut disk = into_disk(db);
        disk.crash(crash_at);
        assert_recovers_prefix(disk, committed, &format!("after crash at {crash_at}"));
    }
}

#[test]
fn every_io_boundary_recovers_to_a_committed_prefix() {
    // Exhaustive sweep: crash just before and exactly at every write
    // completion of the run. 40 transactions cross a full delta window
    // plus a full-root commit, so both commit paths are swept.
    const SWEEP_TXNS: u64 = 40;
    let run_to_db = || {
        let mut vt = Vt::new(0);
        let mut db = fresh_db(&mut vt);
        let commits = run_workload(&mut db, &mut vt, SWEEP_TXNS);
        (db, commits)
    };

    // Learn each transaction's exact durability instant: the completion
    // of the last write segment at or before the moment its synchronous
    // commit returned (the commit-record write).
    let (db, commits) = run_to_db();
    let reference = into_disk(db);
    let completions = reference.write_completions().to_vec();
    let commit_done: Vec<Nanos> = commits
        .iter()
        .map(|&by| {
            completions
                .iter()
                .copied()
                .filter(|&c| c <= by)
                .max()
                .expect("every transaction writes")
        })
        .collect();

    let points = crash_at_every_io(
        || into_disk(run_to_db().0),
        |disk, at| {
            let committed = commit_done.iter().filter(|&&c| c <= at).count() as u64;
            assert_recovers_prefix(disk, committed, &format!("after boundary crash at {at}"));
        },
    );
    assert!(
        points as u64 > 2 * SWEEP_TXNS,
        "the sweep must visit both sides of every commit boundary, got {points}"
    );
}

#[test]
fn dropped_commit_write_surfaces_as_a_sticky_abort() {
    // A deliberately injected dropped write must surface as a
    // transaction abort and stay sticky across the next commit attempt —
    // never a panic, never silently cleared.
    let mut vt = Vt::new(0);
    let mut backend =
        MemSnapBackend::format_with_capacity(Disk::new(DiskConfig::paper()), "m", 4096, &mut vt);
    backend.set_fault_plan(FaultPlan::new().at(
        backend.memsnap().disk().io_seq(),
        Fault::Drop { transient: false },
    ));
    let mut db = LiteDb::new(Box::new(backend), &mut vt);
    let table = db.create_table(&mut vt, "kv");
    let thread = vt.id();

    db.begin(&mut vt, thread);
    db.put(&mut vt, thread, table, 1, &7u64.to_le_bytes());
    let err = db
        .commit(&mut vt, thread)
        .expect_err("the injected drop aborts the commit");

    // Fsync-gate: the next commit reports the same failure instead of
    // silently succeeding over lost data.
    db.begin(&mut vt, thread);
    db.put(&mut vt, thread, table, 2, &8u64.to_le_bytes());
    let again = db
        .commit(&mut vt, thread)
        .expect_err("the error is sticky until acknowledged");
    assert_eq!(err, again, "the sticky report is the original device error");

    // Acknowledge, retry: both transactions' pages are still dirty in
    // the region, so the retry persists everything that was aborted.
    let mut backend = db
        .into_backend()
        .into_any()
        .downcast::<MemSnapBackend>()
        .expect("memsnap backend");
    assert!(
        backend.ack_error().is_some(),
        "the abort is reported exactly once"
    );
    let mut db = LiteDb::new(backend, &mut vt);
    let table = db.create_table(&mut vt, "kv");
    db.begin(&mut vt, thread);
    db.put(&mut vt, thread, table, 3, &9u64.to_le_bytes());
    db.commit(&mut vt, thread)
        .expect("acknowledged device works again");

    for (key, val) in [(1u64, 7u64), (2, 8), (3, 9)] {
        let got = db
            .get(&mut vt, table, key)
            .map(|v| u64::from_le_bytes(v[..8].try_into().expect("8-byte values")));
        assert_eq!(got, Some(val), "key {key} survives the acknowledged retry");
    }
}

/// Replication invariant: power-failing a delta-stream apply at *every*
/// IO boundary leaves the replica at exactly the base-snapshot image or
/// exactly the target-snapshot image — never an epoch in between, never
/// a mixed page set. The root-record write inside
/// [`msnap_store::ObjectStore::apply_image`] is the single commit point.
#[test]
fn delta_apply_crash_sweep_lands_at_base_or_target_epoch() {
    use msnap_disk::BLOCK_SIZE;
    use msnap_snap::{ApplySession, DeltaStream};
    use msnap_store::ObjectStore;

    // Primary: six pages, snapshot "base", churn three, snapshot "tip".
    const PAGES: u64 = 6;
    let mut pdisk = Disk::new(DiskConfig::paper());
    let mut store = ObjectStore::format(&mut pdisk);
    let mut vt = Vt::new(0);
    let obj = store.create(&mut vt, &mut pdisk, "db").unwrap();
    for p in 0..PAGES {
        let img = vec![0x30 + p as u8; BLOCK_SIZE];
        let t = store
            .persist(&mut vt, &mut pdisk, obj, &[(p, &img[..])])
            .unwrap();
        ObjectStore::wait(&mut vt, t);
    }
    store
        .snapshot_create(&mut vt, &mut pdisk, obj, "base")
        .unwrap();
    for p in [0u64, 2, 5] {
        let img = vec![0xC0 + p as u8; BLOCK_SIZE];
        let t = store
            .persist(&mut vt, &mut pdisk, obj, &[(p, &img[..])])
            .unwrap();
        ObjectStore::wait(&mut vt, t);
    }
    store
        .snapshot_create(&mut vt, &mut pdisk, obj, "tip")
        .unwrap();

    // Reference images of both retained epochs, page by page.
    let base_epoch = store.snapshot_lookup("base").unwrap().epoch;
    let tip_epoch = store.snapshot_lookup("tip").unwrap().epoch;
    let mut images = std::collections::HashMap::new();
    for (name, epoch) in [("base", base_epoch), ("tip", tip_epoch)] {
        let mut pages = Vec::new();
        for p in 0..PAGES {
            let mut img = vec![0u8; BLOCK_SIZE];
            store
                .read_page_at(&mut vt, &mut pdisk, name, p, &mut img)
                .unwrap();
            pages.push(img);
        }
        images.insert(epoch, pages);
    }

    let full_wire = DeltaStream::build(&mut vt, &mut pdisk, &mut store, None, "base")
        .unwrap()
        .encode();
    let delta_wire = DeltaStream::build(&mut vt, &mut pdisk, &mut store, Some("base"), "tip")
        .unwrap()
        .encode();

    let apply = |vt: &mut Vt, disk: &mut Disk, replica: &mut ObjectStore, wire: &[u8]| {
        let stream = DeltaStream::decode(wire).unwrap();
        let mut session = ApplySession::begin(vt, disk, replica, &stream.header).unwrap();
        for frame in &stream.frames {
            session.feed(frame).unwrap();
        }
        session.finish(vt, disk, replica, &stream.trailer).unwrap();
    };

    let run = || {
        let mut vt = Vt::new(7);
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        // Land the base image and settle it; the sweep then exercises
        // crashes during the *delta* apply only.
        apply(&mut vt, &mut rdisk, &mut replica, &full_wire);
        rdisk.settle();
        apply(&mut vt, &mut rdisk, &mut replica, &delta_wire);
        rdisk
    };

    let mut reached_target = 0usize;
    let points = crash_at_every_io(run, |mut disk, at| {
        let mut vt = Vt::new(9);
        let mut replica = ObjectStore::open(&mut vt, &mut disk)
            .unwrap_or_else(|e| panic!("replica unreadable after crash at {at}: {e}"));
        let robj = replica.lookup("db").expect("settled base image lost");
        let epoch = replica.epoch(robj);
        assert!(
            epoch == base_epoch || epoch == tip_epoch,
            "crash at {at} left the replica at epoch {epoch}, \
             expected exactly {base_epoch} (base) or {tip_epoch} (target)"
        );
        if epoch == tip_epoch {
            reached_target += 1;
        }
        let want = &images[&epoch];
        let mut got = vec![0u8; BLOCK_SIZE];
        for p in 0..PAGES {
            replica
                .read_page(&mut vt, &mut disk, robj, p, &mut got)
                .unwrap();
            assert_eq!(
                got, want[p as usize],
                "page {p} diverges from the epoch-{epoch} image after crash at {at}"
            );
        }
    });
    assert!(points > 20, "sweep too small to be meaningful: {points}");
    assert!(
        reached_target >= 1,
        "no crash point observed the committed target epoch"
    );
}

/// The same exhaustive crash sweep over a *sub-page* (v2) delta apply:
/// the stream carries sub-page frames — 64-byte line runs diffed
/// against the retained base, compressed where worthwhile — yet a
/// power failure at any IO boundary still leaves the replica at
/// exactly the base image or exactly the target image. Sub-page
/// resolution happens in memory before the single root-switch commit
/// point, so granularity never weakens crash atomicity.
#[test]
fn subpage_delta_apply_crash_sweep_lands_at_base_or_target_epoch() {
    use msnap_disk::BLOCK_SIZE;
    use msnap_snap::{ApplySession, DeltaStream, Frame};
    use msnap_store::ObjectStore;

    // Primary: six pages, snapshot "base", then scattered 64-byte line
    // rewrites on three pages (plus one whole-page rewrite so the
    // stream mixes frame kinds), snapshot "tip".
    const PAGES: u64 = 6;
    let mut pdisk = Disk::new(DiskConfig::paper());
    let mut store = ObjectStore::format(&mut pdisk);
    let mut vt = Vt::new(0);
    let obj = store.create(&mut vt, &mut pdisk, "db").unwrap();
    for p in 0..PAGES {
        let img: Vec<u8> = (0..BLOCK_SIZE)
            .map(|j| (0x30 + p as u8) ^ (j as u8).wrapping_mul(7))
            .collect();
        let t = store
            .persist(&mut vt, &mut pdisk, obj, &[(p, &img[..])])
            .unwrap();
        ObjectStore::wait(&mut vt, t);
    }
    store
        .snapshot_create(&mut vt, &mut pdisk, obj, "base")
        .unwrap();
    let mut images_iov = Vec::new();
    for (p, lines) in [(0u64, [3usize, 40]), (2, [0, 63]), (5, [17, 18])] {
        let mut img = vec![0u8; BLOCK_SIZE];
        store
            .read_page(&mut vt, &mut pdisk, obj, p, &mut img)
            .unwrap();
        for line in lines {
            img[line * 64..(line + 1) * 64].fill(0xC0 + p as u8);
        }
        images_iov.push((p, img));
    }
    images_iov.push((3, vec![0xEE; BLOCK_SIZE]));
    let iov: Vec<(u64, &[u8])> = images_iov.iter().map(|(p, img)| (*p, &img[..])).collect();
    let t = store.persist(&mut vt, &mut pdisk, obj, &iov).unwrap();
    ObjectStore::wait(&mut vt, t);
    store
        .snapshot_create(&mut vt, &mut pdisk, obj, "tip")
        .unwrap();

    let base_epoch = store.snapshot_lookup("base").unwrap().epoch;
    let tip_epoch = store.snapshot_lookup("tip").unwrap().epoch;
    let mut images = std::collections::HashMap::new();
    for (name, epoch) in [("base", base_epoch), ("tip", tip_epoch)] {
        let mut pages = Vec::new();
        for p in 0..PAGES {
            let mut img = vec![0u8; BLOCK_SIZE];
            store
                .read_page_at(&mut vt, &mut pdisk, name, p, &mut img)
                .unwrap();
            pages.push(img);
        }
        images.insert(epoch, pages);
    }

    let full_wire = DeltaStream::build(&mut vt, &mut pdisk, &mut store, None, "base")
        .unwrap()
        .encode();
    let delta = DeltaStream::build_v2(
        &mut vt,
        &mut pdisk,
        &mut store,
        Some("base"),
        "tip",
        None,
        None,
    )
    .unwrap();
    assert!(
        delta
            .frames
            .iter()
            .any(|f| matches!(f, Frame::Sub(s) if !s.covers_whole())),
        "the sweep must actually exercise partial sub-page frames"
    );
    let delta_wire = delta.encode();

    let apply = |vt: &mut Vt, disk: &mut Disk, replica: &mut ObjectStore, wire: &[u8]| {
        let stream = DeltaStream::decode(wire).unwrap();
        let mut session = ApplySession::begin(vt, disk, replica, &stream.header).unwrap();
        for frame in &stream.frames {
            session.feed(frame).unwrap();
        }
        session.finish(vt, disk, replica, &stream.trailer).unwrap();
    };

    let run = || {
        let mut vt = Vt::new(7);
        let mut rdisk = Disk::new(DiskConfig::paper());
        let mut replica = ObjectStore::format(&mut rdisk);
        apply(&mut vt, &mut rdisk, &mut replica, &full_wire);
        rdisk.settle();
        apply(&mut vt, &mut rdisk, &mut replica, &delta_wire);
        rdisk
    };

    let mut reached_target = 0usize;
    let points = crash_at_every_io(run, |mut disk, at| {
        let mut vt = Vt::new(9);
        let mut replica = ObjectStore::open(&mut vt, &mut disk)
            .unwrap_or_else(|e| panic!("replica unreadable after crash at {at}: {e}"));
        let robj = replica.lookup("db").expect("settled base image lost");
        let epoch = replica.epoch(robj);
        assert!(
            epoch == base_epoch || epoch == tip_epoch,
            "crash at {at} left the replica at epoch {epoch}, \
             expected exactly {base_epoch} (base) or {tip_epoch} (target)"
        );
        if epoch == tip_epoch {
            reached_target += 1;
        }
        let want = &images[&epoch];
        let mut got = vec![0u8; BLOCK_SIZE];
        for p in 0..PAGES {
            replica
                .read_page(&mut vt, &mut disk, robj, p, &mut got)
                .unwrap();
            assert_eq!(
                got, want[p as usize],
                "page {p} diverges from the epoch-{epoch} image after crash at {at}"
            );
        }
    });
    assert!(points > 20, "sweep too small to be meaningful: {points}");
    assert!(
        reached_target >= 1,
        "no crash point observed the committed target epoch"
    );
}
