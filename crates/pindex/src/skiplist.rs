//! The lock-free persistent skiplist.
//!
//! Layout, inside one [`memsnap::IndexCarve`]:
//!
//! - **Arena slots**: fixed 128-byte nodes, 32 per page. Slot 0 is the
//!   head sentinel. Slots are allocated from *writer-private chunks* of
//!   one arena page each (granted by a shared meta counter), so a node's
//!   page always belongs to its writer's dirty set and persists together
//!   with that writer's descriptor log.
//! - **Nodes are permanent once linked**: an update overwrites the value
//!   in place (CAS on the node's op id), a remove writes a tombstone
//!   flag. Tower pointers therefore never dangle, and the level-0 chain
//!   only ever grows — the property the recovery rules lean on.
//! - **Linearization**: a fresh insert linearizes at the level-0
//!   CAS splicing the node after its predecessor; updates and removes
//!   linearize at the in-place write. Tower levels above 0 are linked
//!   best-effort afterwards (bounded retries, then abandoned) — they are
//!   an accelerator, correctness lives at level 0.
//!
//! Every mutation is a steppable state machine ([`PutOp`]): descriptor
//! publish, node write, and linearizing CAS are separate atomic steps, so
//! a seeded [`msnap_sim::InterleaveSched`] can interleave concurrent
//! writers between them.

use memsnap::{IndexCarve, MemSnap, MsnapError};
use msnap_sim::{Category, Nanos, Vt};
use msnap_vm::{AsId, PAGE_SIZE};

use crate::desc::{OpDesc, OpKind};
use crate::{fnv1a32, op_id, scramble, MAX_VALUE, NIL};

/// Tower height cap (geometric p = 1/4, derived from the key hash so
/// recovery rebuilds identical towers).
pub const MAX_LEVELS: usize = 8;

/// Node slot size in bytes.
pub(crate) const SLOT: usize = 128;
/// Slots per arena page — also the writer-private chunk size.
pub(crate) const SLOTS_PER_PAGE: u32 = (PAGE_SIZE / SLOT) as u32;

pub(crate) const NODE_MAGIC: u32 = 0x5058_4E44; // "PXND"
pub(crate) const HEAD_MAGIC: u32 = 0x5058_4844; // "PXHD"
const META_MAGIC: u32 = 0x5058_534D; // "PXSM"

/// The carve `kind` tag of a skiplist.
pub(crate) const KIND_SKIPLIST: u32 = 1;

/// Head sentinel slot.
pub(crate) const HEAD_SLOT: u32 = 0;

/// Modeled cost of one CAS attempt ("in the order of a few dozen
/// cycles").
const CAS_COST: Nanos = Nanos::from_ns(30);

/// Upper-level link attempts before the tower is abandoned.
const TOWER_RETRIES: u32 = 4;

/// A decoded node slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NodeImg {
    pub is_head: bool,
    pub level: u8,
    pub tomb: bool,
    pub key: u64,
    pub op_id: u64,
    pub prev_op: u64,
    pub next: [u32; MAX_LEVELS],
    pub value: Vec<u8>,
}

impl NodeImg {
    pub fn head() -> Self {
        NodeImg {
            is_head: true,
            level: MAX_LEVELS as u8,
            tomb: false,
            key: 0,
            op_id: 0,
            prev_op: 0,
            next: [NIL; MAX_LEVELS],
            value: Vec::new(),
        }
    }
}

fn node_checksum(img: &NodeImg) -> u32 {
    let mut payload = Vec::with_capacity(64);
    payload.push(img.level);
    payload.push(u8::from(img.tomb));
    payload.extend_from_slice(&(img.value.len() as u16).to_le_bytes());
    payload.extend_from_slice(&img.key.to_le_bytes());
    payload.extend_from_slice(&img.op_id.to_le_bytes());
    payload.extend_from_slice(&img.prev_op.to_le_bytes());
    payload.extend_from_slice(&img.value);
    fnv1a32(&payload)
}

pub(crate) fn encode_node(img: &NodeImg) -> [u8; SLOT] {
    assert!(img.value.len() <= MAX_VALUE);
    let mut b = [0u8; SLOT];
    let magic = if img.is_head { HEAD_MAGIC } else { NODE_MAGIC };
    b[0..4].copy_from_slice(&magic.to_le_bytes());
    b[4] = img.level;
    b[5] = u8::from(img.tomb);
    b[6..8].copy_from_slice(&(img.value.len() as u16).to_le_bytes());
    b[8..16].copy_from_slice(&img.key.to_le_bytes());
    b[16..24].copy_from_slice(&img.op_id.to_le_bytes());
    b[24..32].copy_from_slice(&img.prev_op.to_le_bytes());
    b[32..36].copy_from_slice(&node_checksum(img).to_le_bytes());
    for (l, n) in img.next.iter().enumerate() {
        b[36 + l * 4..40 + l * 4].copy_from_slice(&n.to_le_bytes());
    }
    b[68..68 + img.value.len()].copy_from_slice(&img.value);
    b
}

/// Decodes a slot; `None` for empty/torn slots. Next pointers are *not*
/// covered by the checksum (they change independently via CAS) — they
/// are validated structurally by traversal and recovery.
pub(crate) fn decode_node(b: &[u8]) -> Option<NodeImg> {
    if b.len() < SLOT {
        return None;
    }
    let word = |at: usize| u32::from_le_bytes(b[at..at + 4].try_into().unwrap());
    let magic = word(0);
    let is_head = magic == HEAD_MAGIC;
    if !is_head && magic != NODE_MAGIC {
        return None;
    }
    let vlen = u16::from_le_bytes(b[6..8].try_into().unwrap()) as usize;
    if vlen > MAX_VALUE {
        return None;
    }
    let mut next = [NIL; MAX_LEVELS];
    for (l, n) in next.iter_mut().enumerate() {
        *n = word(36 + l * 4);
    }
    let img = NodeImg {
        is_head,
        level: b[4],
        tomb: b[5] != 0,
        key: u64::from_le_bytes(b[8..16].try_into().unwrap()),
        op_id: u64::from_le_bytes(b[16..24].try_into().unwrap()),
        prev_op: u64::from_le_bytes(b[24..32].try_into().unwrap()),
        next,
        value: b[68..68 + vlen].to_vec(),
    };
    if word(32) != node_checksum(&img) {
        return None;
    }
    if img.level == 0 || img.level > MAX_LEVELS as u8 {
        return None;
    }
    Some(img)
}

/// Deterministic tower height of a key (p = 1/4 geometric, capped).
pub(crate) fn level_for(key: u64) -> u8 {
    let h = scramble(key);
    ((h.trailing_zeros() / 2 + 1) as u8).min(MAX_LEVELS as u8)
}

/// Per-writer volatile allocation cursor into its current private chunk.
#[derive(Debug, Clone, Copy)]
struct ChunkAlloc {
    page: u32,
    used: u32,
}

/// What a [`PutOp::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// The operation has more atomic steps to run.
    Progress,
    /// The operation linearized (or no-op'd) and is complete.
    Finished,
}

/// The lock-free persistent skiplist. See the module docs.
#[derive(Debug)]
pub struct PSkipList {
    /// The backing carve.
    pub carve: IndexCarve,
    space: AsId,
    next_seq: Vec<u32>,
    alloc: Vec<Option<ChunkAlloc>>,
    live: usize,
}

impl PSkipList {
    /// Creates a fresh skiplist: carves the region, grants chunk 0 to the
    /// head sentinel, and persists the empty structure.
    ///
    /// # Errors
    ///
    /// A wrapped carve/persist error.
    pub fn create(
        ms: &mut MemSnap,
        space: AsId,
        vt: &mut Vt,
        name: &str,
        arena_pages: u64,
        writers: u32,
    ) -> Result<Self, MsnapError> {
        let carve = ms.msnap_open_index(vt, space, name, arena_pages, writers, KIND_SKIPLIST)?;
        let sk = PSkipList::attach(carve, space, writers);
        let thread = vt.id();
        let mut meta = [0u8; 8];
        meta[0..4].copy_from_slice(&META_MAGIC.to_le_bytes());
        meta[4..8].copy_from_slice(&1u32.to_le_bytes()); // head chunk granted
        ms.write(vt, space, thread, carve.meta_addr(), &meta)?;
        let head = encode_node(&NodeImg::head());
        ms.write(vt, space, thread, sk.slot_addr(HEAD_SLOT), &head)?;
        ms.msnap_persist(
            vt,
            thread,
            memsnap::RegionSel::Region(carve.region.md),
            memsnap::PersistFlags::sync(),
        )?;
        Ok(sk)
    }

    /// Wraps a carve without touching storage (recovery constructs the
    /// instance after repairing the structure).
    pub(crate) fn attach(carve: IndexCarve, space: AsId, writers: u32) -> Self {
        PSkipList {
            carve,
            space,
            next_seq: vec![1; writers as usize],
            alloc: vec![None; writers as usize],
            live: 0,
        }
    }

    /// Live (non-tombstone) keys.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Writer slots of the carve.
    pub fn writers(&self) -> u32 {
        self.carve.writers
    }

    pub(crate) fn set_live(&mut self, live: usize) {
        self.live = live;
    }

    pub(crate) fn set_next_seq(&mut self, writer: u32, seq: u32) {
        self.next_seq[writer as usize] = seq;
    }

    /// Address of an arena slot.
    pub(crate) fn slot_addr(&self, slot: u32) -> u64 {
        let page = u64::from(slot / SLOTS_PER_PAGE);
        let off = u64::from(slot % SLOTS_PER_PAGE) as usize * SLOT;
        assert!(page < self.carve.arena_pages, "slot {slot} out of arena");
        self.carve.arena_addr() + page * PAGE_SIZE as u64 + off as u64
    }

    pub(crate) fn read_node(&self, ms: &mut MemSnap, vt: &mut Vt, slot: u32) -> Option<NodeImg> {
        let mut buf = [0u8; SLOT];
        ms.read(vt, self.space, self.slot_addr(slot), &mut buf)
            .expect("arena is mapped");
        decode_node(&buf)
    }

    pub(crate) fn write_node(&self, ms: &mut MemSnap, vt: &mut Vt, slot: u32, img: &NodeImg) {
        let thread = vt.id();
        ms.write(
            vt,
            self.space,
            thread,
            self.slot_addr(slot),
            &encode_node(img),
        )
        .expect("arena is mapped");
    }

    /// Writes one next pointer of a slot (a CAS's store half).
    pub(crate) fn write_next(
        &self,
        ms: &mut MemSnap,
        vt: &mut Vt,
        slot: u32,
        level: usize,
        to: u32,
    ) {
        let thread = vt.id();
        ms.write(
            vt,
            self.space,
            thread,
            self.slot_addr(slot) + 36 + level as u64 * 4,
            &to.to_le_bytes(),
        )
        .expect("arena is mapped");
    }

    fn read_next(&self, ms: &mut MemSnap, vt: &mut Vt, slot: u32, level: usize) -> u32 {
        let mut b = [0u8; 4];
        ms.read(
            vt,
            self.space,
            self.slot_addr(slot) + 36 + level as u64 * 4,
            &mut b,
        )
        .expect("arena is mapped");
        u32::from_le_bytes(b)
    }

    pub(crate) fn chunks_granted(&self, ms: &mut MemSnap, vt: &mut Vt) -> Option<u32> {
        let mut meta = [0u8; 8];
        ms.read(vt, self.space, self.carve.meta_addr(), &mut meta)
            .expect("header is mapped");
        if u32::from_le_bytes(meta[0..4].try_into().unwrap()) != META_MAGIC {
            return None;
        }
        Some(u32::from_le_bytes(meta[4..8].try_into().unwrap()))
    }

    pub(crate) fn write_chunks_granted(&self, ms: &mut MemSnap, vt: &mut Vt, chunks: u32) {
        let thread = vt.id();
        let mut meta = [0u8; 8];
        meta[0..4].copy_from_slice(&META_MAGIC.to_le_bytes());
        meta[4..8].copy_from_slice(&chunks.to_le_bytes());
        ms.write(vt, self.space, thread, self.carve.meta_addr(), &meta)
            .expect("header is mapped");
    }

    /// Allocates one slot from the writer's private chunk, granting a
    /// fresh arena page when the chunk is exhausted (a modeled
    /// fetch-and-add on the shared meta counter).
    ///
    /// # Panics
    ///
    /// Panics when the arena is full.
    fn alloc_slot(&mut self, ms: &mut MemSnap, vt: &mut Vt, writer: u32) -> u32 {
        let need_chunk = match self.alloc[writer as usize] {
            None => true,
            Some(a) => a.used >= SLOTS_PER_PAGE,
        };
        if need_chunk {
            let granted = self
                .chunks_granted(ms, vt)
                .expect("meta valid while running");
            assert!(
                u64::from(granted) < self.carve.arena_pages,
                "index arena full ({} pages)",
                self.carve.arena_pages
            );
            vt.charge(Category::Locking, CAS_COST);
            self.write_chunks_granted(ms, vt, granted + 1);
            self.alloc[writer as usize] = Some(ChunkAlloc {
                page: granted,
                used: 0,
            });
        }
        let a = self.alloc[writer as usize].as_mut().unwrap();
        let slot = a.page * SLOTS_PER_PAGE + a.used;
        a.used += 1;
        slot
    }

    /// Search: per-level predecessors/successors and the key's node, if
    /// linked. Tombstones are found like live nodes (they stay linked).
    pub(crate) fn find(&self, ms: &mut MemSnap, vt: &mut Vt, key: u64) -> FindResult {
        let mut preds = [HEAD_SLOT; MAX_LEVELS];
        let mut succs = [NIL; MAX_LEVELS];
        let mut pred = HEAD_SLOT;
        for l in (0..MAX_LEVELS).rev() {
            loop {
                let nxt = self.read_next(ms, vt, pred, l);
                if nxt == NIL {
                    succs[l] = NIL;
                    break;
                }
                match self.read_node(ms, vt, nxt) {
                    Some(n) if n.key < key => pred = nxt,
                    _ => {
                        succs[l] = nxt;
                        break;
                    }
                }
            }
            preds[l] = pred;
        }
        let found = if succs[0] != NIL {
            self.read_node(ms, vt, succs[0])
                .filter(|n| n.key == key)
                .map(|n| (succs[0], n))
        } else {
            None
        };
        FindResult {
            preds,
            succs,
            found,
        }
    }

    /// Begins a put (upsert). Drive with [`PutOp::step`], or use
    /// [`PSkipList::put`] to run it to completion.
    pub fn begin_put(&mut self, writer: u32, key: u64, value: &[u8]) -> PutOp {
        assert!(value.len() <= MAX_VALUE, "pindex values are ≤{MAX_VALUE}B");
        let seq = self.next_seq[writer as usize];
        self.next_seq[writer as usize] += 1;
        PutOp::new(writer, seq, key, value.to_vec(), false)
    }

    /// Begins a remove (tombstone). Removing an absent key is a no-op.
    pub fn begin_remove(&mut self, writer: u32, key: u64) -> PutOp {
        let seq = self.next_seq[writer as usize];
        self.next_seq[writer as usize] += 1;
        PutOp::new(writer, seq, key, Vec::new(), true)
    }

    /// Runs a put to completion (single-threaded convenience).
    pub fn put(&mut self, ms: &mut MemSnap, vt: &mut Vt, writer: u32, key: u64, value: &[u8]) {
        let mut op = self.begin_put(writer, key, value);
        while op.step(self, ms, vt) == OpOutcome::Progress {}
    }

    /// Runs a remove to completion.
    pub fn remove(&mut self, ms: &mut MemSnap, vt: &mut Vt, writer: u32, key: u64) {
        let mut op = self.begin_remove(writer, key);
        while op.step(self, ms, vt) == OpOutcome::Progress {}
    }

    /// Point lookup (tombstones read as absent).
    pub fn get(&self, ms: &mut MemSnap, vt: &mut Vt, key: u64) -> Option<Vec<u8>> {
        self.find(ms, vt, key)
            .found
            .and_then(|(_, n)| if n.tomb { None } else { Some(n.value) })
    }

    /// The op id currently applied to `key`, tombstone or not (recovery
    /// audits and tests).
    pub fn op_of(&self, ms: &mut MemSnap, vt: &mut Vt, key: u64) -> Option<u64> {
        self.find(ms, vt, key).found.map(|(_, n)| n.op_id)
    }

    /// Ordered scan of up to `limit` live entries with keys ≥ `key`.
    pub fn seek(
        &self,
        ms: &mut MemSnap,
        vt: &mut Vt,
        key: u64,
        limit: usize,
    ) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let mut slot = self.find(ms, vt, key).succs[0];
        while slot != NIL && out.len() < limit {
            let Some(n) = self.read_node(ms, vt, slot) else {
                break;
            };
            if !n.tomb {
                out.push((n.key, n.value.clone()));
            }
            slot = n.next[0];
        }
        out
    }

    /// Every linked entry including tombstones, with op ids — the
    /// recovery audit's ground truth.
    pub fn dump(&self, ms: &mut MemSnap, vt: &mut Vt) -> Vec<(u64, u64, bool)> {
        let mut out = Vec::new();
        let mut slot = self.read_next(ms, vt, HEAD_SLOT, 0);
        while slot != NIL {
            let n = self
                .read_node(ms, vt, slot)
                .expect("recovered chain is valid");
            out.push((n.key, n.op_id, n.tomb));
            slot = n.next[0];
        }
        out
    }
}

pub(crate) struct FindResult {
    pub preds: [u32; MAX_LEVELS],
    pub succs: [u32; MAX_LEVELS],
    pub found: Option<(u32, NodeImg)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PutState {
    Start,
    WriteNode,
    Cas,
    Link(u8),
    Apply,
    Done,
}

/// One in-flight mutation, steppable one atomic action at a time so
/// schedulers can interleave concurrent writers between steps.
#[derive(Debug)]
pub struct PutOp {
    writer: u32,
    seq: u32,
    key: u64,
    value: Vec<u8>,
    remove: bool,
    state: PutState,
    node_slot: u32,
    level: u8,
    preds: [u32; MAX_LEVELS],
    succs: [u32; MAX_LEVELS],
    target: u32,
    prev_op: u64,
    target_was_tomb: bool,
    noop: bool,
}

impl PutOp {
    fn new(writer: u32, seq: u32, key: u64, value: Vec<u8>, remove: bool) -> Self {
        PutOp {
            writer,
            seq,
            key,
            value,
            remove,
            state: PutState::Start,
            node_slot: NIL,
            level: 0,
            preds: [HEAD_SLOT; MAX_LEVELS],
            succs: [NIL; MAX_LEVELS],
            target: NIL,
            prev_op: 0,
            target_was_tomb: false,
            noop: false,
        }
    }

    /// The operation's id.
    pub fn op_id(&self) -> u64 {
        op_id(self.writer, self.seq)
    }

    /// Whether the operation completed without touching the structure
    /// (remove of an absent key).
    pub fn was_noop(&self) -> bool {
        self.noop
    }

    /// Search + descriptor publish: decides insert vs in-place form and
    /// writes the detectable descriptor for it.
    fn start(&mut self, sk: &mut PSkipList, ms: &mut MemSnap, vt: &mut Vt) -> OpOutcome {
        let f = sk.find(ms, vt, self.key);
        self.preds = f.preds;
        self.succs = f.succs;
        match f.found {
            Some((slot, img)) => {
                if self.remove && img.tomb {
                    self.noop = true;
                    self.state = PutState::Done;
                    return OpOutcome::Finished;
                }
                self.target = slot;
                self.prev_op = img.op_id;
                self.target_was_tomb = img.tomb;
                let kind = if self.remove {
                    OpKind::Remove
                } else {
                    OpKind::Update
                };
                self.descriptor(kind, slot)
                    .publish(ms, sk.space, vt, &sk.carve);
                self.state = PutState::Apply;
            }
            None => {
                if self.remove {
                    self.noop = true;
                    self.state = PutState::Done;
                    return OpOutcome::Finished;
                }
                if self.node_slot == NIL {
                    self.node_slot = sk.alloc_slot(ms, vt, self.writer);
                }
                self.prev_op = 0;
                self.descriptor(OpKind::Insert, self.node_slot)
                    .publish(ms, sk.space, vt, &sk.carve);
                self.state = PutState::WriteNode;
            }
        }
        OpOutcome::Progress
    }

    fn descriptor(&self, kind: OpKind, node_slot: u32) -> OpDesc {
        OpDesc {
            writer: self.writer,
            seq: self.seq,
            kind,
            node_slot,
            key: self.key,
            prev_op: self.prev_op,
            value: self.value.clone(),
        }
    }

    /// Runs one atomic step; call until [`OpOutcome::Finished`].
    pub fn step(&mut self, sk: &mut PSkipList, ms: &mut MemSnap, vt: &mut Vt) -> OpOutcome {
        match self.state {
            PutState::Start => self.start(sk, ms, vt),
            PutState::WriteNode => {
                self.level = level_for(self.key);
                let mut next = [NIL; MAX_LEVELS];
                next[..self.level as usize].copy_from_slice(&self.succs[..self.level as usize]);
                let img = NodeImg {
                    is_head: false,
                    level: self.level,
                    tomb: false,
                    key: self.key,
                    op_id: self.op_id(),
                    prev_op: 0,
                    next,
                    value: self.value.clone(),
                };
                sk.write_node(ms, vt, self.node_slot, &img);
                self.state = PutState::Cas;
                OpOutcome::Progress
            }
            PutState::Cas => {
                vt.charge(Category::Locking, CAS_COST);
                let cur = sk.read_next(ms, vt, self.preds[0], 0);
                if cur == self.succs[0] {
                    // Linearizing CAS: splice after pred.
                    sk.write_next(ms, vt, self.preds[0], 0, self.node_slot);
                    sk.live += 1;
                    self.state = PutState::Link(1);
                    return OpOutcome::Progress;
                }
                // Lost the race: someone changed the neighborhood. Re-find
                // and either retry the insert or convert to an in-place
                // update of the node that beat us (our pre-written node
                // becomes unlinked garbage; its descriptor is rewritten
                // below, so recovery discards it).
                self.state = PutState::Start;
                OpOutcome::Progress
            }
            PutState::Link(l) => {
                let l = l as usize;
                if l >= self.level as usize {
                    self.state = PutState::Done;
                    return OpOutcome::Finished;
                }
                let mut tries = 0;
                loop {
                    vt.charge(Category::Locking, CAS_COST);
                    let cur = sk.read_next(ms, vt, self.preds[l], l);
                    if cur == self.node_slot {
                        break; // already linked
                    }
                    if cur == self.succs[l] {
                        sk.write_next(ms, vt, self.node_slot, l, self.succs[l]);
                        sk.write_next(ms, vt, self.preds[l], l, self.node_slot);
                        break;
                    }
                    tries += 1;
                    if tries > TOWER_RETRIES {
                        // Abandon the tower: level 0 carries correctness.
                        self.state = PutState::Done;
                        return OpOutcome::Finished;
                    }
                    let f = sk.find(ms, vt, self.key);
                    self.preds = f.preds;
                    self.succs = f.succs;
                    if self.succs[l] == self.node_slot {
                        break;
                    }
                }
                self.state = PutState::Link(l as u8 + 1);
                OpOutcome::Progress
            }
            PutState::Apply => {
                vt.charge(Category::Locking, CAS_COST);
                let img = sk
                    .read_node(ms, vt, self.target)
                    .expect("linked nodes stay valid");
                if img.op_id != self.prev_op {
                    // CAS on the op id failed: someone updated first.
                    self.state = PutState::Start;
                    return OpOutcome::Progress;
                }
                let mut updated = img.clone();
                updated.tomb = self.remove;
                updated.op_id = self.op_id();
                updated.prev_op = self.prev_op;
                updated.value = self.value.clone();
                // In-place linearizing write: header fields + checksum +
                // value, inside one atomic step, never touching the next
                // pointers (bytes 36..68).
                let enc = encode_node(&updated);
                let thread = vt.id();
                let addr = sk.slot_addr(self.target);
                ms.write(vt, sk.space, thread, addr + 4, &enc[4..36])
                    .expect("arena is mapped");
                ms.write(vt, sk.space, thread, addr + 68, &enc[68..SLOT])
                    .expect("arena is mapped");
                match (self.remove, self.target_was_tomb) {
                    (true, false) => sk.live -= 1,
                    (false, true) => sk.live += 1,
                    _ => {}
                }
                self.state = PutState::Done;
                OpOutcome::Finished
            }
            PutState::Done => OpOutcome::Finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::{Disk, DiskConfig};

    fn fresh(writers: u32) -> (MemSnap, AsId, PSkipList, Vt) {
        let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
        let mut vt = Vt::new(0);
        let space = ms.vm_mut().create_space();
        let sk = PSkipList::create(&mut ms, space, &mut vt, "sk", 64, writers).unwrap();
        (ms, space, sk, vt)
    }

    #[test]
    fn node_codec_round_trips() {
        let img = NodeImg {
            is_head: false,
            level: 3,
            tomb: false,
            key: 99,
            op_id: op_id(1, 2),
            prev_op: 0,
            next: [5, 6, 7, NIL, NIL, NIL, NIL, NIL],
            value: b"abc".to_vec(),
        };
        assert_eq!(decode_node(&encode_node(&img)), Some(img.clone()));
        let mut b = encode_node(&img);
        b[70] ^= 1; // value byte
        assert_eq!(decode_node(&b), None);
        assert_eq!(decode_node(&[0u8; SLOT]), None);
    }

    #[test]
    fn next_pointers_change_without_breaking_checksum() {
        let img = NodeImg {
            is_head: false,
            level: 1,
            tomb: false,
            key: 1,
            op_id: op_id(0, 1),
            prev_op: 0,
            next: [NIL; MAX_LEVELS],
            value: Vec::new(),
        };
        let mut b = encode_node(&img);
        b[36..40].copy_from_slice(&7u32.to_le_bytes()); // CAS next[0]
        let got = decode_node(&b).expect("still valid");
        assert_eq!(got.next[0], 7);
    }

    #[test]
    fn levels_are_deterministic_and_geometric() {
        let mut counts = [0usize; MAX_LEVELS + 1];
        for k in 0..4096u64 {
            assert_eq!(level_for(k), level_for(k));
            counts[level_for(k) as usize] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[3]);
    }

    #[test]
    fn put_get_seek_round_trip() {
        let (mut ms, _space, mut sk, mut vt) = fresh(2);
        for k in [50u64, 10, 30, 20, 40] {
            sk.put(&mut ms, &mut vt, 0, k, &k.to_le_bytes());
        }
        assert_eq!(sk.len(), 5);
        assert_eq!(
            sk.get(&mut ms, &mut vt, 30),
            Some(30u64.to_le_bytes().to_vec())
        );
        assert_eq!(sk.get(&mut ms, &mut vt, 31), None);
        let keys: Vec<u64> = sk
            .seek(&mut ms, &mut vt, 15, 3)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![20, 30, 40]);
    }

    #[test]
    fn update_is_in_place_and_remove_tombstones() {
        let (mut ms, _space, mut sk, mut vt) = fresh(2);
        sk.put(&mut ms, &mut vt, 0, 7, b"old");
        sk.put(&mut ms, &mut vt, 1, 7, b"new");
        assert_eq!(sk.len(), 1);
        assert_eq!(sk.get(&mut ms, &mut vt, 7), Some(b"new".to_vec()));
        sk.remove(&mut ms, &mut vt, 0, 7);
        assert_eq!(sk.len(), 0);
        assert_eq!(sk.get(&mut ms, &mut vt, 7), None);
        // Re-insert lands on the tombstoned node in place.
        sk.put(&mut ms, &mut vt, 1, 7, b"back");
        assert_eq!(sk.get(&mut ms, &mut vt, 7), Some(b"back".to_vec()));
        assert_eq!(sk.len(), 1);
    }

    #[test]
    fn remove_of_absent_key_is_noop() {
        let (mut ms, _space, mut sk, mut vt) = fresh(1);
        let mut op = sk.begin_remove(0, 123);
        while op.step(&mut sk, &mut ms, &mut vt) == OpOutcome::Progress {}
        assert!(op.was_noop());
        assert_eq!(sk.len(), 0);
    }

    #[test]
    fn writers_allocate_from_private_pages() {
        let (mut ms, _space, mut sk, mut vt) = fresh(2);
        sk.put(&mut ms, &mut vt, 0, 1, b"a");
        sk.put(&mut ms, &mut vt, 1, 2, b"b");
        let f1 = sk.find(&mut ms, &mut vt, 1).found.unwrap().0;
        let f2 = sk.find(&mut ms, &mut vt, 2).found.unwrap().0;
        assert_ne!(
            f1 / SLOTS_PER_PAGE,
            f2 / SLOTS_PER_PAGE,
            "each writer's nodes live on its own chunk pages"
        );
    }

    #[test]
    fn interleaved_ops_are_steppable() {
        // Two ops on neighbouring keys advanced strictly alternately: the
        // state machines tolerate arbitrary step interleavings.
        let (mut ms, _space, mut sk, mut vt0) = fresh(2);
        let mut vt1 = Vt::new(1);
        let mut a = sk.begin_put(0, 10, b"ten");
        let mut b = sk.begin_put(1, 11, b"eleven");
        let (mut da, mut db) = (false, false);
        while !da || !db {
            if !da {
                da = a.step(&mut sk, &mut ms, &mut vt0) == OpOutcome::Finished;
            }
            if !db {
                db = b.step(&mut sk, &mut ms, &mut vt1) == OpOutcome::Finished;
            }
        }
        assert_eq!(sk.get(&mut ms, &mut vt0, 10), Some(b"ten".to_vec()));
        assert_eq!(sk.get(&mut ms, &mut vt0, 11), Some(b"eleven".to_vec()));
        assert_eq!(sk.len(), 2);
    }
}
