//! A lossy, reordering, bandwidth-limited network link in virtual time.
//!
//! Replication ships epoch deltas between stores that live on different
//! "machines". This module models the wire between them as a
//! unidirectional datagram link driven entirely by the virtual clock:
//! every behavior — serialization delay, propagation latency, jitter,
//! drops, reordering, partitions — is a deterministic function of the
//! link's [`NetConfig`] (including its seed) and the virtual instants at
//! which datagrams are sent, so a replication scenario replays
//! identically for a fixed seed.
//!
//! The link is *not* a queue abstraction over wall-clock sockets: the
//! sender calls [`SimLink::send`] with its current virtual instant, the
//! receiver calls [`SimLink::poll`] with *its* current instant and sees
//! exactly the datagrams whose computed delivery instant has passed.
//!
//! # Example
//!
//! ```
//! use msnap_sim::{Nanos, NetConfig, SimLink};
//!
//! let mut link = SimLink::new(NetConfig::calm(7));
//! link.send(Nanos::ZERO, vec![1, 2, 3]);
//! assert!(link.poll(Nanos::ZERO).is_none(), "latency has not elapsed");
//! let (at, payload) = link.poll(Nanos::from_ms(10)).unwrap();
//! assert_eq!(payload, vec![1, 2, 3]);
//! assert!(at >= NetConfig::calm(7).latency);
//! ```

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Nanos;

/// Parameters of one simulated link direction.
///
/// All randomness (jitter, drops, reorder holds) is drawn from a
/// dedicated RNG seeded by `seed`, so two links with the same config are
/// statistically identical but independent, and one link replays
/// identically across runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Seed for the link's private RNG.
    pub seed: u64,
    /// One-way propagation delay added to every datagram.
    pub latency: Nanos,
    /// Uniform extra delay in `[0, jitter]` drawn per datagram.
    pub jitter: Nanos,
    /// Serialization cost: the sender's interface transmits one byte
    /// every `ns_per_byte` nanoseconds, and datagrams queue behind each
    /// other on the interface (bandwidth sharing).
    pub ns_per_byte: u64,
    /// Probability a datagram is silently dropped in flight.
    pub drop_rate: f64,
    /// Probability a datagram is held back an extra [`NetConfig::reorder_hold`],
    /// letting datagrams sent after it overtake it.
    pub reorder_rate: f64,
    /// Extra delay applied to reordered datagrams.
    pub reorder_hold: Nanos,
}

impl NetConfig {
    /// A fast, reliable datacenter-style link: 50 μs one-way latency,
    /// 5 μs jitter, ~1 GB/s, no loss, no reordering.
    pub fn calm(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            latency: Nanos::from_us(50),
            jitter: Nanos::from_us(5),
            ns_per_byte: 1,
            drop_rate: 0.0,
            reorder_rate: 0.0,
            reorder_hold: Nanos::ZERO,
        }
    }

    /// A lossy WAN-style link: 2 ms latency, 500 μs jitter, ~100 MB/s,
    /// 15% loss, 10% reordering.
    pub fn lossy(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            latency: Nanos::from_ms(2),
            jitter: Nanos::from_us(500),
            ns_per_byte: 10,
            drop_rate: 0.15,
            reorder_rate: 0.10,
            reorder_hold: Nanos::from_ms(4),
        }
    }

    /// Same shape as [`NetConfig::lossy`] with an explicit loss rate,
    /// for loss-sweep experiments.
    pub fn with_loss(seed: u64, drop_rate: f64) -> NetConfig {
        NetConfig {
            drop_rate,
            ..NetConfig::lossy(seed)
        }
    }
}

/// Counters describing everything a link direction has done.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Datagrams handed to [`SimLink::send`].
    pub sent: u64,
    /// Datagrams delivered by [`SimLink::poll`].
    pub delivered: u64,
    /// Datagrams dropped in flight (loss or partition).
    pub dropped: u64,
    /// Datagrams that took the reorder-hold path.
    pub reordered: u64,
    /// Payload bytes handed to [`SimLink::send`].
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
}

/// One direction of a simulated network link: a deterministic, seeded
/// lossy datagram channel in virtual time. See the module docs above
/// for the fault model.
#[derive(Debug)]
pub struct SimLink {
    cfg: NetConfig,
    rng: StdRng,
    /// Tie-breaker so same-instant deliveries stay FIFO.
    seq: u64,
    /// Instant the sender's interface finishes its current backlog.
    iface_free: Nanos,
    partitioned: bool,
    /// In-flight datagrams keyed by (delivery instant, send order).
    in_flight: BTreeMap<(Nanos, u64), Vec<u8>>,
    stats: LinkStats,
}

impl SimLink {
    /// Creates an idle link.
    pub fn new(cfg: NetConfig) -> SimLink {
        SimLink {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            seq: 0,
            iface_free: Nanos::ZERO,
            partitioned: false,
            in_flight: BTreeMap::new(),
            stats: LinkStats::default(),
        }
    }

    /// Submits one datagram at the sender's instant `now`.
    ///
    /// The datagram serializes after everything already queued on the
    /// interface, then propagates. A partitioned link, and a lossy
    /// link's unlucky draws, drop it silently — datagram semantics; any
    /// reliability is the caller's protocol (acks and retransmits).
    pub fn send(&mut self, now: Nanos, payload: Vec<u8>) {
        self.stats.sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        // Serialization occupies the interface even for datagrams that
        // are later dropped: loss happens in flight, not at the NIC.
        let serialize = Nanos::from_ns(self.cfg.ns_per_byte * payload.len() as u64);
        let on_wire = self.iface_free.max(now) + serialize;
        self.iface_free = on_wire;
        if self.partitioned {
            self.stats.dropped += 1;
            return;
        }
        let jitter = if self.cfg.jitter > Nanos::ZERO {
            Nanos::from_ns(self.rng.gen_range(0..=self.cfg.jitter.as_ns()))
        } else {
            Nanos::ZERO
        };
        if self.cfg.drop_rate > 0.0 && self.rng.gen_bool(self.cfg.drop_rate) {
            self.stats.dropped += 1;
            return;
        }
        let mut deliver_at = on_wire + self.cfg.latency + jitter;
        if self.cfg.reorder_rate > 0.0 && self.rng.gen_bool(self.cfg.reorder_rate) {
            self.stats.reordered += 1;
            deliver_at += self.cfg.reorder_hold;
        }
        self.in_flight.insert((deliver_at, self.seq), payload);
        self.seq += 1;
    }

    /// Delivers the earliest in-flight datagram whose delivery instant
    /// has passed by the receiver's instant `now`, with that instant.
    /// Returns `None` when nothing is deliverable yet.
    pub fn poll(&mut self, now: Nanos) -> Option<(Nanos, Vec<u8>)> {
        let (&(at, _), _) = self.in_flight.first_key_value()?;
        if at > now {
            return None;
        }
        let ((at, _), payload) = self.in_flight.pop_first()?;
        self.stats.delivered += 1;
        self.stats.bytes_delivered += payload.len() as u64;
        Some((at, payload))
    }

    /// The delivery instant of the earliest in-flight datagram, if any —
    /// the instant an idle receiver should sleep until.
    pub fn next_delivery(&self) -> Option<Nanos> {
        self.in_flight.keys().next().map(|&(at, _)| at)
    }

    /// Partitions or heals the link. While partitioned every send is
    /// dropped; datagrams already in flight still arrive (they left
    /// before the cut).
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.partitioned = partitioned;
    }

    /// Whether the link is currently partitioned.
    pub fn partitioned(&self) -> bool {
        self.partitioned
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }
}

/// An N-port datagram hub: one seeded [`SimLink`] per port with *fair*
/// round-robin polling, so multi-client fan-in (a server draining
/// thousands of connections) is not reimplemented per test.
///
/// Each port is an independent unidirectional link (its own RNG, its
/// own interface backlog, its own partition switch). [`SimSwitch::poll`]
/// scans the ports round-robin starting just past the last port served,
/// so a single backlogged port cannot starve the others;
/// [`SimSwitch::next_delivery`] is the minimum over all ports — the
/// instant an idle receiver should sleep until.
///
/// # Example
///
/// ```
/// use msnap_sim::{Nanos, NetConfig, SimSwitch};
///
/// let mut hub = SimSwitch::with_ports(NetConfig::calm(9), 3);
/// hub.send(0, Nanos::ZERO, vec![1]);
/// hub.send(2, Nanos::ZERO, vec![2]);
/// let mut from = Vec::new();
/// while let Some((port, _, _)) = hub.poll(Nanos::from_ms(10)) {
///     from.push(port);
/// }
/// assert_eq!(from.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SimSwitch {
    ports: Vec<SimLink>,
    /// Round-robin scan start for the next [`SimSwitch::poll`].
    cursor: usize,
}

impl SimSwitch {
    /// Creates an empty hub; add ports with [`SimSwitch::add_port`].
    pub fn new() -> SimSwitch {
        SimSwitch::default()
    }

    /// Creates a hub of `n` ports sharing `base`'s shape, each with a
    /// seed derived from `base.seed` and its port index (so ports are
    /// statistically identical but independent, and the whole hub
    /// replays identically for a fixed base seed).
    pub fn with_ports(base: NetConfig, n: usize) -> SimSwitch {
        let mut hub = SimSwitch::new();
        for i in 0..n {
            hub.add_port(NetConfig {
                seed: derive_seed(base.seed, i as u64),
                ..base
            });
        }
        hub
    }

    /// Appends a port with its own link config, returning its index.
    pub fn add_port(&mut self, cfg: NetConfig) -> usize {
        self.ports.push(SimLink::new(cfg));
        self.ports.len() - 1
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Whether the hub has no ports.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Submits one datagram on `port` at the sender's instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range (ports are created by this
    /// process; an unknown index is a caller bug, like a wild fd).
    pub fn send(&mut self, port: usize, now: Nanos, payload: Vec<u8>) {
        self.ports[port].send(now, payload);
    }

    /// Delivers one due datagram, scanning ports round-robin from just
    /// past the last port served. Returns `(port, delivery instant,
    /// payload)`, or `None` when nothing is deliverable by `now`.
    pub fn poll(&mut self, now: Nanos) -> Option<(usize, Nanos, Vec<u8>)> {
        let n = self.ports.len();
        for i in 0..n {
            let port = (self.cursor + i) % n;
            if let Some((at, payload)) = self.ports[port].poll(now) {
                self.cursor = (port + 1) % n;
                return Some((port, at, payload));
            }
        }
        None
    }

    /// The earliest delivery instant over all ports, if any datagram is
    /// in flight anywhere.
    pub fn next_delivery(&self) -> Option<Nanos> {
        self.ports.iter().filter_map(SimLink::next_delivery).min()
    }

    /// Partitions or heals one port (see [`SimLink::set_partitioned`]).
    pub fn set_partitioned(&mut self, port: usize, partitioned: bool) {
        self.ports[port].set_partitioned(partitioned);
    }

    /// Borrows one port's link (stats, partition state).
    pub fn port(&self, port: usize) -> &SimLink {
        &self.ports[port]
    }

    /// Mutably borrows one port's link.
    pub fn port_mut(&mut self, port: usize) -> &mut SimLink {
        &mut self.ports[port]
    }

    /// Aggregate lifetime counters over all ports.
    pub fn stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for p in &self.ports {
            let s = p.stats();
            total.sent += s.sent;
            total.delivered += s.delivered;
            total.dropped += s.dropped;
            total.reordered += s.reordered;
            total.bytes_sent += s.bytes_sent;
            total.bytes_delivered += s.bytes_delivered;
        }
        total
    }
}

/// Splitmix-style seed derivation so per-port RNG streams are
/// decorrelated from each other and from the base seed.
fn derive_seed(base: u64, salt: u64) -> u64 {
    let mut z = base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(link: &mut SimLink, until: Nanos) -> Vec<(Nanos, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some(d) = link.poll(until) {
            out.push(d);
        }
        out
    }

    #[test]
    fn calm_link_delivers_in_order_with_latency_and_bandwidth() {
        let cfg = NetConfig {
            jitter: Nanos::ZERO,
            ..NetConfig::calm(1)
        };
        let mut link = SimLink::new(cfg);
        link.send(Nanos::ZERO, vec![0u8; 1000]);
        link.send(Nanos::ZERO, vec![1u8; 1000]);
        let got = drain(&mut link, Nanos::from_ms(100));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1[0], 0);
        assert_eq!(got[1].1[0], 1);
        // Second datagram queues behind the first on the interface.
        assert!(got[1].0 >= got[0].0 + Nanos::from_ns(1000));
        assert!(got[0].0 >= cfg.latency + Nanos::from_ns(1000));
        assert_eq!(link.stats().delivered, 2);
        assert_eq!(link.stats().dropped, 0);
    }

    #[test]
    fn lossy_link_drops_and_reorders_deterministically() {
        let run = |seed| {
            let mut link = SimLink::new(NetConfig::lossy(seed));
            for i in 0..200u64 {
                link.send(Nanos::from_us(i * 10), i.to_le_bytes().to_vec());
            }
            let got = drain(&mut link, Nanos::from_secs(1));
            let ids: Vec<u64> = got
                .iter()
                .filter_map(|(_, p)| Some(u64::from_le_bytes(p.get(..8)?.try_into().ok()?)))
                .collect();
            assert_eq!(ids.len(), got.len(), "every payload round-trips intact");
            (ids, *link.stats())
        };
        let (ids_a, stats_a) = run(42);
        let (ids_b, stats_b) = run(42);
        assert_eq!(ids_a, ids_b, "same seed must replay identically");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.dropped > 0, "15% loss over 200 sends");
        assert!(!ids_a.is_sorted(), "reorder holds must reorder something");
        let (ids_c, _) = run(43);
        assert_ne!(ids_a, ids_c, "different seeds diverge");
    }

    #[test]
    fn partition_drops_new_sends_but_delivers_in_flight() {
        let mut link = SimLink::new(NetConfig::calm(3));
        link.send(Nanos::ZERO, vec![1]);
        link.set_partitioned(true);
        link.send(Nanos::ZERO, vec![2]);
        let got = drain(&mut link, Nanos::from_ms(10));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, vec![1]);
        assert_eq!(link.stats().dropped, 1);
        link.set_partitioned(false);
        link.send(Nanos::from_ms(10), vec![3]);
        assert_eq!(drain(&mut link, Nanos::from_ms(20)).len(), 1);
    }

    #[test]
    fn switch_polling_is_fair_across_backlogged_ports() {
        let base = NetConfig {
            jitter: Nanos::ZERO,
            ..NetConfig::calm(5)
        };
        let mut hub = SimSwitch::with_ports(base, 3);
        // Ports 0 and 2 each queue four datagrams; port 1 stays idle.
        for i in 0..4u8 {
            hub.send(0, Nanos::ZERO, vec![0, i]);
            hub.send(2, Nanos::ZERO, vec![2, i]);
        }
        let mut order = Vec::new();
        while let Some((port, _, _)) = hub.poll(Nanos::from_ms(100)) {
            order.push(port);
        }
        assert_eq!(order.len(), 8);
        // Round-robin: no port is served twice before the other
        // backlogged port is served once.
        for w in order.windows(2) {
            assert_ne!(w[0], w[1], "fair polling must alternate: {order:?}");
        }
    }

    #[test]
    fn switch_next_delivery_is_the_min_over_ports() {
        let base = NetConfig {
            jitter: Nanos::ZERO,
            ..NetConfig::calm(6)
        };
        let mut hub = SimSwitch::with_ports(base, 2);
        assert_eq!(hub.next_delivery(), None);
        hub.send(1, Nanos::from_ms(5), vec![1]);
        hub.send(0, Nanos::ZERO, vec![0]);
        let first = hub.next_delivery().expect("two datagrams in flight");
        let (port, at, _) = hub.poll(Nanos::from_secs(1)).expect("deliverable");
        assert_eq!(port, 0, "the earlier send delivers first");
        assert_eq!(at, first, "next_delivery named the earliest instant");
        assert!(hub.next_delivery().expect("one left") > first);
    }

    #[test]
    fn switch_ports_are_independent_and_deterministic() {
        let run = || {
            let mut hub = SimSwitch::with_ports(NetConfig::lossy(11), 4);
            for i in 0..50u64 {
                for p in 0..4 {
                    hub.send(p, Nanos::from_us(i * 20), i.to_le_bytes().to_vec());
                }
            }
            let mut got: Vec<(usize, Nanos)> = Vec::new();
            while let Some((port, at, _)) = hub.poll(Nanos::from_secs(2)) {
                got.push((port, at));
            }
            (got, hub.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same base seed must replay identically");
        assert_eq!(sa, sb);
        assert!(sa.dropped > 0, "lossy ports drop something");
        // Derived seeds decorrelate ports: the per-port delivery counts
        // must not be identical across all four ports.
        let mut per_port = [0u64; 4];
        for (p, _) in &a {
            per_port[*p] += 1;
        }
        assert!(
            per_port.iter().any(|&c| c != per_port[0]),
            "independent loss draws per port: {per_port:?}"
        );
    }

    #[test]
    fn switch_partition_isolates_one_port() {
        let mut hub = SimSwitch::with_ports(NetConfig::calm(8), 2);
        hub.set_partitioned(0, true);
        hub.send(0, Nanos::ZERO, vec![0]);
        hub.send(1, Nanos::ZERO, vec![1]);
        let mut got = Vec::new();
        while let Some((port, _, _)) = hub.poll(Nanos::from_ms(10)) {
            got.push(port);
        }
        assert_eq!(got, vec![1], "only the healthy port delivers");
        assert_eq!(hub.port(0).stats().dropped, 1);
        assert!(hub.port(0).partitioned());
        assert!(!hub.port(1).partitioned());
    }
}
