//! Recovery-time characterization (the paper's restore path, §4):
//! how long `MemSnap::restore` + region page-in takes as the durable
//! dataset grows, and what a pending delta chain adds.

use memsnap::{MemSnap, PersistFlags, RegionSel, PAGE_SIZE};
use msnap_bench::{header, table, us};
use msnap_disk::{Disk, DiskConfig};
use msnap_sim::Vt;

/// Builds a store with `pages` persisted pages, committing in batches of
/// `batch` (small batches leave longer delta chains for recovery to
/// replay).
fn build(pages: u64, batch: u64) -> Disk {
    let mut ms = MemSnap::format(Disk::new(DiskConfig::paper()));
    let mut vt = Vt::new(0);
    let space = ms.vm_mut().create_space();
    let region = ms.msnap_open(&mut vt, space, "data", pages).unwrap();
    let thread = vt.id();
    let mut page = 0;
    while page < pages {
        for _ in 0..batch.min(pages - page) {
            ms.write(
                &mut vt,
                space,
                thread,
                region.addr + page * PAGE_SIZE as u64,
                &[page as u8; 64],
            )
            .unwrap();
            page += 1;
        }
        ms.msnap_persist(
            &mut vt,
            thread,
            RegionSel::Region(region.md),
            PersistFlags::sync(),
        )
        .unwrap();
    }
    ms.shutdown()
}

/// Virtual time of restore + full page-in.
fn restore_us(disk: Disk) -> (f64, f64) {
    let mut vt = Vt::new(1);
    let t0 = vt.now();
    let mut ms = MemSnap::restore(&mut vt, disk).unwrap();
    let open_store = (vt.now() - t0).as_us_f64();
    let space = ms.vm_mut().create_space();
    let t1 = vt.now();
    ms.msnap_open(&mut vt, space, "data", 0).unwrap();
    let page_in = (vt.now() - t1).as_us_f64();
    (open_store, page_in)
}

fn main() {
    header(
        "Recovery time vs dataset size and commit granularity",
        "restore = reopen the store (roots + delta replay + tree load); \
         page-in = read every durable page back into memory on first \
         msnap_open.",
    );

    let mut rows = Vec::new();
    for (mib, batch) in [(1u64, 64u64), (4, 64), (16, 64), (16, 4), (16, 1)] {
        let pages = mib * 256;
        let disk = build(pages, batch);
        let (open_store, page_in) = restore_us(disk);
        rows.push(vec![
            format!("{mib} MiB"),
            format!("{batch}"),
            us(open_store),
            us(page_in),
            us(open_store + page_in),
        ]);
    }
    table(
        &[
            "dataset",
            "pages/commit",
            "store open us",
            "page-in us",
            "total us",
        ],
        &rows,
    );
    println!();
    println!(
        "Shape checks: recovery is dominated by reading data back in \
         (linear in dataset size); smaller commits lengthen the delta \
         chain but replay costs only one block read per record."
    );
}
