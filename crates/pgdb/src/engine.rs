//! The heap engine: slotted 8 KiB blocks with append-only MVCC tuples.

use std::collections::HashMap;

use msnap_sim::{Vt, VthreadId};

use crate::store::{BlockStore, PG_BLOCK};

/// Handle to a heap table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PgTable(pub u32);

const BLOCK_HDR: usize = 4; // nslots u16, free_off u16
const SLOT_HDR: usize = 12; // key u64, len u16, flags u16 (bit0 = dead)

#[derive(Debug, Default, Clone)]
struct TableState {
    nblocks: u64,
    /// Free bytes per block.
    free: Vec<usize>,
}

/// The PostgreSQL-shaped engine: heap tables over a [`BlockStore`].
///
/// Updates follow MVCC discipline: the new tuple version is *appended*
/// (preferring the old version's block — a HOT update) and the old
/// version's header is marked dead; tuples are never modified in place.
/// This is what makes it safe for MemSnap to persist a page that carries
/// another transaction's uncommitted appends (§7.3 properties ② and ③).
pub struct PgDb {
    store: BlockStore,
    tables: Vec<TableState>,
    /// Volatile primary-key index: (table, key) → (block, slot ordinal).
    index: HashMap<(u32, u64), (u64, u16)>,
}

impl std::fmt::Debug for PgDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PgDb")
            .field("tables", &self.tables.len())
            .field("rows", &self.index.len())
            .finish()
    }
}

impl PgDb {
    /// Wraps a block store configured for `ntables` tables.
    pub fn new(store: BlockStore, ntables: u32) -> Self {
        PgDb {
            store,
            tables: vec![TableState::default(); ntables as usize],
            index: HashMap::new(),
        }
    }

    /// The underlying store (IO reports, checkpoints).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Mutable access to the underlying store.
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// Consumes the engine, returning the store (crash tests).
    pub fn into_store(self) -> BlockStore {
        self.store
    }

    /// Number of live rows across all tables.
    pub fn rows(&self) -> usize {
        self.index.len()
    }

    fn read_block(&mut self, vt: &mut Vt, conn: usize, table: u32, block: u64) -> Vec<u8> {
        let mut buf = vec![0u8; PG_BLOCK];
        self.store.read(vt, conn, table, block, &mut buf);
        buf
    }

    /// Picks a block with at least `need` free bytes, preferring the last
    /// block; allocates a new one if necessary.
    fn pick_block(&mut self, table: u32, need: usize) -> u64 {
        let state = &mut self.tables[table as usize];
        if let Some(last) = state.nblocks.checked_sub(1) {
            if state.free[last as usize] >= need {
                return last;
            }
        }
        let block = state.nblocks;
        state.nblocks += 1;
        state.free.push(PG_BLOCK - BLOCK_HDR);
        block
    }

    /// Appends a tuple version into `block`'s image; returns the slot
    /// ordinal.
    fn append_tuple(image: &mut [u8], key: u64, row: &[u8]) -> u16 {
        let nslots = u16::from_le_bytes(image[0..2].try_into().unwrap());
        let mut free_off = u16::from_le_bytes(image[2..4].try_into().unwrap()) as usize;
        if free_off == 0 {
            free_off = BLOCK_HDR;
        }
        let need = SLOT_HDR + row.len();
        assert!(free_off + need <= PG_BLOCK, "block overflow");
        image[free_off..free_off + 8].copy_from_slice(&key.to_le_bytes());
        image[free_off + 8..free_off + 10].copy_from_slice(&(row.len() as u16).to_le_bytes());
        image[free_off + 10..free_off + 12].copy_from_slice(&0u16.to_le_bytes());
        image[free_off + 12..free_off + 12 + row.len()].copy_from_slice(row);
        image[0..2].copy_from_slice(&(nslots + 1).to_le_bytes());
        image[2..4].copy_from_slice(&((free_off + need) as u16).to_le_bytes());
        nslots
    }

    /// Walks to slot `slot`'s offset within a block image.
    fn slot_offset(image: &[u8], slot: u16) -> usize {
        let mut off = BLOCK_HDR;
        for _ in 0..slot {
            let len = u16::from_le_bytes(image[off + 8..off + 10].try_into().unwrap()) as usize;
            off += SLOT_HDR + len;
        }
        off
    }

    /// Inserts a new row.
    ///
    /// # Panics
    ///
    /// Panics if the key already exists (use [`PgDb::update`]).
    pub fn insert(
        &mut self,
        vt: &mut Vt,
        conn: usize,
        thread: VthreadId,
        table: PgTable,
        key: u64,
        row: &[u8],
    ) {
        assert!(
            !self.index.contains_key(&(table.0, key)),
            "duplicate key {key} in table {}",
            table.0
        );
        let need = SLOT_HDR + row.len();
        let block = self.pick_block(table.0, need);
        let mut image = self.read_block(vt, conn, table.0, block);
        let slot = Self::append_tuple(&mut image, key, row);
        self.store.write(vt, conn, thread, table.0, block, &image);
        self.tables[table.0 as usize].free[block as usize] -= need;
        self.index.insert((table.0, key), (block, slot));
    }

    /// MVCC update: appends the new version and marks the old one dead.
    ///
    /// # Panics
    ///
    /// Panics if the key does not exist.
    pub fn update(
        &mut self,
        vt: &mut Vt,
        conn: usize,
        thread: VthreadId,
        table: PgTable,
        key: u64,
        row: &[u8],
    ) {
        let (old_block, old_slot) = *self
            .index
            .get(&(table.0, key))
            .unwrap_or_else(|| panic!("update of missing key {key}"));
        let need = SLOT_HDR + row.len();

        // HOT path: the new version fits in the old version's block — one
        // dirty block.
        if self.tables[table.0 as usize].free[old_block as usize] >= need {
            let mut image = self.read_block(vt, conn, table.0, old_block);
            let off = Self::slot_offset(&image, old_slot);
            image[off + 10] |= 1; // dead
            let slot = Self::append_tuple(&mut image, key, row);
            self.store
                .write(vt, conn, thread, table.0, old_block, &image);
            self.tables[table.0 as usize].free[old_block as usize] -= need;
            self.index.insert((table.0, key), (old_block, slot));
            return;
        }

        // Cold path: new version elsewhere; two dirty blocks.
        let new_block = self.pick_block(table.0, need);
        let mut new_image = self.read_block(vt, conn, table.0, new_block);
        let slot = Self::append_tuple(&mut new_image, key, row);
        self.store
            .write(vt, conn, thread, table.0, new_block, &new_image);
        self.tables[table.0 as usize].free[new_block as usize] -= need;

        let mut old_image = self.read_block(vt, conn, table.0, old_block);
        let off = Self::slot_offset(&old_image, old_slot);
        old_image[off + 10] |= 1;
        self.store
            .write(vt, conn, thread, table.0, old_block, &old_image);

        self.index.insert((table.0, key), (new_block, slot));
    }

    /// Reads the live version of a row.
    pub fn read(&mut self, vt: &mut Vt, conn: usize, table: PgTable, key: u64) -> Option<Vec<u8>> {
        let (block, slot) = *self.index.get(&(table.0, key))?;
        let image = self.read_block(vt, conn, table.0, block);
        let off = Self::slot_offset(&image, slot);
        let len = u16::from_le_bytes(image[off + 8..off + 10].try_into().unwrap()) as usize;
        Some(image[off + 12..off + 12 + len].to_vec())
    }

    /// Durably commits the connection's transaction.
    pub fn commit(&mut self, vt: &mut Vt, conn: usize, thread: VthreadId) {
        self.store.commit(vt, conn, thread);
    }

    /// Rebuilds the volatile index by scanning every block (restore path;
    /// the last — live — version of each key wins).
    pub fn rebuild_index(&mut self, vt: &mut Vt, conn: usize) {
        self.index.clear();
        for t in 0..self.tables.len() as u32 {
            // Scan forward until an empty block.
            let mut block = 0u64;
            loop {
                let image = self.read_block(vt, conn, t, block);
                let nslots = u16::from_le_bytes(image[0..2].try_into().unwrap());
                if nslots == 0 {
                    break;
                }
                let mut off = BLOCK_HDR;
                for slot in 0..nslots {
                    let key = u64::from_le_bytes(image[off..off + 8].try_into().unwrap());
                    let len =
                        u16::from_le_bytes(image[off + 8..off + 10].try_into().unwrap()) as usize;
                    let dead = image[off + 10] & 1 != 0;
                    if !dead {
                        self.index.insert((t, key), (block, slot));
                    }
                    off += SLOT_HDR + len;
                }
                let state = &mut self.tables[t as usize];
                if state.nblocks <= block {
                    state.nblocks = block + 1;
                    state.free.resize(block as usize + 1, 0);
                }
                state.free[block as usize] = PG_BLOCK
                    - u16::from_le_bytes(image[2..4].try_into().unwrap()).max(BLOCK_HDR as u16)
                        as usize;
                block += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreVariant;
    use msnap_disk::{Disk, DiskConfig};

    fn fresh(variant: StoreVariant) -> (PgDb, Vt) {
        let mut vt = Vt::new(0);
        let store = BlockStore::new(variant, Disk::new(DiskConfig::paper()), 3, 2, 512, &mut vt);
        (PgDb::new(store, 3), vt)
    }

    #[test]
    fn insert_read_update_cycle() {
        for variant in [StoreVariant::Baseline, StoreVariant::MemSnap] {
            let (mut db, mut vt) = fresh(variant);
            let t = vt.id();
            let tbl = PgTable(0);
            db.insert(&mut vt, 0, t, tbl, 1, b"v1");
            db.commit(&mut vt, 0, t);
            assert_eq!(db.read(&mut vt, 0, tbl, 1), Some(b"v1".to_vec()));
            db.update(&mut vt, 0, t, tbl, 1, b"v2-longer");
            db.commit(&mut vt, 0, t);
            assert_eq!(db.read(&mut vt, 0, tbl, 1), Some(b"v2-longer".to_vec()));
            assert_eq!(db.read(&mut vt, 0, tbl, 2), None);
        }
    }

    #[test]
    fn updates_append_versions_not_overwrite() {
        let (mut db, mut vt) = fresh(StoreVariant::MemSnap);
        let t = vt.id();
        let tbl = PgTable(0);
        db.insert(&mut vt, 0, t, tbl, 7, b"old");
        let (block, slot0) = db.index[&(0, 7)];
        db.update(&mut vt, 0, t, tbl, 7, b"new");
        let (block2, slot1) = db.index[&(0, 7)];
        assert_eq!(block, block2, "HOT update stays in the block");
        assert!(slot1 > slot0, "new version is appended");
    }

    #[test]
    fn blocks_spill_when_full() {
        let (mut db, mut vt) = fresh(StoreVariant::Baseline);
        let t = vt.id();
        let tbl = PgTable(1);
        let row = vec![9u8; 500];
        for k in 0..40u64 {
            db.insert(&mut vt, 0, t, tbl, k, &row);
        }
        db.commit(&mut vt, 0, t);
        assert!(
            db.tables[1].nblocks > 1,
            "rows spilled into multiple blocks"
        );
        for k in 0..40u64 {
            assert_eq!(db.read(&mut vt, 0, tbl, k), Some(row.clone()));
        }
    }

    #[test]
    fn memsnap_variant_survives_crash_and_index_rebuild() {
        let (mut db, mut vt) = fresh(StoreVariant::MemSnap);
        let t = vt.id();
        let tbl = PgTable(0);
        for k in 0..30u64 {
            db.insert(&mut vt, 0, t, tbl, k, &k.to_le_bytes());
        }
        db.update(&mut vt, 0, t, tbl, 5, b"updated!");
        db.commit(&mut vt, 0, t);
        let crash_at = vt.now();
        let disk = db.into_store().crash(crash_at);

        let mut vt2 = Vt::new(1);
        let store = BlockStore::restore(disk, 3, 2, &mut vt2);
        let mut db2 = PgDb::new(store, 3);
        db2.rebuild_index(&mut vt2, 0);
        assert_eq!(db2.read(&mut vt2, 0, tbl, 5), Some(b"updated!".to_vec()));
        assert_eq!(
            db2.read(&mut vt2, 0, tbl, 20),
            Some(20u64.to_le_bytes().to_vec())
        );
        assert_eq!(db2.rows(), 30);
    }
}
