//! The MemSnap-RocksDB integration: a persistent skip list (§7.2).
//!
//! The MemTable skip list *is* the durable store: nodes live page-aligned
//! in a MemSnap region, each `Put` persists exactly the new node and its
//! level-0 predecessor with one `msnap_persist`, and the skip-pointer
//! index is volatile ("we can recreate this index after a crash by
//! traversing the restored linked list"). The WAL, SSTables, LSM tree and
//! compaction are all gone.

use memsnap::{MemSnap, PersistFlags, RegionSel};
use msnap_disk::Disk;
use msnap_sim::{Meters, Nanos, Vt};
use msnap_vm::AsId;

use crate::kv::{Kv, KvStats};
use crate::node::{decode_head, decode_node, PAGE};
use crate::plist::PersistentSkipList;

/// The persistent-skip-list store. See the module docs.
#[derive(Debug)]
pub struct MemSnapKv {
    ms: MemSnap,
    space: AsId,
    list: PersistentSkipList,
    stats: KvStats,
}

impl MemSnapKv {
    /// Creates a fresh store with room for `capacity_pages` nodes.
    pub fn format(disk: Disk, capacity_pages: u64, vt: &mut Vt) -> Self {
        Self::format_sharded(disk, capacity_pages, 1, vt)
    }

    /// Creates a fresh store over `shards` commit shards (see
    /// `MemSnap::format_sharded`) — the knob for deployments persisting
    /// several regions concurrently.
    pub fn format_sharded(disk: Disk, capacity_pages: u64, shards: usize, vt: &mut Vt) -> Self {
        let mut ms = MemSnap::format_sharded(disk, shards);
        let space = ms.vm_mut().create_space();
        let region = ms
            .msnap_open(vt, space, "memtable", capacity_pages)
            .expect("fresh store accepts the memtable region");
        let list = PersistentSkipList::format(&mut ms, space, region, vt);
        MemSnapKv {
            ms,
            space,
            list,
            stats: KvStats::default(),
        }
    }

    /// Restores after a crash: remap the region, then "traverse the
    /// linked list nodes to recompute skip pointers".
    ///
    /// # Panics
    ///
    /// Panics if `disk` holds no MemSnap store.
    pub fn restore(disk: Disk, vt: &mut Vt) -> Self {
        let mut ms = MemSnap::restore(vt, disk).expect("device holds a MemSnap store");
        let space = ms.vm_mut().create_space();
        let region = ms
            .msnap_open(vt, space, "memtable", 0)
            .expect("memtable region exists");
        let list = PersistentSkipList::restore(&mut ms, space, region, vt);
        MemSnapKv {
            ms,
            space,
            list,
            stats: KvStats::default(),
        }
    }

    /// Simulates a power failure; pass the device to
    /// [`MemSnapKv::restore`].
    pub fn crash(self, at: Nanos) -> Disk {
        self.ms.crash(at)
    }

    /// The underlying MemSnap instance (fault statistics, breakdowns).
    pub fn memsnap(&self) -> &MemSnap {
        &self.ms
    }

    /// Mutable access to the MemSnap instance (coalescing window,
    /// pipeline depth configuration).
    pub fn memsnap_mut(&mut self) -> &mut MemSnap {
        &mut self.ms
    }

    /// Enables strict property-③ checking in the VM (tests).
    pub fn set_strict_isolation(&mut self, strict: bool) {
        self.ms.vm_mut().set_strict_isolation(strict);
    }

    /// Node pages allocated so far (diagnostics).
    pub fn pages_used(&self) -> u64 {
        self.list.pages_used()
    }

    /// Installs a deterministic fault plan on the underlying device
    /// (robustness testing).
    pub fn set_fault_plan(&mut self, plan: msnap_disk::FaultPlan) {
        self.ms.set_fault_plan(plan);
    }

    /// Acknowledges and clears the store's sticky persist error,
    /// returning it. Until this is called, every write keeps reporting
    /// the failure (fsync-gate semantics).
    pub fn ack_error(&mut self) -> Option<memsnap::MsnapError> {
        self.ms
            .msnap_ack_error(RegionSel::Region(self.list.region.md))
    }

    /// Runs one IO-budgeted slice of the store's online integrity
    /// scrub — the KV host's background maintenance hook. Digest
    /// verification covers the MemTable's committed pages and index
    /// nodes; rot is healed from retained snapshots where a clean copy
    /// exists, else quarantined and reported via the store (see
    /// [`memsnap::MemSnap::msnap_scrub`]).
    ///
    /// # Errors
    ///
    /// A wrapped store IO error; detected corruption is counted in the
    /// returned [`memsnap::ScrubStats`], not raised.
    pub fn scrub(
        &mut self,
        vt: &mut Vt,
        budget: u64,
    ) -> Result<memsnap::ScrubStats, crate::KvError> {
        Ok(self.ms.msnap_scrub(vt, budget)?)
    }

    /// Pins the MemTable's current durable state as the named retained
    /// snapshot (every `Put`/`MultiPut` commits before returning, so the
    /// durable state is the latest acknowledged one). Readers scan it
    /// with [`MemSnapKv::snapshot_scan`] while writes keep flowing.
    ///
    /// # Errors
    ///
    /// A wrapped store error (duplicate name, catalog full, IO).
    pub fn snapshot(&mut self, vt: &mut Vt, name: &str) -> Result<memsnap::Epoch, crate::KvError> {
        Ok(self.ms.msnap_snapshot(vt, self.list.region.md, name)?)
    }

    /// Deletes a retained snapshot, releasing its pinned blocks.
    ///
    /// # Errors
    ///
    /// A wrapped store error if the snapshot does not exist.
    pub fn snapshot_delete(&mut self, vt: &mut Vt, name: &str) -> Result<(), crate::KvError> {
        Ok(self.ms.msnap_snapshot_delete(vt, name)?)
    }

    /// Ordered point-in-time scan of a retained snapshot: maps the
    /// snapshot image read-only at a fresh address and walks its
    /// persistent linked list — the node pages carry page-relative links,
    /// so the pinned image is self-contained. Puts committed after the
    /// snapshot are invisible, no matter how many have landed since.
    ///
    /// # Errors
    ///
    /// A wrapped [`memsnap::MsnapError::BadDescriptor`] for an unknown
    /// snapshot name.
    pub fn snapshot_scan(
        &mut self,
        vt: &mut Vt,
        name: &str,
    ) -> Result<Vec<(u64, Vec<u8>)>, crate::KvError> {
        let view = self.ms.msnap_open_at(vt, self.space, name)?;
        let mut out = Vec::new();
        let mut buf = [0u8; PAGE];
        self.ms.read(vt, self.space, view.addr, &mut buf)?;
        let mut next = decode_head(&buf).unwrap_or(0);
        while next != 0 {
            self.ms
                .read(vt, self.space, view.addr + next * PAGE as u64, &mut buf)?;
            let node = decode_node(&buf).expect("snapshot list points at valid nodes");
            out.push((node.key, node.value));
            next = node.next;
        }
        Ok(out)
    }

    fn persist(&mut self, vt: &mut Vt) -> Result<(), crate::KvError> {
        let thread = vt.id();
        self.ms.msnap_persist(
            vt,
            thread,
            RegionSel::Region(self.list.region.md),
            PersistFlags::sync(),
        )?;
        self.stats.commits += 1;
        Ok(())
    }

    /// Applies `pairs` to the MemTable and enqueues the calling thread's
    /// dirty nodes into a cross-thread group commit; redeem the ticket
    /// with [`MemSnapKv::persist_poll`]. The enqueue copies the node
    /// pages eagerly, so the thread may start its next batch immediately
    /// — concurrent threads' writes land in their own dirty sets and
    /// coalesce into the same window.
    ///
    /// # Errors
    ///
    /// As for [`Kv::multi_put`].
    pub fn multi_put_enqueue(
        &mut self,
        vt: &mut Vt,
        pairs: &[(u64, Vec<u8>)],
    ) -> Result<memsnap::CommitTicket, crate::KvError> {
        for (key, value) in pairs {
            self.list
                .insert_volatile(&mut self.ms, self.space, vt, *key, value);
        }
        let thread = vt.id();
        let ticket = self.ms.msnap_persist_grouped(
            vt,
            thread,
            RegionSel::Region(self.list.region.md),
            PersistFlags::sync(),
        )?;
        Ok(ticket)
    }

    /// Polls a group-commit ticket from [`MemSnapKv::multi_put_enqueue`]:
    /// `Ok(true)` once the batch is durable, `Ok(false)` while its
    /// coalescing window is still open.
    ///
    /// # Errors
    ///
    /// The batch's error if the combined μCheckpoint failed — every batch
    /// participant is aborted and the store's error is sticky until
    /// [`MemSnapKv::ack_error`].
    pub fn persist_poll(
        &mut self,
        vt: &mut Vt,
        ticket: memsnap::CommitTicket,
    ) -> Result<bool, crate::KvError> {
        match self.ms.msnap_group_poll(vt, ticket)? {
            Some(_epoch) => {
                self.stats.commits += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

impl Kv for MemSnapKv {
    fn put(&mut self, vt: &mut Vt, key: u64, value: &[u8]) -> Result<(), crate::KvError> {
        self.list
            .insert_volatile(&mut self.ms, self.space, vt, key, value);
        self.persist(vt)
    }

    fn multi_put(&mut self, vt: &mut Vt, pairs: &[(u64, Vec<u8>)]) -> Result<(), crate::KvError> {
        // WriteCommitted: all MemTable writes happen at commit, then one
        // μCheckpoint persists the whole batch atomically.
        for (key, value) in pairs {
            self.list
                .insert_volatile(&mut self.ms, self.space, vt, *key, value);
        }
        self.persist(vt)
    }

    fn get(&mut self, vt: &mut Vt, key: u64) -> Option<Vec<u8>> {
        self.list.get(&mut self.ms, self.space, vt, key)
    }

    fn seek(&mut self, vt: &mut Vt, key: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        self.list.seek(&mut self.ms, self.space, vt, key, limit)
    }

    fn len(&self) -> usize {
        self.list.index.len()
    }

    fn stats(&self) -> KvStats {
        self.stats
    }

    fn meters(&self) -> Meters {
        self.ms.meters().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msnap_disk::DiskConfig;

    fn fresh() -> (MemSnapKv, Vt) {
        let mut vt = Vt::new(0);
        let kv = MemSnapKv::format(Disk::new(DiskConfig::paper()), 8192, &mut vt);
        (kv, vt)
    }

    #[test]
    fn dropped_write_aborts_the_put_without_panicking() {
        use msnap_disk::{Fault, FaultPlan};
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 1, b"durable").unwrap();
        kv.set_fault_plan(FaultPlan::new().at(
            kv.memsnap().disk().io_seq(),
            Fault::Drop { transient: false },
        ));
        let err = kv.put(&mut vt, 2, b"lost").unwrap_err();
        // Fsync-gate: the error is sticky until acknowledged, then the
        // retry persists the aborted write (it stayed in the MemTable).
        assert_eq!(kv.put(&mut vt, 3, b"also blocked").unwrap_err(), err);
        assert!(kv.ack_error().is_some());
        kv.put(&mut vt, 4, b"after ack").unwrap();
        assert_eq!(kv.get(&mut vt, 2).as_deref(), Some(&b"lost"[..]));
    }

    #[test]
    fn put_get_round_trip() {
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 5, b"five").unwrap();
        kv.put(&mut vt, 3, b"three").unwrap();
        kv.put(&mut vt, 9, b"nine").unwrap();
        assert_eq!(kv.get(&mut vt, 3), Some(b"three".to_vec()));
        assert_eq!(kv.get(&mut vt, 5), Some(b"five".to_vec()));
        assert_eq!(kv.get(&mut vt, 9), Some(b"nine".to_vec()));
        assert_eq!(kv.get(&mut vt, 4), None);
        assert_eq!(kv.len(), 3);
    }

    #[test]
    fn overwrite_updates_in_place() {
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 5, b"old").unwrap();
        let pages_before = kv.pages_used();
        kv.put(&mut vt, 5, b"new").unwrap();
        assert_eq!(kv.pages_used(), pages_before, "rewrite allocates no node");
        assert_eq!(kv.get(&mut vt, 5), Some(b"new".to_vec()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn put_persists_exactly_new_node_and_pred() {
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 10, b"a").unwrap(); // pred = head
        assert_eq!(kv.memsnap().last_persist_breakdown().pages, 2);
        kv.put(&mut vt, 20, b"b").unwrap(); // pred = node 10
        assert_eq!(kv.memsnap().last_persist_breakdown().pages, 2);
    }

    #[test]
    fn seek_returns_ordered_range() {
        let (mut kv, mut vt) = fresh();
        for k in [50u64, 10, 30, 20, 40] {
            kv.put(&mut vt, k, &k.to_le_bytes()).unwrap();
        }
        let got = kv.seek(&mut vt, 15, 3);
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![20, 30, 40]);
    }

    #[test]
    fn crash_restore_rebuilds_skip_pointers() {
        let (mut kv, mut vt) = fresh();
        for k in 0..200u64 {
            kv.put(&mut vt, (k * 7919) % 200, &k.to_le_bytes()).unwrap();
        }
        let crash_at = vt.now();
        let disk = kv.crash(crash_at);

        let mut vt2 = Vt::new(1);
        let mut kv2 = MemSnapKv::restore(disk, &mut vt2);
        assert_eq!(kv2.len(), 200);
        let all = kv2.seek(&mut vt2, 0, 500);
        assert_eq!(all.len(), 200);
        let keys: Vec<u64> = all.iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "restored order");
    }

    #[test]
    fn unpersisted_tail_is_lost_but_prefix_consistent() {
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 1, b"one").unwrap();
        let after_first = vt.now();
        kv.put(&mut vt, 2, b"two").unwrap();
        let disk = kv.crash(after_first);

        let mut vt2 = Vt::new(1);
        let mut kv2 = MemSnapKv::restore(disk, &mut vt2);
        assert_eq!(kv2.get(&mut vt2, 1), Some(b"one".to_vec()));
        assert_eq!(kv2.get(&mut vt2, 2), None, "second put was not durable");
        assert_eq!(kv2.len(), 1);
    }

    #[test]
    fn multi_put_is_one_checkpoint() {
        let (mut kv, mut vt) = fresh();
        let pairs: Vec<(u64, Vec<u8>)> = (0..10u64).map(|k| (k, vec![k as u8; 8])).collect();
        kv.multi_put(&mut vt, &pairs).unwrap();
        assert_eq!(kv.stats().commits, 1);
        assert_eq!(
            kv.memsnap().meters().get("msnap_persist").unwrap().count(),
            1,
        );
    }

    #[test]
    fn multi_put_is_atomic_across_crash() {
        let (mut kv, mut vt) = fresh();
        kv.put(&mut vt, 100, b"base").unwrap();
        let before_batch = vt.now();
        let pairs: Vec<(u64, Vec<u8>)> = (0..20u64).map(|k| (k, vec![1u8; 4])).collect();
        kv.multi_put(&mut vt, &pairs).unwrap();
        // Crash mid-batch-persist: the batch must be all-or-nothing.
        let disk = kv.crash(before_batch + Nanos::from_us(20));

        let mut vt2 = Vt::new(1);
        let mut kv2 = MemSnapKv::restore(disk, &mut vt2);
        let batch_present = (0..20u64)
            .filter(|k| kv2.get(&mut vt2, *k).is_some())
            .count();
        assert!(
            batch_present == 0 || batch_present == 20,
            "torn batch: {batch_present}/20 keys"
        );
    }

    #[test]
    fn background_scrub_is_clean_and_keeps_snapshot_scans_stable() {
        let (mut kv, mut vt) = fresh();
        for k in 0..32u64 {
            kv.put(&mut vt, k, format!("v{k}").as_bytes()).unwrap();
        }
        kv.snapshot(&mut vt, "pin").unwrap();
        for k in 0..16u64 {
            kv.put(&mut vt, k, b"rewritten").unwrap();
        }
        // Scrub a full pass in small slices between (conceptually)
        // foreground puts — a clean store reports zero corruption.
        let mut guard = 0;
        while kv.memsnap().store().scrub_stats().passes == 0 {
            kv.scrub(&mut vt, 16).unwrap();
            guard += 1;
            assert!(guard < 100_000, "scrub never completed a pass");
        }
        let stats = kv.memsnap().store().scrub_stats();
        assert_eq!(stats.corruptions_found, 0, "{stats:?}");
        assert!(stats.pages_verified > 0);
        // The pinned view is untouched by the scrub's verification.
        let pinned = kv.snapshot_scan(&mut vt, "pin").unwrap();
        assert_eq!(pinned.len(), 32);
        assert_eq!(pinned[7].1, b"v7".to_vec());
        assert_eq!(kv.get(&mut vt, 7), Some(b"rewritten".to_vec()));
    }
}
