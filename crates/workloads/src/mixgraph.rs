//! Meta's MixGraph RocksDB workload (Cao et al., FAST '20), as used in
//! §2 and §7.2: "composed of 84% Get, 14% Put, and 3% Seek requests …
//! Keys are chosen uniformly, while writes are chosen using a generalized
//! Pareto distribution."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::BoundedPareto;

/// Key size: 48 bytes (paper: "48-byte keys").
pub const KEY_SIZE: usize = 48;
/// Value size: 100 bytes (paper: "100-byte value pairs").
pub const VALUE_SIZE: usize = 100;

/// One MixGraph request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixOp {
    /// Point lookup.
    Get(u64),
    /// Synchronous write.
    Put(u64),
    /// Range scan of `len` keys starting at the key.
    Seek(u64, usize),
}

impl MixOp {
    /// The 48-byte key encoding for a key id.
    pub fn key_bytes(key: u64) -> [u8; KEY_SIZE] {
        let mut k = [0u8; KEY_SIZE];
        k[..8].copy_from_slice(&key.to_be_bytes());
        k
    }

    /// The 100-byte value for a key (deterministic).
    pub fn value_bytes(key: u64) -> [u8; VALUE_SIZE] {
        let mut v = [0u8; VALUE_SIZE];
        let bytes = key.to_le_bytes();
        for (i, b) in v.iter_mut().enumerate() {
            *b = bytes[i % 8].wrapping_add(i as u8);
        }
        v
    }
}

/// The MixGraph request generator.
#[derive(Debug)]
pub struct MixGraph {
    keys: u64,
    pareto: BoundedPareto,
    rng: StdRng,
}

impl MixGraph {
    /// Creates a generator over `keys` distinct keys (20 M in the paper;
    /// scale down for CI).
    pub fn new(keys: u64, seed: u64) -> Self {
        MixGraph {
            keys,
            pareto: BoundedPareto::new(keys),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of distinct keys.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Generates the next request.
    pub fn next_op(&mut self) -> MixOp {
        let roll: f64 = self.rng.gen();
        if roll < 0.83 {
            MixOp::Get(self.rng.gen_range(0..self.keys))
        } else if roll < 0.97 {
            MixOp::Put(self.pareto.sample(&mut self.rng))
        } else {
            let start = self.rng.gen_range(0..self.keys);
            let len = self.rng.gen_range(4..=32);
            MixOp::Seek(start, len)
        }
    }
}

impl Iterator for MixGraph {
    type Item = MixOp;

    fn next(&mut self) -> Option<MixOp> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_ratios_match_paper() {
        let mut g = MixGraph::new(1_000_000, 5);
        let n = 50_000;
        let (mut gets, mut puts, mut seeks) = (0, 0, 0);
        for _ in 0..n {
            match g.next_op() {
                MixOp::Get(_) => gets += 1,
                MixOp::Put(_) => puts += 1,
                MixOp::Seek(..) => seeks += 1,
            }
        }
        let pct = |x: i32| x as f64 / n as f64 * 100.0;
        assert!((pct(gets) - 83.0).abs() < 1.5, "gets {:.1}%", pct(gets));
        assert!((pct(puts) - 14.0).abs() < 1.5, "puts {:.1}%", pct(puts));
        assert!((pct(seeks) - 3.0).abs() < 1.0, "seeks {:.1}%", pct(seeks));
    }

    #[test]
    fn puts_are_pareto_hot() {
        let mut g = MixGraph::new(1_000_000, 6);
        let mut low = 0;
        let mut puts = 0;
        for _ in 0..100_000 {
            if let MixOp::Put(k) = g.next_op() {
                puts += 1;
                if k < 100_000 {
                    low += 1;
                }
            }
        }
        assert!(low as f64 > puts as f64 * 0.5, "hot puts: {low}/{puts}");
    }

    #[test]
    fn keys_and_values_encode() {
        let k = MixOp::key_bytes(7);
        assert_eq!(k.len(), KEY_SIZE);
        assert_eq!(&k[..8], &7u64.to_be_bytes());
        assert_ne!(MixOp::value_bytes(1), MixOp::value_bytes(2));
    }

    #[test]
    fn deterministic_by_seed() {
        let a: Vec<MixOp> = MixGraph::new(1000, 9).take(64).collect();
        let b: Vec<MixOp> = MixGraph::new(1000, 9).take(64).collect();
        assert_eq!(a, b);
    }
}
