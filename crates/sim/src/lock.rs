//! Virtual-time mutual exclusion.

use crate::{Nanos, Vt};

/// A mutex for virtual threads.
///
/// Under the conservative scheduler (earliest-clock-first, one whole
/// operation per step), a lock is represented by the instant it becomes
/// free. A thread that "blocks" simply advances its clock to that instant;
/// the holder publishes the release instant when it unlocks.
///
/// The guard-free API (`lock`/`unlock`) is deliberate: a `SimLock` may be
/// acquired and released at different points of a database operation where
/// a lifetime-bound guard would be awkward, and misuse is caught by the
/// monotonicity assertion in [`SimLock::unlock`].
///
/// # Example
///
/// ```
/// use msnap_sim::{Nanos, SimLock, Vt};
///
/// let mut lock = SimLock::new();
/// let mut writer = Vt::new(0);
/// lock.lock(&mut writer);
/// writer.advance(Nanos::from_us(50)); // critical section
/// lock.unlock(&writer);
///
/// let mut other = Vt::new(1);
/// other.advance(Nanos::from_us(10));
/// lock.lock(&mut other); // queues behind the writer
/// assert_eq!(other.now(), Nanos::from_us(50));
/// # lock.unlock(&other);
/// ```
#[derive(Debug, Default, Clone)]
pub struct SimLock {
    free_at: Nanos,
    held: bool,
    /// Total time threads spent waiting on this lock.
    contended: Nanos,
}

impl SimLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock, advancing the caller's clock past any holder.
    ///
    /// # Panics
    ///
    /// Panics if the lock is already held and was never released — i.e. a
    /// missing [`SimLock::unlock`], which under conservative scheduling is
    /// a bug in the calling component rather than real contention.
    pub fn lock(&mut self, vt: &mut Vt) {
        assert!(
            !self.held,
            "SimLock::lock on a lock still held (missing unlock)"
        );
        if self.free_at > vt.now() {
            self.contended += self.free_at - vt.now();
        }
        vt.wait_until(self.free_at);
        self.held = true;
    }

    /// Releases the lock at the caller's current time.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held.
    pub fn unlock(&mut self, vt: &Vt) {
        assert!(self.held, "SimLock::unlock on a lock that is not held");
        self.free_at = self.free_at.max(vt.now());
        self.held = false;
    }

    /// Acquire-run-release in one call: holds the lock for `hold` starting
    /// at the caller's (possibly delayed) time.
    pub fn with(&mut self, vt: &mut Vt, hold: Nanos) {
        self.lock(vt);
        vt.advance(hold);
        self.unlock(vt);
    }

    /// Total time threads have spent blocked on this lock.
    pub fn contended(&self) -> Nanos {
        self.contended
    }

    /// The instant the lock next becomes free.
    pub fn free_at(&self) -> Nanos {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_is_immediate() {
        let mut l = SimLock::new();
        let mut vt = Vt::new(0);
        vt.advance(Nanos::from_us(5));
        l.lock(&mut vt);
        assert_eq!(vt.now(), Nanos::from_us(5));
        l.unlock(&vt);
        assert_eq!(l.contended(), Nanos::ZERO);
    }

    #[test]
    fn contended_lock_queues() {
        let mut l = SimLock::new();
        let mut a = Vt::new(0);
        l.lock(&mut a);
        a.advance(Nanos::from_us(30));
        l.unlock(&a);

        let mut b = Vt::new(1);
        b.advance(Nanos::from_us(10));
        l.lock(&mut b);
        assert_eq!(b.now(), Nanos::from_us(30));
        assert_eq!(l.contended(), Nanos::from_us(20));
        l.unlock(&b);
    }

    #[test]
    fn with_combines_lock_run_unlock() {
        let mut l = SimLock::new();
        let mut a = Vt::new(0);
        l.with(&mut a, Nanos::from_us(7));
        assert_eq!(a.now(), Nanos::from_us(7));
        let mut b = Vt::new(1);
        l.with(&mut b, Nanos::from_us(3));
        assert_eq!(b.now(), Nanos::from_us(10));
    }

    #[test]
    #[should_panic(expected = "missing unlock")]
    fn double_lock_panics() {
        let mut l = SimLock::new();
        let mut vt = Vt::new(0);
        l.lock(&mut vt);
        l.lock(&mut vt);
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn unlock_without_lock_panics() {
        let mut l = SimLock::new();
        let vt = Vt::new(0);
        l.unlock(&vt);
    }
}
